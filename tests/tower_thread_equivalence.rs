//! Property test for the arena/kernel tower hot path: towers built at
//! 1, 2, and 8 threads must be *bit-identical* — equal snapshot
//! fingerprints and equal engine counters — to the sequential reference
//! engine, across randomly generated LCLs.
//!
//! The parallel engine shards work by index and writes disjoint arena
//! rows in place, so nothing about the derived problems, the interner
//! ids, or the restriction fixpoint may depend on the thread count.
//! Wall time is excluded (it is the one legitimately scheduling-dependent
//! stat), as is the memo *hit* count: a racing worker may recompute a
//! key another worker is still inserting, which shifts hits without
//! changing any derived data (see `NodeCache` in `tower.rs`). The miss
//! count — distinct node queries actually computed — is deterministic
//! and is compared exactly.

use lcl_landscape::core::{LevelStats, ReError, ReOptions, ReTower};
use lcl_landscape::lcl::gen::{random_problem, RandomProblemSpec};
use lcl_rng::SmallRng;

/// A deterministic case stream (same convention as `proptests.rs`).
fn cases(name: &str, count: usize) -> impl Iterator<Item = SmallRng> {
    let salt = name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ u64::from(b)).wrapping_mul(0x1000_0000_01b3)
    });
    (0..count as u64).map(move |i| SmallRng::seed_from_u64(salt ^ i.wrapping_mul(0x9e37_79b9)))
}

/// Pushes up to two `f = R̄ ∘ R` steps, stopping at the first refusal.
fn build(problem: &lcl_landscape::lcl::LclProblem, opts: ReOptions) -> (ReTower, Vec<ReError>) {
    let mut tower = ReTower::new(problem.clone());
    let mut errors = Vec::new();
    for _ in 0..2 {
        if let Err(e) = tower.push_f(opts) {
            errors.push(e);
            break;
        }
    }
    (tower, errors)
}

/// The scheduling-independent face of [`LevelStats`].
fn deterministic_stats(stats: &[LevelStats]) -> Vec<(usize, usize, u64, u64, Option<usize>)> {
    stats
        .iter()
        .map(|s| {
            (
                s.labels_full,
                s.labels,
                s.configurations,
                s.cache_misses,
                s.fixpoint_of,
            )
        })
        .collect()
}

#[test]
fn towers_are_bit_identical_across_thread_counts() {
    for (case, mut rng) in cases("towers_are_bit_identical_across_thread_counts", 16).enumerate() {
        let spec = RandomProblemSpec {
            max_degree: rng.gen_range(2u8..4),
            inputs: rng.gen_range(1usize..3),
            outputs: rng.gen_range(2usize..5),
            density_percent: rng.gen_range(30u8..90),
        };
        let seed = rng.gen_range(0u64..10_000);
        let problem = random_problem(spec, seed);

        let reference = build(
            &problem,
            ReOptions {
                parallel: false,
                ..ReOptions::default()
            },
        );
        for threads in [1usize, 2, 8] {
            let candidate = build(
                &problem,
                ReOptions {
                    parallel: true,
                    threads,
                    ..ReOptions::default()
                },
            );
            let context = format!("case={case} seed={seed} spec={spec:?} threads={threads}");
            assert_eq!(
                candidate.1, reference.1,
                "engines must refuse identically: {context}"
            );
            assert_eq!(
                candidate.0.level_count(),
                reference.0.level_count(),
                "{context}"
            );
            assert_eq!(
                candidate.0.fingerprint(),
                reference.0.fingerprint(),
                "snapshot fingerprints must be bit-identical: {context}"
            );
            assert_eq!(
                deterministic_stats(&candidate.0.stats()),
                deterministic_stats(&reference.0.stats()),
                "engine counters must not depend on the thread count: {context}"
            );
        }
    }
}

#[test]
fn resumed_towers_keep_thread_equivalence() {
    // Snapshot round-trips compose with thread equivalence: resuming a
    // 1-thread tower and finishing at 8 threads matches an uninterrupted
    // sequential build.
    for mut rng in cases("resumed_towers_keep_thread_equivalence", 6) {
        let spec = RandomProblemSpec {
            max_degree: 2,
            inputs: 1,
            outputs: rng.gen_range(2usize..4),
            density_percent: rng.gen_range(50u8..95),
        };
        let seed = rng.gen_range(0u64..10_000);
        let problem = random_problem(spec, seed);
        let opts_seq = ReOptions {
            parallel: false,
            ..ReOptions::default()
        };
        let mut straight = ReTower::new(problem.clone());
        if straight.push_f(opts_seq).is_err() || straight.push_f(opts_seq).is_err() {
            continue; // refusals are covered by the test above
        }

        let mut first = ReTower::new(problem);
        first
            .push_f(ReOptions {
                parallel: true,
                threads: 1,
                ..ReOptions::default()
            })
            .expect("straight build succeeded");
        let wire = first.snapshot().to_json();
        let mut resumed = ReTower::resume_from(
            &lcl_landscape::core::TowerSnapshot::parse(&wire).expect("own snapshot parses"),
        )
        .expect("own snapshot resumes");
        resumed
            .push_f(ReOptions {
                parallel: true,
                threads: 8,
                ..ReOptions::default()
            })
            .expect("straight build succeeded");
        assert_eq!(resumed.fingerprint(), straight.fingerprint(), "seed={seed}");
    }
}
