//! Property-based tests: the gap theorems quantify over *all* LCL
//! problems, so the machinery is exercised on randomly generated ones.
//!
//! The build environment is offline, so instead of an external
//! property-testing framework these tests draw their cases from the
//! suite's own deterministic [`SmallRng`]: each test runs a fixed number
//! of cases from a fixed stream, making failures exactly reproducible
//! (the failing parameters are part of the panic message). Cases that
//! shrank out of historical failures are replayed explicitly first —
//! they used to live in `proptests.proptest-regressions`.

use lcl_rng::SmallRng;

use lcl_landscape::core::speedup_trees::brute_force_solvable;
use lcl_landscape::core::zero_round::{decide_zero_round, ZeroRoundOptions, ZeroRoundResult};
use lcl_landscape::graph::{gen, NodeId};
use lcl_landscape::lcl::gen::{random_problem, RandomProblemSpec};
use lcl_landscape::lcl::{uniform_input, verify, LclProblem, OutLabel, Problem};
use lcl_landscape::local::{run_deterministic, FnAlgorithm, IdAssignment};

/// A deterministic case stream per test (salted by name so tests don't
/// share cases).
fn cases(name: &str, count: usize) -> impl Iterator<Item = SmallRng> {
    let salt = name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ u64::from(b)).wrapping_mul(0x1000_0000_01b3)
    });
    (0..count as u64).map(move |i| SmallRng::seed_from_u64(salt ^ i.wrapping_mul(0x9e37_79b9)))
}

/// Random trees are trees with bounded degree, and the CSR structure
/// is self-consistent (twin involution, port round-trips).
#[test]
fn random_trees_are_wellformed() {
    for mut rng in cases("random_trees_are_wellformed", 48) {
        let n = rng.gen_range(2usize..80);
        let delta = rng.gen_range(2u8..5);
        let seed = rng.gen_range(0u64..1000);
        let g = gen::random_tree(n, delta, seed);
        assert!(g.is_tree(), "n={n} delta={delta} seed={seed}");
        assert!(g.max_degree() <= delta, "n={n} delta={delta} seed={seed}");
        for h in g.half_edges() {
            assert_eq!(g.twin(g.twin(h)), h);
            let v = g.node_of(h);
            assert_eq!(g.half_edge(v, g.port_of(h)), h);
        }
    }
}

/// Ball extraction respects the visibility radius and contains the
/// center's full neighborhood structure.
#[test]
fn balls_respect_radius() {
    for mut rng in cases("balls_respect_radius", 48) {
        let n = rng.gen_range(3usize..60);
        let radius = rng.gen_range(0u32..5);
        let seed = rng.gen_range(0u64..500);
        let g = gen::random_tree(n, 3, seed);
        let center = NodeId((seed % n as u64) as u32);
        let ball = g.ball(center, radius);
        let dist = g.bfs_distances(center, radius);
        let expected = dist.iter().filter(|&&d| d != u32::MAX).count();
        assert_eq!(ball.node_count(), expected, "n={n} r={radius} seed={seed}");
        for node in &ball.nodes {
            assert!(node.dist <= radius);
            assert_eq!(u32::from(g.degree(node.original)), node.ports.len() as u32);
        }
    }
}

/// Problem text round-trips: parse(to_text(p)) preserves structure.
#[test]
fn problem_text_roundtrip() {
    // Replayed regression case, then fresh ones.
    let replay = std::iter::once(113u64);
    let fresh = cases("problem_text_roundtrip", 48).map(|mut rng| rng.gen_range(0u64..500));
    for seed in replay.chain(fresh) {
        let p = random_problem(RandomProblemSpec::default(), seed);
        let q = LclProblem::parse(&p.with_opaque_names().to_text()).unwrap();
        assert_eq!(p.node_config_count(), q.node_config_count(), "seed={seed}");
        assert_eq!(p.edge_config_count(), q.edge_config_count(), "seed={seed}");
        assert_eq!(
            p.output_alphabet().len(),
            q.output_alphabet().len(),
            "seed={seed}"
        );
    }
}

/// If the 0-round decision extracts a table, running that table as a
/// LOCAL algorithm produces correct solutions on random forests.
#[test]
fn zero_round_tables_are_sound() {
    for mut rng in cases("zero_round_tables_are_sound", 48) {
        let seed = rng.gen_range(0u64..300);
        let gseed = rng.gen_range(0u64..100);
        let p = random_problem(
            RandomProblemSpec {
                max_degree: 3,
                inputs: 2,
                outputs: 3,
                density_percent: 70,
            },
            seed,
        );
        if let ZeroRoundResult::Solvable(adet) = decide_zero_round(&p, ZeroRoundOptions::default())
        {
            let g = gen::random_forest(24, 3, 3, gseed);
            // Random inputs per half-edge.
            let input = lcl_landscape::lcl::HalfEdgeLabeling::from_fn(&g, |h| {
                lcl_landscape::lcl::InLabel((h.0.wrapping_mul(2654435761) >> 16) % 2)
            });
            let adet_ref = &adet;
            let alg = FnAlgorithm::new(
                "adet",
                |_| 0,
                move |view| {
                    let d = view.center_degree();
                    adet_ref.outputs_for(&view.inputs[..d])
                },
            );
            let ids = IdAssignment::sequential(24);
            let run = run_deterministic(&alg, &g, &input, &ids, None);
            let violations = verify(&p, &g, &input, &run.output);
            assert!(
                violations.is_empty(),
                "seed={seed} gseed={gseed}: {violations:?}"
            );
        }
    }
}

/// If brute force finds no solution on a small forest, the 0-round
/// decision must not claim solvability.
#[test]
fn zero_round_unsolvable_is_consistent() {
    for mut rng in cases("zero_round_unsolvable_is_consistent", 48) {
        let seed = rng.gen_range(0u64..200);
        let p = random_problem(
            RandomProblemSpec {
                max_degree: 2,
                inputs: 1,
                outputs: 2,
                density_percent: 35,
            },
            seed,
        );
        let g = gen::path(3);
        let input = uniform_input(&g);
        if !brute_force_solvable(&p, &g, &input) {
            let decision = decide_zero_round(&p, ZeroRoundOptions::default());
            assert!(!decision.is_solvable(), "seed={seed}");
        }
    }
}

/// The verifier treats node configurations as multisets: permuting a
/// node's outputs does not change validity.
#[test]
fn node_constraints_are_order_insensitive() {
    for mut rng in cases("node_constraints_are_order_insensitive", 48) {
        let seed = rng.gen_range(0u64..300);
        let p = random_problem(RandomProblemSpec::default(), seed);
        let outs = p.output_alphabet().len() as u32;
        let config = [
            OutLabel(seed as u32 % outs),
            OutLabel((seed as u32 / 7) % outs),
            OutLabel((seed as u32 / 49) % outs),
        ];
        let mut rotated = config;
        rotated.rotate_left(1);
        assert_eq!(
            p.node_allows(&config),
            p.node_allows(&rotated),
            "seed={seed}"
        );
    }
}

fn check_synthesized_cycle_algorithm_is_sound(seed: u64, n: usize) {
    use lcl_landscape::classify::synthesize_cycle;
    let p = random_problem(
        RandomProblemSpec {
            max_degree: 2,
            inputs: 1,
            outputs: 3,
            density_percent: 55,
        },
        seed,
    );
    if let Ok(Some(alg)) = synthesize_cycle(&p) {
        let n = n.max(3);
        // Flexibility guarantees solvability for all *large* n; skip
        // the (finitely many) unsolvable small sizes.
        let table = lcl_landscape::classify::solvable_cycle_lengths_up_to(&p, n)
            .expect("input-independent");
        if !table.last().is_some_and(|&(_, s)| s) {
            return;
        }
        let g = gen::cycle(n);
        let input = uniform_input(&g);
        let ids = IdAssignment::random_polynomial(g.node_count(), 3, seed);
        let run = run_deterministic(&alg, &g, &input, &ids, None);
        let violations = verify(&p, &g, &input, &run.output);
        assert!(
            violations.is_empty(),
            "problem {} on C{}: {:?}",
            p.to_text(),
            n,
            violations
        );
    }
}

/// Classify-then-synthesize soundness on random degree-2 LCLs: when
/// the synthesizer emits an algorithm, the algorithm's output
/// verifies on concrete cycles. (The classifier's *claims* are thus
/// cross-checked by execution — a decidability result made
/// falsifiable.)
#[test]
fn synthesized_cycle_algorithms_are_sound() {
    // Replayed regression case (historically shrank to seed=52, n=8).
    check_synthesized_cycle_algorithm_is_sound(52, 8);
    for mut rng in cases("synthesized_cycle_algorithms_are_sound", 48) {
        let seed = rng.gen_range(0u64..400);
        let n = rng.gen_range(8usize..48);
        check_synthesized_cycle_algorithm_is_sound(seed, n);
    }
}

fn check_synthesized_path_algorithm_is_sound(seed: u64, n: usize) {
    use lcl_landscape::classify::synthesize_path;
    let p = random_problem(
        RandomProblemSpec {
            max_degree: 2,
            inputs: 1,
            outputs: 3,
            density_percent: 60,
        },
        seed,
    );
    if let Ok(Some(alg)) = synthesize_path(&p) {
        let table =
            lcl_landscape::classify::solvable_path_lengths_up_to(&p, n).expect("input-independent");
        if !table.last().is_some_and(|&(_, s)| s) {
            return;
        }
        let g = gen::path(n);
        let input = uniform_input(&g);
        let ids = IdAssignment::random_polynomial(n, 3, seed + 1);
        let run = run_deterministic(&alg, &g, &input, &ids, None);
        let violations = verify(&p, &g, &input, &run.output);
        assert!(
            violations.is_empty(),
            "problem {} on P{}: {:?}",
            p.to_text(),
            n,
            violations
        );
    }
}

/// The same soundness property for the path synthesizer, which
/// additionally exercises endpoint (prefix/suffix) handling.
#[test]
fn synthesized_path_algorithms_are_sound() {
    // Replayed regression case (historically shrank to seed=143, n=2).
    check_synthesized_path_algorithm_is_sound(143, 2);
    for mut rng in cases("synthesized_path_algorithms_are_sound", 48) {
        let seed = rng.gen_range(0u64..300);
        let n = rng.gen_range(2usize..40);
        check_synthesized_path_algorithm_is_sound(seed, n);
    }
}

/// Torus coordinates round-trip and the port convention encodes the
/// orientation for every dimension.
#[test]
fn torus_ports_encode_orientation() {
    for mut rng in cases("torus_ports_encode_orientation", 12) {
        let dims = [
            rng.gen_range(3usize..6),
            rng.gen_range(3usize..6),
            rng.gen_range(3usize..5),
        ];
        let g = gen::torus(&dims);
        for v in g.nodes() {
            let coords = gen::torus_coords(&dims, v.index());
            for (k, &dim) in dims.iter().enumerate() {
                let h = g.half_edge(v, (2 * k) as u8);
                let mut plus = coords.clone();
                plus[k] = (plus[k] + 1) % dim;
                assert_eq!(g.neighbor(h).index(), gen::torus_id(&dims, &plus));
            }
        }
    }
}
