//! Recovery integration: the self-healing loop end to end.
//!
//! Three properties, each with an always-on smoke test and an
//! `#[ignore]`d soak driven by `scripts/check.sh` in release mode:
//!
//! 1. **Repair closes the loop** — under crash + corrupt-view chaos
//!    plans, every previously-degraded (or silently corrupted) run ends
//!    as a `Certified` labeling that passes `lcl::verify`, or as a typed
//!    `RepairFailed`; never a silently-invalid answer.
//! 2. **Interrupt/resume determinism** — a supervised tower build that
//!    breaches its budget mid-way, checkpoints through JSON, resumes,
//!    and finishes under an escalated budget is bit-identical
//!    (structural fingerprint) to an uninterrupted build, at 1, 2, and
//!    8 engine threads.
//! 3. **Repair soundness** — across catalog problem/algorithm pairs,
//!    models, and seeds, a `Certified` value is always verifier-clean.

use lcl_rng::SmallRng;

use lcl_landscape::core::{ReOptions, ReTower};
use lcl_landscape::faults::{Budget, Fault, FaultPlan, RunOptions};
use lcl_landscape::graph::gen;
use lcl_landscape::grid::{
    simulate_with as simulate_prod_with, FnProdAlgorithm, GridView, OrientedGrid, ProdIds,
};
use lcl_landscape::lcl::{uniform_input, verify, LclProblem, OutLabel};
use lcl_landscape::local::{simulate_sync_with, IdAssignment};
use lcl_landscape::obs::EventLog;
use lcl_landscape::problems::{k_coloring, sinkless_orientation, DeltaPlusOne};
use lcl_landscape::recover::{
    repair_lca_degraded, repair_prod_degraded, repair_sync_degraded, repair_volume_degraded,
    supervise_tower, RepairOptions, RetryPolicy,
};
use lcl_landscape::volume::lca::VolumeAsLca;
use lcl_landscape::volume::{
    simulate_lca_with, simulate_with as simulate_volume_with, FnVolumeAlgorithm, ProbeError,
    ProbeSession,
};

/// How one recovery attempt ended. `Invalid` must never appear.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Outcome {
    /// The labeling verifies — either untouched or after mending.
    Certified,
    /// Typed give-up: `RepairFailed` with the surviving violations.
    Failed,
    /// A `Certified` value that does not verify — the bug under test.
    Invalid,
}

/// A random plan restricted to crash and corrupt-view faults (the two
/// the repair loop is specified against), optionally permuting ids.
fn crash_corrupt_plan(seed: u64, n: usize) -> FaultPlan {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xc0a5_7a10_cafe_0007);
    let mut plan = FaultPlan::new(seed);
    let count = 1 + (rng.next_u64() % 3);
    for _ in 0..count {
        let node = (rng.next_u64() % n as u64) as usize;
        if rng.next_u64().is_multiple_of(2) {
            plan = plan.with(Fault::Crash {
                node,
                round: (rng.next_u64() % 4) as u32,
            });
        } else {
            plan = plan.with(Fault::CorruptView {
                node,
                salt: rng.next_u64() % 1_000,
            });
        }
    }
    if rng.next_u64().is_multiple_of(2) {
        plan = plan.with_permuted_ids();
    }
    plan
}

/// Path LCL solved by [`threshold_alg`]: endpoints label E, internal
/// nodes I, and X is valid nowhere.
fn endpoints_problem() -> LclProblem {
    LclProblem::builder("endpoints", 2)
        .outputs(["E", "I", "X"])
        .node_pattern(&["E"])
        .node_pattern(&["I*"])
        .edge(&["E", "I"])
        .edge(&["I", "I"])
        .build()
        .unwrap()
}

/// Solves [`endpoints_problem`] from the queried node alone — unless a
/// corrupted view hands it an id beyond `n`, which it trusts and betrays
/// as the invalid label X (silent corruption becomes visible damage).
#[allow(clippy::type_complexity)] // `impl Trait` closure types cannot be aliased
fn threshold_alg(
    n: u64,
) -> FnVolumeAlgorithm<
    impl Fn(usize) -> usize,
    impl Fn(&mut ProbeSession<'_>) -> Result<Vec<OutLabel>, ProbeError>,
> {
    FnVolumeAlgorithm::new(
        "threshold",
        |_| 1,
        move |s| {
            let d = s.queried().degree as usize;
            if s.queried().id > n {
                Ok(vec![OutLabel(2); d])
            } else if d == 1 {
                Ok(vec![OutLabel(0)])
            } else {
                Ok(vec![OutLabel(1); d])
            }
        },
    )
}

/// One LOCAL (sync) recovery run: Δ+1 coloring on a path.
fn sync_recovery(seed: u64) -> Outcome {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x51);
    let n = 6 + (rng.next_u64() % 20) as usize;
    let g = gen::path(n);
    let input = uniform_input(&g);
    let ids: Vec<u64> = IdAssignment::random_polynomial(n, 3, seed ^ 1)
        .iter()
        .collect();
    let plan = crash_corrupt_plan(seed, n);
    let alg = DeltaPlusOne { delta: 2 };
    let p = k_coloring(3, 2);
    let report = simulate_sync_with(
        &alg,
        &g,
        &input,
        &ids,
        None,
        1000,
        RunOptions::new().faults(&plan),
    );
    let mended = repair_sync_degraded(
        &alg,
        &p,
        &g,
        &input,
        &ids,
        None,
        1000,
        &plan,
        &report.outcome,
        RepairOptions::default(),
    );
    classify(&mended.result, |out| verify(&p, &g, &input, out).is_empty())
}

/// One VOLUME recovery run on a path with ids `1..=n`.
fn volume_recovery(seed: u64) -> Outcome {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x52);
    let n = 4 + (rng.next_u64() % 20) as usize;
    let g = gen::path(n);
    let input = uniform_input(&g);
    let ids = IdAssignment::from_vec((1..=n as u64).collect());
    let plan = crash_corrupt_plan(seed, n);
    let alg = threshold_alg(n as u64);
    let p = endpoints_problem();
    let report = simulate_volume_with(
        &alg,
        &g,
        &input,
        &ids,
        None,
        RunOptions::new().faults(&plan),
    )
    .expect("faulted runs degrade instead of erroring");
    let mended = repair_volume_degraded(
        &alg,
        &p,
        &g,
        &input,
        &ids,
        None,
        &plan,
        &report.outcome,
        RepairOptions::default(),
    );
    classify(&mended.result, |out| verify(&p, &g, &input, out).is_empty())
}

/// One LCA recovery run: identifiers are exactly `1..=n` (the LCA
/// promise), which every plan's ID permutation preserves.
fn lca_recovery(seed: u64) -> Outcome {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x53);
    let n = 4 + (rng.next_u64() % 20) as usize;
    let g = gen::path(n);
    let input = uniform_input(&g);
    let ids = IdAssignment::from_vec((1..=n as u64).collect());
    let plan = crash_corrupt_plan(seed, n);
    let alg = VolumeAsLca(threshold_alg(n as u64));
    let p = endpoints_problem();
    let report = simulate_lca_with(&alg, &g, &input, &ids, RunOptions::new().faults(&plan))
        .expect("faulted runs degrade instead of erroring");
    let mended = repair_lca_degraded(
        &alg,
        &p,
        &g,
        &input,
        &ids,
        &plan,
        &report.outcome,
        RepairOptions::default(),
    );
    classify(&mended.result, |out| verify(&p, &g, &input, out).is_empty())
}

/// One PROD-LOCAL recovery run on an oriented grid.
fn prod_recovery(seed: u64) -> Outcome {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x54);
    let a = 3 + (rng.next_u64() % 4) as usize;
    let b = 3 + (rng.next_u64() % 4) as usize;
    let grid = OrientedGrid::new(&[a, b]);
    let input = uniform_input(grid.graph());
    let ids = ProdIds::sequential(&grid);
    let plan = crash_corrupt_plan(seed, grid.node_count());
    let p = LclProblem::builder("grid-free", 4)
        .outputs(["A", "X"])
        .node_pattern(&["A*"])
        .edge(&["A", "A"])
        .build()
        .unwrap();
    let alg = FnProdAlgorithm::new(
        "grid-threshold",
        |_| 1,
        |view: &GridView| {
            let label = if view.id(0, -1) > 64 {
                OutLabel(1)
            } else {
                OutLabel(0)
            };
            vec![label; 2 * view.d]
        },
    );
    let report = simulate_prod_with(
        &alg,
        &grid,
        &input,
        &ids,
        None,
        RunOptions::new().faults(&plan),
    );
    let mended = repair_prod_degraded(
        &alg,
        &p,
        &grid,
        &input,
        &ids,
        None,
        &plan,
        &report.outcome,
        RepairOptions::default(),
    );
    classify(&mended.result, |out| {
        verify(&p, grid.graph(), &input, out).is_empty()
    })
}

fn classify(
    result: &Result<
        lcl_landscape::recover::Certified<lcl_landscape::lcl::HalfEdgeLabeling<OutLabel>>,
        lcl_landscape::recover::RepairFailed,
    >,
    verifies: impl Fn(&lcl_landscape::lcl::HalfEdgeLabeling<OutLabel>) -> bool,
) -> Outcome {
    match result {
        Ok(certified) if verifies(certified.get()) => Outcome::Certified,
        Ok(_) => Outcome::Invalid,
        Err(failed) => {
            assert!(
                !failed.violations.is_empty(),
                "a typed failure must carry its violations"
            );
            Outcome::Failed
        }
    }
}

/// Runs all four models over `seeds` and asserts the loop is closed:
/// no `Invalid` ever, and damage does get certified somewhere.
fn soak_repair(seeds: u64) {
    #[allow(clippy::type_complexity)] // a fixed table of (name, runner)
    let runs: [(&str, fn(u64) -> Outcome); 4] = [
        ("sync", sync_recovery),
        ("volume", volume_recovery),
        ("lca", lca_recovery),
        ("prod", prod_recovery),
    ];
    let mut certified = 0u64;
    for (model, run) in runs {
        for seed in 0..seeds {
            let outcome = run(seed);
            assert!(
                outcome != Outcome::Invalid,
                "{model} seed {seed}: certified labeling failed verification"
            );
            if outcome == Outcome::Certified {
                certified += 1;
            }
        }
    }
    assert!(
        certified > 0,
        "the soak must certify at least one damaged run"
    );
}

#[test]
fn repair_closes_the_loop_smoke() {
    soak_repair(8);
}

/// The acceptance soak: 100 crash/corrupt seeds across all four models.
#[test]
#[ignore = "soak: run in release via scripts/check.sh"]
fn repair_closes_the_loop_soak() {
    soak_repair(100);
}

/// Repair soundness across problem/algorithm pairs, models, and seeds:
/// every `Certified` is verifier-clean (asserted inside `classify`), and
/// typed failures always carry violations.
#[test]
#[ignore = "soak: run in release via scripts/check.sh"]
fn repair_soundness_soak() {
    for seed in 0..50 {
        let _ = sync_recovery(seed ^ 0xa5a5);
        let _ = volume_recovery(seed ^ 0xa5a5);
        let _ = lca_recovery(seed ^ 0xa5a5);
        let _ = prod_recovery(seed ^ 0xa5a5);
    }
}

/// A supervised, budget-interrupted tower build is bit-identical to an
/// uninterrupted one at 1, 2, and 8 engine threads.
fn assert_supervised_tower_determinism(threads: &[usize]) {
    for &t in threads {
        let opts = ReOptions {
            parallel: t > 1,
            threads: t,
            ..ReOptions::default()
        };
        let mut plain = ReTower::new(sinkless_orientation(3));
        plain.push_f(opts).unwrap();
        plain.push_f(opts).unwrap();

        let log = EventLog::new(64);
        let recovery = supervise_tower(
            sinkless_orientation(3),
            2,
            opts,
            Budget::unlimited().with_max_rounds(2),
            RetryPolicy::default(),
            Some(&log),
        );
        assert!(
            recovery.gave_up.is_none(),
            "threads {t}: {:?}",
            recovery.gave_up
        );
        assert_eq!(
            recovery.tower.fingerprint(),
            plain.fingerprint(),
            "supervised resume must be bit-identical at {t} threads"
        );
        assert!(
            log.events().iter().any(|e| e.kind() == "retry"),
            "the tight budget must force at least one retry"
        );
    }
}

#[test]
fn supervised_tower_is_deterministic_smoke() {
    assert_supervised_tower_determinism(&[1, 2]);
}

#[test]
#[ignore = "soak: run in release via scripts/check.sh"]
fn supervised_tower_is_deterministic_soak() {
    assert_supervised_tower_determinism(&[1, 2, 8]);
}
