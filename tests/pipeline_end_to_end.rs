//! End-to-end tests of the Theorem 3.10/3.11 pipeline: round elimination,
//! 0-round decision, Lemma 3.9 lifting, and verification on the graph
//! classes the paper quantifies over.

use lcl_landscape::core::speedup_trees::brute_force_solvable;
use lcl_landscape::core::zero_round::{decide_zero_round, ZeroRoundOptions};
use lcl_landscape::core::{tree_speedup, ReOptions, ReTower, SpeedupOptions, SpeedupOutcome};
use lcl_landscape::graph::gen;
use lcl_landscape::lcl::{uniform_input, verify, InLabel, LclProblem};
use lcl_landscape::local::run_sync;
use lcl_landscape::problems::{anti_matching, k_coloring, sinkless_orientation};

fn run_and_verify(problem: &LclProblem, outcome: &SpeedupOutcome, seeds: u64) {
    let alg = outcome.algorithm();
    for seed in 0..seeds {
        for graph in [
            gen::path(17),
            gen::random_tree(40, 3, seed),
            gen::random_forest(36, 4, 3, seed),
            gen::star(3),
            gen::caterpillar(6, 1),
        ] {
            let input = uniform_input(&graph);
            let ids: Vec<u64> = (0..graph.node_count() as u64)
                .map(|i| i * 31 + seed * 7 + 1)
                .collect();
            let run = run_sync(&alg, &graph, &input, &ids, None, 10);
            let violations = verify(problem, &graph, &input, &run.output);
            assert!(
                violations.is_empty(),
                "{}: {violations:?}",
                problem.problem_name()
            );
        }
    }
}

#[test]
fn anti_matching_pipeline_end_to_end() {
    let problem = anti_matching(3);
    let outcome = tree_speedup(&problem, SpeedupOptions::default());
    assert!(outcome.is_constant());
    run_and_verify(&problem, &outcome, 3);
}

#[test]
fn input_labeled_problem_pipeline() {
    // Edge-compatibility depends on inputs: "match your input parity".
    let problem = LclProblem::builder("echo-input", 3)
        .inputs(["a", "b"])
        .outputs(["A", "B"])
        .node_pattern(&["A*", "B*"])
        .edge(&["A", "A"])
        .edge(&["A", "B"])
        .edge(&["B", "B"])
        .allow("a", &["A"])
        .allow("b", &["B"])
        .build()
        .unwrap();
    let outcome = tree_speedup(&problem, SpeedupOptions::default());
    let SpeedupOutcome::ConstantRound { steps, .. } = &outcome else {
        panic!("echo-input is 0-round solvable");
    };
    assert_eq!(*steps, 0);
    // Verify on a graph with mixed inputs.
    let alg = outcome.algorithm();
    let graph = gen::random_tree(30, 3, 5);
    let input = lcl_landscape::lcl::HalfEdgeLabeling::from_fn(&graph, |h| InLabel(h.0 % 2));
    let ids: Vec<u64> = (0..30).collect();
    let run = run_sync(&alg, &graph, &input, &ids, None, 5);
    assert!(verify(&problem, &graph, &input, &run.output).is_empty());
}

#[test]
fn log_star_problems_never_synthesize() {
    for problem in [k_coloring(3, 3), sinkless_orientation(3)] {
        let outcome = tree_speedup(
            &problem,
            SpeedupOptions {
                max_steps: 1,
                ..SpeedupOptions::default()
            },
        );
        assert!(
            !outcome.is_constant(),
            "{} must not synthesize",
            problem.problem_name()
        );
    }
}

#[test]
fn zero_round_decision_agrees_with_brute_force_on_toy_problems() {
    // If a 0-round table exists, solutions exist on every small forest;
    // if brute force finds no solution on some forest, the decision must
    // not be Solvable.
    let problems = [
        ("free", "max-degree: 2\nnodes:\nX*\nedges:\nX X\n"),
        ("anti", "max-degree: 2\nnodes:\nX* Y*\nedges:\nX Y\n"),
        ("2col", "max-degree: 2\nnodes:\nA*\nB*\nedges:\nA B\n"),
    ];
    for (name, text) in problems {
        let p = LclProblem::parse(text).unwrap();
        let decision = decide_zero_round(&p, ZeroRoundOptions::default());
        let small = gen::path(3);
        let input = uniform_input(&small);
        let solvable_here = brute_force_solvable(&p, &small, &input);
        if decision.is_solvable() {
            assert!(solvable_here, "{name}: 0-round table implies solutions");
        }
        if !solvable_here {
            assert!(!decision.is_solvable(), "{name}");
        }
    }
}

#[test]
fn tower_respects_the_paper_sequence_structure() {
    // Levels alternate R, R̄ and the alphabets are powersets of useful
    // labels: |Σ_{k+1}| ≤ 2^{|Σ_k|} - 1.
    let mut tower = ReTower::new(k_coloring(3, 3));
    tower.push_f(ReOptions::default()).unwrap();
    assert_eq!(tower.level_count(), 3);
    let s0 = tower.alphabet_size(0);
    let s1 = tower.alphabet_size(1);
    let s2 = tower.alphabet_size(2);
    assert!(s1 < (1 << s0), "s1 = {s1}");
    assert!(s2 < (1 << s1), "s2 = {s2}");
    assert!(
        matches!(tower.layer_kind(1), lcl_landscape::core::LayerKind::R),
        "level 1 is R"
    );
    assert!(
        matches!(tower.layer_kind(2), lcl_landscape::core::LayerKind::RBar),
        "level 2 is R̄"
    );
}

#[test]
fn sinkless_orientation_alphabet_stays_bounded() {
    // The famous fixed point: iterating f must not blow up the universe.
    let mut tower = ReTower::new(sinkless_orientation(3));
    tower.push_f(ReOptions::default()).unwrap();
    let first = tower.alphabet_size(2);
    assert!(first <= 7, "f(sinkless) alphabet = {first}");
}
