//! Cross-model consistency: the same problems solved in LOCAL, VOLUME and
//! PROD-LOCAL, the order-invariance machinery, and the fooling pipelines
//! of Theorems 2.11, 4.1 and 5.1.

use lcl_landscape::core::speedup_grids::OrientationCanonical;
use lcl_landscape::core::speedup_volume::{
    canonical_transcript, run_fooled_volume, Canonicalized, ProbeDecision, TranscriptAlgorithm,
    TranscriptAsVolume,
};
use lcl_landscape::graph::gen;
use lcl_landscape::grid::{
    run_prod_local, OrderInvariantProdAlgorithm, OrientedGrid, ProdIds, RankGridView,
};
use lcl_landscape::lcl::{uniform_input, verify, OutLabel};
use lcl_landscape::local::{is_empirically_order_invariant, FnAlgorithm, IdAssignment};
use lcl_landscape::problems::k_coloring;
use lcl_landscape::volume::{run_volume, NodeInfo};

/// The 3-coloring of an oriented cycle computed through VOLUME probes
/// must satisfy the same LCL as the LOCAL-model Cole–Vishkin.
#[test]
fn volume_and_local_solve_the_same_coloring() {
    use lcl_landscape::problems::cv::{orientation_inputs, ColeVishkin, Orientation};
    use lcl_landscape::problems::oriented_three_coloring;

    let n = 128;
    let g = gen::cycle(n);
    let problem = k_coloring(3, 2);
    let ids = IdAssignment::random_polynomial(n, 3, 17);

    // LOCAL (verified against the input-labeled form of the problem,
    // since the orientation arrives as input labels).
    let cv_input = orientation_inputs(&g, Orientation::Cycle);
    let oriented = oriented_three_coloring();
    let local_run = lcl_landscape::local::run_sync(
        &ColeVishkin,
        &g,
        &cv_input,
        &ids.iter().collect::<Vec<_>>(),
        None,
        100,
    );
    assert!(verify(&oriented, &g, &cv_input, &local_run.output).is_empty());

    // VOLUME (same problem, no orientation inputs needed: ports carry it).
    let vinput = uniform_input(&g);
    let volume_run = run_volume(
        &lcl_bench::volume_algos::CvProbeColoring,
        &g,
        &vinput,
        &ids,
        None,
    )
    .expect("in budget");
    assert!(verify(&problem, &g, &vinput, &volume_run.output).is_empty());
    // The VOLUME complexity is probes, the LOCAL one rounds; both are
    // log*-small.
    assert!(volume_run.max_probes <= 20);
    assert!(local_run.rounds <= 12);
}

#[derive(Clone)]
struct LocalMinProbe;

impl TranscriptAlgorithm for LocalMinProbe {
    fn probe_budget(&self, _n: usize) -> usize {
        2
    }
    fn decide(&self, _n: usize, t: &[NodeInfo]) -> ProbeDecision {
        match t.len() {
            1 => ProbeDecision::Probe { j: 0, port: 0 },
            2 => ProbeDecision::Probe { j: 0, port: 1 },
            _ => ProbeDecision::Output(vec![
                OutLabel(u32::from(
                    t[0].id < t[1].id && t[0].id < t[2].id
                ));
                t[0].degree as usize
            ]),
        }
    }
}

#[test]
fn theorem_41_pipeline_preserves_outputs_and_caps_probes() {
    for n in [32usize, 512] {
        let g = gen::cycle(n);
        let input = uniform_input(&g);
        let ids = IdAssignment::random_polynomial(n, 3, n as u64 + 5);
        let plain = run_volume(&TranscriptAsVolume(LocalMinProbe), &g, &input, &ids, None)
            .expect("in budget");
        let canon = run_volume(
            &TranscriptAsVolume(Canonicalized(LocalMinProbe)),
            &g,
            &input,
            &ids,
            None,
        )
        .expect("in budget");
        assert_eq!(plain.output, canon.output, "canonicalization is lossless");
        let fooled = run_fooled_volume(&LocalMinProbe, 8, &g, &input, &ids).expect("in budget");
        assert_eq!(plain.output, fooled.output, "fooling is lossless");
        assert_eq!(fooled.max_probes, 2);
    }
}

#[test]
fn canonical_transcripts_preserve_order_and_equality() {
    let t = vec![
        NodeInfo {
            id: 900,
            degree: 2,
            inputs: vec![],
        },
        NodeInfo {
            id: 20,
            degree: 1,
            inputs: vec![],
        },
        NodeInfo {
            id: 900,
            degree: 2,
            inputs: vec![],
        },
        NodeInfo {
            id: 500,
            degree: 3,
            inputs: vec![],
        },
    ];
    let c = canonical_transcript(&t);
    assert_eq!(c[0].id, c[2].id);
    assert!(c[1].id < c[3].id && c[3].id < c[0].id);
    assert_eq!(c[1].id, 0);
}

#[test]
fn order_invariance_checker_separates_algorithms() {
    let g = gen::cycle(10);
    let input = uniform_input(&g);
    let ids = IdAssignment::random_polynomial(10, 3, 2);
    let invariant = FnAlgorithm::new(
        "max",
        |_| 1,
        |view| {
            let me = view.ids[0];
            let max = view.ids.iter().copied().max().unwrap();
            vec![OutLabel(u32::from(me == max)); view.center_degree()]
        },
    );
    assert!(is_empirically_order_invariant(
        &invariant, &g, &input, &ids, 10, 3
    ));
    let dependent = FnAlgorithm::new(
        "mod3",
        |_| 0,
        |view| vec![OutLabel((view.ids[0] % 3) as u32); view.center_degree()],
    );
    assert!(!is_empirically_order_invariant(
        &dependent, &g, &input, &ids, 20, 3
    ));
}

#[derive(Clone, Debug)]
struct UpstreamEnd;

impl OrderInvariantProdAlgorithm for UpstreamEnd {
    fn radius(&self, _n: usize) -> u32 {
        1
    }
    fn label(&self, view: &RankGridView) -> Vec<OutLabel> {
        let is_min = (-1..=1).all(|o| view.rank(0, 0) <= view.rank(0, o));
        vec![OutLabel(u32::from(is_min)); 2 * view.d]
    }
}

#[test]
fn theorem_51_pipeline_is_identifier_free_across_sizes() {
    let alg = OrientationCanonical::new(UpstreamEnd, 9);
    let mut radii = Vec::new();
    for side in [3usize, 9, 15] {
        let grid = OrientedGrid::new(&[side, side]);
        let input = uniform_input(grid.graph());
        let a = run_prod_local(&alg, &grid, &input, &ProdIds::sequential(&grid), None);
        let b = run_prod_local(
            &alg,
            &grid,
            &input,
            &ProdIds::random_polynomial(&grid, 3, 99),
            None,
        );
        assert_eq!(a.output, b.output, "side {side}");
        radii.push(a.radius);
    }
    // Constant radius regardless of grid size.
    assert!(radii.iter().all(|&r| r == radii[0]), "{radii:?}");
}

/// The paper (§1.1) discusses that on trees LOCAL = CONGEST; the suite's
/// algorithms can certify their bandwidth: Cole–Vishkin only ever sends
/// current colors, i.e. `O(log n)` bits.
#[test]
fn cole_vishkin_is_congest_compatible() {
    use lcl_landscape::local::run_congest;
    use lcl_landscape::problems::cv::{orientation_inputs, ColeVishkin, Orientation};

    let n = 256;
    let g = gen::cycle(n);
    let input = orientation_inputs(&g, Orientation::Cycle);
    let ids = IdAssignment::random_polynomial(n, 3, 11);
    let run = run_congest(
        &ColeVishkin,
        &g,
        &input,
        &ids.iter().collect::<Vec<_>>(),
        None,
        100,
    );
    // Messages are colors; initially identifiers < n³ = 2^24.
    assert!(run.is_congest(n, 3), "max = {} bits", run.max_message_bits);
    assert!(run.max_message_bits <= 24);
}

#[test]
fn three_dimensional_grids_work_too() {
    let grid = OrientedGrid::new(&[3, 4, 5]);
    assert_eq!(grid.dimension_count(), 3);
    let (rounds, valid) = lcl_bench::grid_algos::run_row_coloring(&grid, 3);
    assert!(valid);
    assert!(rounds <= 10);
}
