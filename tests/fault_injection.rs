//! Fault injection: corrupt valid solutions and check that the verifier
//! localizes the damage — the verifier is the ground truth every other
//! component leans on, so it gets adversarial treatment of its own.

use lcl_rng::SmallRng;

use lcl_landscape::graph::gen;
use lcl_landscape::lcl::{uniform_input, verify, HalfEdgeLabeling, OutLabel, Violation};
use lcl_landscape::local::{run_sync, IdAssignment};
use lcl_landscape::problems::{
    k_coloring, maximal_matching_problem, mis_problem, DeltaPlusOne, MatchingByColor, MisByColor,
};

fn corrupt_one(
    labeling: &HalfEdgeLabeling<OutLabel>,
    half_edge: u32,
    universe: u32,
) -> HalfEdgeLabeling<OutLabel> {
    let mut out = labeling.clone();
    let h = lcl_landscape::graph::HalfEdgeId(half_edge);
    let old = out.get(h);
    out.set(h, OutLabel((old.0 + 1) % universe));
    out
}

/// In a proper coloring every node is monochromatic, so flipping any one
/// half-edge must produce a violation *at that node or its edge*.
#[test]
fn coloring_corruptions_are_always_caught_and_localized() {
    let g = gen::random_tree(40, 3, 1);
    let problem = k_coloring(4, 3);
    let input = uniform_input(&g);
    let ids = IdAssignment::random_polynomial(40, 3, 2);
    let run = run_sync(
        &DeltaPlusOne { delta: 3 },
        &g,
        &input,
        &ids.iter().collect::<Vec<_>>(),
        None,
        100_000,
    );
    assert!(verify(&problem, &g, &input, &run.output).is_empty());

    let mut rng = SmallRng::seed_from_u64(7);
    for _ in 0..40 {
        // A leaf's single half-edge may legally switch to any color that
        // differs from its neighbor's; interior nodes have no such slack
        // (monochromatism breaks).
        let h = loop {
            let candidate = rng.gen_range(0..g.half_edge_count() as u32);
            if g.degree(g.node_of(lcl_landscape::graph::HalfEdgeId(candidate))) >= 2 {
                break candidate;
            }
        };
        let corrupted = corrupt_one(&run.output, h, 4);
        let violations = verify(&problem, &g, &input, &corrupted);
        assert!(!violations.is_empty(), "corruption at h{h} went unnoticed");
        // Localization: every reported object touches the corrupted
        // half-edge's node or edge.
        let node = g.node_of(lcl_landscape::graph::HalfEdgeId(h));
        let edge = g.edge_of(lcl_landscape::graph::HalfEdgeId(h));
        for v in &violations {
            match *v {
                Violation::NodeConfig { node: n } | Violation::NodeInputMap { node: n, .. } => {
                    assert_eq!(n, node, "violation drifted to another node")
                }
                Violation::EdgeConfig { edge: e } | Violation::EdgeInputMap { edge: e, .. } => {
                    assert_eq!(e, edge, "violation drifted to another edge")
                }
            }
        }
    }
}

/// Every single-label corruption of an MIS solution breaks a constraint:
/// the I/P/N encoding has no slack.
#[test]
fn mis_corruptions_are_always_caught() {
    let g = gen::random_tree(36, 3, 4);
    let problem = mis_problem(3);
    let input = uniform_input(&g);
    let ids = IdAssignment::random_polynomial(36, 3, 5);
    let run = run_sync(
        &MisByColor { delta: 3 },
        &g,
        &input,
        &ids.iter().collect::<Vec<_>>(),
        None,
        100_000,
    );
    assert!(verify(&problem, &g, &input, &run.output).is_empty());
    for h in 0..g.half_edge_count() as u32 {
        for bump in 1..3u32 {
            let mut corrupted = run.output.clone();
            let hid = lcl_landscape::graph::HalfEdgeId(h);
            let old = corrupted.get(hid);
            corrupted.set(hid, OutLabel((old.0 + bump) % 3));
            let violations = verify(&problem, &g, &input, &corrupted);
            assert!(
                !violations.is_empty(),
                "MIS corruption at h{h} (+{bump}) went unnoticed"
            );
        }
    }
}

/// The matching encoding likewise: every single-half-edge change breaks
/// the M/S/F discipline somewhere.
#[test]
fn matching_corruptions_are_always_caught() {
    let g = gen::random_tree(30, 3, 8);
    let problem = maximal_matching_problem(3);
    let input = uniform_input(&g);
    let ids = IdAssignment::random_polynomial(30, 3, 9);
    let run = run_sync(
        &MatchingByColor { delta: 3 },
        &g,
        &input,
        &ids.iter().collect::<Vec<_>>(),
        None,
        100_000,
    );
    assert!(verify(&problem, &g, &input, &run.output).is_empty());
    let mut missed = Vec::new();
    for h in 0..g.half_edge_count() as u32 {
        for bump in 1..3u32 {
            let mut corrupted = run.output.clone();
            let hid = lcl_landscape::graph::HalfEdgeId(h);
            let old = corrupted.get(hid);
            corrupted.set(hid, OutLabel((old.0 + bump) % 3));
            if verify(&problem, &g, &input, &corrupted).is_empty() {
                missed.push((h, bump));
            }
        }
    }
    assert!(missed.is_empty(), "silent corruptions: {missed:?}");
}

/// Crash-stop on the E1 pipeline: run the Theorem 3.11 synthesized
/// anti-matching algorithm under crash-stop plans. The run must degrade
/// gracefully, and the verifier's violations (if any) must be localized
/// to the crashed node's radius-1 neighborhood — a dead node can only
/// damage constraints it participates in.
#[test]
fn crash_stop_on_synthesized_algorithm_verifies_or_localizes() {
    use lcl_landscape::core::{tree_speedup, SpeedupOptions};
    use lcl_landscape::faults::{Fault, FaultPlan, RunOptions};
    use lcl_landscape::local::simulate_sync_with;

    let problem = lcl_landscape::problems::anti_matching(3);
    let outcome = tree_speedup(&problem, SpeedupOptions::default());
    let alg = outcome
        .try_algorithm()
        .expect("anti-matching is o(log* n): Theorem 3.11 synthesis succeeds");

    let g = gen::random_tree(24, 3, 6);
    let input = uniform_input(&g);
    let ids: Vec<u64> = (0..24u64).map(|i| i * 5 + 2).collect();
    for crashed in [0usize, 5, 11, 23] {
        let plan = FaultPlan::new(1).with(Fault::Crash {
            node: crashed,
            round: 0,
        });
        let report = simulate_sync_with(
            &alg,
            &g,
            &input,
            &ids,
            None,
            10,
            RunOptions::new().faults(&plan),
        );
        let degraded = &report.outcome;
        // The crash cascades no further than its direct neighbors (the
        // 1-round algorithm needs one message from each neighbor): every
        // fault record is the crash itself or a neighbor's stall.
        assert_eq!(degraded.faults[0].node, crashed as u64);
        assert_eq!(degraded.faults[0].payload, "crash-stop");
        let crashed_node = lcl_landscape::graph::NodeId(crashed as u32);
        let neighbors: Vec<_> = g.neighbors_of(crashed_node).collect();
        for f in &degraded.faults[1..] {
            assert!(
                neighbors.contains(&lcl_landscape::graph::NodeId(f.node as u32)),
                "fault at node {} drifted beyond the crash at {crashed}",
                f.node
            );
        }
        // Localization: every violation touches the radius-1 ball around
        // the crash (the crashed node, a neighbor, or an edge incident to
        // one of them).
        let ball: Vec<_> = std::iter::once(crashed_node)
            .chain(neighbors.iter().copied())
            .collect();
        let incident: Vec<_> = ball
            .iter()
            .flat_map(|&v| g.half_edges_of(v).map(|h| g.edge_of(h)))
            .collect();
        for v in verify(&problem, &g, &input, &degraded.outcome.output) {
            match v {
                Violation::NodeConfig { node } | Violation::NodeInputMap { node, .. } => {
                    assert!(
                        ball.contains(&node),
                        "violation at {node:?} drifted beyond the crash at {crashed}"
                    );
                }
                Violation::EdgeConfig { edge } | Violation::EdgeInputMap { edge, .. } => {
                    assert!(
                        incident.contains(&edge),
                        "violation at {edge:?} drifted beyond the crash at {crashed}"
                    );
                }
            }
        }
    }
}

/// Adversarial ID permutations must not change the synthesized round
/// count of a classified tier: the O(1) representative stays O(1) —
/// same executed rounds, still a valid solution — under every permuted
/// identifier assignment a fault plan can produce.
#[test]
fn id_permutations_preserve_synthesized_round_counts() {
    use lcl_landscape::core::{tree_speedup, SpeedupOptions};
    use lcl_landscape::faults::{FaultPlan, RunOptions};
    use lcl_landscape::local::simulate_sync_with;

    let problem = lcl_landscape::problems::anti_matching(3);
    let outcome = tree_speedup(&problem, SpeedupOptions::default());
    let alg = outcome
        .try_algorithm()
        .expect("anti-matching is o(log* n): Theorem 3.11 synthesis succeeds");

    let g = gen::random_tree(30, 3, 12);
    let input = uniform_input(&g);
    let ids: Vec<u64> = (0..30u64).map(|i| 1000 - i * 7).collect();
    let clean_plan = FaultPlan::new(0);
    let baseline = simulate_sync_with(
        &alg,
        &g,
        &input,
        &ids,
        None,
        10,
        RunOptions::new().faults(&clean_plan),
    );
    assert!(!baseline.outcome.is_degraded());
    let baseline_rounds = baseline.outcome.outcome.rounds;
    for seed in 0..12u64 {
        let plan = FaultPlan::new(seed).with_permuted_ids();
        let report = simulate_sync_with(
            &alg,
            &g,
            &input,
            &ids,
            None,
            10,
            RunOptions::new().faults(&plan),
        );
        let degraded = &report.outcome;
        assert!(!degraded.is_degraded(), "a permutation is not a fault");
        assert_eq!(
            degraded.outcome.rounds, baseline_rounds,
            "seed {seed}: round count is a property of the tier, not the ids"
        );
        assert!(
            verify(&problem, &g, &input, &degraded.outcome.output).is_empty(),
            "seed {seed}: the synthesized algorithm is correct under any ids"
        );
    }
}

/// The derived problems of the round-elimination tower inherit the
/// verifier: corrupting the lifted algorithm's *intermediate* top-level
/// labeling must be caught by the level-2 predicates.
#[test]
fn tower_level_verifier_catches_corruption() {
    use lcl_landscape::core::{ReOptions, ReTower};

    let p = lcl_landscape::problems::anti_matching(3);
    let mut tower = ReTower::new(p);
    tower.push_f(ReOptions::default()).unwrap();
    let level2 = tower.level(2);
    let g = gen::path(6);
    let input = uniform_input(&g);
    // A valid level-2 labeling: every half-edge gets the label whose
    // member set realizes "both orientations possible" if present,
    // otherwise fall back to brute-force search.
    let universe = tower.alphabet_size(2) as u32;
    let valid = (0..universe).find_map(|l| {
        let labeling = HalfEdgeLabeling::uniform(&g, OutLabel(l));
        verify(&level2, &g, &input, &labeling)
            .is_empty()
            .then_some(labeling)
    });
    let Some(valid) = valid else {
        panic!("some uniform level-2 labeling must be valid (B* exists)");
    };
    // Any corruption to a different label is caught or still valid; check
    // the verifier runs and reports deterministically.
    for l in 0..universe {
        let mut corrupted = valid.clone();
        corrupted.set(lcl_landscape::graph::HalfEdgeId(3), OutLabel(l));
        let first = verify(&level2, &g, &input, &corrupted);
        let second = verify(&level2, &g, &input, &corrupted);
        assert_eq!(first, second, "verifier must be deterministic");
    }
}
