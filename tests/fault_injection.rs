//! Fault injection: corrupt valid solutions and check that the verifier
//! localizes the damage — the verifier is the ground truth every other
//! component leans on, so it gets adversarial treatment of its own.

use lcl_rng::SmallRng;

use lcl_landscape::graph::gen;
use lcl_landscape::lcl::{uniform_input, verify, HalfEdgeLabeling, OutLabel, Violation};
use lcl_landscape::local::{run_sync, IdAssignment};
use lcl_landscape::problems::{
    k_coloring, maximal_matching_problem, mis_problem, DeltaPlusOne, MatchingByColor, MisByColor,
};

fn corrupt_one(
    labeling: &HalfEdgeLabeling<OutLabel>,
    half_edge: u32,
    universe: u32,
) -> HalfEdgeLabeling<OutLabel> {
    let mut out = labeling.clone();
    let h = lcl_landscape::graph::HalfEdgeId(half_edge);
    let old = out.get(h);
    out.set(h, OutLabel((old.0 + 1) % universe));
    out
}

/// In a proper coloring every node is monochromatic, so flipping any one
/// half-edge must produce a violation *at that node or its edge*.
#[test]
fn coloring_corruptions_are_always_caught_and_localized() {
    let g = gen::random_tree(40, 3, 1);
    let problem = k_coloring(4, 3);
    let input = uniform_input(&g);
    let ids = IdAssignment::random_polynomial(40, 3, 2);
    let run = run_sync(
        &DeltaPlusOne { delta: 3 },
        &g,
        &input,
        &ids.iter().collect::<Vec<_>>(),
        None,
        100_000,
    );
    assert!(verify(&problem, &g, &input, &run.output).is_empty());

    let mut rng = SmallRng::seed_from_u64(7);
    for _ in 0..40 {
        // A leaf's single half-edge may legally switch to any color that
        // differs from its neighbor's; interior nodes have no such slack
        // (monochromatism breaks).
        let h = loop {
            let candidate = rng.gen_range(0..g.half_edge_count() as u32);
            if g.degree(g.node_of(lcl_landscape::graph::HalfEdgeId(candidate))) >= 2 {
                break candidate;
            }
        };
        let corrupted = corrupt_one(&run.output, h, 4);
        let violations = verify(&problem, &g, &input, &corrupted);
        assert!(!violations.is_empty(), "corruption at h{h} went unnoticed");
        // Localization: every reported object touches the corrupted
        // half-edge's node or edge.
        let node = g.node_of(lcl_landscape::graph::HalfEdgeId(h));
        let edge = g.edge_of(lcl_landscape::graph::HalfEdgeId(h));
        for v in &violations {
            match *v {
                Violation::NodeConfig { node: n } | Violation::NodeInputMap { node: n, .. } => {
                    assert_eq!(n, node, "violation drifted to another node")
                }
                Violation::EdgeConfig { edge: e } | Violation::EdgeInputMap { edge: e, .. } => {
                    assert_eq!(e, edge, "violation drifted to another edge")
                }
            }
        }
    }
}

/// Every single-label corruption of an MIS solution breaks a constraint:
/// the I/P/N encoding has no slack.
#[test]
fn mis_corruptions_are_always_caught() {
    let g = gen::random_tree(36, 3, 4);
    let problem = mis_problem(3);
    let input = uniform_input(&g);
    let ids = IdAssignment::random_polynomial(36, 3, 5);
    let run = run_sync(
        &MisByColor { delta: 3 },
        &g,
        &input,
        &ids.iter().collect::<Vec<_>>(),
        None,
        100_000,
    );
    assert!(verify(&problem, &g, &input, &run.output).is_empty());
    for h in 0..g.half_edge_count() as u32 {
        for bump in 1..3u32 {
            let mut corrupted = run.output.clone();
            let hid = lcl_landscape::graph::HalfEdgeId(h);
            let old = corrupted.get(hid);
            corrupted.set(hid, OutLabel((old.0 + bump) % 3));
            let violations = verify(&problem, &g, &input, &corrupted);
            assert!(
                !violations.is_empty(),
                "MIS corruption at h{h} (+{bump}) went unnoticed"
            );
        }
    }
}

/// The matching encoding likewise: every single-half-edge change breaks
/// the M/S/F discipline somewhere.
#[test]
fn matching_corruptions_are_always_caught() {
    let g = gen::random_tree(30, 3, 8);
    let problem = maximal_matching_problem(3);
    let input = uniform_input(&g);
    let ids = IdAssignment::random_polynomial(30, 3, 9);
    let run = run_sync(
        &MatchingByColor { delta: 3 },
        &g,
        &input,
        &ids.iter().collect::<Vec<_>>(),
        None,
        100_000,
    );
    assert!(verify(&problem, &g, &input, &run.output).is_empty());
    let mut missed = Vec::new();
    for h in 0..g.half_edge_count() as u32 {
        for bump in 1..3u32 {
            let mut corrupted = run.output.clone();
            let hid = lcl_landscape::graph::HalfEdgeId(h);
            let old = corrupted.get(hid);
            corrupted.set(hid, OutLabel((old.0 + bump) % 3));
            if verify(&problem, &g, &input, &corrupted).is_empty() {
                missed.push((h, bump));
            }
        }
    }
    assert!(missed.is_empty(), "silent corruptions: {missed:?}");
}

/// The derived problems of the round-elimination tower inherit the
/// verifier: corrupting the lifted algorithm's *intermediate* top-level
/// labeling must be caught by the level-2 predicates.
#[test]
fn tower_level_verifier_catches_corruption() {
    use lcl_landscape::core::{ReOptions, ReTower};

    let p = lcl_landscape::problems::anti_matching(3);
    let mut tower = ReTower::new(p);
    tower.push_f(ReOptions::default()).unwrap();
    let level2 = tower.level(2);
    let g = gen::path(6);
    let input = uniform_input(&g);
    // A valid level-2 labeling: every half-edge gets the label whose
    // member set realizes "both orientations possible" if present,
    // otherwise fall back to brute-force search.
    let universe = tower.alphabet_size(2) as u32;
    let valid = (0..universe).find_map(|l| {
        let labeling = HalfEdgeLabeling::uniform(&g, OutLabel(l));
        verify(&level2, &g, &input, &labeling)
            .is_empty()
            .then_some(labeling)
    });
    let Some(valid) = valid else {
        panic!("some uniform level-2 labeling must be valid (B* exists)");
    };
    // Any corruption to a different label is caught or still valid; check
    // the verifier runs and reports deterministically.
    for l in 0..universe {
        let mut corrupted = valid.clone();
        corrupted.set(lcl_landscape::graph::HalfEdgeId(3), OutLabel(l));
        let first = verify(&level2, &g, &input, &corrupted);
        let second = verify(&level2, &g, &input, &corrupted);
        assert_eq!(first, second, "verifier must be deterministic");
    }
}
