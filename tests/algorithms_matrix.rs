//! The algorithm × graph-family × verifier matrix: every landmark
//! algorithm of the suite, run and verified across the graph classes of
//! the paper.

use lcl_landscape::graph::{gen, Graph};
use lcl_landscape::lcl::{uniform_input, verify};
use lcl_landscape::local::{run_deterministic, run_sync, IdAssignment};
use lcl_landscape::problems::cv::{orientation_inputs, ColeVishkin, Orientation};
use lcl_landscape::problems::{
    k_coloring, maximal_matching_problem, mis_problem, rake_compress_rounds, two_coloring,
    DeltaPlusOne, MatchingByColor, MisByColor, TwoColorByAnchor,
};

fn tree_family(seed: u64) -> Vec<(String, Graph)> {
    vec![
        ("path-25".into(), gen::path(25)),
        ("cycle-18".into(), gen::cycle(18)),
        ("star-3".into(), gen::star(3)),
        ("caterpillar".into(), gen::caterpillar(7, 1)),
        ("spider".into(), gen::spider(3, 5)),
        ("random-tree".into(), gen::random_tree(50, 3, seed)),
        ("random-forest".into(), gen::random_forest(45, 3, 3, seed)),
        ("complete-tree".into(), gen::complete_tree(2, 4)),
    ]
}

#[test]
fn delta_plus_one_coloring_matrix() {
    for seed in 0..2 {
        for (name, g) in tree_family(seed) {
            let delta = g.max_degree().max(2);
            let problem = k_coloring(usize::from(delta) + 1, delta);
            let input = uniform_input(&g);
            let ids = IdAssignment::random_polynomial(g.node_count(), 3, seed + 11);
            let run = run_sync(
                &DeltaPlusOne { delta },
                &g,
                &input,
                &ids.iter().collect::<Vec<_>>(),
                None,
                100_000,
            );
            let violations = verify(&problem, &g, &input, &run.output);
            assert!(violations.is_empty(), "{name}: {violations:?}");
        }
    }
}

#[test]
fn mis_matrix() {
    for seed in 0..2 {
        for (name, g) in tree_family(seed) {
            let delta = g.max_degree().max(2);
            let problem = mis_problem(delta);
            let input = uniform_input(&g);
            let ids = IdAssignment::random_polynomial(g.node_count(), 3, seed + 23);
            let run = run_sync(
                &MisByColor { delta },
                &g,
                &input,
                &ids.iter().collect::<Vec<_>>(),
                None,
                100_000,
            );
            let violations = verify(&problem, &g, &input, &run.output);
            assert!(violations.is_empty(), "{name}: {violations:?}");
        }
    }
}

#[test]
fn matching_matrix() {
    for seed in 0..2 {
        for (name, g) in tree_family(seed) {
            let delta = g.max_degree().max(2);
            let problem = maximal_matching_problem(delta);
            let input = uniform_input(&g);
            let ids = IdAssignment::random_polynomial(g.node_count(), 3, seed + 37);
            let run = run_sync(
                &MatchingByColor { delta },
                &g,
                &input,
                &ids.iter().collect::<Vec<_>>(),
                None,
                100_000,
            );
            let violations = verify(&problem, &g, &input, &run.output);
            assert!(violations.is_empty(), "{name}: {violations:?}");
        }
    }
}

#[test]
fn cole_vishkin_round_counts_are_log_star() {
    // The measured rounds across three orders of magnitude stay within a
    // small additive band — the log* signature.
    let mut counts = Vec::new();
    for n in [64usize, 1024, 1 << 14] {
        let g = gen::cycle(n);
        let input = orientation_inputs(&g, Orientation::Cycle);
        let ids = IdAssignment::random_polynomial(n, 3, n as u64);
        let run = run_sync(
            &ColeVishkin,
            &g,
            &input,
            &ids.iter().collect::<Vec<_>>(),
            None,
            100,
        );
        counts.push(run.rounds);
    }
    assert!(counts[2] >= counts[0]);
    assert!(counts[2] - counts[0] <= 3, "{counts:?}");
}

#[test]
fn rake_compress_is_logarithmic_two_coloring_is_linear() {
    // The two growth regimes that separate classes C/D from E in the
    // measured landscape.
    let rc_small = rake_compress_rounds(&gen::path(64), 5);
    let rc_large = rake_compress_rounds(&gen::path(4096), 5);
    assert!(rc_large > rc_small);
    assert!(
        rc_large < 16 * rc_small,
        "rake-compress should grow slowly: {rc_small} -> {rc_large}"
    );

    let problem = two_coloring(2);
    let mut radii = Vec::new();
    for n in [16usize, 64] {
        let g = gen::path(n);
        let input = uniform_input(&g);
        let ids = IdAssignment::sequential(n);
        let r = lcl_landscape::local::minimal_solving_radius(
            &problem,
            &g,
            &input,
            &ids,
            n as u32,
            |r| TwoColorByAnchor { radius: r },
        )
        .unwrap();
        radii.push(r);
    }
    assert!(radii[1] >= 3 * radii[0], "{radii:?}");
}

#[test]
fn gather_two_coloring_on_bipartite_torus() {
    let g = gen::torus(&[4, 4]);
    let problem = two_coloring(4);
    let input = uniform_input(&g);
    let ids = IdAssignment::random_polynomial(16, 3, 3);
    let alg = TwoColorByAnchor { radius: 8 };
    let run = run_deterministic(&alg, &g, &input, &ids, None);
    assert!(verify(&problem, &g, &input, &run.output).is_empty());
}
