//! Shard chaos: whole-shard crashes mid-superstep must walk the
//! recovery lattice end to end — *retry* (the crashed shard replays its
//! lost superstep from the snapshot), *resume* (healthy shards never
//! roll back), *repair* (cone-local mending of the frontier), *degrade*
//! (everything else untouched) — and finish `Certified`, with the
//! damage provably confined to the crashed shards and the healthy
//! shards' frontier. A healthy shard's interior must come out of the
//! whole ordeal bit-identical to a crash-free run.

use std::collections::BTreeSet;

use lcl_landscape::core::{tree_speedup, SpeedupOptions, SpeedupOutcome};
use lcl_landscape::faults::{Fault, FaultPlan, RunOptions};
use lcl_landscape::graph::{gen, Graph, NodeId, ShardMap};
use lcl_landscape::lcl::{uniform_input, HalfEdgeLabeling, LclProblem, OutLabel};
use lcl_landscape::local::{run_sync, NodeInit, SyncAlgorithm};
use lcl_landscape::obs::Counter;
use lcl_landscape::problems::anti_matching;
use lcl_landscape::recover::RepairOptions;
use lcl_landscape::shard::{repair_sharded, simulate_sharded_with};

/// Nodes a whole-shard loss is allowed to damage: every node of a
/// crashed shard (rebuilt, so normally unchanged anyway) and every
/// healthy node with a neighbor inside a crashed shard (the frontier
/// that lost a halo).
fn blast_radius(g: &Graph, map: &ShardMap, crashed: &BTreeSet<usize>) -> BTreeSet<NodeId> {
    let mut allowed = BTreeSet::new();
    for v in g.nodes() {
        let s = map.shard_of(v);
        if crashed.contains(&s) {
            allowed.insert(v);
            continue;
        }
        if g.neighbors_of(v)
            .any(|u| crashed.contains(&map.shard_of(u)))
        {
            allowed.insert(v);
        }
    }
    allowed
}

fn nodes_differing(
    g: &Graph,
    a: &HalfEdgeLabeling<OutLabel>,
    b: &HalfEdgeLabeling<OutLabel>,
) -> Vec<NodeId> {
    g.nodes()
        .filter(|&v| g.half_edges_of(v).any(|h| a.get(h) != b.get(h)))
        .collect()
}

struct ChaosStats {
    degraded: usize,
    repaired_nodes: u64,
}

/// One chaos case: crash `crashes` of `shards` shards at superstep 0 of
/// the synthesized E1 run, then retry → resume → repair → degrade, and
/// assert the run ends `Certified` with the damage inside the blast
/// radius.
///
/// `budget` is the round cap handed to the sharded run. At the tight
/// budget (`budget == steps`, the exact round count the synthesis
/// promises) a frontier node that loses a halo cannot catch up: it
/// records a `"no-halt"` fault, its output degrades to placeholder
/// labels, and repair must mend it. At a lenient budget the lifted
/// decoder absorbs the skipped round (see
/// [`lenient_budget_absorbs_halo_loss`]).
#[allow(clippy::too_many_arguments)]
fn chaos_case(
    problem: &LclProblem,
    alg: &(impl SyncAlgorithm<State: Send, Msg: Send> + Sync),
    steps: u32,
    budget: u32,
    seed: u64,
    n: usize,
    shards: usize,
    crashes: usize,
    stats: &mut ChaosStats,
) {
    let g = gen::random_tree(n, 3, seed);
    let input = uniform_input(&g);
    let ids: Vec<u64> = (0..g.node_count() as u64)
        .map(|i| i * 31 + seed * 7 + 1)
        .collect();
    let clean = run_sync(alg, &g, &input, &ids, None, 10);
    let plan = FaultPlan::random_shard_chaos(seed, shards, crashes, 0);
    let crashed: BTreeSet<usize> = plan
        .faults()
        .iter()
        .filter_map(|f| match f {
            Fault::ShardCrash { shard, .. } => Some(*shard),
            _ => None,
        })
        .collect();
    assert_eq!(
        crashed.len(),
        crashes,
        "seed {seed}: distinct crashed shards"
    );
    let threads = [1usize, 2, 8][seed as usize % 3];
    let run = simulate_sharded_with(
        alg,
        &g,
        &input,
        &ids,
        None,
        budget,
        threads,
        RunOptions::new().faults(&plan).sharded(shards),
    );
    assert_eq!(
        run.trace.total(Counter::ShardCrashes),
        crashes as u64,
        "seed {seed}"
    );
    assert_eq!(
        run.trace.total(Counter::ShardRebuilds),
        crashes as u64,
        "seed {seed}: every crashed shard must be rebuilt"
    );
    assert!(
        run.trace.total(Counter::Checkpoints) >= crashes as u64,
        "seed {seed}: crash-planned shards checkpoint"
    );
    let degraded_out = run.outcome.outcome.output.clone();
    if run.outcome.is_degraded() {
        stats.degraded += 1;
    }

    let map = ShardMap::new(g.node_count(), shards);
    let allowed = blast_radius(&g, &map, &crashed);
    // Pre-repair containment: the degraded output differs from the
    // crash-free run only inside the blast radius.
    for v in nodes_differing(&g, &degraded_out, &clean.output) {
        assert!(
            allowed.contains(&v),
            "seed {seed}: crash damage leaked to node {} in healthy shard {} interior",
            v.index(),
            map.shard_of(v)
        );
    }

    let (certified, report, patched) = repair_sharded(
        problem,
        alg,
        &g,
        &input,
        &ids,
        None,
        steps,
        degraded_out.clone(),
        RepairOptions { max_rounds: 3 },
    )
    .unwrap_or_else(|e| panic!("seed {seed}: chaos run must end Certified, got {e}"));
    stats.repaired_nodes += report.patched_nodes;

    // Post-repair containment: repair only ever *changed* nodes inside
    // the blast radius (patch writes outside it are no-ops by
    // construction), and outside the radius the certified output is
    // bit-identical to the crash-free run.
    for v in nodes_differing(&g, certified.get(), &degraded_out) {
        assert!(
            allowed.contains(&v),
            "seed {seed}: repair changed node {} outside the blast radius",
            v.index()
        );
    }
    for v in nodes_differing(&g, certified.get(), &clean.output) {
        assert!(
            allowed.contains(&v),
            "seed {seed}: certified output differs from the crash-free run at node {} \
             outside the blast radius",
            v.index()
        );
    }
    assert!(
        patched.windows(2).all(|w| w[0] < w[1]),
        "seed {seed}: patched witness is ascending"
    );
}

/// Soaks `seeds` chaos cases at the *tight* round budget: the run gets
/// exactly the `steps` rounds the Theorem 3.10/3.11 synthesis promises,
/// so every halo loss turns into real output damage that repair has to
/// mend.
fn run_soak(seeds: u64, n_base: usize, stats: &mut ChaosStats) {
    let problem = anti_matching(3);
    let outcome = tree_speedup(&problem, SpeedupOptions::default());
    let SpeedupOutcome::ConstantRound { steps, .. } = &outcome else {
        panic!("anti-matching synthesizes a constant-round algorithm");
    };
    let steps = *steps as u32;
    let alg = outcome.algorithm();
    let shards: usize = 8;
    let crashes = shards.div_ceil(4);
    for seed in 0..seeds {
        let n = n_base + (seed as usize % 7) * 13;
        chaos_case(
            &problem, &alg, steps, steps, seed, n, shards, crashes, stats,
        );
    }
}

/// Always-on smoke: a handful of shard-crash plans through the full
/// retry → resume → repair → degrade lattice.
#[test]
fn shard_chaos_smoke() {
    let mut stats = ChaosStats {
        degraded: 0,
        repaired_nodes: 0,
    };
    run_soak(6, 90, &mut stats);
    assert!(
        stats.degraded > 0,
        "no smoke run degraded — the chaos plans are vacuous"
    );
}

/// The full soak (gated in `scripts/check.sh` via `--include-ignored`):
/// 50 seeds, each crashing ⌈m/4⌉ of m = 8 shards at superstep 0 of the
/// synthesized E1 pipeline run, across 1/2/8 runner threads. Every run
/// must end `Certified`, repair must actually fire on a healthy
/// majority of seeds, and no healthy shard's interior may change.
#[test]
#[ignore = "50-seed soak; release gate via scripts/check.sh"]
fn shard_chaos_soak() {
    let mut stats = ChaosStats {
        degraded: 0,
        repaired_nodes: 0,
    };
    run_soak(50, 160, &mut stats);
    assert!(
        stats.degraded >= 25,
        "only {} of 50 chaos runs degraded — crashes are not biting",
        stats.degraded
    );
    assert!(
        stats.repaired_nodes > 0,
        "no run needed repair — the soak never exercised the mending leg"
    );
}

/// With a *lenient* round budget the lifted Lemma 3.9 decoder absorbs a
/// lost halo on its own: the frontier node skips the superstep, stays at
/// its current tower level, and decodes one round late — and because the
/// decode is a deterministic lexicographic choice it lands on exactly
/// the labels the crash-free run produced. The run degrades (faults are
/// recorded, one extra round is spent) but the output is bit-identical
/// to clean and repair certifies without patching a single node. The
/// tight-budget soak above exists precisely because of this: only when
/// the budget denies the catch-up round does halo loss become output
/// damage.
#[test]
fn lenient_budget_absorbs_halo_loss() {
    let problem = anti_matching(3);
    let outcome = tree_speedup(&problem, SpeedupOptions::default());
    let SpeedupOutcome::ConstantRound { steps, .. } = &outcome else {
        panic!("anti-matching synthesizes a constant-round algorithm");
    };
    let steps = *steps as u32;
    let alg = outcome.algorithm();
    let seed = 0u64;
    let n = 160;
    let g = gen::random_tree(n, 3, seed);
    let input = uniform_input(&g);
    let ids: Vec<u64> = (0..n as u64).map(|i| i * 31 + seed * 7 + 1).collect();
    let clean = run_sync(&alg, &g, &input, &ids, None, 10);
    assert_eq!(clean.rounds, steps, "the synthesis promise holds cleanly");
    let plan = FaultPlan::random_shard_chaos(seed, 8, 2, 0);
    let run = simulate_sharded_with(
        &alg,
        &g,
        &input,
        &ids,
        None,
        10,
        2,
        RunOptions::new().faults(&plan).sharded(8),
    );
    assert!(run.outcome.is_degraded(), "halo losses are recorded");
    assert_eq!(
        run.outcome.outcome.rounds,
        steps + 1,
        "the frontier spends one catch-up round"
    );
    assert!(
        nodes_differing(&g, &run.outcome.outcome.output, &clean.output).is_empty(),
        "the late decode reproduces the clean labels exactly"
    );
    let (_certified, report, patched) = repair_sharded(
        &problem,
        &alg,
        &g,
        &input,
        &ids,
        None,
        steps,
        run.outcome.outcome.output.clone(),
        RepairOptions { max_rounds: 3 },
    )
    .expect("a clean-equivalent output certifies");
    assert_eq!(report.patched_nodes, 0, "nothing to mend");
    assert!(patched.is_empty());
}

/// A round-guarded flooding algorithm safe under shard loss: a node
/// ignores every message after its own round counter reaches `k`, so a
/// lagging frontier node extending the run cannot corrupt finished
/// nodes (unlike an unguarded flood, whose monotone max would keep
/// absorbing stale beacons).
struct GuardedFlood {
    k: u32,
}

#[derive(Clone)]
struct FloodState {
    best: u64,
    mine: u64,
    degree: usize,
    round: u32,
    k: u32,
}

impl SyncAlgorithm for GuardedFlood {
    type State = FloodState;
    type Msg = u64;

    fn init(&self, init: &NodeInit) -> FloodState {
        FloodState {
            best: init.id,
            mine: init.id,
            degree: init.degree as usize,
            round: 0,
            k: self.k,
        }
    }

    fn send(&self, state: &FloodState, _round: u32) -> Vec<u64> {
        vec![state.best; state.degree]
    }

    fn receive(&self, state: &mut FloodState, inbox: &[u64], _round: u32) {
        if state.round >= state.k {
            return;
        }
        for &msg in inbox {
            state.best = state.best.max(msg);
        }
        state.round += 1;
    }

    fn is_done(&self, state: &FloodState) -> bool {
        state.round >= state.k
    }

    fn output(&self, state: &FloodState) -> Vec<OutLabel> {
        vec![OutLabel(u32::from(state.best == state.mine)); state.degree]
    }

    fn name(&self) -> &str {
        "guarded-flood"
    }
}

/// The scale demonstration (gated in `scripts/check.sh` via
/// `--include-ignored`): a 10⁷-node LOCAL run over 8 shards completes
/// under the default budget, and the output satisfies the flood
/// property at every single node — label 1 exactly where the node's
/// identifier is the maximum within distance 2 on the path.
#[test]
#[ignore = "10^7-node run; release gate via scripts/check.sh"]
fn ten_million_node_sharded_local_run() {
    const N: usize = 10_000_000;
    let g = gen::path(N);
    let input = uniform_input(&g);
    let ids: Vec<u64> = (0..N as u64).map(|i| i ^ 0x5a5a_5a5a).collect();
    let alg = GuardedFlood { k: 2 };
    let run = simulate_sharded_with(
        &alg,
        &g,
        &input,
        &ids,
        None,
        8,
        8,
        RunOptions::new().sharded(8),
    );
    assert!(run.outcome.faults.is_empty(), "clean run at scale");
    assert_eq!(run.outcome.outcome.rounds, 2);
    assert_eq!(run.trace.total(Counter::Shards), 8);
    assert_eq!(run.trace.total(Counter::Supersteps), 16);
    assert!(run.trace.total(Counter::HaloMessages) > 0);
    let out = &run.outcome.outcome.output;
    for i in 0..N {
        let lo = i.saturating_sub(2);
        let hi = (i + 2).min(N - 1);
        let is_max = (lo..=hi).all(|j| ids[j] <= ids[i]);
        let h = g
            .half_edges_of(NodeId(i as u32))
            .next()
            .expect("path nodes have degree >= 1");
        assert_eq!(
            out.get(h).0 == 1,
            is_max,
            "node {i}: flood property violated"
        );
    }
}
