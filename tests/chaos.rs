//! Chaos soak: randomized fault plans across every model's faulted
//! entrypoint, asserting the robustness trichotomy — each run ends in a
//! valid output, a typed error/violation, or a typed degradation, and
//! never a panic — and that outcomes are a bit-identical function of
//! `(seed, plan)`, including across engine thread counts.
//!
//! The small smoke test always runs; the big soak is `#[ignore]`d and
//! driven by `scripts/check.sh` via `--include-ignored` in release mode.

use lcl_rng::SmallRng;

use lcl_landscape::core::{ReError, ReOptions, ReTower};
use lcl_landscape::faults::{Budget, FaultPlan, RunOptions};
use lcl_landscape::graph::{gen, Graph, HalfEdgeId};
use lcl_landscape::grid::{
    simulate_with as simulate_prod_with, FnProdAlgorithm, OrientedGrid, ProdIds,
};
use lcl_landscape::lcl::{uniform_input, verify, HalfEdgeLabeling, OutLabel};
use lcl_landscape::local::{simulate_sync_with, IdAssignment};
use lcl_landscape::problems::{anti_matching, k_coloring, DeltaPlusOne};
use lcl_landscape::volume::lca::VolumeAsLca;
use lcl_landscape::volume::{
    simulate_lca_with, simulate_with as simulate_volume_with, FnVolumeAlgorithm, ProbeSession,
};

/// How a single chaos run ended; the absence of a fourth (panic) leg is
/// the property under test.
#[derive(PartialEq, Eq, Debug)]
enum Leg {
    /// The output satisfies the problem's constraints.
    Valid,
    /// The run completed but the verifier reports typed `Violation`s
    /// (silent corruption / adversarial ids doing their job).
    Violations,
    /// The executor degraded with typed `NodeFault` records.
    Degraded,
}

fn labeling_fp(g: &Graph, out: &HalfEdgeLabeling<OutLabel>) -> String {
    (0..g.half_edge_count() as u32)
        .map(|h| out.get(HalfEdgeId(h)).0.to_string())
        .collect::<Vec<_>>()
        .join(",")
}

fn faults_fp(faults: &[lcl_landscape::faults::NodeFault]) -> String {
    faults
        .iter()
        .map(|f| format!("{}@{}:{}", f.node, f.round, f.payload))
        .collect::<Vec<_>>()
        .join(";")
}

/// One LOCAL (sync executor) chaos run: Δ+1 coloring on a random tree
/// under a random plan. Returns the outcome leg and a full fingerprint.
fn local_run(seed: u64) -> (Leg, String) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let n = rng.gen_range(6usize..32);
    let g = gen::random_tree(n, 3, seed);
    let input = uniform_input(&g);
    let ids: Vec<u64> = IdAssignment::random_polynomial(n, 3, seed ^ 1)
        .iter()
        .collect();
    let plan = FaultPlan::random(seed, n, 4);
    let report = simulate_sync_with(
        &DeltaPlusOne { delta: 3 },
        &g,
        &input,
        &ids,
        None,
        1000,
        RunOptions::new().faults(&plan),
    );
    let degraded = &report.outcome;
    let fp = format!(
        "rounds={};out={};faults={}",
        degraded.outcome.rounds,
        labeling_fp(&g, &degraded.outcome.output),
        faults_fp(&degraded.faults)
    );
    let leg = if degraded.is_degraded() {
        Leg::Degraded
    } else if verify(&k_coloring(4, 3), &g, &input, &degraded.outcome.output).is_empty() {
        Leg::Valid
    } else {
        Leg::Violations
    };
    (leg, fp)
}

#[allow(clippy::type_complexity)] // `impl Trait` closure types cannot be aliased
fn neighbor_probe_alg() -> FnVolumeAlgorithm<
    impl Fn(usize) -> usize,
    impl Fn(&mut ProbeSession<'_>) -> Result<Vec<OutLabel>, lcl_landscape::volume::ProbeError>,
> {
    FnVolumeAlgorithm::new(
        "chaos-neighbor",
        |_| 2,
        |s| {
            let d = s.queried().degree as usize;
            let n0 = s.probe(0, 0)?;
            Ok(vec![OutLabel((n0.id % 97) as u32); d])
        },
    )
}

/// One VOLUME chaos run on a cycle.
fn volume_run(seed: u64) -> (Leg, String) {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xabcd);
    let n = rng.gen_range(4usize..24);
    let g = gen::cycle(n);
    let input = uniform_input(&g);
    let ids = IdAssignment::random_polynomial(n, 3, seed ^ 2);
    let plan = FaultPlan::random(seed, n, 4);
    let report = simulate_volume_with(
        &neighbor_probe_alg(),
        &g,
        &input,
        &ids,
        None,
        RunOptions::new().faults(&plan),
    )
    .expect("faulted runs degrade instead of erroring");
    let degraded = &report.outcome;
    let fp = format!(
        "probes={};out={};faults={}",
        degraded.outcome.total_probes,
        labeling_fp(&g, &degraded.outcome.output),
        faults_fp(&degraded.faults)
    );
    let leg = if degraded.is_degraded() {
        Leg::Degraded
    } else {
        // The echo algorithm solves no LCL; completion without faults is
        // the "valid" leg for this model.
        Leg::Valid
    };
    (leg, fp)
}

/// One LCA chaos run: identifiers are exactly `1..=n` (the LCA promise),
/// which every plan's ID permutation preserves.
fn lca_run(seed: u64) -> (Leg, String) {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x77);
    let n = rng.gen_range(4usize..24);
    let g = gen::path(n);
    let input = uniform_input(&g);
    let ids = IdAssignment::from_vec((1..=n as u64).collect());
    let plan = FaultPlan::random(seed, n, 4);
    let report = simulate_lca_with(
        &VolumeAsLca(neighbor_probe_alg()),
        &g,
        &input,
        &ids,
        RunOptions::new().faults(&plan),
    )
    .expect("faulted runs degrade instead of erroring");
    let degraded = &report.outcome;
    let fp = format!(
        "probes={};out={};faults={}",
        degraded.outcome.total_probes,
        labeling_fp(&g, &degraded.outcome.output),
        faults_fp(&degraded.faults)
    );
    let leg = if degraded.is_degraded() {
        Leg::Degraded
    } else {
        Leg::Valid
    };
    (leg, fp)
}

/// One PROD-LOCAL chaos run on an oriented grid.
fn prod_run(seed: u64) -> (Leg, String) {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xfeed);
    let a = rng.gen_range(3usize..7);
    let b = rng.gen_range(3usize..7);
    let grid = OrientedGrid::new(&[a, b]);
    let ids = ProdIds::sequential(&grid);
    let input = uniform_input(grid.graph());
    let plan = FaultPlan::random(seed, grid.node_count(), 1);
    let alg = FnProdAlgorithm::new(
        "chaos-echo",
        |_| 1,
        |view: &lcl_landscape::grid::GridView| {
            vec![OutLabel((view.id(0, -1) % 97) as u32); 2 * view.d]
        },
    );
    let report = simulate_prod_with(
        &alg,
        &grid,
        &input,
        &ids,
        None,
        RunOptions::new().faults(&plan),
    );
    let degraded = &report.outcome;
    let fp = format!(
        "out={};faults={}",
        labeling_fp(grid.graph(), &degraded.outcome.output),
        faults_fp(&degraded.faults)
    );
    let leg = if degraded.is_degraded() {
        Leg::Degraded
    } else {
        Leg::Valid
    };
    (leg, fp)
}

/// One budgeted round-elimination run at a given thread count: random
/// problem and random caps, pushed until the budget bites. The outcome
/// string must be identical at every thread count.
fn tower_run(seed: u64, threads: usize) -> String {
    let problem = if seed.is_multiple_of(2) {
        anti_matching(3)
    } else {
        k_coloring(3, 3)
    };
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x70e7);
    let label_cap = rng.gen_range(3u64..40);
    let budget = Budget::unlimited()
        .with_max_labels(label_cap)
        .with_max_rounds(4);
    let token = budget.token();
    let opts = ReOptions {
        parallel: threads > 1,
        threads,
        ..ReOptions::default()
    };
    let mut tower = ReTower::new(problem);
    let mut steps = Vec::new();
    for _ in 0..2 {
        match tower.push_f_budgeted(opts, &budget, &token) {
            Ok(()) => steps.push(format!(
                "ok:{}",
                tower.alphabet_size(tower.level_count() - 1)
            )),
            Err(e) => {
                steps.push(format!("err:{e}"));
                break;
            }
        }
    }
    format!(
        "cap={label_cap};{};levels={}",
        steps.join("|"),
        tower.level_count()
    )
}

fn soak(plans_per_model: usize, thread_variants: &[usize]) {
    let mut legs = [0usize; 3];
    for seed in 0..plans_per_model as u64 {
        for run in [local_run, volume_run, lca_run, prod_run] {
            let (leg, fp) = run(seed);
            let (leg2, fp2) = run(seed);
            assert_eq!(leg, leg2, "seed {seed}: outcome leg must be deterministic");
            assert_eq!(
                fp, fp2,
                "seed {seed}: outcome must be bit-identical on repeat"
            );
            legs[match leg {
                Leg::Valid => 0,
                Leg::Violations => 1,
                Leg::Degraded => 2,
            }] += 1;
        }
        let reference = tower_run(seed, thread_variants[0]);
        for &threads in &thread_variants[1..] {
            assert_eq!(
                reference,
                tower_run(seed, threads),
                "seed {seed}: budgeted tower outcome must not depend on {threads} threads"
            );
        }
    }
    // The soak must actually exercise both the clean and the degraded
    // legs — otherwise the trichotomy assertion is vacuous.
    assert!(legs[0] > 0, "no run came back clean: {legs:?}");
    assert!(legs[2] > 0, "no run degraded: {legs:?}");
}

/// Always-on smoke: a handful of plans per model, single-threaded tower.
#[test]
fn chaos_smoke() {
    soak(8, &[1]);
}

/// The full soak: ≥300 random plans across LOCAL/VOLUME/LCA/PROD-LOCAL
/// (4 models × 100 seeds), with every budgeted tower outcome checked for
/// bit-identity at 1, 2, and 8 worker threads.
#[test]
#[ignore = "big soak; scripts/check.sh runs it in release via --include-ignored"]
fn chaos_soak() {
    soak(100, &[1, 2, 8]);
}

/// Acceptance: a tight label budget on round elimination returns a typed
/// `BudgetExceeded` whose partial result — the already-completed levels —
/// stays in the tower.
#[test]
fn tight_label_budget_keeps_a_usable_partial_tower() {
    let mut tower = ReTower::new(k_coloring(3, 3));
    let budget = Budget::unlimited().with_max_labels(7);
    let token = budget.token();
    tower
        .push_r_budgeted(ReOptions::default(), &budget, &token)
        .expect("R of 3-coloring interns exactly 7 labels");
    let err = tower
        .push_rbar_budgeted(ReOptions::default(), &budget, &token)
        .expect_err("R̄ blows past 7 labels");
    let ReError::Budget(breach) = err else {
        panic!("expected a budget breach, got {err}");
    };
    assert_eq!(
        breach.partial, 1,
        "one completed level is the partial result"
    );
    assert_eq!(tower.level_count(), 2, "base + surviving R level");
    assert!(tower.alphabet_size(1) > 0, "the partial tower is non-empty");
}
