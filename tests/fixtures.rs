//! The `fixtures/` problem files: every fixture must parse, round-trip
//! through the text format, and drive the machinery it is meant for.

use std::path::Path;

use lcl_landscape::classify::{classify_oriented_cycle, PathClass};
use lcl_landscape::core::{tree_speedup, SpeedupOptions};
use lcl_landscape::graph::gen;
use lcl_landscape::lcl::{uniform_input, LclProblem};

fn load(name: &str) -> LclProblem {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name);
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading {path:?}: {e}"));
    LclProblem::parse(&text).unwrap_or_else(|e| panic!("parsing {name}: {e}"))
}

#[test]
fn all_fixtures_parse_and_roundtrip() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures");
    let mut count = 0;
    for entry in std::fs::read_dir(&dir).expect("fixtures dir exists") {
        let path = entry.expect("dir entry").path();
        if path.extension().and_then(|e| e.to_str()) != Some("lcl") {
            continue;
        }
        count += 1;
        let text = std::fs::read_to_string(&path).expect("readable");
        let p = LclProblem::parse(&text).unwrap_or_else(|e| panic!("parsing {path:?}: {e}"));
        let q = LclProblem::parse(&p.to_text())
            .unwrap_or_else(|e| panic!("round-tripping {path:?}: {e}"));
        assert_eq!(p.node_config_count(), q.node_config_count(), "{path:?}");
        assert_eq!(p.edge_config_count(), q.edge_config_count(), "{path:?}");
    }
    assert!(count >= 6, "expected the fixture battery, found {count}");
}

#[test]
fn fixture_classification_matches_expectations() {
    assert_eq!(
        classify_oriented_cycle(&load("three_coloring.lcl"))
            .unwrap()
            .class,
        PathClass::LogStar
    );
    assert_eq!(
        classify_oriented_cycle(&load("mis.lcl")).unwrap().class,
        PathClass::LogStar
    );
    assert_eq!(
        classify_oriented_cycle(&load("maximal_matching.lcl"))
            .unwrap()
            .class,
        PathClass::LogStar
    );
}

#[test]
fn anti_matching_fixture_synthesizes() {
    let p = load("anti_matching.lcl");
    let outcome = tree_speedup(&p, SpeedupOptions::default());
    assert!(outcome.is_constant());
}

#[test]
fn list_coloring_fixture_exercises_inputs() {
    // 2-list-coloring with overlapping lists is solvable on paths: greedy
    // from one end works; here we just check the RE tower accepts an
    // input-labeled problem and the brute-force solver finds solutions on
    // a tiny path with mixed lists.
    use lcl_landscape::core::speedup_trees::brute_force_solvable;
    use lcl_landscape::lcl::{HalfEdgeLabeling, InLabel};

    let p = load("list_coloring.lcl");
    assert_eq!(p.input_alphabet().len(), 3);
    let g = gen::path(3);
    let input = HalfEdgeLabeling::from_fn(&g, |h| InLabel(g.node_of(h).0 % 3));
    assert!(brute_force_solvable(&p, &g, &input));
    // Uniform lists also fine.
    let input = uniform_input(&g);
    assert!(brute_force_solvable(&p, &g, &input));

    let mut tower = lcl_landscape::core::ReTower::new(p);
    tower
        .push_f(lcl_landscape::core::ReOptions::default())
        .expect("list coloring tower fits");
    assert!(tower.alphabet_size(2) >= 1);
}

#[test]
fn sinkless_fixture_uses_degree_restrictions() {
    use lcl_landscape::lcl::{OutLabel, Problem};
    let p = load("sinkless_standard.lcl");
    let (i, o) = (OutLabel(0), OutLabel(1));
    assert!(p.node_allows(&[i, i])); // degree 2 free
    assert!(!p.node_allows(&[i, i, i])); // degree 3 needs an O
    assert!(p.node_allows(&[o, i, i]));
}
