//! Golden-file tests for the obs exporters.
//!
//! [`ExportMode::Deterministic`] output is a pure function of the trace
//! (durations are derived from counters, never from the clock), so it
//! can be pinned byte-for-byte against files committed under
//! `fixtures/obs/`. Two subjects are pinned:
//!
//! * a hand-built two-level trace plus a tiny event log — exercises
//!   every branch of the three exporters on a shape small enough to
//!   review by eye;
//! * the E1 tree-speedup pipeline (`anti-matching`, sequential tower) —
//!   a real run through `tree_speedup_logged`, events and all.
//!
//! Regenerate after an intentional format change with:
//!
//! ```sh
//! UPDATE_FIXTURES=1 cargo test --test exporters
//! ```
//!
//! The last test is a property, not a golden file: every Chrome slice
//! must nest inside an earlier slice's interval (Perfetto renders
//! overlapping same-thread slices as garbage), checked by parsing the
//! export with the `lcl_bench::json` reader.

use std::sync::Arc;
use std::time::Duration;

use lcl_bench::json::{parse, JsonValue};
use lcl_landscape::core::{tree_speedup_logged, ReOptions, SpeedupOptions};
use lcl_landscape::obs::export::{chrome_trace, folded_stacks, prometheus_text, ExportMode};
use lcl_landscape::obs::{Counter, Event, EventLog, Registry, Span, SpanRecord, Trace};
use lcl_landscape::problems::catalog::anti_matching;

fn fixture_path(name: &str) -> String {
    format!("{}/fixtures/obs/{name}", env!("CARGO_MANIFEST_DIR"))
}

/// Compares `actual` against the committed fixture, or rewrites the
/// fixture when `UPDATE_FIXTURES` is set.
fn assert_matches_fixture(name: &str, actual: &str) {
    let path = fixture_path(name);
    if std::env::var_os("UPDATE_FIXTURES").is_some() {
        std::fs::create_dir_all(format!("{}/fixtures/obs", env!("CARGO_MANIFEST_DIR")))
            .expect("create fixtures/obs");
        std::fs::write(&path, actual).expect("write fixture");
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing fixture {path} ({e}); run UPDATE_FIXTURES=1"));
    assert_eq!(
        actual, expected,
        "{name} drifted from its committed fixture; if the format change \
         is intentional, regenerate with UPDATE_FIXTURES=1"
    );
}

/// The hand-built subject: a root with two phases and a short event log.
fn two_level() -> (Trace, EventLog) {
    let probing = SpanRecord::with_wall(
        "probing",
        Duration::from_micros(30),
        [(Counter::Probes, 4), (Counter::Queries, 2)],
        vec![],
    );
    let coloring = SpanRecord::with_wall(
        "coloring",
        Duration::from_micros(50),
        [(Counter::Rounds, 2), (Counter::Messages, 12)],
        vec![],
    );
    let root = SpanRecord::with_wall(
        "fixture/run",
        Duration::from_micros(100),
        [(Counter::Nodes, 8), (Counter::Edges, 8)],
        vec![probing, coloring],
    );
    let log = EventLog::new(16);
    log.record(Event::RoundStart { round: 0 });
    log.record(Event::Probe {
        query: 0,
        j: 0,
        port: 1,
    });
    log.record(Event::MemoLookup { hit: false });
    log.record(Event::RoundEnd {
        round: 0,
        messages: 12,
    });
    (Trace::new(root), log)
}

/// The real subject: E1's tree-speedup pipeline, run sequentially so
/// the event log's order is reproducible.
fn e1_speedup() -> (Trace, Arc<EventLog>) {
    let opts = SpeedupOptions {
        re: ReOptions {
            parallel: false,
            threads: 1,
            ..ReOptions::default()
        },
        ..SpeedupOptions::default()
    };
    let log = Arc::new(EventLog::new(4096));
    let report = tree_speedup_logged(&anti_matching(3), opts, Some(Arc::clone(&log)));
    assert_eq!(log.dropped(), 0, "fixture log must not drop events");
    (report.trace, log)
}

#[test]
fn two_level_chrome_trace_matches_golden() {
    let (trace, log) = two_level();
    let json = chrome_trace(&trace, Some(&log), ExportMode::Deterministic);
    assert_matches_fixture("two_level.chrome.json", &json);
}

#[test]
fn two_level_folded_stacks_match_golden() {
    let (trace, _) = two_level();
    assert_matches_fixture(
        "two_level.folded",
        &folded_stacks(&trace, ExportMode::Deterministic),
    );
}

#[test]
fn two_level_prometheus_text_matches_golden() {
    let (trace, _) = two_level();
    let registry = Registry::new();
    registry.record("fixture/two-level", trace);
    // A second stage with a histogram, so the exposition covers the
    // `_bucket`/`_sum`/`_count` convention too.
    let mut span = Span::start("walks");
    for v in [1u64, 2, 2, 5] {
        span.observe(Counter::Probes, v);
    }
    registry.record("fixture/histogram", Trace::new(span.finish()));
    assert_matches_fixture("two_level.prom", &prometheus_text(&registry));
}

#[test]
fn e1_tree_speedup_chrome_trace_matches_golden() {
    let (trace, log) = e1_speedup();
    let json = chrome_trace(&trace, Some(&log), ExportMode::Deterministic);
    assert_matches_fixture("e1_tree_speedup.chrome.json", &json);
}

#[test]
fn e1_tree_speedup_folded_stacks_match_golden() {
    let (trace, _) = e1_speedup();
    assert_matches_fixture(
        "e1_tree_speedup.folded",
        &folded_stacks(&trace, ExportMode::Deterministic),
    );
}

/// Every `"ph": "X"` slice must nest inside some earlier slice, and
/// every `"ph": "i"` instant must land inside the root slice — the
/// layout invariant Perfetto needs to render a single-thread track.
#[test]
fn chrome_slices_nest_within_their_parents() {
    let (trace, log) = e1_speedup();
    for mode in [ExportMode::Deterministic, ExportMode::Wall] {
        let doc = parse(&chrome_trace(&trace, Some(&log), mode)).expect("export parses as JSON");
        let events = doc
            .get("traceEvents")
            .and_then(JsonValue::as_arr)
            .expect("traceEvents array");
        let field = |e: &JsonValue, key: &str| -> u64 {
            e.get(key)
                .and_then(JsonValue::as_num)
                .and_then(|raw| raw.parse().ok())
                .unwrap_or_else(|| panic!("numeric '{key}' in {e:?}"))
        };
        let slices: Vec<(u64, u64)> = events
            .iter()
            .filter(|e| e.get("ph").and_then(JsonValue::as_str) == Some("X"))
            .map(|e| (field(e, "ts"), field(e, "ts") + field(e, "dur")))
            .collect();
        assert!(slices.len() >= 3, "expected a multi-span trace");
        let (root_start, root_end) = slices[0];
        for (i, &(start, end)) in slices.iter().enumerate().skip(1) {
            assert!(
                slices[..i].iter().any(|&(ps, pe)| ps <= start && end <= pe),
                "slice {i} [{start}, {end}] nests in no earlier slice ({mode:?})"
            );
        }
        for e in events {
            if e.get("ph").and_then(JsonValue::as_str) == Some("i") {
                let ts = field(e, "ts");
                assert!(
                    (root_start..=root_end).contains(&ts),
                    "instant at {ts} outside the root slice ({mode:?})"
                );
            }
        }
    }
}
