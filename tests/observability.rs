//! The obs determinism contract, end to end.
//!
//! Every trace in the suite must be a pure function of the instance and
//! the algorithm — wall-clock time is the *only* nondeterministic
//! quantity, and [`Trace::fingerprint`] excludes it. This test drives
//! that contract through every layer:
//!
//! * round-elimination towers traced under different threading configs
//!   must produce bit-identical fingerprints (including the memo
//!   counters, which are defined scheduling-independently);
//! * all four [`Simulation`] implementations must return non-empty,
//!   reproducible traces;
//! * the bench registry behind `BENCH_obs.json` must be reproducible;
//! * for classified cycle problems, the LOCAL rounds reported in the
//!   trace must respect the classified tier (`O(1)` stays constant,
//!   `Θ(log* n)` stays within a generous `c·log* n + c`).

use lcl::{LclProblem, OutLabel};
use lcl_landscape::classify::{classify_oriented_cycle, synthesize_cycle_traced, PathClass};
use std::sync::Arc;

use lcl_landscape::core::{tree_speedup_logged, ReOptions, ReTower, SpeedupOptions};
use lcl_landscape::graph::gen;
use lcl_landscape::graph::math::log_star;
use lcl_landscape::local::IdAssignment;
use lcl_landscape::obs::{Counter, Event, EventLog, Trace};
use lcl_landscape::problems::catalog::{
    anti_matching, k_coloring, oriented_three_coloring, sinkless_orientation, two_coloring,
};
use lcl_landscape::simulation::{
    GraphInstance, GridInstance, LcaSim, LocalSim, ProdLocalSim, Simulation, VolumeSim,
};
use lcl_landscape::volume::lca::VolumeAsLca;

fn tower_trace(problem: &LclProblem, steps: usize, parallel: bool, threads: usize) -> Trace {
    let opts = ReOptions {
        parallel,
        threads,
        ..ReOptions::default()
    };
    let mut tower = ReTower::new(problem.clone());
    for _ in 0..steps {
        tower.push_f(opts).expect("battery fits default caps");
    }
    tower.trace()
}

/// Towers built sequentially, parallel on one worker, and parallel on
/// four workers must report identical traces — every counter, including
/// memo traffic, span for span.
#[test]
fn tower_fingerprints_identical_across_threading() {
    for (problem, steps) in [
        (anti_matching(3), 2),
        (k_coloring(3, 3), 1),
        (sinkless_orientation(3), 2),
    ] {
        let seq = tower_trace(&problem, steps, false, 1);
        let par1 = tower_trace(&problem, steps, true, 1);
        let par4 = tower_trace(&problem, steps, true, 4);
        assert_eq!(
            seq.fingerprint(),
            par1.fingerprint(),
            "{}: sequential vs parallel(1)",
            problem.problem_name()
        );
        assert_eq!(
            seq.fingerprint(),
            par4.fingerprint(),
            "{}: sequential vs parallel(4)",
            problem.problem_name()
        );
        assert!(seq.find("level-1/r").is_some());
    }
}

/// Event logging must not perturb the determinism contract: the full
/// tree-speedup pipeline with an attached [`EventLog`] reports
/// bit-identical fingerprints on 1, 2, and 8 worker threads, and every
/// run's log carries the same level completions.
#[test]
fn logged_speedup_fingerprints_identical_across_thread_counts() {
    let problem = anti_matching(3);
    let mut fingerprints = Vec::new();
    let mut completions = Vec::new();
    for threads in [1, 2, 8] {
        let opts = SpeedupOptions {
            re: ReOptions {
                parallel: true,
                threads,
                ..ReOptions::default()
            },
            ..SpeedupOptions::default()
        };
        let log = Arc::new(EventLog::new(4096));
        let report = tree_speedup_logged(&problem, opts, Some(Arc::clone(&log)));
        let attached = report
            .events()
            .expect("logged run must attach its event log");
        assert!(
            !attached.is_empty(),
            "logged run must record events ({threads} threads)"
        );
        fingerprints.push(report.trace.fingerprint());
        let mut levels: Vec<u64> = log
            .events()
            .iter()
            .filter_map(|e| match e {
                Event::LevelComplete { level, .. } => Some(*level),
                _ => None,
            })
            .collect();
        levels.sort_unstable();
        completions.push(levels);
    }
    assert_eq!(
        fingerprints[0], fingerprints[1],
        "1 vs 2 worker threads with event logging"
    );
    assert_eq!(
        fingerprints[0], fingerprints[2],
        "1 vs 8 worker threads with event logging"
    );
    assert_eq!(completions[0], completions[1]);
    assert_eq!(completions[0], completions[2]);
    assert!(!completions[0].is_empty(), "tower completed no levels");
}

/// The cost model is the layer the curve harness fits, so its counts
/// must be a pure function of the instance: the same logged pipeline on
/// 1, 2, and 8 worker threads folds to bit-identical [`CostModel`]s,
/// exact even though the ring buffer itself may sample or evict.
#[test]
fn cost_models_bit_identical_across_thread_counts() {
    let problem = anti_matching(3);
    let mut models = Vec::new();
    for threads in [1usize, 2, 8] {
        let opts = SpeedupOptions {
            re: ReOptions {
                parallel: true,
                threads,
                ..ReOptions::default()
            },
            ..SpeedupOptions::default()
        };
        let log = Arc::new(EventLog::new(4096));
        let report = tree_speedup_logged(&problem, opts, Some(Arc::clone(&log)));
        let model = report
            .cost_model()
            .expect("logged run must fold a cost model");
        assert_eq!(model, log.cost_model(), "report and log must agree");
        assert!(model.total() > 0, "a speedup run performs counted work");
        models.push(model);
    }
    assert_eq!(models[0], models[1], "1 vs 2 worker threads");
    assert_eq!(models[0], models[2], "1 vs 8 worker threads");
}

/// Each of the four models, driven twice through the `Simulation` trait
/// on the same instance, must return non-empty identical traces.
#[test]
fn all_four_simulations_trace_deterministically() {
    let g = gen::cycle(64);
    let input = lcl::uniform_input(&g);
    let ids = IdAssignment::random_polynomial(64, 3, 11);

    let local = || {
        LocalSim::simulate(
            &lcl_landscape::problems::trivial::MaxDegree2Hop,
            GraphInstance::new(&g, &input, &ids),
        )
    };
    let a = local().expect("LOCAL is infallible");
    let b = local().expect("LOCAL is infallible");
    assert!(!a.trace.is_empty());
    assert_eq!(a.trace.fingerprint(), b.trace.fingerprint());
    assert_eq!(a.trace.root().get(Counter::Nodes), Some(64));

    let volume = || {
        VolumeSim::simulate(
            &lcl_bench::volume_algos::ConstProbe,
            GraphInstance::new(&g, &input, &ids),
        )
    };
    let a = volume().expect("in budget");
    let b = volume().expect("in budget");
    assert!(!a.trace.is_empty());
    assert_eq!(a.trace.fingerprint(), b.trace.fingerprint());
    assert_eq!(
        a.trace.root().get(Counter::MaxProbes),
        Some(a.outcome.max_probes as u64)
    );

    let lca_ids = IdAssignment::from_vec((1..=64).collect());
    let lca = || {
        LcaSim::simulate(
            &VolumeAsLca(lcl_bench::volume_algos::ConstProbe),
            GraphInstance::new(&g, &input, &lca_ids),
        )
    };
    let a = lca().expect("in budget");
    let b = lca().expect("in budget");
    assert!(!a.trace.is_empty());
    assert_eq!(a.trace.fingerprint(), b.trace.fingerprint());
    assert!(a.trace.fingerprint().starts_with("lca/"));

    let grid = lcl_landscape::grid::OrientedGrid::new(&[6, 6]);
    let ginput = lcl::uniform_input(grid.graph());
    let gids = lcl_landscape::grid::ProdIds::sequential(&grid);
    let pattern = lcl_landscape::grid::FnProdAlgorithm::new(
        "constant-pattern",
        |_n| 1,
        |_view| vec![OutLabel(0); 4],
    );
    let prod = || ProdLocalSim::simulate(&pattern, GridInstance::new(&grid, &ginput, &gids));
    let a = prod().expect("PROD-LOCAL is infallible");
    let b = prod().expect("PROD-LOCAL is infallible");
    assert!(!a.trace.is_empty());
    assert_eq!(a.trace.fingerprint(), b.trace.fingerprint());
    assert_eq!(a.trace.root().get(Counter::ViewNodes), Some(36 * 9));
}

/// The registry behind `BENCH_obs.json` must be reproducible: labels in
/// the same order, every fingerprint identical.
#[test]
fn bench_obs_registry_is_reproducible() {
    let first = lcl_bench::obs_report::collect_registry().snapshot();
    let second = lcl_bench::obs_report::collect_registry().snapshot();
    assert_eq!(first.len(), second.len());
    for ((la, ta), (lb, tb)) in first.iter().zip(&second) {
        assert_eq!(la, lb);
        assert_eq!(ta.fingerprint(), tb.fingerprint(), "trace {la} diverged");
    }
}

/// Classified cycle problems, synthesized and simulated through the
/// instrumented LOCAL entrypoint, must report rounds within their tier.
#[test]
fn classified_tiers_bound_reported_rounds() {
    let collapse =
        LclProblem::parse("name: xx-collapse\nmax-degree: 2\nnodes:\nX*\nY*\nedges:\nX X\n")
            .expect("valid problem source");
    let candidates = [collapse, oriented_three_coloring(), two_coloring(2)];
    let mut tiers_seen = (false, false);

    for problem in &candidates {
        let class = classify_oriented_cycle(problem)
            .expect("input-independent")
            .class;
        if !matches!(class, PathClass::Constant | PathClass::LogStar) {
            continue;
        }
        let report = synthesize_cycle_traced(problem).expect("classifiable");
        let alg = report
            .outcome
            .as_ref()
            .expect("constant/log* tiers synthesize");

        let mut rounds_by_n = Vec::new();
        for n in [16usize, 64, 256] {
            let g = gen::cycle(n);
            let input = lcl::uniform_input(&g);
            let ids = IdAssignment::random_polynomial(n, 3, n as u64);
            let run = LocalSim::simulate(alg, GraphInstance::new(&g, &input, &ids))
                .expect("LOCAL is infallible");
            let rounds = run
                .trace
                .root()
                .get(Counter::Rounds)
                .expect("LOCAL traces report rounds");
            match class {
                PathClass::Constant => {
                    assert!(
                        rounds <= 8,
                        "{}: O(1) tier ran {rounds} rounds",
                        problem.problem_name()
                    );
                    tiers_seen.0 = true;
                }
                PathClass::LogStar => {
                    // `c·log*(n) + c` with a generous, synthesis-wide `c`
                    // (the synthesized constant depends on the problem's
                    // gap bound, not on `n`).
                    let bound = u64::from(64 * (log_star(n as u64) + 1));
                    assert!(
                        rounds <= bound,
                        "{}: log* tier ran {rounds} rounds on n = {n} (bound {bound})",
                        problem.problem_name()
                    );
                    tiers_seen.1 = true;
                }
                _ => unreachable!(),
            }
            rounds_by_n.push(rounds);
        }
        // The tier shape: a 16× increase in n must not buy more than a
        // log*-sized increase in rounds.
        let (first, last) = (rounds_by_n[0], rounds_by_n[2]);
        assert!(
            last <= first + 64,
            "{}: rounds jumped {first} -> {last} between n = 16 and n = 256",
            problem.problem_name()
        );
    }
    assert!(tiers_seen.0, "no Constant-tier problem exercised");
    assert!(tiers_seen.1, "no LogStar-tier problem exercised");
}
