//! Cross-checks the round-elimination tower against a literal,
//! brute-force transcription of Definitions 3.1 and 3.2: labels of `R(Π)`
//! are enumerated as explicit subsets, constraints evaluated by direct
//! quantification over selections. The tower must agree on every
//! node/edge/g query (over its restricted universe).

use lcl_landscape::core::{ReOptions, ReTower};
use lcl_landscape::lcl::gen::{random_problem, RandomProblemSpec};
use lcl_landscape::lcl::{InLabel, LclProblem, OutLabel, Problem};

/// Literal `R(Π)` per Definition 3.1, over explicit subset labels.
struct BruteR<'a> {
    base: &'a LclProblem,
    /// Every nonempty subset of base labels, as sorted vecs.
    labels: Vec<Vec<u32>>,
}

impl<'a> BruteR<'a> {
    fn new(base: &'a LclProblem) -> Self {
        let k = base.output_alphabet().len();
        assert!(k <= 10, "brute force only for tiny alphabets");
        let labels = (1u32..(1 << k))
            .map(|mask| (0..k as u32).filter(|&i| mask & (1 << i) != 0).collect())
            .collect();
        Self { base, labels }
    }

    fn find(&self, members: &[u32]) -> Option<usize> {
        self.labels.iter().position(|l| l == members)
    }

    /// Definition 3.1 edge constraint: ∀ b₁ ∈ B₁, b₂ ∈ B₂: {b₁,b₂} ∈ ℰ_Π.
    fn edge_allows(&self, a: usize, b: usize) -> bool {
        self.labels[a].iter().all(|&x| {
            self.labels[b]
                .iter()
                .all(|&y| self.base.edge_allows(OutLabel(x), OutLabel(y)))
        })
    }

    /// Definition 3.1 node constraint: ∃ selection ∈ 𝒩_Π.
    fn node_allows(&self, config: &[usize]) -> bool {
        let sets: Vec<&Vec<u32>> = config.iter().map(|&i| &self.labels[i]).collect();
        exists_selection(&sets, &mut Vec::new(), &|sel| {
            let labels: Vec<OutLabel> = sel.iter().map(|&l| OutLabel(l)).collect();
            self.base.node_allows(&labels)
        })
    }

    /// Definition 3.1 g map: A ∈ g_{R(Π)}(ℓ) iff A ⊆ g_Π(ℓ).
    fn input_allows(&self, input: InLabel, a: usize) -> bool {
        self.labels[a]
            .iter()
            .all(|&x| self.base.input_allows(input, OutLabel(x)))
    }
}

fn exists_selection(
    sets: &[&Vec<u32>],
    current: &mut Vec<u32>,
    accept: &dyn Fn(&[u32]) -> bool,
) -> bool {
    if current.len() == sets.len() {
        return accept(current);
    }
    for &candidate in sets[current.len()] {
        current.push(candidate);
        if exists_selection(sets, current, accept) {
            current.pop();
            return true;
        }
        current.pop();
    }
    false
}

#[test]
#[allow(clippy::needless_range_loop)] // indices drive several arrays
fn tower_r_level_matches_brute_force_on_random_problems() {
    for seed in 0..25u64 {
        let p = random_problem(
            RandomProblemSpec {
                max_degree: 3,
                inputs: 2,
                outputs: 3,
                density_percent: 50,
            },
            seed,
        );
        let brute = BruteR::new(&p);
        let mut tower = ReTower::new(p.clone());
        if tower
            .push_r(ReOptions {
                restrict: false,
                ..ReOptions::default()
            })
            .is_err()
        {
            continue;
        }
        let level = tower.level(1);
        let size = tower.alphabet_size(1);

        // Map each tower label to the brute-force subset index.
        let to_brute: Vec<usize> = (0..size)
            .map(|l| {
                brute
                    .find(tower.label_members(1, OutLabel(l as u32)))
                    .expect("tower labels are subsets")
            })
            .collect();

        // Edge agreement on all pairs.
        for a in 0..size {
            for b in 0..size {
                assert_eq!(
                    level.edge_allows(OutLabel(a as u32), OutLabel(b as u32)),
                    brute.edge_allows(to_brute[a], to_brute[b]),
                    "seed {seed}: edge ({a},{b})"
                );
            }
        }
        // Node agreement on all configs up to degree 3 (sampled).
        for a in 0..size {
            for b in 0..size {
                assert_eq!(
                    level.node_allows(&[OutLabel(a as u32), OutLabel(b as u32)]),
                    brute.node_allows(&[to_brute[a], to_brute[b]]),
                    "seed {seed}: node ({a},{b})"
                );
                for c in 0..size.min(4) {
                    assert_eq!(
                        level.node_allows(&[
                            OutLabel(a as u32),
                            OutLabel(b as u32),
                            OutLabel(c as u32)
                        ]),
                        brute.node_allows(&[to_brute[a], to_brute[b], to_brute[c]]),
                        "seed {seed}: node ({a},{b},{c})"
                    );
                }
            }
        }
        // g agreement.
        for a in 0..size {
            for i in 0..p.input_count() {
                assert_eq!(
                    level.input_allows(InLabel(i as u32), OutLabel(a as u32)),
                    brute.input_allows(InLabel(i as u32), to_brute[a]),
                    "seed {seed}: g({i},{a})"
                );
            }
        }
    }
}

/// The restricted tower's universe is a subset of the full one, and on
/// that subset the predicates agree with the unrestricted tower.
#[test]
fn restriction_preserves_predicates() {
    for seed in 0..15u64 {
        let p = random_problem(
            RandomProblemSpec {
                max_degree: 3,
                inputs: 1,
                outputs: 3,
                density_percent: 60,
            },
            seed,
        );
        let mut full = ReTower::new(p.clone());
        let mut restricted = ReTower::new(p.clone());
        let full_opts = ReOptions {
            restrict: false,
            ..ReOptions::default()
        };
        if full.push_r(full_opts).is_err() || restricted.push_r(ReOptions::default()).is_err() {
            continue;
        }
        let full_level = full.level(1);
        let res_level = restricted.level(1);
        let res_size = restricted.alphabet_size(1);
        // Map restricted labels into the full tower by member sets.
        let map: Vec<u32> = (0..res_size)
            .map(|l| {
                (0..full.alphabet_size(1) as u32)
                    .find(|&f| {
                        full.label_members(1, OutLabel(f))
                            == restricted.label_members(1, OutLabel(l as u32))
                    })
                    .expect("restricted labels exist in the full universe")
            })
            .collect();
        for a in 0..res_size {
            for b in 0..res_size {
                assert_eq!(
                    res_level.edge_allows(OutLabel(a as u32), OutLabel(b as u32)),
                    full_level.edge_allows(OutLabel(map[a]), OutLabel(map[b])),
                    "seed {seed}"
                );
                assert_eq!(
                    res_level.node_allows(&[OutLabel(a as u32), OutLabel(b as u32)]),
                    full_level.node_allows(&[OutLabel(map[a]), OutLabel(map[b])]),
                    "seed {seed}"
                );
            }
        }
    }
}
