//! Substrate equivalence: the sharded executor must be bit-identical to
//! the single-image executor on the golden catalog — same outcome, same
//! fault list, same event-derived cost model — for every shard count and
//! every runner thread count, as long as the plan contains no
//! whole-shard losses. Sharding changes *where* a run executes, never
//! *what* it computes.

use lcl_landscape::core::{tree_speedup, SpeedupOptions};
use lcl_landscape::faults::{Fault, FaultPlan, RunOptions};
use lcl_landscape::graph::{gen, Graph};
use lcl_landscape::lcl::uniform_input;
use lcl_landscape::local::simulate_sync_with;
use lcl_landscape::obs::{Counter, EventLog};
use lcl_landscape::problems::anti_matching;
use lcl_landscape::problems::cv::{orientation_inputs, ColeVishkin, Orientation};
use lcl_landscape::shard::simulate_sharded_with;

const SHARD_COUNTS: [usize; 3] = [1, 4, 16];
const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

fn ids_for(g: &Graph, seed: u64) -> Vec<u64> {
    (0..g.node_count() as u64)
        .map(|i| i * 31 + seed * 7 + 1)
        .collect()
}

fn golden_graphs() -> Vec<(&'static str, Graph)> {
    vec![
        ("path", gen::path(33)),
        ("tree", gen::random_tree(64, 3, 5)),
        ("caterpillar", gen::caterpillar(6, 1)),
        ("star", gen::star(3)),
    ]
}

/// The synthesized E1 pipeline algorithm, run on the golden catalog at
/// every (shards × threads) combination: outcome and fault list must
/// equal the unsharded executor's exactly.
#[test]
fn lifted_e1_matches_unsharded_across_shards_and_threads() {
    let problem = anti_matching(3);
    let outcome = tree_speedup(&problem, SpeedupOptions::default());
    let alg = outcome.algorithm();
    for (name, g) in golden_graphs() {
        let input = uniform_input(&g);
        let ids = ids_for(&g, 3);
        let baseline = simulate_sync_with(&alg, &g, &input, &ids, None, 10, RunOptions::new());
        assert!(baseline.outcome.faults.is_empty(), "{name}: clean baseline");
        for shards in SHARD_COUNTS {
            for threads in THREAD_COUNTS {
                let run = simulate_sharded_with(
                    &alg,
                    &g,
                    &input,
                    &ids,
                    None,
                    10,
                    threads,
                    RunOptions::new().sharded(shards),
                );
                assert_eq!(
                    run.outcome, baseline.outcome,
                    "{name}: shards={shards} threads={threads}"
                );
                assert_eq!(run.trace.total(Counter::ShardCrashes), 0);
                assert_eq!(
                    run.trace.total(Counter::Rounds),
                    baseline.trace.total(Counter::Rounds),
                    "{name}: shards={shards}"
                );
                assert_eq!(
                    run.trace.total(Counter::Messages),
                    baseline.trace.total(Counter::Messages),
                    "{name}: shards={shards}"
                );
            }
        }
    }
}

/// Node-level fault plans (crash-stops, injected panics, an id
/// permutation) degrade identically on both substrates: same outcome,
/// same fault list in the same order, same event-derived cost model.
#[test]
fn node_fault_plans_degrade_bit_identically() {
    let g = gen::path(48);
    let input = orientation_inputs(&g, Orientation::Path);
    let ids = ids_for(&g, 11);
    let plan = FaultPlan::new(23)
        .with(Fault::Crash { node: 5, round: 1 })
        .with(Fault::Crash { node: 31, round: 0 })
        .with(Fault::PanicNode { node: 17 })
        .with_permuted_ids();
    let base_log = EventLog::new(4096);
    let baseline = simulate_sync_with(
        &ColeVishkin,
        &g,
        &input,
        &ids,
        None,
        24,
        RunOptions::new().faults(&plan).events(&base_log),
    );
    assert!(baseline.outcome.is_degraded(), "the plan must bite");
    for shards in SHARD_COUNTS {
        for threads in THREAD_COUNTS {
            let log = EventLog::new(4096);
            let run = simulate_sharded_with(
                &ColeVishkin,
                &g,
                &input,
                &ids,
                None,
                24,
                threads,
                RunOptions::new().faults(&plan).sharded(shards).events(&log),
            );
            assert_eq!(
                run.outcome, baseline.outcome,
                "shards={shards} threads={threads}"
            );
            assert_eq!(
                log.cost_model(),
                base_log.cost_model(),
                "shards={shards} threads={threads}: cost models must agree"
            );
        }
    }
}

/// For a fixed shard count the *entire* stored event sequence — round
/// markers, faults, and the per-shard streams folded in shard order —
/// is identical at 1, 2, and 8 runner threads, and so is the trace
/// fingerprint. Runner threads are an execution detail, not an
/// observable.
#[test]
fn event_streams_and_fingerprints_ignore_runner_threads() {
    let problem = anti_matching(3);
    let outcome = tree_speedup(&problem, SpeedupOptions::default());
    let alg = outcome.algorithm();
    let g = gen::random_tree(96, 3, 9);
    let input = uniform_input(&g);
    let ids = ids_for(&g, 9);
    for shards in SHARD_COUNTS {
        let reference_log = EventLog::new(8192);
        let reference = simulate_sharded_with(
            &alg,
            &g,
            &input,
            &ids,
            None,
            10,
            THREAD_COUNTS[0],
            RunOptions::new().sharded(shards).events(&reference_log),
        );
        for &threads in &THREAD_COUNTS[1..] {
            let log = EventLog::new(8192);
            let run = simulate_sharded_with(
                &alg,
                &g,
                &input,
                &ids,
                None,
                10,
                threads,
                RunOptions::new().sharded(shards).events(&log),
            );
            assert_eq!(
                log.events(),
                reference_log.events(),
                "shards={shards} threads={threads}: stored event sequence"
            );
            assert_eq!(
                run.trace.fingerprint(),
                reference.trace.fingerprint(),
                "shards={shards} threads={threads}: trace fingerprint"
            );
            for counter in [
                Counter::Supersteps,
                Counter::HaloMessages,
                Counter::HaloBytes,
                Counter::Checkpoints,
                Counter::ShardCrashes,
            ] {
                assert_eq!(
                    run.trace.total(counter),
                    reference.trace.total(counter),
                    "shards={shards} threads={threads}: {counter:?}"
                );
            }
        }
    }
}

/// The shard accounting itself: a clean `m`-shard run performs exactly
/// `m × rounds` supersteps, and halo traffic appears iff the partition
/// actually cuts edges.
#[test]
fn shard_counters_reflect_the_partition() {
    let problem = anti_matching(3);
    let outcome = tree_speedup(&problem, SpeedupOptions::default());
    let alg = outcome.algorithm();
    let g = gen::path(40);
    let input = uniform_input(&g);
    let ids = ids_for(&g, 1);
    for shards in SHARD_COUNTS {
        let run = simulate_sharded_with(
            &alg,
            &g,
            &input,
            &ids,
            None,
            10,
            2,
            RunOptions::new().sharded(shards),
        );
        let rounds = run.trace.total(Counter::Rounds);
        assert_eq!(run.trace.total(Counter::Shards), shards as u64);
        assert_eq!(
            run.trace.total(Counter::Supersteps),
            shards as u64 * rounds,
            "shards={shards}"
        );
        if shards == 1 {
            assert_eq!(run.trace.total(Counter::HaloMessages), 0);
            assert_eq!(run.trace.total(Counter::HaloBytes), 0);
        } else {
            assert!(
                run.trace.total(Counter::HaloMessages) > 0,
                "shards={shards}"
            );
            assert!(run.trace.total(Counter::HaloBytes) > 0, "shards={shards}");
        }
    }
}

/// `sharded(1)` is the unsharded semantics on the sharded machinery:
/// identical outcome and fault list for clean and faulted runs alike.
#[test]
fn single_shard_runs_equal_the_unsharded_executor() {
    let g = gen::path(30);
    let input = orientation_inputs(&g, Orientation::Path);
    let ids = ids_for(&g, 2);
    for plan in [
        FaultPlan::new(0),
        FaultPlan::new(4)
            .with(Fault::Crash { node: 7, round: 2 })
            .with(Fault::PanicNode { node: 21 }),
    ] {
        let baseline = simulate_sync_with(
            &ColeVishkin,
            &g,
            &input,
            &ids,
            None,
            24,
            RunOptions::new().faults(&plan),
        );
        let run = simulate_sharded_with(
            &ColeVishkin,
            &g,
            &input,
            &ids,
            None,
            24,
            1,
            RunOptions::new().faults(&plan).sharded(1),
        );
        assert_eq!(run.outcome, baseline.outcome);
    }
}
