//! Regression: synthesized algorithms must handle forests containing
//! isolated (degree-0) nodes — they have no half-edges to label, and the
//! A_det table lookup used to panic on the empty input tuple.

#[test]
fn synthesized_algorithms_tolerate_isolated_nodes() {
    use lcl_landscape::core::{tree_speedup, SpeedupOptions};
    use lcl_landscape::problems::anti_matching;
    let p = anti_matching(3);
    let outcome = tree_speedup(&p, SpeedupOptions::default());
    let alg = outcome.algorithm();
    // Forest with an isolated node (node 2).
    let mut b = lcl_landscape::graph::GraphBuilder::new(3);
    b.add_edge(0, 1).unwrap();
    let g = b.build().unwrap();
    let input = lcl_landscape::lcl::uniform_input(&g);
    let run = lcl_landscape::local::run_sync(&alg, &g, &input, &[1, 2, 3], None, 5);
    assert!(lcl_landscape::lcl::verify(&p, &g, &input, &run.output).is_empty());
}
