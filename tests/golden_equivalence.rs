//! Golden equivalence of the round-elimination engine: for every problem
//! in the catalog, the interned, parallel tower must agree — label for
//! label, relation for relation — with a sequential (single-thread,
//! fan-out disabled) reference build, and two parallel builds must agree
//! with each other (determinism under thread scheduling).
//!
//! "Agree" is checked extensionally on every level the caps admit:
//! alphabet sizes, the member sets behind each derived label, the full
//! edge relation, and the node relation on all multisets up to the
//! degree bound.

use lcl::{LclProblem, OutLabel, Problem};
use lcl_landscape::core::bits::for_each_multiset;
use lcl_landscape::core::{ReOptions, ReTower};
use lcl_landscape::problems::catalog::{
    anti_matching, k_coloring, maximal_matching_problem, mis_problem, oriented_three_coloring,
    sinkless_orientation, sinkless_orientation_standard, two_coloring,
};

/// Every catalog problem, paired with how many `f`-steps its tower
/// supports under default caps (bigger universes than these trip the
/// caps, which is itself exercised elsewhere).
fn catalog() -> Vec<(String, LclProblem, usize)> {
    let entries = [
        (k_coloring(3, 3), 1),
        (two_coloring(2), 1),
        (oriented_three_coloring(), 1),
        (sinkless_orientation(3), 2),
        (sinkless_orientation_standard(3), 1),
        (anti_matching(3), 2),
        (mis_problem(2), 1),
        (maximal_matching_problem(2), 1),
    ];
    entries
        .into_iter()
        .map(|(p, steps)| (p.problem_name().to_string(), p, steps))
        .collect()
}

fn build(problem: &LclProblem, steps: usize, opts: ReOptions) -> ReTower {
    let mut tower = ReTower::new(problem.clone());
    for step in 0..steps {
        tower.push_f(opts).unwrap_or_else(|e| {
            panic!(
                "{}: f-step {} must fit the default caps: {e}",
                problem.problem_name(),
                step + 1
            )
        });
    }
    tower
}

/// Enumerates node multisets of `universe` labels up to `max_degree` and
/// asserts the two levels give the same verdicts everywhere.
fn assert_levels_agree(name: &str, level: usize, a: &ReTower, b: &ReTower) {
    let size = a.alphabet_size(level);
    assert_eq!(
        size,
        b.alphabet_size(level),
        "{name}: alphabet size diverges at level {level}"
    );
    if level >= 1 {
        for l in 0..size {
            assert_eq!(
                a.label_members(level, OutLabel(l as u32)),
                b.label_members(level, OutLabel(l as u32)),
                "{name}: members of label {l} diverge at level {level}"
            );
        }
    }
    let (la, lb) = (a.level(level), b.level(level));
    for x in 0..size as u32 {
        for y in 0..size as u32 {
            assert_eq!(
                la.edge_allows(OutLabel(x), OutLabel(y)),
                lb.edge_allows(OutLabel(x), OutLabel(y)),
                "{name}: edge ({x}, {y}) diverges at level {level}"
            );
        }
    }
    // Node relation on all multisets up to the degree bound.
    let delta = la.max_degree() as usize;
    for degree in 1..=delta {
        let complete = for_each_multiset(size, degree, usize::MAX, |tuple| {
            let labels: Vec<OutLabel> = tuple.iter().map(|&l| OutLabel(l as u32)).collect();
            assert_eq!(
                la.node_allows(&labels),
                lb.node_allows(&labels),
                "{name}: node config {tuple:?} diverges at level {level}"
            );
            true
        });
        assert!(complete);
    }
}

fn assert_towers_agree(name: &str, a: &ReTower, b: &ReTower) {
    assert_eq!(
        a.level_count(),
        b.level_count(),
        "{name}: towers have different heights"
    );
    for level in 0..a.level_count() {
        assert_levels_agree(name, level, a, b);
    }
}

#[test]
fn parallel_towers_match_the_sequential_reference_on_every_catalog_problem() {
    let parallel = ReOptions {
        parallel: true,
        threads: 4,
        ..ReOptions::default()
    };
    let sequential = ReOptions {
        parallel: false,
        ..ReOptions::default()
    };
    for (name, problem, steps) in catalog() {
        let par = build(&problem, steps, parallel);
        let seq = build(&problem, steps, sequential);
        assert_towers_agree(&name, &par, &seq);
    }
}

#[test]
fn parallel_builds_are_deterministic() {
    // Two independent parallel builds must agree bit for bit — interner
    // ids included — no matter how the scheduler interleaves the fan-out.
    let opts = ReOptions {
        parallel: true,
        threads: 4,
        ..ReOptions::default()
    };
    for (name, problem, steps) in catalog() {
        let first = build(&problem, steps, opts);
        let second = build(&problem, steps, opts);
        assert_towers_agree(&name, &first, &second);
        // Stats that describe the problem (not the clock or the cache
        // schedule) must also be reproducible.
        for level in 1..first.level_count() {
            let (a, b) = (first.level_stats(level), second.level_stats(level));
            assert_eq!(a.labels_full, b.labels_full, "{name} level {level}");
            assert_eq!(a.labels, b.labels, "{name} level {level}");
            assert_eq!(a.configurations, b.configurations, "{name} level {level}");
            assert_eq!(a.fixpoint_of, b.fixpoint_of, "{name} level {level}");
        }
    }
}
