#!/usr/bin/env bash
# The full pre-merge gate: build, tests, formatting, lints.
# Run from anywhere inside the repository.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release =="
cargo build --release

echo "== cargo test --release =="
cargo test -q --release

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo clippy (warnings are errors) =="
cargo clippy --workspace --all-targets --release -- -D warnings

echo "== cargo doc (no deps, warnings are errors) =="
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace --quiet

echo "== chaos soak (trichotomy: valid / typed error / typed degradation) =="
# The full randomized soak (>=300 plans across LOCAL/VOLUME/LCA/
# PROD-LOCAL, budgeted-tower bit-identity at 1/2/8 threads) is
# `#[ignore]`d in normal test runs; this gate runs it in release, where
# it finishes in a few seconds (budget: <60s).
cargo test -q --release --test chaos -- --include-ignored

echo "== recovery soak (repair closes the loop; supervised resume is deterministic) =="
# 100 crash/corrupt plans across all four faulted models must end
# Certified or typed RepairFailed (never silently invalid), and the
# supervised tower build must fingerprint-match an uninterrupted build
# at 1/2/8 threads. Release-only for the same reason as the chaos soak.
cargo test -q --release --test recovery -- --include-ignored

echo "== shard chaos soak (whole-shard loss: retry -> resume -> repair -> degrade) =="
# 50 seeds x (crash 2 of 8 shards at superstep 0) on the synthesized E1
# pipeline at the tight round budget, across 1/2/8 runner threads, plus
# the 10^7-node sharded LOCAL scale run. Every chaos run must end
# Certified with the damage confined to the crashed shards and the
# healthy frontier. Release-only: the scale run needs the optimizer.
cargo test -q --release --test shard_chaos -- --include-ignored

echo "== proc kill soak (SIGKILL -> respawn -> replay rehydration -> Certified) =="
# 20 seeds x (SIGKILL 2 of 8 worker processes at superstep 0) on the
# synthesized E1 pipeline over the process-per-shard substrate. Every
# run must produce output bit-identical to the clean unsharded run and
# certify with zero patched nodes — kills are output-transparent.
# Release-only: 160 process spawns want the optimizer.
cargo test -q --release -p lcl-procshard --test proc_chaos -- --include-ignored

echo "== unwrap() gate (library code must use typed errors or expect) =="
# Count `.unwrap()` in crate library sources outside `#[cfg(test)]`
# modules. The baseline is 0: new library code must propagate typed
# errors (`?`) or document infallibility with `.expect("why")`.
UNWRAPS=$(find crates/*/src -name '*.rs' | sort | xargs awk '
  FNR==1 { intest = 0 }
  /#\[cfg\(test\)\]/ { intest = 1 }
  !intest { c += gsub(/\.unwrap\(\)/, "") }
  END { print c + 0 }')
if [ "$UNWRAPS" -gt 0 ]; then
  echo "found $UNWRAPS non-test .unwrap() call(s) in crates/*/src (baseline 0)"
  exit 1
fi

echo "== panic!() gate (library code must degrade or return typed errors) =="
# Mirror of the unwrap gate for `panic!`: library sources outside
# `#[cfg(test)]` modules must return typed errors for reachable
# failures and use `expect("why: ...")`/`assert!` with a documented
# invariant for unreachable ones. Baseline 0.
PANICS=$(find crates/*/src -name '*.rs' | sort | xargs awk '
  FNR==1 { intest = 0 }
  /#\[cfg\(test\)\]/ { intest = 1 }
  !intest { c += gsub(/panic!/, "") }
  END { print c + 0 }')
if [ "$PANICS" -gt 0 ]; then
  echo "found $PANICS non-test panic!() call(s) in crates/*/src (baseline 0)"
  exit 1
fi

echo "== bench-diff (baseline schema + self-diff gate) =="
# Every committed baseline must validate against its schema and
# self-diff clean — the fixed point of the perf-regression gate. A
# fresh report is gated the same way:
#   cargo bench -q -p lcl-bench --bench obs   # writes BENCH_obs.json
#   git diff --exit-code BENCH_obs.json || \
#     cargo run -p lcl-bench --bin bench-diff -- <committed> BENCH_obs.json
# The re-engine self-diff also enforces the par_speedup floor (1.5x)
# whenever the report under test was measured with >= 8 threads; on
# smaller hosts (like a 1-core CI runner) the floor is noted, not
# gated, because no parallel speedup is physically possible there.
cargo run -q --release -p lcl-bench --bin bench-diff -- --check-schema BENCH_obs.json
cargo run -q --release -p lcl-bench --bin bench-diff -- BENCH_obs.json BENCH_obs.json
cargo run -q --release -p lcl-bench --bin bench-diff -- --check-schema BENCH_re_engine.json
cargo run -q --release -p lcl-bench --bin bench-diff -- BENCH_re_engine.json BENCH_re_engine.json
cargo run -q --release -p lcl-bench --bin bench-diff -- --check-schema BENCH_recover.json
cargo run -q --release -p lcl-bench --bin bench-diff -- BENCH_recover.json BENCH_recover.json
cargo run -q --release -p lcl-bench --bin bench-diff -- --check-schema BENCH_service.json
cargo run -q --release -p lcl-bench --bin bench-diff -- BENCH_service.json BENCH_service.json
cargo run -q --release -p lcl-bench --bin bench-diff -- --check-schema BENCH_curves.json
cargo run -q --release -p lcl-bench --bin bench-diff -- BENCH_curves.json BENCH_curves.json
cargo run -q --release -p lcl-bench --bin bench-diff -- --check-schema BENCH_shard.json
cargo run -q --release -p lcl-bench --bin bench-diff -- BENCH_shard.json BENCH_shard.json
cargo run -q --release -p lcl-bench --bin bench-diff -- --check-schema BENCH_procshard.json
cargo run -q --release -p lcl-bench --bin bench-diff -- BENCH_procshard.json BENCH_procshard.json

echo "== wall-clock gate (cost model and curve fits are count-derived) =="
# The asymptotic-regression gate only works because its inputs are
# deterministic event counts: a fitted class must never depend on how
# fast the host ran. The cost fold and the sweep/fit layer therefore
# must not read the clock. Baseline 0.
INSTANTS=$(awk '/Instant/ { c++ } END { print c + 0 }' \
  crates/obs/src/cost.rs crates/bench/src/curves.rs)
if [ "$INSTANTS" -gt 0 ]; then
  echo "found $INSTANTS Instant reference(s) in cost/curve sources (baseline 0)"
  exit 1
fi

echo "== deprecated simulate_* gate (new code goes through simulate_with) =="
# The pre-RunOptions entrypoints (simulate_logged, simulate_faulted,
# simulate_lca*, ...) are #[deprecated] forwarders: clippy -D warnings
# already rejects *compiled* calls, and this textual gate additionally
# keeps examples/docs/scripts from teaching them. Only the files that
# define/re-export the forwarders may mention the names.
DEPRECATED=$(find crates/*/src src -name '*.rs' 2>/dev/null | sort \
  | grep -v -E 'crates/(local|volume|grid)/src/(run|sync|lca|faulted|lib)\.rs' \
  | xargs grep -n -E \
      '\bsimulate_(logged|faulted|sync_logged|sync|lca_faulted|lca_logged|lca|prod_logged|prod_faulted|randomized_logged|randomized)\(' \
  | grep -v 'simulate_with' || true)
if [ -n "$DEPRECATED" ]; then
  echo "deprecated simulate_* entrypoints referenced outside their forwarder files:"
  echo "$DEPRECATED"
  exit 1
fi

echo "all checks passed"
