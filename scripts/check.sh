#!/usr/bin/env bash
# The full pre-merge gate: build, tests, formatting, lints.
# Run from anywhere inside the repository.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo build --release =="
cargo build --release

echo "== cargo test --release =="
cargo test -q --release

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo clippy (warnings are errors) =="
cargo clippy --workspace --all-targets --release -- -D warnings

echo "all checks passed"
