#!/usr/bin/env bash
# Bisect a failing chaos seed to a minimal reproducing fault plan.
#
# Usage: scripts/shrink_chaos.sh <local|volume|lca|prod|shard> <seed>
#
# Regenerates the chaos instance for (model, seed), checks whether its
# random fault plan reproduces (degrades the run or diverges from the
# fault-free labeling), and greedily drops faults — and the adversarial
# ID permutation — until nothing more can go. The minimal plan is
# printed in the FaultPlan text format, ready to paste into a
# regression test via FaultPlan::parse. The shard model runs on the
# sharded substrate and seeds whole-shard losses alongside node faults,
# so crash-shard directives bisect too.
set -euo pipefail
cd "$(dirname "$0")/.."
exec cargo run -q --release -p lcl-bench --bin shrink-chaos -- "$@"
