//! Oriented grids and the PROD-LOCAL model (Section 5): per-dimension
//! identifiers, order invariance, and the Theorem 5.1 pipeline producing
//! an identifier-free constant-round algorithm.
//!
//! ```sh
//! cargo run --example grid_landscape
//! ```

use lcl_landscape::core::speedup_grids::OrientationCanonical;
use lcl_landscape::grid::{
    run_prod_local, OrderInvariantProdAlgorithm, OrientedGrid, ProdIds, RankGridView,
};
use lcl_landscape::lcl::OutLabel;

/// Mark the locally-upstream end of each visible dimension-0 window.
#[derive(Clone, Debug)]
struct UpstreamEnd;

impl OrderInvariantProdAlgorithm for UpstreamEnd {
    fn radius(&self, _n: usize) -> u32 {
        1
    }

    fn label(&self, view: &RankGridView) -> Vec<OutLabel> {
        let is_min = (-1..=1).all(|o| view.rank(0, 0) <= view.rank(0, o));
        vec![OutLabel(u32::from(is_min)); 2 * view.d]
    }
}

fn main() {
    // A 2-dimensional oriented torus; ports encode the orientation
    // (port 2k = +k direction), which is exactly the structure the
    // paper's oriented-grid model assumes.
    let grid = OrientedGrid::new(&[8, 8]);
    println!(
        "oriented torus {:?}: {} nodes, degree {}",
        grid.dims(),
        grid.node_count(),
        grid.graph().max_degree()
    );

    // PROD-LOCAL identifiers: one per (dimension, coordinate slice).
    let ids = ProdIds::random_polynomial(&grid, 3, 5);
    let input = lcl_landscape::lcl::uniform_input(grid.graph());

    // Proposition 5.5: the orientation gives a canonical identifier order
    // for free, so an order-invariant algorithm runs with *no*
    // identifiers at all, fooled at a constant n₀.
    let canonical = OrientationCanonical::new(UpstreamEnd, 16);
    let run = run_prod_local(&canonical, &grid, &input, &ids, None);
    println!(
        "orientation-canonical run: radius {}, identifier-free",
        run.radius
    );

    // Every node computes the same canonical rank pattern, so the output
    // is a uniform tiling — the hallmark of a constant-round algorithm
    // on an oriented grid.
    let first = run.output.get(lcl_landscape::graph::HalfEdgeId(0));
    let uniform = run.output.as_slice().iter().all(|&l| l == first);
    println!("output is a uniform tiling: {uniform}");
    assert!(uniform);

    // Contrast: give the same algorithm real identifiers (no
    // canonicalization) and the output depends on them.
    let raw = run_prod_local(&AsProd(UpstreamEnd), &grid, &input, &ids, None);
    let raw_uniform = {
        let first = raw.output.get(lcl_landscape::graph::HalfEdgeId(0));
        raw.output.as_slice().iter().all(|&l| l == first)
    };
    println!("with real identifiers the tiling is uniform: {raw_uniform}");
}

/// Adapter running an order-invariant algorithm on real identifiers.
#[derive(Clone, Debug)]
struct AsProd(UpstreamEnd);

impl lcl_landscape::grid::ProdLocalAlgorithm for AsProd {
    fn radius(&self, n: usize) -> u32 {
        self.0.radius(n)
    }

    fn label(&self, view: &lcl_landscape::grid::GridView) -> Vec<OutLabel> {
        self.0.label(&view.to_ranks())
    }
}
