//! Quickstart: define an LCL problem, run distributed algorithms for it
//! through the unified `Simulation` API, and inspect the execution trace
//! every simulator now returns.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use lcl_landscape::faults::RunOptions;
use lcl_landscape::graph::gen;
use lcl_landscape::lcl::{verify, violations_summary, LclProblem};
use lcl_landscape::local::{simulate_sync_with, IdAssignment};
use lcl_landscape::obs::Counter;
use lcl_landscape::problems::cv::{orientation_inputs, ColeVishkin, Orientation};
use lcl_landscape::simulation::{GraphInstance, LocalSim, Simulation};
use lcl_landscape::LandscapeError;

fn main() -> Result<(), LandscapeError> {
    // 1. An LCL problem in the paper's node-edge-checkable form
    //    (Definition 2.3): 3-coloring, written in the text format.
    let problem = LclProblem::parse(
        "name: 3-coloring
         max-degree: 2
         inputs: l r
         nodes:
         A*
         B*
         C*
         edges:
         A B
         A C
         B C",
    )?;
    println!("problem: {problem}");

    // 2. A graph from the class the paper studies, with the orientation
    //    the algorithm needs provided as input labels.
    let n = 100;
    let graph = gen::cycle(n);
    let input = orientation_inputs(&graph, Orientation::Cycle);

    // 3. Identifiers from a polynomial range (Definition 2.1) and a run
    //    of Cole–Vishkin — the classic Θ(log* n) algorithm. Every
    //    simulator returns a `RunReport`: the outcome plus a trace whose
    //    counters are deterministic (wall time is the only exception).
    let ids = IdAssignment::random_polynomial(n, 3, 42);
    let report = simulate_sync_with(
        &ColeVishkin,
        &graph,
        &input,
        &ids.iter().collect::<Vec<_>>(),
        None,
        100,
        RunOptions::new(),
    );
    let run = &report.outcome.outcome;
    println!("Cole–Vishkin used {} rounds on n = {n}", run.rounds);
    println!(
        "trace: {} messages across {} nodes",
        report.trace.root().get(Counter::Messages).unwrap_or(0),
        report.trace.root().get(Counter::Nodes).unwrap_or(0),
    );

    // 4. Verification: every node and edge constraint is checked.
    let violations = verify(&problem, &graph, &input, &run.output);
    println!("verification: {}", violations_summary(&violations));
    assert!(violations.is_empty());

    // 5. The same machinery, model-agnostic: `Simulation` drives LOCAL,
    //    VOLUME, LCA, and PROD-LOCAL uniformly. Here: a radius-2 LOCAL
    //    algorithm on the same cycle, via the trait.
    let uniform = lcl_landscape::lcl::uniform_input(&graph);
    let local = LocalSim::simulate(
        &lcl_landscape::problems::trivial::MaxDegree2Hop,
        GraphInstance::new(&graph, &uniform, &ids),
    )?;
    println!(
        "{} queried {} views of {} total nodes",
        local.trace.root().name(),
        local.trace.root().get(Counter::Queries).unwrap_or(0),
        local.trace.root().get(Counter::ViewNodes).unwrap_or(0),
    );
    Ok(())
}
