//! Quickstart: define an LCL problem, run a distributed algorithm for it
//! in the simulated LOCAL model, and verify the output.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use lcl_landscape::graph::gen;
use lcl_landscape::lcl::{verify, violations_summary, LclProblem};
use lcl_landscape::local::{run_sync, IdAssignment};
use lcl_landscape::problems::cv::{orientation_inputs, ColeVishkin, Orientation};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. An LCL problem in the paper's node-edge-checkable form
    //    (Definition 2.3): 3-coloring, written in the text format.
    let problem = LclProblem::parse(
        "name: 3-coloring
         max-degree: 2
         inputs: l r
         nodes:
         A*
         B*
         C*
         edges:
         A B
         A C
         B C",
    )?;
    println!("problem: {problem}");

    // 2. A graph from the class the paper studies, with the orientation
    //    the algorithm needs provided as input labels.
    let n = 100;
    let graph = gen::cycle(n);
    let input = orientation_inputs(&graph, Orientation::Cycle);

    // 3. Identifiers from a polynomial range (Definition 2.1) and a run
    //    of Cole–Vishkin — the classic Θ(log* n) algorithm.
    let ids = IdAssignment::random_polynomial(n, 3, 42);
    let run = run_sync(
        &ColeVishkin,
        &graph,
        &input,
        &ids.iter().collect::<Vec<_>>(),
        None,
        100,
    );
    println!("Cole–Vishkin used {} rounds on n = {n}", run.rounds);

    // 4. Verification: every node and edge constraint is checked.
    let violations = verify(&problem, &graph, &input, &run.output);
    println!("verification: {}", violations_summary(&violations));
    assert!(violations.is_empty());
    Ok(())
}
