//! Round elimination up close: the problem sequence `Π, R(Π), R̄(R(Π))`,
//! the derived algorithms `A_½` and `A'` of Theorem 3.4, and the label
//! growth the paper warns about.
//!
//! ```sh
//! cargo run --example round_elimination
//! ```

use lcl_landscape::core::derived::{
    Derivation, DerivedOptions, LocalInfo, NeighborInfo, OneRoundAlgorithm,
};
use lcl_landscape::core::{ReOptions, ReTower};
use lcl_landscape::graph::gen;
use lcl_landscape::lcl::OutLabel;
use lcl_landscape::problems::{anti_matching, k_coloring, sinkless_orientation};
use lcl_landscape::LandscapeError;

/// A randomized one-round algorithm for anti-matching: compare 8-bit
/// coins across each edge; ties fail with probability 2⁻⁸ per edge.
struct CoinOrient;

impl OneRoundAlgorithm for CoinOrient {
    fn label(
        &self,
        me: &LocalInfo,
        my_bits: u64,
        neighbors: &[(NeighborInfo, u64)],
    ) -> Vec<OutLabel> {
        (0..me.degree as usize)
            .map(|p| OutLabel(u32::from(my_bits & 0xff < neighbors[p].1 & 0xff)))
            .collect()
    }
}

fn main() -> Result<(), LandscapeError> {
    // 1. Label growth along the sequence (the doubly-exponential wall).
    println!("label universes along Π, R(Π), R̄(R(Π)):");
    for problem in [anti_matching(3), k_coloring(3, 3), sinkless_orientation(3)] {
        let mut tower = ReTower::new(problem.clone());
        tower.push_f(ReOptions::default())?;
        let sizes: Vec<usize> = (0..tower.level_count())
            .map(|l| tower.alphabet_size(l))
            .collect();
        println!("  {:<22} {:?}", problem.problem_name(), sizes);
    }

    // 2. The Theorem 3.4 constructions, executed: A solves Π, the derived
    //    A_½ solves R(Π), and A' solves R̄(R(Π)) — each one "radius step"
    //    faster, each a bit sloppier.
    let problem = anti_matching(2);
    let mut tower = ReTower::new(problem.clone());
    tower.push_f(ReOptions {
        restrict: false,
        ..ReOptions::default()
    })?;

    let derivation = Derivation::new(
        &CoinOrient,
        2,
        1,
        2,
        DerivedOptions {
            k_threshold: 0.2,
            l_threshold: 0.15,
            samples: 64,
            threads: 0,
        },
    );
    println!(
        "\nTheorem 3.4 on a 10-node path ({} one-hop extensions per port):",
        derivation.extension_count()
    );
    let g = gen::path(10);
    let input = lcl_landscape::lcl::uniform_input(&g);

    let base = derivation.run_base(&g, &input, 3);
    let base_ok = lcl_landscape::lcl::verify(&problem, &g, &input, &base).is_empty();
    println!("  A      solves Π          (radius 1): {base_ok}");

    // The unrestricted tower holds every derivable label, so these can
    // only fail on an engine bug — which `?` reports as a LandscapeError.
    let half = derivation.run_a_half(&tower, &g, &input, 3)?;
    let half_ok = lcl_landscape::lcl::verify(&tower.level(1), &g, &input, &half).is_empty();
    println!("  A_1/2  solves R(Π)       (radius ½): {half_ok}");

    let prime = derivation.run_a_prime(&tower, &g, &input, 3)?;
    let prime_ok = lcl_landscape::lcl::verify(&tower.level(2), &g, &input, &prime).is_empty();
    println!("  A'     solves R̄(R(Π))    (radius 0): {prime_ok}");
    Ok(())
}
