//! The VOLUME model in action: adaptive probing, probe accounting, and
//! the Theorem 4.1 pipeline (canonicalize + fool at `n₀`).
//!
//! ```sh
//! cargo run --example volume_probes
//! ```

use lcl_landscape::core::speedup_volume::{
    run_fooled_volume, ProbeDecision, TranscriptAlgorithm, TranscriptAsVolume,
};
use lcl_landscape::graph::gen;
use lcl_landscape::local::IdAssignment;
use lcl_landscape::volume::{run_volume, NodeInfo};

/// An order-invariant 2-probe algorithm: am I a local minimum on the
/// cycle?
#[derive(Clone)]
struct LocalMin;

impl TranscriptAlgorithm for LocalMin {
    fn probe_budget(&self, _n: usize) -> usize {
        2
    }

    fn decide(&self, _n: usize, t: &[NodeInfo]) -> ProbeDecision {
        match t.len() {
            1 => ProbeDecision::Probe { j: 0, port: 0 },
            2 => ProbeDecision::Probe { j: 0, port: 1 },
            _ => ProbeDecision::Output(vec![
                lcl_landscape::lcl::OutLabel(u32::from(
                    t[0].id < t[1].id && t[0].id < t[2].id,
                ));
                t[0].degree as usize
            ]),
        }
    }

    fn name(&self) -> &str {
        "local-min"
    }
}

fn main() {
    let n = 256;
    let graph = gen::cycle(n);
    let input = lcl_landscape::lcl::uniform_input(&graph);
    let ids = IdAssignment::random_polynomial(n, 3, 1);

    // Plain run: the executor counts every probe. An out-of-contract
    // probe would surface as a typed `ProbeError` here.
    let plain = run_volume(&TranscriptAsVolume(LocalMin), &graph, &input, &ids, None)
        .expect("local-min stays within its 2-probe budget");
    println!(
        "plain run on n = {n}: max {} probes, {} total",
        plain.max_probes, plain.total_probes
    );

    // The Theorem 4.1 pipeline: canonicalize the identifiers in every
    // transcript (order-invariance) and announce min(n, n₀). For an
    // order-invariant algorithm the outputs are unchanged, and the probe
    // complexity is pinned to T(n₀) forever.
    let fooled = run_fooled_volume(&LocalMin, 16, &graph, &input, &ids)
        .expect("fooling caps the budget at T(16) = 2, which local-min respects");
    println!(
        "fooled at n₀ = 16: max {} probes, outputs identical: {}",
        fooled.max_probes,
        fooled.output == plain.output
    );
    assert_eq!(fooled.output, plain.output);

    // Local minima on a cycle: the count is between 1 and n/2.
    let minima = graph
        .nodes()
        .filter(|&v| {
            let h = graph.half_edge(v, 0);
            plain.output.get(h) == lcl_landscape::lcl::OutLabel(1)
        })
        .count();
    println!("{minima} local minima among {n} nodes");
    assert!(minima >= 1 && minima <= n / 2);
}
