//! The paper's main theorem as a tool: feed an LCL problem to the
//! round-elimination pipeline and get back either a synthesized
//! constant-round algorithm (Theorem 3.11) or evidence that the problem
//! sits at `Θ(log* n)` or above.
//!
//! ```sh
//! cargo run --example tree_speedup
//! ```

use lcl_landscape::core::{tree_speedup, ReOptions, ReTower, SpeedupOptions, SpeedupOutcome};
use lcl_landscape::graph::gen;
use lcl_landscape::local::run_sync;
use lcl_landscape::problems::{anti_matching, k_coloring};
use lcl_landscape::LandscapeError;

fn main() -> Result<(), LandscapeError> {
    // The anti-matching problem: every edge must carry {X, Y}. Not
    // 0-round solvable, but f(Π) = R̄(R(Π)) is — so the pipeline
    // synthesizes a 1-round algorithm.
    let problem = anti_matching(3);
    println!("pipeline input: {problem}");
    let outcome = tree_speedup(&problem, SpeedupOptions::default());
    match &outcome {
        SpeedupOutcome::ConstantRound { steps, .. } => {
            println!("=> constant-round algorithm synthesized, {steps} round(s)");
        }
        SpeedupOutcome::Exhausted { .. } => unreachable!("anti-matching is 1-round solvable"),
    }

    // Run the synthesized algorithm on a random forest and verify.
    let alg = outcome.algorithm();
    let forest = gen::random_forest(60, 5, 3, 7);
    let input = lcl_landscape::lcl::uniform_input(&forest);
    let ids: Vec<u64> = (0..forest.node_count() as u64).map(|i| 1000 - i).collect();
    let run = run_sync(&alg, &forest, &input, &ids, None, 10);
    let violations = lcl_landscape::lcl::verify(&problem, &forest, &input, &run.output);
    println!(
        "synthesized algorithm: {} rounds on a 60-node forest, {} violations",
        run.rounds,
        violations.len()
    );
    assert!(violations.is_empty());

    // Contrast: 3-coloring has complexity Θ(log* n) — the paper's gap
    // theorem says it can never synthesize; watch the pipeline exhaust
    // while the label universes stay honest.
    let coloring = k_coloring(3, 3);
    println!("\npipeline input: {coloring}");
    match tree_speedup(&coloring, SpeedupOptions::default()) {
        SpeedupOutcome::ConstantRound { steps, .. } => {
            unreachable!("3-coloring solved in {steps} rounds — impossible")
        }
        SpeedupOutcome::Exhausted {
            steps_tried,
            alphabet_sizes,
            ..
        } => {
            println!(
                "=> not constant within {steps_tried} f-steps; \
                 alphabet sizes along Π, R(Π), R̄(R(Π)), ...: {alphabet_sizes:?}"
            );
        }
    }

    // The round-elimination sequence itself is a public API: inspect
    // R(Π) of 3-coloring (labels are sets of base labels).
    let mut tower = ReTower::new(k_coloring(3, 3));
    tower.push_r(ReOptions::default())?;
    println!(
        "\nR(3-coloring) has {} useful labels (subsets of {{A,B,C}})",
        tower.alphabet_size(1)
    );
    Ok(())
}
