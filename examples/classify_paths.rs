//! The decidable slice of the landscape (Section 1.4): classify LCL
//! problems on oriented paths and cycles into `O(1)`, `Θ(log* n)` or
//! `Θ(n)` — the classes the paper's Figure 1 shows for that graph family.
//!
//! ```sh
//! cargo run --example classify_paths
//! ```

use lcl_landscape::classify::{
    classify_oriented_cycle, classify_oriented_path, solvable_cycle_lengths_up_to,
};
use lcl_landscape::problems::{
    free_problem, k_coloring, mis_problem, sinkless_orientation, two_coloring,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let battery = vec![
        free_problem(2, 2),
        k_coloring(3, 2),
        two_coloring(2),
        mis_problem(2),
        sinkless_orientation(2),
    ];

    println!("{:<24} {:<12} {:<12}", "problem", "cycles", "paths");
    println!("{}", "-".repeat(48));
    for p in &battery {
        let cycles = classify_oriented_cycle(p)?;
        let paths = classify_oriented_path(p)?;
        println!(
            "{:<24} {:<12} {:<12}",
            p.problem_name(),
            cycles.class.to_string(),
            paths.class.to_string()
        );
    }

    // Θ(n) problems constrain which cycle lengths are solvable at all —
    // 2-coloring needs even cycles:
    println!("\n2-coloring solvability by cycle length:");
    for (n, solvable) in solvable_cycle_lengths_up_to(&two_coloring(2), 10)? {
        println!(
            "  n = {n:2}: {}",
            if solvable { "solvable" } else { "unsolvable" }
        );
        assert_eq!(solvable, n % 2 == 0);
    }

    // The certificates are executable: synthesize an algorithm from the
    // classification and run it.
    use lcl_landscape::classify::synthesize_cycle;
    use lcl_landscape::graph::gen;
    use lcl_landscape::local::{run_deterministic, IdAssignment};

    println!("\nsynthesized algorithms, verified on a 100-cycle:");
    for p in &battery {
        let Some(alg) = synthesize_cycle(p)? else {
            println!("  {:<24} (global: no uniform algorithm)", p.problem_name());
            continue;
        };
        let g = gen::cycle(100);
        let input = lcl_landscape::lcl::uniform_input(&g);
        let ids = IdAssignment::random_polynomial(100, 3, 5);
        let run = run_deterministic(&alg, &g, &input, &ids, None);
        let ok = lcl_landscape::lcl::verify(p, &g, &input, &run.output).is_empty();
        println!(
            "  {:<24} {} [{}]",
            p.problem_name(),
            alg.describe(),
            if ok { "valid" } else { "INVALID" }
        );
        assert!(ok);
    }
    Ok(())
}
