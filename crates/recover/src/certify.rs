//! Certification and bounded local mending of output labelings.
//!
//! The paper's node-edge-checkable form (Definition 2.4) makes an LCL
//! solution *locally checkable*: `lcl::verify` localizes every failure
//! to a node or an edge. This module exploits the flip side — local
//! checkability makes damage locally *mendable*: starting from the
//! violating nodes, [`repair`] rewrites an expanding radius ball with
//! labels from a fault-free reference execution and re-verifies after
//! each round. Because the reference is globally valid, the loop is
//! guaranteed to converge within the graph's diameter; in practice a
//! crash or corrupted view damages a handful of nodes and one or two
//! rounds suffice.
//!
//! The payoff is a typed certificate: a [`Certified`] labeling can only
//! be constructed by passing the verifier, so downstream code can take
//! correctness as a type-level invariant instead of a hope.

use std::collections::BTreeSet;
use std::fmt;

use lcl::{verify, violating_nodes, HalfEdgeLabeling, InLabel, OutLabel, Problem, Violation};
use lcl_graph::Graph;

/// Success value of [`repair_tracked`]: the certified labeling, the
/// repair counters, and the ascending list of patched nodes.
pub type TrackedRepair = (
    Certified<HalfEdgeLabeling<OutLabel>>,
    RepairReport,
    Vec<lcl_graph::NodeId>,
);

/// A labeling that passed `lcl::verify` exactly — the constructor is
/// private to this module, so holding a `Certified` *is* the proof.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Certified<T> {
    value: T,
}

impl<T> Certified<T> {
    fn seal(value: T) -> Self {
        Self { value }
    }

    /// The certified value.
    pub fn get(&self) -> &T {
        &self.value
    }

    /// Unwraps the certified value.
    pub fn into_inner(self) -> T {
        self.value
    }
}

/// Bounded mending gave up: the violations still standing after the
/// final round, and how many rounds were spent.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RepairFailed {
    /// Violations remaining when the repair budget ran out.
    pub violations: Vec<Violation>,
    /// Mending rounds attempted (0 when no reference run was available
    /// to mend from).
    pub rounds_tried: u32,
}

impl fmt::Display for RepairFailed {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "repair failed after {} rounds: {}",
            self.rounds_tried,
            lcl::violations_summary(&self.violations)
        )
    }
}

impl std::error::Error for RepairFailed {}

/// Knobs for [`repair`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RepairOptions {
    /// Maximum mending rounds. Round `r` patches every node within BFS
    /// distance `r - 1` of a violating node, so any budget at least the
    /// graph's diameter plus one guarantees convergence.
    pub max_rounds: u32,
}

impl Default for RepairOptions {
    fn default() -> Self {
        Self { max_rounds: 64 }
    }
}

/// What a successful [`repair`] did: the work accounting reported as
/// `Counter::Repairs` / `Counter::RepairedNodes` by the model wrappers.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct RepairReport {
    /// Mending rounds spent (0 when the labeling verified untouched).
    pub rounds: u32,
    /// Node-patch operations performed across all rounds.
    pub patched_nodes: u64,
}

/// Verify-only certification: the labeling either passes `lcl::verify`
/// exactly and comes back [`Certified`], or the violations are returned
/// as a typed [`RepairFailed`] with zero rounds tried.
///
/// # Errors
///
/// [`RepairFailed`] carrying every violation when the labeling is not
/// valid.
pub fn certify<P: Problem + ?Sized>(
    p: &P,
    graph: &Graph,
    input: &HalfEdgeLabeling<InLabel>,
    output: HalfEdgeLabeling<OutLabel>,
) -> Result<Certified<HalfEdgeLabeling<OutLabel>>, RepairFailed> {
    let violations = verify(p, graph, input, &output);
    if violations.is_empty() {
        Ok(Certified::seal(output))
    } else {
        Err(RepairFailed {
            violations,
            rounds_tried: 0,
        })
    }
}

/// Bounded local mending against a fault-free `reference` labeling.
///
/// Round `r` localizes the current violations to their nodes
/// ([`lcl::violating_nodes`]), expands each by a BFS ball of radius
/// `r - 1`, and rewrites every half-edge of the ball's nodes with the
/// reference labels; then the whole labeling is re-verified. Since the
/// reference is globally valid, the patched region eventually swallows
/// every violation — with a budget of at least diameter + 1 rounds the
/// result is always [`Certified`].
///
/// # Errors
///
/// [`RepairFailed`] with the surviving violations when `max_rounds`
/// rounds were not enough.
pub fn repair<P: Problem + ?Sized>(
    p: &P,
    graph: &Graph,
    input: &HalfEdgeLabeling<InLabel>,
    output: HalfEdgeLabeling<OutLabel>,
    reference: &HalfEdgeLabeling<OutLabel>,
    opts: RepairOptions,
) -> Result<(Certified<HalfEdgeLabeling<OutLabel>>, RepairReport), RepairFailed> {
    repair_tracked(p, graph, input, output, reference, opts)
        .map(|(certified, report, _)| (certified, report))
}

/// [`repair`], additionally returning the exact set of nodes whose
/// half-edges were rewritten, in ascending structural order.
///
/// The patched set is the containment witness the sharded chaos soak
/// asserts on: after a whole-shard loss is rebuilt, every patched node
/// must be either inside a crashed shard or on a healthy shard's
/// frontier — repair must never reach into a healthy shard's interior.
///
/// # Errors
///
/// [`RepairFailed`] with the surviving violations when `max_rounds`
/// rounds were not enough.
pub fn repair_tracked<P: Problem + ?Sized>(
    p: &P,
    graph: &Graph,
    input: &HalfEdgeLabeling<InLabel>,
    mut output: HalfEdgeLabeling<OutLabel>,
    reference: &HalfEdgeLabeling<OutLabel>,
    opts: RepairOptions,
) -> Result<TrackedRepair, RepairFailed> {
    let mut violations = verify(p, graph, input, &output);
    if violations.is_empty() {
        return Ok((Certified::seal(output), RepairReport::default(), Vec::new()));
    }
    let mut patched_nodes = 0u64;
    let mut patched: BTreeSet<lcl_graph::NodeId> = BTreeSet::new();
    for round in 1..=opts.max_rounds {
        let seeds = violating_nodes(graph, &violations);
        let mut ball = BTreeSet::new();
        let radius = round - 1;
        for &seed in &seeds {
            if radius == 0 {
                ball.insert(seed);
                continue;
            }
            for (i, d) in graph.bfs_distances(seed, radius).into_iter().enumerate() {
                if d <= radius {
                    ball.insert(lcl_graph::NodeId(i as u32));
                }
            }
        }
        for &v in &ball {
            for h in graph.half_edges_of(v) {
                output.set(h, reference.get(h));
            }
        }
        patched_nodes += ball.len() as u64;
        patched.extend(ball.iter().copied());
        violations = verify(p, graph, input, &output);
        if violations.is_empty() {
            return Ok((
                Certified::seal(output),
                RepairReport {
                    rounds: round,
                    patched_nodes,
                },
                patched.into_iter().collect(),
            ));
        }
    }
    Err(RepairFailed {
        violations,
        rounds_tried: opts.max_rounds,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcl::LclProblem;
    use lcl_graph::gen;

    fn two_coloring() -> LclProblem {
        LclProblem::builder("2col", 2)
            .outputs(["A", "B"])
            .node_pattern(&["A*"])
            .node_pattern(&["B*"])
            .edge(&["A", "B"])
            .build()
            .unwrap()
    }

    fn proper(g: &Graph) -> HalfEdgeLabeling<OutLabel> {
        HalfEdgeLabeling::from_node_fn(g, |v| vec![OutLabel(v.0 % 2); g.degree(v) as usize])
    }

    #[test]
    fn valid_labelings_certify_untouched() {
        let g = gen::path(6);
        let p = two_coloring();
        let input = lcl::uniform_input(&g);
        let certified = certify(&p, &g, &input, proper(&g)).unwrap();
        assert_eq!(certified.get().as_slice(), proper(&g).as_slice());
    }

    #[test]
    fn invalid_labelings_fail_certification_with_the_violations() {
        let g = gen::path(4);
        let p = two_coloring();
        let input = lcl::uniform_input(&g);
        let bad = HalfEdgeLabeling::uniform(&g, OutLabel(0));
        let err = certify(&p, &g, &input, bad).unwrap_err();
        assert!(!err.violations.is_empty());
        assert_eq!(err.rounds_tried, 0);
        assert!(err.to_string().contains("repair failed after 0 rounds"));
    }

    #[test]
    fn single_node_damage_repairs_in_one_round() {
        let g = gen::path(8);
        let p = two_coloring();
        let input = lcl::uniform_input(&g);
        let reference = proper(&g);
        // Flip node 3's labels: both its edges go monochromatic.
        let mut damaged = reference.clone();
        for h in g.half_edges_of(lcl_graph::NodeId(3)) {
            damaged.set(h, OutLabel(1 - damaged.get(h).0));
        }
        let (certified, report) = repair(
            &p,
            &g,
            &input,
            damaged,
            &reference,
            RepairOptions::default(),
        )
        .unwrap();
        assert_eq!(certified.get().as_slice(), reference.as_slice());
        assert_eq!(report.rounds, 1, "radius-0 patch of the violating nodes");
        assert!(report.patched_nodes >= 1);
    }

    #[test]
    fn tracked_repair_reports_exactly_the_patched_nodes() {
        let g = gen::path(8);
        let p = two_coloring();
        let input = lcl::uniform_input(&g);
        let reference = proper(&g);
        let mut damaged = reference.clone();
        for h in g.half_edges_of(lcl_graph::NodeId(3)) {
            damaged.set(h, OutLabel(1 - damaged.get(h).0));
        }
        let (certified, report, patched) = repair_tracked(
            &p,
            &g,
            &input,
            damaged,
            &reference,
            RepairOptions::default(),
        )
        .unwrap();
        assert_eq!(certified.get().as_slice(), reference.as_slice());
        assert_eq!(report.patched_nodes, patched.len() as u64);
        assert!(patched.windows(2).all(|w| w[0] < w[1]), "ascending order");
        // The damage touched node 3's edges, so only 2..=4 may be patched.
        assert!(
            patched.iter().all(|v| (2..=4).contains(&v.index())),
            "{patched:?}"
        );
        // An already-valid labeling patches nothing.
        let (_, clean_report, clean_patched) = repair_tracked(
            &p,
            &g,
            &input,
            reference.clone(),
            &reference,
            RepairOptions::default(),
        )
        .unwrap();
        assert_eq!(clean_report, RepairReport::default());
        assert!(clean_patched.is_empty());
    }

    #[test]
    fn widespread_damage_converges_within_the_diameter() {
        let g = gen::path(10);
        let p = two_coloring();
        let input = lcl::uniform_input(&g);
        let reference = proper(&g);
        let damaged = HalfEdgeLabeling::uniform(&g, OutLabel(0));
        let (certified, report) = repair(
            &p,
            &g,
            &input,
            damaged,
            &reference,
            RepairOptions::default(),
        )
        .unwrap();
        assert_eq!(certified.get().as_slice(), reference.as_slice());
        assert!(report.rounds >= 1 && report.rounds <= 10);
    }

    #[test]
    fn exhausted_rounds_return_the_surviving_violations() {
        let g = gen::path(12);
        let p = two_coloring();
        let input = lcl::uniform_input(&g);
        // A "reference" that is itself invalid can never mend the damage.
        let broken_reference = HalfEdgeLabeling::uniform(&g, OutLabel(0));
        let damaged = HalfEdgeLabeling::uniform(&g, OutLabel(1));
        let err = repair(
            &p,
            &g,
            &input,
            damaged,
            &broken_reference,
            RepairOptions { max_rounds: 3 },
        )
        .unwrap_err();
        assert_eq!(err.rounds_tried, 3);
        assert!(!err.violations.is_empty());
    }
}
