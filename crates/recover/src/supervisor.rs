//! Retry supervisor: deterministic backoff, escalating budgets, and
//! checkpointed re-execution for fallible stages.
//!
//! The policy lattice is *retry → resume → repair → degrade*: a stage
//! that breaches its [`Budget`] is retried under an escalated budget; a
//! round-elimination tower that was interrupted mid-build resumes from
//! its serialized [`TowerSnapshot`] instead of restarting from the base
//! problem; and only when the attempt budget is exhausted does the
//! caller get a typed [`StageError`] (or, for model runs, a
//! [`crate::RepairFailed`]). Backoff delays are *recorded* — emitted as
//! [`Event::Retry`] with a deterministic, seed-derived duration — but
//! never slept, so supervised runs stay reproducible and fast.

use std::fmt;

use lcl::LclProblem;
use lcl_core::{ReError, ReOptions, ReTower, TowerSnapshot};
use lcl_faults::{isolate, Budget};
use lcl_obs::{Counter, Event, EventLog, Span, Trace};
use lcl_rng::SmallRng;

/// How a [`Supervisor`] retries: attempt cap, budget escalation factor,
/// and the seed behind the deterministic backoff jitter.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RetryPolicy {
    /// Attempts per stage before giving up (at least 1 is always made).
    pub max_attempts: u32,
    /// Seed for the backoff jitter; two supervisors with the same seed
    /// report identical backoff schedules.
    pub seed: u64,
    /// Base backoff in milliseconds; attempt `a` is scheduled at
    /// roughly `base * 2^(a-1)` plus seeded jitter below `base`.
    pub base_backoff_ms: u64,
    /// Saturating multiplier applied to every finite budget cap between
    /// attempts ([`Budget::escalate`]).
    pub escalation: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 3,
            seed: 0x5eed_ba5e,
            base_backoff_ms: 10,
            escalation: 2,
        }
    }
}

impl RetryPolicy {
    /// The backoff recorded after failed attempt `attempt` (1-based):
    /// exponential in the attempt number with seed-derived jitter.
    /// Purely a function of `(seed, attempt)` — never actually slept.
    pub fn backoff_ms(&self, attempt: u32) -> u64 {
        let exponent = attempt.saturating_sub(1).min(16);
        let scaled = self.base_backoff_ms.saturating_mul(1u64 << exponent);
        let mut rng = SmallRng::seed_from_u64(
            self.seed ^ u64::from(attempt).wrapping_mul(0x9e37_79b9_7f4a_7c15),
        );
        scaled.saturating_add(rng.next_u64() % self.base_backoff_ms.max(1))
    }
}

/// Why a supervised stage ultimately gave up.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum StageError<E> {
    /// Every attempt returned this stage error.
    Failed(E),
    /// The final attempt panicked; the payload string is preserved.
    Panic(String),
}

impl<E: fmt::Display> fmt::Display for StageError<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StageError::Failed(e) => write!(f, "stage failed: {e}"),
            StageError::Panic(payload) => write!(f, "stage panicked: {payload}"),
        }
    }
}

impl<E: fmt::Debug + fmt::Display> std::error::Error for StageError<E> {}

/// Drives a fallible stage through retry with escalating budgets.
///
/// Each attempt runs panic-isolated ([`isolate`]), so a panicking stage
/// is converted into a retryable [`StageError::Panic`] instead of
/// unwinding through the caller.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct Supervisor {
    /// The retry policy applied to every stage this supervisor runs.
    pub policy: RetryPolicy,
}

impl Supervisor {
    /// A supervisor with the given policy.
    pub fn new(policy: RetryPolicy) -> Self {
        Self { policy }
    }

    /// Runs `attempt` up to [`RetryPolicy::max_attempts`] times, passing
    /// the 1-based attempt number and the budget for that attempt
    /// (escalated by [`RetryPolicy::escalation`] after each failure).
    /// Emits [`Event::Retry`] into `log` between attempts.
    ///
    /// # Errors
    ///
    /// The final attempt's [`StageError`] when every attempt failed or
    /// panicked.
    pub fn run<T, E>(
        &self,
        stage: &str,
        initial: Budget,
        log: Option<&EventLog>,
        mut attempt: impl FnMut(u32, &Budget) -> Result<T, E>,
    ) -> Result<T, StageError<E>> {
        let attempts = self.policy.max_attempts.max(1);
        let mut budget = initial;
        let mut last = None;
        for a in 1..=attempts {
            match isolate(|| attempt(a, &budget)) {
                Ok(Ok(value)) => return Ok(value),
                Ok(Err(e)) => last = Some(StageError::Failed(e)),
                Err(payload) => last = Some(StageError::Panic(payload)),
            }
            if a < attempts {
                if let Some(log) = log {
                    log.record(Event::Retry {
                        stage: stage.to_string(),
                        attempt: u64::from(a),
                        backoff_ms: self.policy.backoff_ms(a),
                    });
                }
                budget = budget.escalate(self.policy.escalation);
            }
        }
        Err(last.expect("why: attempts >= 1, so at least one attempt ran and failed"))
    }
}

/// A supervised tower build: the (possibly partial) tower, whether and
/// why the supervisor gave up, and the recovery accounting.
#[derive(Debug)]
pub struct TowerRecovery {
    /// The tower — complete when `gave_up` is `None`, otherwise holding
    /// every level that finished before the supervisor gave up.
    pub tower: ReTower,
    /// `Some` when the attempt budget ran out (or the step failed in a
    /// way no budget can fix, e.g. an empty restricted universe).
    pub gave_up: Option<StageError<ReError>>,
    /// Total step attempts across the whole build.
    pub attempts: u64,
    /// Snapshots taken (one before every attempt).
    pub checkpoints: u64,
    /// The `recover/supervise-tower` span with `Counter::Retries` and
    /// `Counter::Checkpoints`.
    pub trace: Trace,
}

/// Reconstructs a tower from a snapshot we serialized ourselves.
fn restore(wire: &str) -> ReTower {
    let snap = TowerSnapshot::parse(wire)
        .expect("why: the wire form was produced by TowerSnapshot::to_json just above");
    ReTower::resume_from(&snap)
        .expect("why: a snapshot taken from a live tower is internally consistent")
}

/// Builds `steps` rounds of `f = R̄ ∘ R` on `base` under supervision:
/// every step attempt is preceded by a serialized checkpoint
/// ([`Event::Checkpoint`]), runs panic-isolated under the current
/// [`Budget`], and on failure is retried with an escalated budget after
/// resuming from serialized state — exactly what a restarted process
/// would do. A breach mid-`f` (the `R` level landed, `R̄` did not)
/// resumes with the completing `R̄` half-step, so no work is repeated.
///
/// Gives up — returning the partial tower and the final error — after
/// [`RetryPolicy::max_attempts`] failures on a single step, or
/// immediately on errors no budget can fix.
pub fn supervise_tower(
    base: LclProblem,
    steps: usize,
    opts: ReOptions,
    initial: Budget,
    policy: RetryPolicy,
    log: Option<&EventLog>,
) -> TowerRecovery {
    supervise_tower_from(ReTower::new(base), steps, opts, initial, policy, log)
}

/// [`supervise_tower`] starting from an existing (possibly partial)
/// tower instead of a fresh base — the entry point for resuming a build
/// whose checkpoint outlived its process (e.g. the classification
/// service reloading a [`TowerSnapshot`] from disk after a crash).
/// `steps` counts *total* `f`-rounds, so a tower already holding some
/// levels only builds the remainder; an odd derived count (a lone `R`
/// from an interrupted `f`) is completed with `R̄` first.
pub fn supervise_tower_from(
    tower: ReTower,
    steps: usize,
    opts: ReOptions,
    initial: Budget,
    policy: RetryPolicy,
    log: Option<&EventLog>,
) -> TowerRecovery {
    let mut span = Span::start("recover/supervise-tower");
    let mut tower = tower;
    let mut budget = initial;
    let mut attempts = 0u64;
    let mut checkpoints = 0u64;
    let mut gave_up = None;
    let mut attempt_in_step = 0u32;
    while (tower.level_count() - 1) / 2 < steps {
        let stage = format!("re-tower/level-{}", tower.level_count());
        // Checkpoint before the attempt so a panic can roll back.
        let wire = tower.snapshot().to_json();
        checkpoints += 1;
        span.add(Counter::Checkpoints, 1);
        if let Some(log) = log {
            log.record(Event::Checkpoint {
                stage: stage.clone(),
                completed: (tower.level_count() - 1) as u64,
            });
        }
        attempt_in_step += 1;
        attempts += 1;
        let step_budget = budget;
        let token = step_budget.token();
        let outcome = {
            let mut t = tower;
            isolate(move || {
                // An odd derived count means the top is a lone `R` from
                // an interrupted `f`; complete it with `R̄` instead of
                // stacking a fresh `R` on top.
                let derived = t.level_count() - 1;
                let step = if derived % 2 == 1 {
                    t.push_rbar_budgeted(opts, &step_budget, &token)
                } else {
                    t.push_f_budgeted(opts, &step_budget, &token)
                };
                (t, step)
            })
        };
        let err = match outcome {
            Ok((t, Ok(()))) => {
                tower = t;
                attempt_in_step = 0;
                continue;
            }
            Ok((t, Err(err))) => {
                // Completed levels survive a breach; resume from their
                // serialized form as a restarted process would.
                let partial = t.snapshot().to_json();
                tower = restore(&partial);
                if !matches!(err, ReError::Budget(_)) {
                    // No budget fixes an empty universe or a too-large
                    // subset space — give up without burning attempts.
                    gave_up = Some(StageError::Failed(err));
                    break;
                }
                StageError::Failed(err)
            }
            Err(payload) => {
                tower = restore(&wire);
                StageError::Panic(payload)
            }
        };
        if attempt_in_step >= policy.max_attempts.max(1) {
            gave_up = Some(err);
            break;
        }
        span.add(Counter::Retries, 1);
        if let Some(log) = log {
            log.record(Event::Retry {
                stage,
                attempt: u64::from(attempt_in_step),
                backoff_ms: policy.backoff_ms(attempt_in_step),
            });
        }
        budget = budget.escalate(policy.escalation);
    }
    TowerRecovery {
        tower,
        gave_up,
        attempts,
        checkpoints,
        trace: Trace::new(span.finish()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcl_problems::catalog::sinkless_orientation;

    #[test]
    fn backoff_is_deterministic_and_grows() {
        let policy = RetryPolicy::default();
        assert_eq!(policy.backoff_ms(1), policy.backoff_ms(1));
        assert_eq!(policy.backoff_ms(3), policy.backoff_ms(3));
        assert!(policy.backoff_ms(5) > policy.backoff_ms(1));
        let other = RetryPolicy {
            seed: 7,
            ..RetryPolicy::default()
        };
        // Different seeds jitter differently somewhere in the schedule.
        assert!((1..=6).any(|a| other.backoff_ms(a) != policy.backoff_ms(a)));
    }

    #[test]
    fn run_retries_through_panics_and_succeeds() {
        let supervisor = Supervisor::new(RetryPolicy {
            max_attempts: 3,
            ..RetryPolicy::default()
        });
        let log = EventLog::new(16);
        let mut calls = 0u32;
        let out: Result<u32, StageError<&str>> =
            supervisor.run("flaky", Budget::unlimited(), Some(&log), |attempt, _| {
                calls += 1;
                assert!(attempt >= 1, "attempt numbers are 1-based");
                if attempt < 3 {
                    lcl_faults::inject_panic(u64::from(attempt));
                }
                Ok(attempt)
            });
        assert_eq!(out.unwrap(), 3);
        assert_eq!(calls, 3);
        let retries: Vec<_> = log
            .events()
            .into_iter()
            .filter(|e| e.kind() == "retry")
            .collect();
        assert_eq!(retries.len(), 2);
    }

    #[test]
    fn run_gives_up_with_the_typed_error_after_max_attempts() {
        let supervisor = Supervisor::new(RetryPolicy {
            max_attempts: 2,
            ..RetryPolicy::default()
        });
        let mut calls = 0u32;
        let out: Result<(), StageError<&str>> =
            supervisor.run("doomed", Budget::unlimited(), None, |_, _| {
                calls += 1;
                Err("nope")
            });
        assert_eq!(out.unwrap_err(), StageError::Failed("nope"));
        assert_eq!(calls, 2);
    }

    #[test]
    fn run_escalates_the_budget_between_attempts() {
        let supervisor = Supervisor::new(RetryPolicy {
            max_attempts: 3,
            escalation: 2,
            ..RetryPolicy::default()
        });
        let mut seen = Vec::new();
        let out: Result<(), StageError<&str>> = supervisor.run(
            "budgeted",
            Budget::unlimited().with_max_labels(10),
            None,
            |_, budget| {
                seen.push(*budget);
                Err("still too small")
            },
        );
        assert!(out.is_err());
        assert_eq!(seen.len(), 3);
        assert_eq!(seen[0], Budget::unlimited().with_max_labels(10));
        assert_eq!(seen[1], Budget::unlimited().with_max_labels(20));
        assert_eq!(seen[2], Budget::unlimited().with_max_labels(40));
    }

    #[test]
    fn supervised_tower_matches_a_plain_build_after_budget_breaches() {
        let opts = ReOptions::default();
        let mut plain = ReTower::new(sinkless_orientation(3));
        plain.push_f(opts).unwrap();
        plain.push_f(opts).unwrap();

        // max_rounds 2 lets the first f-step through, breaches on the
        // second, and succeeds after one escalation (2 -> 4).
        for tight_rounds in [2u64, 3] {
            let log = EventLog::new(64);
            let recovery = supervise_tower(
                sinkless_orientation(3),
                2,
                opts,
                Budget::unlimited().with_max_rounds(tight_rounds),
                RetryPolicy::default(),
                Some(&log),
            );
            assert!(
                recovery.gave_up.is_none(),
                "cap {tight_rounds}: {:?}",
                recovery.gave_up
            );
            assert_eq!(recovery.tower.level_count(), plain.level_count());
            assert_eq!(
                recovery.tower.fingerprint(),
                plain.fingerprint(),
                "supervised build must be bit-identical (cap {tight_rounds})"
            );
            assert!(recovery.attempts >= 3, "a breach forces a retry");
            assert!(recovery.checkpoints >= recovery.attempts);
            assert!(recovery.trace.total(Counter::Retries) >= 1);
            assert!(recovery.trace.total(Counter::Checkpoints) >= 2);
            let kinds: Vec<_> = log.events().iter().map(|e| e.kind()).collect();
            assert!(kinds.contains(&"retry"));
            assert!(kinds.contains(&"checkpoint"));
        }
    }

    #[test]
    fn resuming_a_snapshotted_partial_tower_matches_an_uninterrupted_build() {
        let opts = ReOptions::default();
        let mut plain = ReTower::new(sinkless_orientation(3));
        plain.push_f(opts).unwrap();
        plain.push_f(opts).unwrap();

        // Build one f-round, serialize, "restart the process", finish.
        let first = supervise_tower(
            sinkless_orientation(3),
            1,
            opts,
            Budget::unlimited(),
            RetryPolicy::default(),
            None,
        );
        assert!(first.gave_up.is_none());
        let wire = first.tower.snapshot().to_json();
        let restored = ReTower::resume_from(&TowerSnapshot::parse(&wire).unwrap()).unwrap();
        let finished = supervise_tower_from(
            restored,
            2,
            opts,
            Budget::unlimited(),
            RetryPolicy::default(),
            None,
        );
        assert!(finished.gave_up.is_none());
        assert_eq!(finished.tower.level_count(), plain.level_count());
        assert_eq!(finished.tower.fingerprint(), plain.fingerprint());
        // Only the one remaining f-step was (re)built.
        assert_eq!(finished.attempts, 1);
    }

    #[test]
    fn supervised_tower_keeps_the_partial_tower_when_it_gives_up() {
        // A one-round cap with no escalation can never finish the second
        // level, so the supervisor gives up holding the lone R level.
        let recovery = supervise_tower(
            sinkless_orientation(3),
            1,
            ReOptions::default(),
            Budget::unlimited().with_max_rounds(1),
            RetryPolicy {
                max_attempts: 2,
                escalation: 1,
                ..RetryPolicy::default()
            },
            None,
        );
        match recovery.gave_up {
            Some(StageError::Failed(ReError::Budget(_))) => {}
            other => panic!("expected a budget stage error, got {other:?}"),
        }
        assert_eq!(recovery.tower.level_count(), 2, "base plus the R level");
        assert_eq!(recovery.attempts, 2);
    }
}
