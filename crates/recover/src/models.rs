//! Closing the loop on `Degraded` runs: certify-or-repair wrappers for
//! every faulted model.
//!
//! Each wrapper takes the degraded outcome of a faulted entrypoint
//! (any `simulate_*_with` call whose [`lcl_faults::RunOptions`] carried
//! a fault plan), re-verifies it, and — when the
//! faults actually broke the labeling — re-executes the *same* algorithm
//! fault-free under the *same* identifier permutation to obtain a
//! mending reference, then runs bounded local repair
//! ([`crate::repair`]). The result is always typed: [`Certified`] or
//! [`RepairFailed`], never a silently-invalid answer.
//!
//! The reference execution itself runs panic-isolated; if the algorithm
//! cannot complete even without injected faults (a genuine bug, or a
//! probe budget too small), repair reports the original violations with
//! zero rounds tried rather than guessing.

use lcl::{verify, HalfEdgeLabeling, InLabel, OutLabel, Problem};
#[cfg(test)]
use lcl_faults::RunOptions;
use lcl_faults::{isolate, Degraded, FaultPlan};
use lcl_graph::Graph;
use lcl_grid::{OrientedGrid, ProdIds};
use lcl_local::sync::{run_sync, SyncAlgorithm, SyncRun};
use lcl_local::{IdAssignment, LocalAlgorithm, LocalRun};
use lcl_obs::{Counter, Span, Trace};
use lcl_volume::{LcaAlgorithm, VolumeAlgorithm, VolumeRun};

use crate::certify::{certify, repair, Certified, RepairFailed, RepairOptions};

/// A certify-or-repair pass over one degraded run: the typed outcome
/// plus the recovery trace (`Counter::Violations`, `Counter::Faults`,
/// `Counter::Repairs`, `Counter::RepairedNodes`).
#[derive(Clone, Debug)]
pub struct ModelRepair {
    /// [`Certified`] when the labeling verifies (possibly after
    /// mending), [`RepairFailed`] otherwise.
    pub result: Result<Certified<HalfEdgeLabeling<OutLabel>>, RepairFailed>,
    /// The recovery span.
    pub trace: Trace,
}

/// Shared tail: try certification, then mend against the reference when
/// one is available.
fn certify_or_repair<P: Problem + ?Sized>(
    span: &mut Span,
    p: &P,
    graph: &Graph,
    input: &HalfEdgeLabeling<InLabel>,
    output: HalfEdgeLabeling<OutLabel>,
    reference: Option<HalfEdgeLabeling<OutLabel>>,
    opts: RepairOptions,
) -> Result<Certified<HalfEdgeLabeling<OutLabel>>, RepairFailed> {
    let initial = verify(p, graph, input, &output);
    span.set(Counter::Violations, initial.len() as u64);
    span.set(Counter::Repairs, 0);
    span.set(Counter::RepairedNodes, 0);
    if initial.is_empty() {
        return certify(p, graph, input, output);
    }
    let Some(reference) = reference else {
        return Err(RepairFailed {
            violations: initial,
            rounds_tried: 0,
        });
    };
    match repair(p, graph, input, output, &reference, opts) {
        Ok((certified, report)) => {
            span.set(Counter::Repairs, u64::from(report.rounds));
            span.set(Counter::RepairedNodes, report.patched_nodes);
            Ok(certified)
        }
        Err(failed) => Err(failed),
    }
}

/// The identifier vector a faulted sync run actually used: the plan's
/// permutation applied over the caller's ids.
fn permuted_id_vec(ids: &[u64], plan: &FaultPlan, n: usize) -> Vec<u64> {
    match plan.permutation(n) {
        Some(perm) => IdAssignment::from_vec(ids.to_vec())
            .permuted(&perm)
            .iter()
            .collect(),
        None => ids.to_vec(),
    }
}

/// The [`IdAssignment`] a faulted view-based run actually used.
fn permuted_assignment(ids: &IdAssignment, plan: &FaultPlan, n: usize) -> IdAssignment {
    match plan.permutation(n) {
        Some(perm) => ids.permuted(&perm),
        None => ids.clone(),
    }
}

/// Certifies (and repairs if needed) the degraded outcome of
/// [`lcl_local::simulate_sync_with`] under a fault plan. The mending reference is a
/// fault-free [`run_sync`] under the same ID permutation, panic-isolated
/// so a non-halting algorithm degrades to [`RepairFailed`] instead of
/// aborting.
#[allow(clippy::too_many_arguments)] // mirrors the faulted entrypoint it wraps
pub fn repair_sync_degraded<A: SyncAlgorithm, P: Problem + ?Sized>(
    alg: &A,
    p: &P,
    graph: &Graph,
    input: &HalfEdgeLabeling<InLabel>,
    ids: &[u64],
    n_announced: Option<usize>,
    max_rounds: u32,
    plan: &FaultPlan,
    degraded: &Degraded<SyncRun>,
    opts: RepairOptions,
) -> ModelRepair {
    let mut span = Span::start(format!("recover/sync/{}", alg.name()));
    span.set(Counter::Faults, degraded.faults.len() as u64);
    let ids = permuted_id_vec(ids, plan, graph.node_count());
    let reference =
        isolate(|| run_sync(alg, graph, input, &ids, n_announced, max_rounds).output).ok();
    let result = certify_or_repair(
        &mut span,
        p,
        graph,
        input,
        degraded.outcome.output.clone(),
        reference,
        opts,
    );
    ModelRepair {
        result,
        trace: Trace::new(span.finish()),
    }
}

/// Certifies (and repairs if needed) the degraded outcome of
/// [`lcl_local::simulate_with`] under a fault plan (the view-based
/// LOCAL executor).
#[allow(clippy::too_many_arguments)] // mirrors the faulted entrypoint it wraps
pub fn repair_local_degraded<P: Problem + ?Sized>(
    alg: &(impl LocalAlgorithm + ?Sized),
    p: &P,
    graph: &Graph,
    input: &HalfEdgeLabeling<InLabel>,
    ids: &IdAssignment,
    n_announced: Option<usize>,
    plan: &FaultPlan,
    degraded: &Degraded<LocalRun>,
    opts: RepairOptions,
) -> ModelRepair {
    let mut span = Span::start(format!("recover/local/{}", alg.name()));
    span.set(Counter::Faults, degraded.faults.len() as u64);
    let ids = permuted_assignment(ids, plan, graph.node_count());
    let reference =
        isolate(|| lcl_local::run_deterministic(alg, graph, input, &ids, n_announced).output).ok();
    let result = certify_or_repair(
        &mut span,
        p,
        graph,
        input,
        degraded.outcome.output.clone(),
        reference,
        opts,
    );
    ModelRepair {
        result,
        trace: Trace::new(span.finish()),
    }
}

/// Certifies (and repairs if needed) the degraded outcome of
/// [`lcl_volume::simulate_with`] under a fault plan. A reference run that errors on a
/// probe (or panics) yields [`RepairFailed`] with zero rounds tried.
#[allow(clippy::too_many_arguments)] // mirrors the faulted entrypoint it wraps
pub fn repair_volume_degraded<P: Problem + ?Sized>(
    alg: &(impl VolumeAlgorithm + ?Sized),
    p: &P,
    graph: &Graph,
    input: &HalfEdgeLabeling<InLabel>,
    ids: &IdAssignment,
    n_announced: Option<usize>,
    plan: &FaultPlan,
    degraded: &Degraded<VolumeRun>,
    opts: RepairOptions,
) -> ModelRepair {
    let mut span = Span::start(format!("recover/volume/{}", alg.name()));
    span.set(Counter::Faults, degraded.faults.len() as u64);
    let ids = permuted_assignment(ids, plan, graph.node_count());
    let reference = isolate(|| lcl_volume::run_volume(alg, graph, input, &ids, n_announced))
        .ok()
        .and_then(|r| r.ok())
        .map(|r| r.output);
    let result = certify_or_repair(
        &mut span,
        p,
        graph,
        input,
        degraded.outcome.output.clone(),
        reference,
        opts,
    );
    ModelRepair {
        result,
        trace: Trace::new(span.finish()),
    }
}

/// Certifies (and repairs if needed) the degraded outcome of
/// [`lcl_volume::simulate_lca_with`] under a fault plan.
#[allow(clippy::too_many_arguments)] // mirrors the faulted entrypoint it wraps
pub fn repair_lca_degraded<P: Problem + ?Sized>(
    alg: &(impl LcaAlgorithm + ?Sized),
    p: &P,
    graph: &Graph,
    input: &HalfEdgeLabeling<InLabel>,
    ids: &IdAssignment,
    plan: &FaultPlan,
    degraded: &Degraded<VolumeRun>,
    opts: RepairOptions,
) -> ModelRepair {
    let mut span = Span::start(format!("recover/lca/{}", alg.name()));
    span.set(Counter::Faults, degraded.faults.len() as u64);
    let ids = permuted_assignment(ids, plan, graph.node_count());
    let reference = isolate(|| lcl_volume::run_lca(alg, graph, input, &ids))
        .ok()
        .and_then(|r| r.ok())
        .map(|r| r.output);
    let result = certify_or_repair(
        &mut span,
        p,
        graph,
        input,
        degraded.outcome.output.clone(),
        reference,
        opts,
    );
    ModelRepair {
        result,
        trace: Trace::new(span.finish()),
    }
}

/// Certifies (and repairs if needed) the degraded outcome of
/// [`lcl_grid::simulate_with`] under a fault plan. The reference applies the same
/// per-dimension slice-identifier permutations the faulted run used.
#[allow(clippy::too_many_arguments)] // mirrors the faulted entrypoint it wraps
pub fn repair_prod_degraded<P: Problem + ?Sized>(
    alg: &(impl lcl_grid::ProdLocalAlgorithm + ?Sized),
    p: &P,
    grid: &OrientedGrid,
    input: &HalfEdgeLabeling<InLabel>,
    ids: &ProdIds,
    n_announced: Option<usize>,
    plan: &FaultPlan,
    degraded: &Degraded<lcl_grid::ProdRun>,
    opts: RepairOptions,
) -> ModelRepair {
    let mut span = Span::start(format!("recover/prod/{}", alg.name()));
    span.set(Counter::Faults, degraded.faults.len() as u64);
    let permuted;
    let ids = if plan.permutes_ids() {
        let perms: Vec<Vec<usize>> = grid
            .dims()
            .iter()
            .map(|&s| {
                plan.permutation(s)
                    .expect("why: permutes_ids() returned true, so permutation() is Some")
            })
            .collect();
        permuted = ids.permuted(&perms);
        &permuted
    } else {
        ids
    };
    let reference =
        isolate(|| lcl_grid::run_prod_local(alg, grid, input, ids, n_announced).output).ok();
    let result = certify_or_repair(
        &mut span,
        p,
        grid.graph(),
        input,
        degraded.outcome.output.clone(),
        reference,
        opts,
    );
    ModelRepair {
        result,
        trace: Trace::new(span.finish()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcl::{uniform_input, LclProblem};
    use lcl_faults::Fault;
    use lcl_graph::gen;
    use lcl_grid::FnProdAlgorithm;
    use lcl_problems::{k_coloring, DeltaPlusOne};
    use lcl_volume::lca::VolumeAsLca;
    use lcl_volume::{FnVolumeAlgorithm, ProbeError, ProbeSession};

    /// Path LCL: endpoints label E, internal nodes I; X is never valid.
    fn endpoints_problem() -> LclProblem {
        LclProblem::builder("endpoints", 2)
            .outputs(["E", "I", "X"])
            .node_pattern(&["E"])
            .node_pattern(&["I*"])
            .edge(&["E", "I"])
            .edge(&["I", "I"])
            .build()
            .unwrap()
    }

    /// Solves [`endpoints_problem`] on a path with ids `1..=n` — unless a
    /// corrupted view hands it an out-of-range id, which betrays itself
    /// as the invalid label X.
    #[allow(clippy::type_complexity)] // `impl Trait` closure types cannot be aliased
    fn threshold_alg(
        n: u64,
    ) -> FnVolumeAlgorithm<
        impl Fn(usize) -> usize,
        impl Fn(&mut ProbeSession<'_>) -> Result<Vec<OutLabel>, ProbeError>,
    > {
        FnVolumeAlgorithm::new(
            "threshold",
            |_| 1,
            move |s| {
                let d = s.queried().degree as usize;
                if s.queried().id > n {
                    Ok(vec![OutLabel(2); d])
                } else if d == 1 {
                    Ok(vec![OutLabel(0)])
                } else {
                    Ok(vec![OutLabel(1); d])
                }
            },
        )
    }

    #[test]
    fn sync_crash_damage_repairs_to_a_certified_coloring() {
        let g = gen::path(8);
        let input = uniform_input(&g);
        let ids: Vec<u64> = (1..=8).collect();
        // Two adjacent crashes both emit the placeholder color 0, so the
        // shared edge is guaranteed monochromatic.
        let plan = FaultPlan::new(11)
            .with(Fault::Crash { node: 3, round: 0 })
            .with(Fault::Crash { node: 4, round: 0 });
        let alg = DeltaPlusOne { delta: 2 };
        let p = k_coloring(3, 2);
        let report = lcl_local::simulate_sync_with(
            &alg,
            &g,
            &input,
            &ids,
            None,
            1000,
            RunOptions::new().faults(&plan),
        );
        let degraded = &report.outcome;
        assert!(degraded.is_degraded(), "crashes must be recorded");
        let mended = repair_sync_degraded(
            &alg,
            &p,
            &g,
            &input,
            &ids,
            None,
            1000,
            &plan,
            degraded,
            RepairOptions::default(),
        );
        let certified = mended.result.unwrap();
        assert!(verify(&p, &g, &input, certified.get()).is_empty());
        assert!(mended.trace.total(Counter::Faults) >= 2);
        assert!(mended.trace.total(Counter::Violations) >= 1);
        assert!(mended.trace.total(Counter::Repairs) >= 1);
        assert!(mended.trace.total(Counter::RepairedNodes) >= 1);
    }

    #[test]
    fn volume_view_corruption_repairs_to_a_certified_labeling() {
        let n = 9usize;
        let g = gen::path(n);
        let input = uniform_input(&g);
        let ids = IdAssignment::from_vec((1..=n as u64).collect());
        let plan = FaultPlan::new(5).with(Fault::CorruptView { node: 4, salt: 9 });
        let p = endpoints_problem();
        let alg = threshold_alg(n as u64);
        let report = lcl_volume::simulate_with(
            &alg,
            &g,
            &input,
            &ids,
            None,
            RunOptions::new().faults(&plan),
        )
        .expect("faulted runs degrade instead of erroring");
        let degraded = &report.outcome;
        // Silent corruption: the labeling is wrong, not marked degraded.
        assert!(!verify(&p, &g, &input, &degraded.outcome.output).is_empty());
        let mended = repair_volume_degraded(
            &alg,
            &p,
            &g,
            &input,
            &ids,
            None,
            &plan,
            degraded,
            RepairOptions::default(),
        );
        let certified = mended.result.unwrap();
        assert!(verify(&p, &g, &input, certified.get()).is_empty());
        assert!(mended.trace.total(Counter::Violations) >= 1);
        assert!(mended.trace.total(Counter::Repairs) >= 1);
    }

    #[test]
    fn lca_corruption_repairs_under_a_permuted_id_plan() {
        let n = 10usize;
        let g = gen::path(n);
        let input = uniform_input(&g);
        let ids = IdAssignment::from_vec((1..=n as u64).collect());
        let plan = FaultPlan::new(21)
            .with(Fault::CorruptView { node: 2, salt: 7 })
            .with_permuted_ids();
        let p = endpoints_problem();
        let alg = VolumeAsLca(threshold_alg(n as u64));
        let report =
            lcl_volume::simulate_lca_with(&alg, &g, &input, &ids, RunOptions::new().faults(&plan))
                .expect("faulted runs degrade instead of erroring");
        let degraded = &report.outcome;
        assert!(!verify(&p, &g, &input, &degraded.outcome.output).is_empty());
        let mended = repair_lca_degraded(
            &alg,
            &p,
            &g,
            &input,
            &ids,
            &plan,
            degraded,
            RepairOptions::default(),
        );
        let certified = mended.result.unwrap();
        assert!(verify(&p, &g, &input, certified.get()).is_empty());
    }

    #[test]
    fn prod_corruption_repairs_and_clean_runs_certify_without_mending() {
        let grid = OrientedGrid::new(&[4, 4]);
        let input = uniform_input(grid.graph());
        let ids = ProdIds::sequential(&grid);
        let p = LclProblem::builder("grid-free", 4)
            .outputs(["A", "X"])
            .node_pattern(&["A*"])
            .edge(&["A", "A"])
            .build()
            .unwrap();
        let alg = FnProdAlgorithm::new(
            "grid-threshold",
            |_| 1,
            |view: &lcl_grid::GridView| {
                let label = if view.id(0, -1) > 64 {
                    OutLabel(1)
                } else {
                    OutLabel(0)
                };
                vec![label; 2 * view.d]
            },
        );
        let plan = FaultPlan::new(3).with(Fault::CorruptView { node: 5, salt: 2 });
        let report = lcl_grid::simulate_with(
            &alg,
            &grid,
            &input,
            &ids,
            None,
            RunOptions::new().faults(&plan),
        );
        let degraded = &report.outcome;
        assert!(!verify(&p, grid.graph(), &input, &degraded.outcome.output).is_empty());
        let mended = repair_prod_degraded(
            &alg,
            &p,
            &grid,
            &input,
            &ids,
            None,
            &plan,
            degraded,
            RepairOptions::default(),
        );
        assert!(verify(&p, grid.graph(), &input, mended.result.unwrap().get()).is_empty());

        // A fault-free plan certifies on the spot: zero mending rounds.
        let clean_plan = FaultPlan::new(3);
        let clean = lcl_grid::simulate_with(
            &alg,
            &grid,
            &input,
            &ids,
            None,
            RunOptions::new().faults(&clean_plan),
        );
        let mended = repair_prod_degraded(
            &alg,
            &p,
            &grid,
            &input,
            &ids,
            None,
            &clean_plan,
            &clean.outcome,
            RepairOptions::default(),
        );
        assert!(mended.result.is_ok());
        assert_eq!(mended.trace.total(Counter::Repairs), 0);
        assert_eq!(mended.trace.total(Counter::Violations), 0);
    }

    #[test]
    fn a_failing_reference_yields_a_typed_repair_failure() {
        let n = 6usize;
        let g = gen::path(n);
        let input = uniform_input(&g);
        let ids = IdAssignment::from_vec((1..=n as u64).collect());
        // Zero probe budget but the answer probes: even the fault-free
        // reference run fails, so nothing can mend the bad output.
        let alg = FnVolumeAlgorithm::new(
            "over-budget",
            |_| 0,
            |s: &mut ProbeSession<'_>| {
                let d = s.queried().degree as usize;
                let first = s.probe(0, 0)?;
                Ok(vec![OutLabel((first.id % 2) as u32); d])
            },
        );
        let p = endpoints_problem();
        let plan = FaultPlan::new(1);
        let report = lcl_volume::simulate_with(
            &alg,
            &g,
            &input,
            &ids,
            None,
            RunOptions::new().faults(&plan),
        )
        .expect("faulted runs degrade instead of erroring");
        let degraded = &report.outcome;
        assert!(!verify(&p, &g, &input, &degraded.outcome.output).is_empty());
        let mended = repair_volume_degraded(
            &alg,
            &p,
            &g,
            &input,
            &ids,
            None,
            &plan,
            degraded,
            RepairOptions::default(),
        );
        let failed = mended.result.unwrap_err();
        assert_eq!(failed.rounds_tried, 0, "no reference, no mending rounds");
        assert!(!failed.violations.is_empty());
    }
}
