//! Self-healing runtime for the LCL landscape simulators.
//!
//! Three layers turn faulted executions from "best effort" into typed
//! guarantees, following the policy lattice *retry → resume → repair →
//! degrade*:
//!
//! 1. **Certify & repair** ([`certify()`], [`repair()`], [`models`]): an
//!    output labeling either passes `lcl::verify` exactly — sealed as a
//!    [`Certified`] value whose constructor is the proof — or is mended
//!    by bounded local patching against a fault-free reference run. The
//!    [`models`] wrappers close the loop for the degraded outcomes of
//!    all four faulted executors (LOCAL sync, LOCAL, VOLUME, LCA, and
//!    the oriented-grid product model).
//! 2. **Checkpoint / resume** (`lcl_core::TowerSnapshot`): a
//!    round-elimination tower interrupted by a budget breach or a panic
//!    serializes to JSON and resumes bit-identically — the supervisor
//!    uses this to never repeat completed levels.
//! 3. **Retry supervisor** ([`Supervisor`], [`supervise_tower`]):
//!    drives fallible stages through deterministic, recorded backoff and
//!    escalating [`lcl_faults::Budget`]s, emitting `Event::Retry` /
//!    `Event::Checkpoint` and the `retries` / `checkpoints` /
//!    `repairs` / `repaired-nodes` counters.
//!
//! The repair algorithm leans on the paper's node-edge-checkable normal
//! form (Definition 2.4): because validity is checkable per node and per
//! edge, damage is *localizable*, and patching an expanding radius ball
//! around the violations with reference labels converges within the
//! graph's diameter.

pub mod certify;
pub mod models;
pub mod supervisor;

pub use certify::{
    certify, repair, repair_tracked, Certified, RepairFailed, RepairOptions, RepairReport,
    TrackedRepair,
};
pub use models::{
    repair_lca_degraded, repair_local_degraded, repair_prod_degraded, repair_sync_degraded,
    repair_volume_degraded, ModelRepair,
};
pub use supervisor::{
    supervise_tower, supervise_tower_from, RetryPolicy, StageError, Supervisor, TowerRecovery,
};
