//! Measuring the locality a (family of) algorithm(s) needs.
//!
//! The landscape benches plot, for each problem, the radius/rounds a
//! concrete algorithm needs as a function of `n`. For gather-style
//! algorithms ("collect radius `T`, then decide"), the natural measure is
//! the *minimal `T` that yields a correct solution*, computed here by
//! exponential-then-binary search.

use lcl::{HalfEdgeLabeling, InLabel, Problem};
use lcl_graph::Graph;

use crate::algorithm::LocalAlgorithm;
use crate::ids::IdAssignment;
use crate::run::run_deterministic;

/// Finds the minimal radius `T <= max_radius` for which the algorithm
/// family solves `problem` on `graph`, or `None` if even `max_radius`
/// fails.
///
/// `make` builds the family member with a fixed radius. Solvability is
/// assumed monotone in the radius (more information cannot hurt a
/// gather-style algorithm); the search exploits this with an exponential
/// probe followed by binary search.
pub fn minimal_solving_radius<A, F>(
    problem: &(impl Problem + ?Sized),
    graph: &Graph,
    input: &HalfEdgeLabeling<InLabel>,
    ids: &IdAssignment,
    max_radius: u32,
    make: F,
) -> Option<u32>
where
    A: LocalAlgorithm,
    F: Fn(u32) -> A,
{
    let solves = |t: u32| {
        let alg = make(t);
        let run = run_deterministic(&alg, graph, input, ids, None);
        lcl::verify(problem, graph, input, &run.output).is_empty()
    };
    if solves(0) {
        return Some(0);
    }
    // Exponential probe for an upper bound.
    let mut hi = 1u32;
    while hi < max_radius && !solves(hi) {
        hi = (hi * 2).min(max_radius);
    }
    if !solves(hi) {
        return None;
    }
    // Binary search in (hi/2, hi].
    let mut lo = hi / 2; // known failing (or 0, known failing)
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        if solves(mid) {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    Some(hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::FnAlgorithm;
    use crate::view::View;
    use lcl::{LclProblem, OutLabel};
    use lcl_graph::gen;

    /// "Certify a leaf": every node must output Yes, and the algorithm
    /// outputs Yes only when a degree-1 node is inside its view — so the
    /// minimal radius equals the maximum distance to the nearest leaf.
    fn see_a_leaf(
        radius: u32,
    ) -> FnAlgorithm<impl Fn(usize) -> u32, impl Fn(&View<'_>) -> Vec<OutLabel>> {
        FnAlgorithm::new(
            "see-a-leaf",
            move |_| radius,
            |view| {
                let sees_leaf = view.ball.nodes.iter().any(|b| b.ports.len() == 1);
                vec![OutLabel(u32::from(sees_leaf)); view.center_degree()]
            },
        )
    }

    fn all_yes_problem() -> LclProblem {
        LclProblem::builder("all-yes", 2)
            .outputs(["No", "Yes"])
            .node_pattern(&["Yes*"])
            .edge(&["Yes", "Yes"])
            .build()
            .unwrap()
    }

    #[test]
    fn leaf_certification_needs_half_path_radius() {
        for n in [4usize, 8, 16, 17] {
            let g = gen::path(n);
            let input = lcl::uniform_input(&g);
            let ids = IdAssignment::sequential(n);
            let t =
                minimal_solving_radius(&all_yes_problem(), &g, &input, &ids, n as u32, see_a_leaf)
                    .unwrap();
            // The middle node is at distance floor((n-1)/2) from the
            // nearest endpoint; that is the required radius.
            assert_eq!(t, (n as u32 - 1) / 2, "n = {n}");
        }
    }

    #[test]
    fn unsolvable_within_budget_returns_none() {
        let g = gen::path(32);
        let input = lcl::uniform_input(&g);
        let ids = IdAssignment::sequential(32);
        assert_eq!(
            minimal_solving_radius(&all_yes_problem(), &g, &input, &ids, 3, see_a_leaf),
            None
        );
    }

    #[test]
    fn zero_round_solutions_are_found() {
        let p = LclProblem::builder("any", 2)
            .outputs(["A"])
            .node_pattern(&["A*"])
            .edge(&["A", "A"])
            .build()
            .unwrap();
        let g = gen::path(8);
        let input = lcl::uniform_input(&g);
        let ids = IdAssignment::sequential(8);
        let t = minimal_solving_radius(&p, &g, &input, &ids, 8, |r| {
            FnAlgorithm::new(
                "const",
                move |_| r,
                |view| vec![OutLabel(0); view.center_degree()],
            )
        });
        assert_eq!(t, Some(0));
    }
}
