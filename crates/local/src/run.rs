//! Executing LOCAL algorithms and estimating local failure probabilities.

use lcl_rng::SmallRng;

use lcl::{HalfEdgeLabeling, InLabel, OutLabel, Problem, Violation};
use lcl_faults::{Degraded, InvalidConfig, RunOptions};
use lcl_graph::Graph;
use lcl_obs::{Counter, Event, EventLog, RunReport, Span, Trace};

use crate::algorithm::LocalAlgorithm;
use crate::ids::IdAssignment;
use crate::view::View;

/// The result of a LOCAL run.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct LocalRun {
    /// The produced half-edge labeling.
    pub output: HalfEdgeLabeling<OutLabel>,
    /// The radius the algorithm requested for this `n`.
    pub radius: u32,
}

fn run_with<F>(
    alg: &(impl LocalAlgorithm + ?Sized),
    graph: &Graph,
    input: &HalfEdgeLabeling<InLabel>,
    n_announced: usize,
    mut per_node: F,
) -> LocalRun
where
    F: FnMut(&lcl_graph::Ball) -> (Vec<u64>, Vec<u64>),
{
    let radius = alg.radius(n_announced);
    let output = HalfEdgeLabeling::from_node_fn(graph, |v| {
        let ball = graph.ball(v, radius);
        let (ids, bits) = per_node(&ball);
        let inputs = ball
            .nodes
            .iter()
            .flat_map(|node| node.half_edges.iter().map(|&h| input.get(h)))
            .collect();
        let view = View {
            ball: &ball,
            n: n_announced,
            ids,
            bits,
            inputs,
        };
        let labels = alg.label(&view);
        assert_eq!(
            labels.len(),
            graph.degree(v) as usize,
            "algorithm {} must label each port of the center",
            alg.name()
        );
        labels
    });
    LocalRun { output, radius }
}

/// Seals the common LOCAL counters into `span`: instance shape, the
/// requested radius (which bounds the round complexity exercised), and
/// the total view nodes materialized — the measurable form of the
/// paper's `O(Δ^T)` view-size bound.
fn seal_local_span(span: &mut Span, graph: &Graph, run: &LocalRun, view_nodes: u64) {
    span.set(Counter::Nodes, graph.node_count() as u64);
    span.set(Counter::Edges, graph.edge_count() as u64);
    span.set(Counter::Queries, graph.node_count() as u64);
    span.set(Counter::Radius, u64::from(run.radius));
    span.set(Counter::Rounds, u64::from(run.radius));
    span.set(Counter::ViewNodes, view_nodes);
}

/// Runs a deterministic LOCAL algorithm and reports the execution trace:
/// every node evaluates the view-function on its radius-`T(n)` ball,
/// seeing the identifiers in `ids`.
///
/// `n_announced` overrides the number of nodes reported to the algorithm
/// (the paper's footnote 7: "nothing prevents us from executing an
/// algorithm using an input parameter that does not represent the correct
/// number of nodes"); `None` announces the true `n`.
///
/// Runs a deterministic LOCAL algorithm under [`RunOptions`]: optional
/// event capture, optional fault plan. With a fault plan the run is the
/// degrading executor of [`crate::faulted`]; without one the outcome is
/// [`Degraded::clean`] and bit-identical to the plain run. A budget's
/// dimensions do not apply to view-based LOCAL runs (the radius is the
/// algorithm's, not a resource) and are ignored here.
///
/// `n_announced` overrides the number of nodes reported to the
/// algorithm (the paper's footnote 7); `None` announces the true `n`.
pub fn simulate_with(
    alg: &(impl LocalAlgorithm + ?Sized),
    graph: &Graph,
    input: &HalfEdgeLabeling<InLabel>,
    ids: &IdAssignment,
    n_announced: Option<usize>,
    opts: RunOptions<'_>,
) -> RunReport<Degraded<LocalRun>> {
    match opts.fault_plan() {
        Some(plan) => crate::faulted::simulate_faulted_impl(
            alg,
            graph,
            input,
            ids,
            n_announced,
            plan,
            opts.event_log(),
        ),
        None => simulate_impl(alg, graph, input, ids, n_announced, opts.event_log())
            .map(Degraded::clean),
    }
}

/// This is the instrumented entrypoint behind the facade's `Simulation`
/// trait; [`run_deterministic`] forwards here and discards the trace.
#[deprecated(since = "0.1.0", note = "use `simulate_with(..., RunOptions::new())`")]
pub fn simulate(
    alg: &(impl LocalAlgorithm + ?Sized),
    graph: &Graph,
    input: &HalfEdgeLabeling<InLabel>,
    ids: &IdAssignment,
    n_announced: Option<usize>,
) -> RunReport<LocalRun> {
    simulate_impl(alg, graph, input, ids, n_announced, None)
}

/// Like [`simulate`], with every view materialization recorded as an
/// [`Event::ViewMaterialized`] into the given [`EventLog`].
#[deprecated(
    since = "0.1.0",
    note = "use `simulate_with(..., RunOptions::new().events(log))`"
)]
pub fn simulate_logged(
    alg: &(impl LocalAlgorithm + ?Sized),
    graph: &Graph,
    input: &HalfEdgeLabeling<InLabel>,
    ids: &IdAssignment,
    n_announced: Option<usize>,
    log: Option<&EventLog>,
) -> RunReport<LocalRun> {
    simulate_impl(alg, graph, input, ids, n_announced, log)
}

pub(crate) fn simulate_impl(
    alg: &(impl LocalAlgorithm + ?Sized),
    graph: &Graph,
    input: &HalfEdgeLabeling<InLabel>,
    ids: &IdAssignment,
    n_announced: Option<usize>,
    log: Option<&EventLog>,
) -> RunReport<LocalRun> {
    assert_eq!(ids.len(), graph.node_count(), "ids cover the graph");
    let n = n_announced.unwrap_or_else(|| graph.node_count());
    let mut span = Span::start(format!("local/deterministic/{}", alg.name()));
    let mut view_nodes = 0u64;
    let radius = alg.radius(n);
    let run = run_with(alg, graph, input, n, |ball| {
        view_nodes += ball.nodes.len() as u64;
        span.observe(Counter::ViewNodes, ball.nodes.len() as u64);
        let ids: Vec<u64> = ball.nodes.iter().map(|b| ids.id(b.original)).collect();
        if let Some(log) = log {
            log.record(Event::ViewMaterialized {
                node: ids[0],
                radius: u64::from(radius),
                size: ball.nodes.len() as u64,
            });
        }
        (ids, Vec::new())
    });
    seal_local_span(&mut span, graph, &run, view_nodes);
    RunReport::new(run, Trace::new(span.finish()))
}

/// Runs a randomized LOCAL algorithm and reports the execution trace:
/// every node carries a private random bit string, derived
/// deterministically from `seed` and the node id so that runs are
/// reproducible.
///
/// Runs a randomized LOCAL algorithm under [`RunOptions`]. Only the
/// event axis applies: randomized runs see no identifiers, so fault
/// plans (which key on identifier-visible structure) have no defined
/// semantics here and `opts` must not carry one.
pub fn simulate_randomized_with(
    alg: &(impl LocalAlgorithm + ?Sized),
    graph: &Graph,
    input: &HalfEdgeLabeling<InLabel>,
    seed: u64,
    n_announced: Option<usize>,
    opts: RunOptions<'_>,
) -> RunReport<LocalRun> {
    assert!(
        opts.fault_plan().is_none(),
        "why: randomized LOCAL has no faulted executor; run the deterministic \
         simulate_with under a plan instead"
    );
    simulate_randomized_impl(alg, graph, input, seed, n_announced, opts.event_log())
}

/// This is the instrumented entrypoint behind the facade's `Simulation`
/// trait; [`run_randomized`] forwards here and discards the trace.
#[deprecated(
    since = "0.1.0",
    note = "use `simulate_randomized_with(..., RunOptions::new())`"
)]
pub fn simulate_randomized(
    alg: &(impl LocalAlgorithm + ?Sized),
    graph: &Graph,
    input: &HalfEdgeLabeling<InLabel>,
    seed: u64,
    n_announced: Option<usize>,
) -> RunReport<LocalRun> {
    simulate_randomized_impl(alg, graph, input, seed, n_announced, None)
}

/// Like [`simulate_randomized`], with every view materialization recorded
/// as an [`Event::ViewMaterialized`] into the given [`EventLog`]. Since
/// randomized algorithms see no identifiers, the event's `node` field is
/// the node's index in the graph.
#[deprecated(
    since = "0.1.0",
    note = "use `simulate_randomized_with(..., RunOptions::new().events(log))`"
)]
pub fn simulate_randomized_logged(
    alg: &(impl LocalAlgorithm + ?Sized),
    graph: &Graph,
    input: &HalfEdgeLabeling<InLabel>,
    seed: u64,
    n_announced: Option<usize>,
    log: Option<&EventLog>,
) -> RunReport<LocalRun> {
    simulate_randomized_impl(alg, graph, input, seed, n_announced, log)
}

fn simulate_randomized_impl(
    alg: &(impl LocalAlgorithm + ?Sized),
    graph: &Graph,
    input: &HalfEdgeLabeling<InLabel>,
    seed: u64,
    n_announced: Option<usize>,
    log: Option<&EventLog>,
) -> RunReport<LocalRun> {
    let n = n_announced.unwrap_or_else(|| graph.node_count());
    // Pre-draw one 64-bit string per node.
    let mut rng = SmallRng::seed_from_u64(seed);
    let bits: Vec<u64> = (0..graph.node_count()).map(|_| rng.gen()).collect();
    let mut span = Span::start(format!("local/randomized/{}", alg.name()));
    let mut view_nodes = 0u64;
    let radius = alg.radius(n);
    let run = run_with(alg, graph, input, n, |ball| {
        view_nodes += ball.nodes.len() as u64;
        span.observe(Counter::ViewNodes, ball.nodes.len() as u64);
        if let Some(log) = log {
            log.record(Event::ViewMaterialized {
                node: ball.nodes[0].original.index() as u64,
                radius: u64::from(radius),
                size: ball.nodes.len() as u64,
            });
        }
        let bits = ball
            .nodes
            .iter()
            .map(|b| bits[b.original.index()])
            .collect();
        (Vec::new(), bits)
    });
    seal_local_span(&mut span, graph, &run, view_nodes);
    RunReport::new(run, Trace::new(span.finish()))
}

/// Runs a deterministic LOCAL algorithm, discarding the trace.
///
/// Note: superseded by [`simulate`], which additionally reports the
/// execution trace; this thin wrapper remains for source compatibility.
pub fn run_deterministic(
    alg: &(impl LocalAlgorithm + ?Sized),
    graph: &Graph,
    input: &HalfEdgeLabeling<InLabel>,
    ids: &IdAssignment,
    n_announced: Option<usize>,
) -> LocalRun {
    simulate_impl(alg, graph, input, ids, n_announced, None).outcome
}

/// Runs a randomized LOCAL algorithm, discarding the trace.
///
/// Note: superseded by [`simulate_randomized`], which additionally
/// reports the execution trace; this thin wrapper remains for source
/// compatibility.
pub fn run_randomized(
    alg: &(impl LocalAlgorithm + ?Sized),
    graph: &Graph,
    input: &HalfEdgeLabeling<InLabel>,
    seed: u64,
    n_announced: Option<usize>,
) -> LocalRun {
    simulate_randomized_impl(alg, graph, input, seed, n_announced, None).outcome
}

/// A Monte-Carlo estimate of an algorithm's local failure probability
/// (Definition 2.4): the maximum, over nodes and edges, of the empirical
/// probability that the algorithm fails at that object.
#[derive(Clone, PartialEq, Debug)]
pub struct FailureEstimate {
    /// Highest per-node failure frequency.
    pub max_node: f64,
    /// Highest per-edge failure frequency.
    pub max_edge: f64,
    /// Fraction of trials in which the global output was incorrect
    /// anywhere (the plain failure probability).
    pub global: f64,
    /// Number of trials run.
    pub trials: usize,
}

impl FailureEstimate {
    /// The local failure probability estimate: `max(max_node, max_edge)`.
    pub fn local(&self) -> f64 {
        self.max_node.max(self.max_edge)
    }
}

/// Estimates the local failure probability of a randomized algorithm by
/// running it `trials` times with fresh randomness.
///
/// # Errors
///
/// Returns [`InvalidConfig`] if `trials` is zero.
pub fn estimate_local_failure(
    problem: &(impl Problem + ?Sized),
    alg: &(impl LocalAlgorithm + ?Sized),
    graph: &Graph,
    input: &HalfEdgeLabeling<InLabel>,
    trials: usize,
    seed: u64,
) -> Result<FailureEstimate, InvalidConfig> {
    if trials == 0 {
        return Err(InvalidConfig {
            param: "trials",
            requirement: "> 0",
            got: 0,
        });
    }
    let mut node_failures = vec![0usize; graph.node_count()];
    let mut edge_failures = vec![0usize; graph.edge_count()];
    let mut global_failures = 0usize;
    for t in 0..trials {
        let run = run_randomized(alg, graph, input, seed.wrapping_add(t as u64), None);
        let violations = lcl::verify(problem, graph, input, &run.output);
        if !violations.is_empty() {
            global_failures += 1;
        }
        let mut failed_nodes = std::collections::BTreeSet::new();
        let mut failed_edges = std::collections::BTreeSet::new();
        for v in violations {
            match v {
                Violation::EdgeConfig { edge } | Violation::EdgeInputMap { edge, .. } => {
                    failed_edges.insert(edge);
                }
                Violation::NodeConfig { node } | Violation::NodeInputMap { node, .. } => {
                    failed_nodes.insert(node);
                }
            }
        }
        for node in failed_nodes {
            node_failures[node.index()] += 1;
        }
        for edge in failed_edges {
            edge_failures[edge.index()] += 1;
        }
    }
    let to_freq = |worst: Option<&usize>| worst.map_or(0.0, |&w| w as f64 / trials as f64);
    Ok(FailureEstimate {
        max_node: to_freq(node_failures.iter().max()),
        max_edge: to_freq(edge_failures.iter().max()),
        global: global_failures as f64 / trials as f64,
        trials,
    })
}

/// Like [`estimate_local_failure`], but spreads the trials over `threads`
/// OS threads with `std::thread::scope` (the estimation is embarrassingly
/// parallel: each trial has its own seed). Results are identical to the
/// sequential estimator for the same `(trials, seed)`.
///
/// # Errors
///
/// Returns [`InvalidConfig`] if `trials` or `threads` is zero.
pub fn estimate_local_failure_parallel(
    problem: &(impl Problem + Sync + ?Sized),
    alg: &(impl LocalAlgorithm + Sync + ?Sized),
    graph: &Graph,
    input: &HalfEdgeLabeling<InLabel>,
    trials: usize,
    seed: u64,
    threads: usize,
) -> Result<FailureEstimate, InvalidConfig> {
    if trials == 0 {
        return Err(InvalidConfig {
            param: "trials",
            requirement: "> 0",
            got: 0,
        });
    }
    if threads == 0 {
        return Err(InvalidConfig {
            param: "threads",
            requirement: "> 0",
            got: 0,
        });
    }
    let threads = threads.min(trials);
    // Per-trial failure records, merged after the scope.
    let results: Vec<(Vec<usize>, Vec<usize>, usize)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                // Chunk t handles trials t, t + threads, t + 2·threads, ...
                scope.spawn(move || {
                    let mut node_failures = vec![0usize; graph.node_count()];
                    let mut edge_failures = vec![0usize; graph.edge_count()];
                    let mut global_failures = 0usize;
                    let mut trial = t;
                    while trial < trials {
                        let run = run_randomized(
                            alg,
                            graph,
                            input,
                            seed.wrapping_add(trial as u64),
                            None,
                        );
                        let violations = lcl::verify(problem, graph, input, &run.output);
                        if !violations.is_empty() {
                            global_failures += 1;
                        }
                        let mut failed_nodes = std::collections::BTreeSet::new();
                        let mut failed_edges = std::collections::BTreeSet::new();
                        for v in violations {
                            match v {
                                Violation::EdgeConfig { edge }
                                | Violation::EdgeInputMap { edge, .. } => {
                                    failed_edges.insert(edge);
                                }
                                Violation::NodeConfig { node }
                                | Violation::NodeInputMap { node, .. } => {
                                    failed_nodes.insert(node);
                                }
                            }
                        }
                        for node in failed_nodes {
                            node_failures[node.index()] += 1;
                        }
                        for edge in failed_edges {
                            edge_failures[edge.index()] += 1;
                        }
                        trial += threads;
                    }
                    (node_failures, edge_failures, global_failures)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join()
                    .expect("join only fails if a worker panicked, and workers run the same code as the panic-free sequential estimator")
            })
            .collect()
    });
    let mut node_failures = vec![0usize; graph.node_count()];
    let mut edge_failures = vec![0usize; graph.edge_count()];
    let mut global_failures = 0usize;
    for (nodes, edges, global) in results {
        for (acc, x) in node_failures.iter_mut().zip(nodes) {
            *acc += x;
        }
        for (acc, x) in edge_failures.iter_mut().zip(edges) {
            *acc += x;
        }
        global_failures += global;
    }
    let to_freq = |worst: Option<&usize>| worst.map_or(0.0, |&w| w as f64 / trials as f64);
    Ok(FailureEstimate {
        max_node: to_freq(node_failures.iter().max()),
        max_edge: to_freq(edge_failures.iter().max()),
        global: global_failures as f64 / trials as f64,
        trials,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::FnAlgorithm;
    use lcl::LclProblem;
    use lcl_graph::gen;

    fn any_label_problem() -> LclProblem {
        LclProblem::builder("any", 3)
            .outputs(["X", "Y"])
            .node_pattern(&["X*", "Y*"])
            .edge(&["X", "X"])
            .edge(&["X", "Y"])
            .edge(&["Y", "Y"])
            .build()
            .unwrap()
    }

    #[test]
    fn deterministic_run_sees_ids() {
        let g = gen::path(4);
        // Output X iff the center has the locally largest id (radius 1).
        let alg = FnAlgorithm::new(
            "local-max",
            |_| 1,
            |view| {
                let me = view.center_id();
                let max = view.ids.iter().copied().max().unwrap();
                vec![OutLabel(u32::from(me == max)); view.center_degree()]
            },
        );
        let input = lcl::uniform_input(&g);
        let ids = IdAssignment::from_vec(vec![5, 9, 2, 7]);
        let run = run_deterministic(&alg, &g, &input, &ids, None);
        // Node 1 (id 9) is a local max; node 0 (id 5 < 9) is not.
        let h0 = g.half_edge(lcl_graph::NodeId(1), 0);
        assert_eq!(run.output.get(h0), OutLabel(1));
        let h1 = g.half_edge(lcl_graph::NodeId(0), 0);
        assert_eq!(run.output.get(h1), OutLabel(0));
    }

    #[test]
    fn randomized_run_is_reproducible() {
        let g = gen::cycle(6);
        let alg = FnAlgorithm::new(
            "coin",
            |_| 0,
            |view| vec![OutLabel((view.bits[0] % 2) as u32); view.center_degree()],
        );
        let input = lcl::uniform_input(&g);
        let a = run_randomized(&alg, &g, &input, 3, None);
        let b = run_randomized(&alg, &g, &input, 3, None);
        assert_eq!(a, b);
        let c = run_randomized(&alg, &g, &input, 4, None);
        assert!(a != c || a == c, "different seeds may differ");
    }

    #[test]
    fn announced_n_overrides_true_n() {
        let g = gen::path(4);
        let alg = FnAlgorithm::new(
            "echo-n",
            |_| 0,
            |view| vec![OutLabel(view.n as u32); view.center_degree()],
        );
        let input = lcl::uniform_input(&g);
        let ids = IdAssignment::sequential(4);
        let run = run_deterministic(&alg, &g, &input, &ids, Some(16));
        let h = g.half_edge(lcl_graph::NodeId(0), 0);
        assert_eq!(run.output.get(h), OutLabel(16));
    }

    #[test]
    fn failure_estimate_of_always_correct_algorithm_is_zero() {
        let g = gen::path(5);
        let p = any_label_problem();
        let alg = FnAlgorithm::new(
            "const",
            |_| 0,
            |view| vec![OutLabel(0); view.center_degree()],
        );
        let input = lcl::uniform_input(&g);
        let est = estimate_local_failure(&p, &alg, &g, &input, 10, 1).unwrap();
        assert_eq!(est.local(), 0.0);
        assert_eq!(est.global, 0.0);
    }

    #[test]
    fn zero_trials_and_zero_threads_are_typed_errors() {
        let g = gen::path(5);
        let p = any_label_problem();
        let alg = FnAlgorithm::new(
            "const",
            |_| 0,
            |view| vec![OutLabel(0); view.center_degree()],
        );
        let input = lcl::uniform_input(&g);
        let err = estimate_local_failure(&p, &alg, &g, &input, 0, 1).unwrap_err();
        assert_eq!(err.param, "trials");
        let err = estimate_local_failure_parallel(&p, &alg, &g, &input, 5, 1, 0).unwrap_err();
        assert_eq!(err.param, "threads");
    }

    #[test]
    fn failure_estimate_detects_coin_flips() {
        // 2-coloring attempted by pure coin flips must fail often.
        let p = LclProblem::builder("2col", 2)
            .outputs(["A", "B"])
            .node_pattern(&["A*"])
            .node_pattern(&["B*"])
            .edge(&["A", "B"])
            .build()
            .unwrap();
        let g = gen::path(6);
        let alg = FnAlgorithm::new(
            "coin",
            |_| 0,
            |view| vec![OutLabel((view.bits[0] % 2) as u32); view.center_degree()],
        );
        let input = lcl::uniform_input(&g);
        let est = estimate_local_failure(&p, &alg, &g, &input, 200, 5).unwrap();
        // Each edge is monochromatic with probability 1/2.
        assert!(est.max_edge > 0.3, "max_edge = {}", est.max_edge);
        assert!(est.global > 0.9);
    }

    #[test]
    fn parallel_estimator_matches_sequential() {
        let p = LclProblem::builder("2col", 2)
            .outputs(["A", "B"])
            .node_pattern(&["A*"])
            .node_pattern(&["B*"])
            .edge(&["A", "B"])
            .build()
            .unwrap();
        let g = gen::path(8);
        let alg = FnAlgorithm::new(
            "coin",
            |_| 0,
            |view| vec![OutLabel((view.bits[0] % 2) as u32); view.center_degree()],
        );
        let input = lcl::uniform_input(&g);
        let sequential = estimate_local_failure(&p, &alg, &g, &input, 64, 9).unwrap();
        for threads in [1, 3, 8] {
            let parallel =
                estimate_local_failure_parallel(&p, &alg, &g, &input, 64, 9, threads).unwrap();
            assert_eq!(parallel, sequential, "threads = {threads}");
        }
    }

    #[test]
    fn simulate_reports_view_counters() {
        let g = gen::path(4);
        let alg = FnAlgorithm::new(
            "radius-1",
            |_| 1,
            |view| vec![OutLabel(0); view.center_degree()],
        );
        let input = lcl::uniform_input(&g);
        let ids = IdAssignment::sequential(4);
        let report = simulate_with(&alg, &g, &input, &ids, None, RunOptions::new());
        assert!(!report.outcome.is_degraded());
        assert_eq!(
            report.outcome.outcome,
            run_deterministic(&alg, &g, &input, &ids, None)
        );
        let trace = &report.trace;
        assert_eq!(trace.total(Counter::Nodes), 4);
        assert_eq!(trace.total(Counter::Radius), 1);
        // Radius-1 balls on a 4-path: 2 + 3 + 3 + 2 nodes.
        assert_eq!(trace.total(Counter::ViewNodes), 10);
        assert!(!trace.is_empty());
    }

    #[test]
    fn simulate_logged_records_view_events() {
        use lcl_obs::{Event, EventLog};
        let g = gen::path(4);
        let alg = FnAlgorithm::new(
            "radius-1",
            |_| 1,
            |view| vec![OutLabel(0); view.center_degree()],
        );
        let input = lcl::uniform_input(&g);
        let ids = IdAssignment::sequential(4);
        let log = EventLog::new(64);
        let report = simulate_with(&alg, &g, &input, &ids, None, RunOptions::new().events(&log));
        let events = log.events();
        assert_eq!(events.len(), 4);
        assert_eq!(
            events[0],
            Event::ViewMaterialized {
                node: ids.id(lcl_graph::NodeId(0)),
                radius: 1,
                size: 2,
            }
        );
        let total: u64 = events
            .iter()
            .map(|e| match e {
                Event::ViewMaterialized { size, .. } => *size,
                _ => panic!("unexpected event {e:?}"),
            })
            .sum();
        assert_eq!(total, report.trace.total(Counter::ViewNodes));
        // Per-query ball sizes land in the ViewNodes histogram.
        let hist = report
            .trace
            .root()
            .histogram(Counter::ViewNodes)
            .expect("histogram recorded");
        assert_eq!(hist.count(), 4);
        assert_eq!(hist.sum(), 10);
    }

    #[test]
    fn cost_model_charges_views_to_their_centers() {
        use lcl_obs::{CostKind, EventLog};
        let g = gen::path(4);
        let alg = FnAlgorithm::new(
            "radius-1",
            |_| 1,
            |view| vec![OutLabel(0); view.center_degree()],
        );
        let input = lcl::uniform_input(&g);
        let ids = IdAssignment::sequential(4);
        // Zero capacity: a pure cost tally, no stored events.
        let log = EventLog::new(0);
        let report = simulate_with(&alg, &g, &input, &ids, None, RunOptions::new().events(&log));
        let cost = log.cost_model();
        assert_eq!(cost.get(CostKind::ViewMaterialized), 4);
        // Per-node work is the view size at each center; the total is
        // exactly the trace's ViewNodes counter.
        assert_eq!(cost.node_total(), report.trace.total(Counter::ViewNodes));
        assert_eq!(cost.node_count(), 4);
        assert_eq!(report.node_averaged_cost(), None, "log not attached");
        assert_eq!(cost.node_averaged(), Some(10.0 / 4.0));
    }

    #[test]
    fn simulate_randomized_traces_match_runs() {
        let g = gen::cycle(6);
        let alg = FnAlgorithm::new(
            "coin",
            |_| 0,
            |view| vec![OutLabel((view.bits[0] % 2) as u32); view.center_degree()],
        );
        let input = lcl::uniform_input(&g);
        let a = simulate_randomized_with(&alg, &g, &input, 3, None, RunOptions::new());
        let b = simulate_randomized_with(&alg, &g, &input, 3, None, RunOptions::new());
        assert_eq!(a.outcome, b.outcome);
        assert_eq!(a.trace.fingerprint(), b.trace.fingerprint());
        // Radius-0 balls: exactly one view node per query.
        assert_eq!(a.trace.total(Counter::ViewNodes), 6);
    }

    #[test]
    #[should_panic(expected = "label each port")]
    fn wrong_arity_is_rejected() {
        let g = gen::path(3);
        let alg = FnAlgorithm::new("bad", |_| 0, |_| vec![OutLabel(0)]);
        let input = lcl::uniform_input(&g);
        let ids = IdAssignment::sequential(3);
        let _ = run_deterministic(&alg, &g, &input, &ids, None);
    }
}
