//! Order-invariant LOCAL algorithms (Definition 2.7 of the paper).
//!
//! An order-invariant algorithm's output may depend on identifiers only
//! through their *relative order*. These algorithms are the pivot of every
//! speed-up argument in the paper: the Ramsey-theoretic step turns an
//! `o(log* n)` algorithm into an order-invariant one, and Theorem 2.11
//! turns an order-invariant `o(log n)`-round algorithm into an `O(1)`-round
//! one.

use lcl::{HalfEdgeLabeling, InLabel, OutLabel};
use lcl_graph::{Ball, Graph};

use crate::algorithm::LocalAlgorithm;
use crate::ids::IdAssignment;
use crate::run::LocalRun;
use crate::view::View;

/// The view an order-invariant algorithm sees: identifiers are replaced by
/// their ranks within the view.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RankView<'a> {
    /// The topology of the view.
    pub ball: &'a Ball,
    /// Announced number of nodes.
    pub n: usize,
    /// Rank of each ball node's identifier among the ids in the view
    /// (0 = smallest).
    pub ranks: Vec<u32>,
    /// Input labels per visible half-edge, flat (node-major, port-minor).
    pub inputs: Vec<InLabel>,
}

impl RankView<'_> {
    /// The flat half-edge index of port `port` of ball node `node`.
    pub fn half_edge_index(&self, node: usize, port: u8) -> usize {
        let mut idx = 0usize;
        for b in &self.ball.nodes[..node] {
            idx += b.ports.len();
        }
        idx + port as usize
    }

    /// The center's degree.
    pub fn center_degree(&self) -> usize {
        self.ball.center().ports.len()
    }
}

/// An order-invariant LOCAL algorithm (Definition 2.7): a function of the
/// rank view only.
pub trait OrderInvariantAlgorithm {
    /// The radius `T(n)`.
    fn radius(&self, n: usize) -> u32;

    /// Computes the outputs for the center's ports.
    fn label(&self, view: &RankView<'_>) -> Vec<OutLabel>;

    /// A short name for diagnostics.
    fn name(&self) -> &str {
        "anonymous"
    }
}

/// Runs an order-invariant algorithm under a concrete identifier
/// assignment (whose values, by definition, only matter through their
/// order).
pub fn run_order_invariant(
    alg: &(impl OrderInvariantAlgorithm + ?Sized),
    graph: &Graph,
    input: &HalfEdgeLabeling<InLabel>,
    ids: &IdAssignment,
    n_announced: Option<usize>,
) -> LocalRun {
    struct Adapter<'a, A: ?Sized>(&'a A);
    impl<A: OrderInvariantAlgorithm + ?Sized> LocalAlgorithm for Adapter<'_, A> {
        fn radius(&self, n: usize) -> u32 {
            self.0.radius(n)
        }
        fn label(&self, view: &View<'_>) -> Vec<OutLabel> {
            let ranks = local_ranks(&view.ids);
            self.0.label(&RankView {
                ball: view.ball,
                n: view.n,
                ranks,
                inputs: view.inputs.clone(),
            })
        }
        fn name(&self) -> &str {
            self.0.name()
        }
    }
    crate::run::run_deterministic(&Adapter(alg), graph, input, ids, n_announced)
}

/// Ranks of values within a slice (0 = smallest).
pub(crate) fn local_ranks(ids: &[u64]) -> Vec<u32> {
    let mut order: Vec<usize> = (0..ids.len()).collect();
    order.sort_by_key(|&i| ids[i]);
    let mut ranks = vec![0u32; ids.len()];
    for (rank, &i) in order.iter().enumerate() {
        ranks[i] = rank as u32;
    }
    ranks
}

/// Empirically checks whether `alg` behaves order-invariantly on `graph`:
/// the outputs must agree across `samples` order-preserving resamplings of
/// the identifier assignment.
///
/// A `true` answer is evidence, not proof (the Ramsey argument of the
/// paper is about *all* assignments); a `false` answer is a definite
/// counterexample.
pub fn is_empirically_order_invariant(
    alg: &(impl LocalAlgorithm + ?Sized),
    graph: &Graph,
    input: &HalfEdgeLabeling<InLabel>,
    base_ids: &IdAssignment,
    samples: usize,
    seed: u64,
) -> bool {
    let baseline = crate::run::run_deterministic(alg, graph, input, base_ids, None);
    for s in 0..samples {
        let fresh = base_ids.resample_order_preserving(3, seed.wrapping_add(s as u64));
        let run = crate::run::run_deterministic(alg, graph, input, &fresh, None);
        if run.output != baseline.output {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::FnAlgorithm;
    use lcl_graph::gen;

    struct LocalMin;
    impl OrderInvariantAlgorithm for LocalMin {
        fn radius(&self, _n: usize) -> u32 {
            1
        }
        fn label(&self, view: &RankView<'_>) -> Vec<OutLabel> {
            // 1 iff the center has the smallest id in its view.
            vec![OutLabel(u32::from(view.ranks[0] == 0)); view.center_degree()]
        }
        fn name(&self) -> &str {
            "local-min"
        }
    }

    #[test]
    fn order_invariant_algorithm_ignores_id_values() {
        let g = gen::path(5);
        let input = lcl::uniform_input(&g);
        let a = IdAssignment::from_vec(vec![10, 20, 5, 40, 30]);
        let b = IdAssignment::from_vec(vec![100, 250, 7, 999, 500]);
        let run_a = run_order_invariant(&LocalMin, &g, &input, &a, None);
        let run_b = run_order_invariant(&LocalMin, &g, &input, &b, None);
        assert_eq!(run_a.output, run_b.output);
    }

    #[test]
    fn checker_accepts_order_invariant_algorithm() {
        let g = gen::cycle(6);
        let input = lcl::uniform_input(&g);
        let ids = IdAssignment::random_polynomial(6, 3, 5);
        // Wrap LocalMin as a plain LocalAlgorithm using actual ids.
        let alg = FnAlgorithm::new(
            "local-min-ids",
            |_| 1,
            |view| {
                let me = view.ids[0];
                let min = view.ids.iter().copied().min().unwrap();
                vec![OutLabel(u32::from(me == min)); view.center_degree()]
            },
        );
        assert!(is_empirically_order_invariant(
            &alg, &g, &input, &ids, 8, 99
        ));
    }

    #[test]
    fn checker_rejects_value_dependent_algorithm() {
        let g = gen::cycle(6);
        let input = lcl::uniform_input(&g);
        let ids = IdAssignment::random_polynomial(6, 3, 5);
        // Output the parity of the raw identifier: order-preserving
        // resampling changes it.
        let alg = FnAlgorithm::new(
            "id-parity",
            |_| 0,
            |view| vec![OutLabel((view.ids[0] % 2) as u32); view.center_degree()],
        );
        assert!(!is_empirically_order_invariant(
            &alg, &g, &input, &ids, 16, 99
        ));
    }

    #[test]
    fn local_ranks_are_a_permutation() {
        let ranks = local_ranks(&[50, 10, 30]);
        assert_eq!(ranks, vec![2, 0, 1]);
    }
}
