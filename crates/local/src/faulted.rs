//! Fault-injected LOCAL execution with graceful degradation.
//!
//! The opt-in counterparts of [`simulate`](crate::simulate) and
//! [`simulate_sync`](crate::simulate_sync): a [`FaultPlan`] is applied
//! deterministically, node algorithm invocations run panic-isolated
//! ([`lcl_faults::isolate`]), and every fault becomes a typed
//! [`NodeFault`] record plus an [`Event::Fault`] in the event log. The
//! result is a [`Degraded`] run — never a process abort.
//!
//! Fault semantics (see DESIGN.md, "Fault model & budgets"):
//!
//! * **Crash-stop at round `r`** — the node's state freezes; it still
//!   re-emits its last outbox as a beacon (message types have no
//!   default, so fail-silence is modeled on the *receiver* side), never
//!   receives, and counts as done. In view-based runs a crash at round
//!   `r ≤ T` means the node cannot finish collecting its radius-`T`
//!   view and emits placeholder labels.
//! * **View corruption** — identifiers/bits in the node's ball are
//!   XOR-perturbed with a mask derived from the plan; the node still
//!   answers, possibly incorrectly, and the verifier localizes the
//!   damage.
//! * **Injected/genuine panics** — caught, recorded, and the node
//!   treated as crashed from that round on.
//! * **Non-halting** — a faulted sync run that exhausts `max_rounds`
//!   degrades (one fault record per unfinished node) instead of
//!   panicking.
//!
//! Determinism: outcomes are a pure function of
//! `(algorithm, instance, ids, plan)` — repeated runs are bit-identical.

use lcl::{HalfEdgeLabeling, InLabel, OutLabel};
use lcl_faults::{inject_panic, isolate, plan::perturb, Degraded, FaultPlan, NodeFault};
use lcl_graph::Graph;
use lcl_obs::{Counter, Event, EventLog, RunReport, Span, Trace};

use crate::algorithm::LocalAlgorithm;
use crate::ids::IdAssignment;
use crate::run::LocalRun;
use crate::sync::{NodeInit, SyncAlgorithm, SyncRun};
use crate::view::View;

fn record_fault(
    faults: &mut Vec<NodeFault>,
    log: Option<&EventLog>,
    node: u64,
    round: u64,
    tag: &'static str,
    payload: String,
) {
    if let Some(log) = log {
        log.record(Event::Fault {
            node,
            round,
            fault: tag,
        });
    }
    faults.push(NodeFault {
        node,
        round,
        payload,
    });
}

/// Runs a deterministic LOCAL algorithm under a [`FaultPlan`].
///
/// The plan's ID permutation (if any) is applied first; then every node
/// evaluates its view-function panic-isolated. Crashed nodes (crash
/// round ≤ the requested radius) and panicking nodes emit placeholder
/// labels (`OutLabel(0)` per port) and a [`NodeFault`]; corrupted views
/// perturb the identifiers the node sees. Fault events land in `log`.
#[deprecated(
    since = "0.1.0",
    note = "use `simulate_with(..., RunOptions::new().faults(plan).events(log))`"
)]
pub fn simulate_faulted(
    alg: &(impl LocalAlgorithm + ?Sized),
    graph: &Graph,
    input: &HalfEdgeLabeling<InLabel>,
    ids: &IdAssignment,
    n_announced: Option<usize>,
    plan: &FaultPlan,
    log: Option<&EventLog>,
) -> RunReport<Degraded<LocalRun>> {
    simulate_faulted_impl(alg, graph, input, ids, n_announced, plan, log)
}

pub(crate) fn simulate_faulted_impl(
    alg: &(impl LocalAlgorithm + ?Sized),
    graph: &Graph,
    input: &HalfEdgeLabeling<InLabel>,
    ids: &IdAssignment,
    n_announced: Option<usize>,
    plan: &FaultPlan,
    log: Option<&EventLog>,
) -> RunReport<Degraded<LocalRun>> {
    assert_eq!(ids.len(), graph.node_count(), "ids cover the graph");
    let permuted;
    let ids = match plan.permutation(graph.node_count()) {
        Some(perm) => {
            permuted = ids.permuted(&perm);
            &permuted
        }
        None => ids,
    };
    let n = n_announced.unwrap_or_else(|| graph.node_count());
    let radius = alg.radius(n);
    let mut span = Span::start(format!("local/faulted/{}", alg.name()));
    let mut faults = Vec::new();
    let mut view_nodes = 0u64;
    let output = HalfEdgeLabeling::from_node_fn(graph, |v| {
        let degree = graph.degree(v) as usize;
        let node = v.index() as u64;
        if plan.crash_round(v.index()).is_some_and(|r| r <= radius) {
            record_fault(&mut faults, log, node, 0, "crash-stop", "crash-stop".into());
            return vec![OutLabel(0); degree];
        }
        let ball = graph.ball(v, radius);
        view_nodes += ball.nodes.len() as u64;
        span.observe(Counter::ViewNodes, ball.nodes.len() as u64);
        let mut ball_ids: Vec<u64> = ball.nodes.iter().map(|b| ids.id(b.original)).collect();
        if let Some(salt) = plan.corrupt_salt(v.index()) {
            if let Some(log) = log {
                log.record(Event::Fault {
                    node,
                    round: 0,
                    fault: "corrupt-view",
                });
            }
            // The center still knows its own id; the rest of the view is
            // the adversary's to rewrite.
            for (i, id) in ball_ids.iter_mut().enumerate().skip(1) {
                *id ^= perturb(salt, i as u64);
            }
        }
        let inputs = ball
            .nodes
            .iter()
            .flat_map(|b| b.half_edges.iter().map(|&h| input.get(h)))
            .collect();
        let view = View {
            ball: &ball,
            n,
            ids: ball_ids,
            bits: Vec::new(),
            inputs,
        };
        let labels = if plan.panics(v.index()) {
            isolate(|| inject_panic(node))
        } else {
            isolate(|| alg.label(&view))
        };
        match labels {
            Ok(labels) if labels.len() == degree => labels,
            Ok(labels) => {
                let payload = format!(
                    "returned {} labels for a degree-{degree} center",
                    labels.len()
                );
                record_fault(&mut faults, log, node, 0, "wrong-arity", payload);
                vec![OutLabel(0); degree]
            }
            Err(payload) => {
                record_fault(&mut faults, log, node, 0, "panic", payload);
                vec![OutLabel(0); degree]
            }
        }
    });
    let run = LocalRun { output, radius };
    span.set(Counter::Nodes, graph.node_count() as u64);
    span.set(Counter::Edges, graph.edge_count() as u64);
    span.set(Counter::Queries, graph.node_count() as u64);
    span.set(Counter::Radius, u64::from(radius));
    span.set(Counter::Rounds, u64::from(radius));
    span.set(Counter::ViewNodes, view_nodes);
    span.set(Counter::Faults, faults.len() as u64);
    let degraded = Degraded {
        outcome: run,
        faults,
    };
    RunReport::new(degraded, Trace::new(span.finish()))
}

/// Runs a [`SyncAlgorithm`] under a [`FaultPlan`], degrading instead of
/// panicking.
///
/// Crash-stopped and panicked nodes freeze: they re-emit their last
/// outbox as a beacon, never receive, and count as done. A node whose
/// inbox is missing a message (a neighbor died before ever sending)
/// skips its receive for that round. Exhausting `max_rounds` records
/// one fault per unfinished node and returns the partial output.
#[deprecated(
    since = "0.1.0",
    note = "use `simulate_sync_with(..., RunOptions::new().faults(plan).events(log))`"
)]
#[allow(clippy::too_many_arguments)]
pub fn simulate_sync_faulted<A: SyncAlgorithm>(
    alg: &A,
    graph: &Graph,
    input: &HalfEdgeLabeling<InLabel>,
    ids: &[u64],
    n_announced: Option<usize>,
    max_rounds: u32,
    plan: &FaultPlan,
    log: Option<&EventLog>,
) -> RunReport<Degraded<SyncRun>> {
    simulate_sync_faulted_impl(alg, graph, input, ids, n_announced, max_rounds, plan, log)
}

#[allow(clippy::too_many_arguments)]
pub(crate) fn simulate_sync_faulted_impl<A: SyncAlgorithm>(
    alg: &A,
    graph: &Graph,
    input: &HalfEdgeLabeling<InLabel>,
    ids: &[u64],
    n_announced: Option<usize>,
    max_rounds: u32,
    plan: &FaultPlan,
    log: Option<&EventLog>,
) -> RunReport<Degraded<SyncRun>> {
    assert_eq!(ids.len(), graph.node_count(), "ids cover the graph");
    let owned;
    let ids = match plan.permutation(graph.node_count()) {
        Some(perm) => {
            owned = IdAssignment::from_vec(ids.to_vec())
                .permuted(&perm)
                .iter()
                .collect::<Vec<u64>>();
            &owned[..]
        }
        None => ids,
    };
    let n = n_announced.unwrap_or_else(|| graph.node_count());
    let mut span = Span::start(format!("local/sync-faulted/{}", alg.name()));
    let mut faults: Vec<NodeFault> = Vec::new();
    let mut messages = 0u64;

    let mut states: Vec<Option<A::State>> = Vec::with_capacity(graph.node_count());
    for v in graph.nodes() {
        let init = NodeInit {
            node: v,
            n,
            id: ids[v.index()],
            degree: graph.degree(v),
            inputs: graph.half_edges_of(v).map(|h| input.get(h)).collect(),
        };
        match isolate(|| alg.init(&init)) {
            Ok(state) => states.push(Some(state)),
            Err(payload) => {
                record_fault(&mut faults, log, v.index() as u64, 0, "panic", payload);
                states.push(None);
            }
        }
    }

    // The round at which each node died (crash fault, caught panic, or a
    // failed init); dead nodes beacon their last outbox and never receive.
    let mut died: Vec<Option<u32>> = states
        .iter()
        .map(|s| if s.is_none() { Some(0) } else { None })
        .collect();
    let mut last_outbox: Vec<Option<Vec<A::Msg>>> = vec![None; graph.node_count()];
    let mut rounds = 0u32;
    loop {
        let all_done = graph.nodes().all(|v| {
            died[v.index()].is_some()
                || states[v.index()]
                    .as_ref()
                    .is_some_and(|s| isolate(|| alg.is_done(s)).unwrap_or(true))
        });
        if all_done {
            break;
        }
        if rounds >= max_rounds {
            for v in graph.nodes() {
                let i = v.index();
                let live = died[i].is_none();
                let not_done = states[i]
                    .as_ref()
                    .is_some_and(|s| !isolate(|| alg.is_done(s)).unwrap_or(true));
                if live && not_done {
                    record_fault(
                        &mut faults,
                        log,
                        i as u64,
                        u64::from(rounds),
                        "no-halt",
                        format!("did not halt within {max_rounds} rounds"),
                    );
                }
            }
            break;
        }
        if let Some(log) = log {
            log.record(Event::RoundStart {
                round: u64::from(rounds),
            });
        }
        // Scheduled crash-stops bite before the send phase of their round.
        for v in graph.nodes() {
            let i = v.index();
            if died[i].is_none() && plan.crash_round(i) == Some(rounds) {
                record_fault(
                    &mut faults,
                    log,
                    i as u64,
                    u64::from(rounds),
                    "crash-stop",
                    "crash-stop".into(),
                );
                died[i] = Some(rounds);
            }
        }
        // Send phase. Dead nodes beacon their last outbox (or stay mute if
        // they never sent); injected panics hit a node's first send.
        let outboxes: Vec<Option<Vec<A::Msg>>> = graph
            .nodes()
            .map(|v| {
                let i = v.index();
                if died[i].is_some() {
                    return last_outbox[i].clone();
                }
                let state = states[i]
                    .as_ref()
                    .expect("why: died[i] is None, and every live node holds a state");
                let sent = if plan.panics(i) && rounds == 0 {
                    isolate(|| inject_panic(i as u64))
                } else {
                    isolate(|| alg.send(state, rounds))
                };
                match sent {
                    Ok(out) if out.len() == graph.degree(v) as usize => Some(out),
                    Ok(out) => {
                        let payload = format!(
                            "sent {} messages from a degree-{} node",
                            out.len(),
                            graph.degree(v)
                        );
                        record_fault(
                            &mut faults,
                            log,
                            i as u64,
                            u64::from(rounds),
                            "wrong-arity",
                            payload,
                        );
                        died[i] = Some(rounds);
                        last_outbox[i].clone()
                    }
                    Err(payload) => {
                        record_fault(
                            &mut faults,
                            log,
                            i as u64,
                            u64::from(rounds),
                            "panic",
                            payload,
                        );
                        died[i] = Some(rounds);
                        last_outbox[i].clone()
                    }
                }
            })
            .collect();
        messages += outboxes
            .iter()
            .map(|o| o.as_ref().map_or(0, |m| m.len() as u64))
            .sum::<u64>();
        // Deliver phase: live nodes with a complete inbox receive; a
        // missing message (mute dead neighbor) skips the round instead.
        for v in graph.nodes() {
            let i = v.index();
            if died[i].is_some() {
                continue;
            }
            let inbox: Option<Vec<A::Msg>> = graph
                .half_edges_of(v)
                .map(|h| {
                    let twin = graph.twin(h);
                    let u = graph.node_of(twin);
                    outboxes[u.index()]
                        .as_ref()
                        .map(|o| o[graph.port_of(twin) as usize].clone())
                })
                .collect();
            if let Some(inbox) = inbox {
                let state = states[i]
                    .as_mut()
                    .expect("why: died[i] is None, and every live node holds a state");
                if let Err(payload) = isolate(|| alg.receive(state, &inbox, rounds)) {
                    record_fault(
                        &mut faults,
                        log,
                        i as u64,
                        u64::from(rounds),
                        "panic",
                        payload,
                    );
                    died[i] = Some(rounds);
                }
            }
        }
        for (slot, sent) in last_outbox.iter_mut().zip(&outboxes) {
            if sent.is_some() {
                *slot = sent.clone();
            }
        }
        if let Some(log) = log {
            log.record(Event::RoundEnd {
                round: u64::from(rounds),
                messages: outboxes
                    .iter()
                    .map(|o| o.as_ref().map_or(0, |m| m.len() as u64))
                    .sum(),
            });
        }
        rounds += 1;
    }

    let output = HalfEdgeLabeling::from_node_fn(graph, |v| {
        let i = v.index();
        let degree = graph.degree(v) as usize;
        let Some(state) = states[i].as_ref() else {
            return vec![OutLabel(0); degree];
        };
        // A plan that panics a node which never got to send (0-round
        // algorithms) still bites at the output step.
        let labels = if plan.panics(i) && died[i].is_none() && rounds == 0 {
            isolate(|| inject_panic(i as u64))
        } else {
            isolate(|| alg.output(state))
        };
        match labels {
            Ok(out) if out.len() == degree => out,
            Ok(out) => {
                let payload = format!("labeled {} ports of a degree-{degree} node", out.len());
                record_fault(
                    &mut faults,
                    log,
                    i as u64,
                    u64::from(rounds),
                    "wrong-arity",
                    payload,
                );
                vec![OutLabel(0); degree]
            }
            Err(payload) => {
                if died[i].is_none() {
                    record_fault(
                        &mut faults,
                        log,
                        i as u64,
                        u64::from(rounds),
                        "panic",
                        payload,
                    );
                }
                vec![OutLabel(0); degree]
            }
        }
    });

    span.set(Counter::Nodes, graph.node_count() as u64);
    span.set(Counter::Edges, graph.edge_count() as u64);
    span.set(Counter::Rounds, u64::from(rounds));
    span.set(Counter::Messages, messages);
    span.set(Counter::Faults, faults.len() as u64);
    let degraded = Degraded {
        outcome: SyncRun { output, rounds },
        faults,
    };
    RunReport::new(degraded, Trace::new(span.finish()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::FnAlgorithm;
    use lcl_faults::Fault;
    use lcl_graph::gen;

    fn echo_id_alg() -> FnAlgorithm<impl Fn(usize) -> u32, impl Fn(&View) -> Vec<OutLabel>> {
        FnAlgorithm::new(
            "echo-id",
            |_| 1,
            |view| vec![OutLabel(view.center_id() as u32); view.center_degree()],
        )
    }

    #[test]
    fn empty_plan_matches_the_unfaulted_run() {
        let g = gen::path(5);
        let input = lcl::uniform_input(&g);
        let ids = IdAssignment::sequential(5);
        let plan = FaultPlan::new(3);
        let report = simulate_faulted_impl(&echo_id_alg(), &g, &input, &ids, None, &plan, None);
        assert!(!report.outcome.is_degraded());
        let plain = crate::run::run_deterministic(&echo_id_alg(), &g, &input, &ids, None);
        assert_eq!(report.outcome.outcome, plain);
    }

    #[test]
    fn crash_and_panic_degrade_without_aborting() {
        let g = gen::path(5);
        let input = lcl::uniform_input(&g);
        let ids = IdAssignment::sequential(5);
        let plan = FaultPlan::new(0)
            .with(Fault::Crash { node: 1, round: 0 })
            .with(Fault::PanicNode { node: 3 });
        let log = EventLog::new(64);
        let report =
            simulate_faulted_impl(&echo_id_alg(), &g, &input, &ids, None, &plan, Some(&log));
        let degraded = &report.outcome;
        assert!(degraded.is_degraded());
        assert_eq!(degraded.faults.len(), 2);
        assert_eq!(degraded.faults[0].payload, "crash-stop");
        assert!(degraded.faults[1]
            .payload
            .contains("injected panic at node 3"));
        assert_eq!(report.trace.total(Counter::Faults), 2);
        let fault_events = log
            .events()
            .iter()
            .filter(|e| matches!(e, Event::Fault { .. }))
            .count();
        assert_eq!(fault_events, 2);
        // Healthy nodes still answered from their own views.
        let h = g.half_edge(lcl_graph::NodeId(0), 0);
        assert_eq!(degraded.outcome.output.get(h), OutLabel(0));
    }

    #[test]
    fn corrupt_view_changes_output_but_not_center() {
        let g = gen::path(4);
        let input = lcl::uniform_input(&g);
        let ids = IdAssignment::from_vec(vec![10, 20, 30, 40]);
        // Output the max id in view: corruption of neighbors can change it.
        let alg = FnAlgorithm::new(
            "max-id",
            |_| 1,
            |view| {
                let max = view.ids.iter().copied().max().unwrap_or(0);
                vec![OutLabel((max % 1000) as u32); view.center_degree()]
            },
        );
        let plan = FaultPlan::new(0).with(Fault::CorruptView { node: 1, salt: 7 });
        let a = simulate_faulted_impl(&alg, &g, &input, &ids, None, &plan, None);
        let b = simulate_faulted_impl(&alg, &g, &input, &ids, None, &plan, None);
        assert_eq!(a.outcome, b.outcome, "corruption is deterministic");
        // No fault record: the node answered, possibly wrongly.
        assert!(!a.outcome.is_degraded());
    }

    #[test]
    fn id_permutation_is_applied_and_deterministic() {
        let g = gen::path(4);
        let input = lcl::uniform_input(&g);
        let ids = IdAssignment::from_vec(vec![10, 20, 30, 40]);
        let plan = FaultPlan::new(9).with_permuted_ids();
        let run = simulate_faulted_impl(&echo_id_alg(), &g, &input, &ids, None, &plan, None);
        let seen: Vec<u32> = g
            .nodes()
            .map(|v| run.outcome.outcome.output.get(g.half_edge(v, 0)).0)
            .collect();
        let mut sorted = seen.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![10, 20, 30, 40], "same id multiset");
        let again = simulate_faulted_impl(&echo_id_alg(), &g, &input, &ids, None, &plan, None);
        assert_eq!(run.outcome, again.outcome);
    }

    // A flood-style sync algorithm for the message-passing executor.
    struct Flood {
        k: u32,
    }

    #[derive(Clone)]
    struct FloodState {
        best: u64,
        mine: u64,
        degree: usize,
        round: u32,
        k: u32,
    }

    impl SyncAlgorithm for Flood {
        type State = FloodState;
        type Msg = u64;

        fn init(&self, init: &NodeInit) -> FloodState {
            FloodState {
                best: init.id,
                mine: init.id,
                degree: init.degree as usize,
                round: 0,
                k: self.k,
            }
        }

        fn send(&self, state: &FloodState, _round: u32) -> Vec<u64> {
            vec![state.best; state.degree]
        }

        fn receive(&self, state: &mut FloodState, inbox: &[u64], _round: u32) {
            for &m in inbox {
                state.best = state.best.max(m);
            }
            state.round += 1;
        }

        fn is_done(&self, state: &FloodState) -> bool {
            state.round >= state.k
        }

        fn output(&self, state: &FloodState) -> Vec<OutLabel> {
            vec![OutLabel(u32::from(state.best == state.mine)); state.degree]
        }

        fn name(&self) -> &str {
            "flood-max"
        }
    }

    #[test]
    fn faulted_sync_with_empty_plan_matches_plain_sync() {
        let g = gen::path(6);
        let input = lcl::uniform_input(&g);
        let ids: Vec<u64> = vec![3, 9, 1, 4, 0, 2];
        let plan = FaultPlan::new(0);
        let report =
            simulate_sync_faulted_impl(&Flood { k: 3 }, &g, &input, &ids, None, 100, &plan, None);
        assert!(!report.outcome.is_degraded());
        let plain = crate::sync::run_sync(&Flood { k: 3 }, &g, &input, &ids, None, 100);
        assert_eq!(report.outcome.outcome, plain);
    }

    #[test]
    fn crashed_sync_node_freezes_but_run_completes() {
        let g = gen::path(6);
        let input = lcl::uniform_input(&g);
        let ids: Vec<u64> = vec![3, 9, 1, 4, 0, 2];
        let plan = FaultPlan::new(0).with(Fault::Crash { node: 5, round: 1 });
        let report =
            simulate_sync_faulted_impl(&Flood { k: 5 }, &g, &input, &ids, None, 100, &plan, None);
        let degraded = &report.outcome;
        assert!(degraded.is_degraded());
        assert_eq!(degraded.faults[0].payload, "crash-stop");
        assert_eq!(degraded.faults[0].node, 5);
        // The run still halts: live nodes complete their k rounds.
        assert!(report.outcome.outcome.rounds <= 6);
    }

    #[test]
    fn panicking_sync_node_is_isolated_and_becomes_a_beacon() {
        let g = gen::path(4);
        let input = lcl::uniform_input(&g);
        let ids: Vec<u64> = vec![0, 1, 2, 3];
        let plan = FaultPlan::new(0).with(Fault::PanicNode { node: 2 });
        let report =
            simulate_sync_faulted_impl(&Flood { k: 2 }, &g, &input, &ids, None, 100, &plan, None);
        let degraded = &report.outcome;
        assert!(degraded.is_degraded());
        assert!(degraded.faults[0]
            .payload
            .contains("injected panic at node 2"));
        // Node 2 died before ever sending, so its neighbors skip receives
        // on that side but the run still terminates (node 2 counts done).
        assert!(report.outcome.outcome.rounds <= 100);
    }

    #[test]
    fn non_halting_sync_degrades_instead_of_panicking() {
        let g = gen::path(3);
        let input = lcl::uniform_input(&g);
        let ids: Vec<u64> = vec![0, 1, 2];
        let plan = FaultPlan::new(0);
        let report =
            simulate_sync_faulted_impl(&Flood { k: 1000 }, &g, &input, &ids, None, 5, &plan, None);
        let degraded = &report.outcome;
        assert_eq!(degraded.outcome.rounds, 5);
        assert_eq!(degraded.faults.len(), 3, "every node reported unfinished");
        assert!(degraded.faults[0]
            .payload
            .contains("did not halt within 5 rounds"));
    }

    #[test]
    fn faulted_runs_are_bit_identical_for_the_same_plan() {
        let g = gen::cycle(8);
        let input = lcl::uniform_input(&g);
        let ids: Vec<u64> = (0..8).collect();
        for seed in 0..20 {
            let plan = FaultPlan::random(seed, 8, 4);
            let a = simulate_sync_faulted_impl(
                &Flood { k: 3 },
                &g,
                &input,
                &ids,
                None,
                50,
                &plan,
                None,
            );
            let b = simulate_sync_faulted_impl(
                &Flood { k: 3 },
                &g,
                &input,
                &ids,
                None,
                50,
                &plan,
                None,
            );
            assert_eq!(a.outcome, b.outcome, "seed {seed}");
            assert_eq!(a.trace.fingerprint(), b.trace.fingerprint(), "seed {seed}");
        }
    }
}
