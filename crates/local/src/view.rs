//! The radius-`T` view a LOCAL algorithm computes from.

use lcl::InLabel;
use lcl_graph::Ball;

/// Everything a node knows in a `T`-round LOCAL algorithm (Definition 2.1):
/// its radius-`T` ball, the total number of nodes `n`, per-node identifiers
/// or random bit strings, and the input labels of every visible half-edge.
///
/// Per-node data is indexed by ball-node position (0 = the center);
/// half-edge data is flat in node-major, port-minor order, addressed via
/// [`View::half_edge_index`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct View<'a> {
    /// The topology of the view.
    pub ball: &'a Ball,
    /// The number of nodes of the input graph, as announced to the nodes.
    /// (The paper stresses that nodes knowing the exact `n` is the *harder*
    /// setting for the speed-up; the simulator can announce any value.)
    pub n: usize,
    /// Unique identifiers per ball node (deterministic algorithms); empty
    /// for randomized runs.
    pub ids: Vec<u64>,
    /// Random bit strings per ball node (randomized algorithms); empty for
    /// deterministic runs.
    pub bits: Vec<u64>,
    /// Input labels per visible half-edge, flat.
    pub inputs: Vec<InLabel>,
}

impl View<'_> {
    /// The flat half-edge index of port `port` of ball node `node`.
    pub fn half_edge_index(&self, node: usize, port: u8) -> usize {
        let mut idx = 0usize;
        for b in &self.ball.nodes[..node] {
            idx += b.ports.len();
        }
        idx + port as usize
    }

    /// The input label on port `port` of ball node `node`.
    pub fn input_at(&self, node: usize, port: u8) -> InLabel {
        self.inputs[self.half_edge_index(node, port)]
    }

    /// The identifier of the center.
    ///
    /// # Panics
    ///
    /// Panics in randomized runs (no identifiers present).
    pub fn center_id(&self) -> u64 {
        self.ids[0]
    }

    /// The center's degree.
    pub fn center_degree(&self) -> usize {
        self.ball.center().ports.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcl_graph::{gen, NodeId};

    #[test]
    fn half_edge_index_is_node_major() {
        let g = gen::path(5);
        let ball = g.ball(NodeId(2), 1);
        let view = View {
            ball: &ball,
            n: 5,
            ids: vec![0; ball.node_count()],
            bits: vec![],
            inputs: vec![InLabel(0); 6],
        };
        // Center (degree 2) occupies indices 0..2, next node starts at 2.
        assert_eq!(view.half_edge_index(0, 1), 1);
        assert_eq!(view.half_edge_index(1, 0), 2);
        assert_eq!(view.center_degree(), 2);
    }
}
