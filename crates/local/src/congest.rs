//! CONGEST-style message accounting.
//!
//! The CONGEST model restricts messages to `O(log n)` bits (footnote 3 of
//! the paper); a recent result the paper discusses (\[BCMOS21\] in its
//! bibliography) shows that on *trees* every LCL has the same asymptotic
//! complexity in LOCAL and CONGEST. This module makes the bandwidth of a
//! [`SyncAlgorithm`] measurable, so the suite's algorithms can certify
//! themselves CONGEST-compatible: the executor reports the maximum message
//! size actually sent.

use lcl::{HalfEdgeLabeling, InLabel};
use lcl_graph::Graph;

use crate::sync::{run_sync_with, SyncAlgorithm, SyncRun};

/// Bit-size measurement for message types.
pub trait MessageBits {
    /// An upper bound on the bits needed to encode `self`.
    fn message_bits(&self) -> usize;
}

impl MessageBits for u64 {
    fn message_bits(&self) -> usize {
        64 - self.leading_zeros() as usize
    }
}

impl MessageBits for bool {
    fn message_bits(&self) -> usize {
        1
    }
}

impl<T: MessageBits> MessageBits for Vec<T> {
    fn message_bits(&self) -> usize {
        self.iter().map(MessageBits::message_bits).sum()
    }
}

impl<A: MessageBits, B: MessageBits> MessageBits for (A, B) {
    fn message_bits(&self) -> usize {
        self.0.message_bits() + self.1.message_bits()
    }
}

impl<A: MessageBits, B: MessageBits, C: MessageBits> MessageBits for (A, B, C) {
    fn message_bits(&self) -> usize {
        self.0.message_bits() + self.1.message_bits() + self.2.message_bits()
    }
}

impl MessageBits for u8 {
    fn message_bits(&self) -> usize {
        8
    }
}

impl MessageBits for u32 {
    fn message_bits(&self) -> usize {
        32 - self.leading_zeros() as usize
    }
}

/// A [`SyncRun`] plus bandwidth statistics.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CongestRun {
    /// The underlying run.
    pub run: SyncRun,
    /// The largest single message, in bits.
    pub max_message_bits: usize,
    /// Total bits sent over the whole execution.
    pub total_bits: u64,
}

impl CongestRun {
    /// Whether every message fit in `c · ⌈log₂ n⌉` bits.
    pub fn is_congest(&self, n: usize, c: usize) -> bool {
        let log_n = (usize::BITS - n.leading_zeros()) as usize;
        self.max_message_bits <= c * log_n
    }
}

/// Runs a [`SyncAlgorithm`] while measuring message sizes.
///
/// # Panics
///
/// As [`run_sync`](crate::sync::run_sync).
pub fn run_congest<A>(
    alg: &A,
    graph: &Graph,
    input: &HalfEdgeLabeling<InLabel>,
    ids: &[u64],
    n_announced: Option<usize>,
    max_rounds: u32,
) -> CongestRun
where
    A: SyncAlgorithm,
    A::Msg: MessageBits,
{
    let mut max_message_bits = 0usize;
    let mut total_bits = 0u64;
    let run = run_sync_with(alg, graph, input, ids, n_announced, max_rounds, |msg| {
        let bits = msg.message_bits();
        max_message_bits = max_message_bits.max(bits);
        total_bits += bits as u64;
    });
    CongestRun {
        run,
        max_message_bits,
        total_bits,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sync::NodeInit;
    use lcl::OutLabel;
    use lcl_graph::gen;

    /// Flood the maximum id for `k` rounds (messages are ids: log n bits).
    struct Flood {
        k: u32,
    }

    #[derive(Clone)]
    struct St {
        best: u64,
        degree: usize,
        round: u32,
        k: u32,
    }

    impl SyncAlgorithm for Flood {
        type State = St;
        type Msg = u64;
        fn init(&self, init: &NodeInit) -> St {
            St {
                best: init.id,
                degree: init.degree as usize,
                round: 0,
                k: self.k,
            }
        }
        fn send(&self, s: &St, _r: u32) -> Vec<u64> {
            vec![s.best; s.degree]
        }
        fn receive(&self, s: &mut St, inbox: &[u64], _r: u32) {
            for &m in inbox {
                s.best = s.best.max(m);
            }
            s.round += 1;
        }
        fn is_done(&self, s: &St) -> bool {
            s.round >= s.k
        }
        fn output(&self, s: &St) -> Vec<OutLabel> {
            vec![OutLabel(0); s.degree]
        }
    }

    #[test]
    fn id_flooding_is_congest() {
        let g = gen::cycle(16);
        let input = lcl::uniform_input(&g);
        let ids: Vec<u64> = (0..16).collect();
        let run = run_congest(&Flood { k: 3 }, &g, &input, &ids, None, 100);
        assert!(run.max_message_bits <= 4); // ids < 16
        assert!(run.is_congest(16, 1));
        assert_eq!(run.run.rounds, 3);
        assert!(run.total_bits > 0);
    }

    #[test]
    fn message_bits_instances() {
        assert_eq!(0u64.message_bits(), 0);
        assert_eq!(255u64.message_bits(), 8);
        assert_eq!(true.message_bits(), 1);
        assert_eq!(vec![1u64, 255].message_bits(), 9);
        assert_eq!((3u64, true).message_bits(), 3);
        assert_eq!((1u64, 2u8, false).message_bits(), 10);
    }
}
