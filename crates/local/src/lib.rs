//! The LOCAL model of distributed computing (Definition 2.1 of the paper),
//! as an executable simulator.
//!
//! A `T`-round LOCAL algorithm is *defined* as a function from radius-`T`
//! views to outputs; this crate evaluates exactly that definition:
//!
//! * [`View`] — everything a node knows after `T` rounds: the ball
//!   `B_G(v, T)` (with the paper's precise visibility rules), the number of
//!   nodes `n`, unique identifiers (deterministic algorithms) or random bit
//!   strings (randomized algorithms), and the input labels in the view.
//! * [`LocalAlgorithm`] — the view-to-output function; run it with
//!   [`run_deterministic`] / [`run_randomized`].
//! * [`SyncAlgorithm`] — the equivalent message-passing formulation, for
//!   naturally iterative algorithms (Cole–Vishkin, rake-and-compress);
//!   the executor counts the rounds actually used.
//! * [`OrderInvariantAlgorithm`] — Definition 2.7: algorithms that only see
//!   the relative order of identifiers; includes an empirical
//!   order-invariance checker used by the speed-up theorems.
//! * [`estimate_local_failure`] — Monte-Carlo estimation of the *local
//!   failure probability* (Definition 2.4) of a randomized algorithm.
//! * [`simulate_faulted`] / [`simulate_sync_faulted`] — the same
//!   executors under a deterministic fault plan (crash-stops, corrupted
//!   views, adversarial ID permutations, injected panics), degrading to
//!   typed per-node fault records instead of aborting.
//!
//! # Examples
//!
//! A 0-round algorithm that outputs a constant label:
//!
//! ```
//! use lcl::OutLabel;
//! use lcl_local::{run_deterministic, FnAlgorithm, IdAssignment};
//! use lcl_graph::gen;
//!
//! let g = gen::path(5);
//! let alg = FnAlgorithm::new("const", |_n| 0, |view| {
//!     vec![OutLabel(0); view.ball.center().ports.len()]
//! });
//! let input = lcl::uniform_input(&g);
//! let ids = IdAssignment::sequential(g.node_count());
//! let run = run_deterministic(&alg, &g, &input, &ids, None);
//! assert_eq!(run.radius, 0);
//! ```

pub mod algorithm;
pub mod congest;
pub mod faulted;
pub mod ids;
pub mod measure;
pub mod order_invariant;
pub mod run;
pub mod sync;
pub mod view;

pub use algorithm::{FnAlgorithm, LocalAlgorithm};
pub use congest::{run_congest, CongestRun, MessageBits};
#[allow(deprecated)]
pub use faulted::{simulate_faulted, simulate_sync_faulted};
pub use ids::IdAssignment;
pub use measure::minimal_solving_radius;
pub use order_invariant::{
    is_empirically_order_invariant, run_order_invariant, OrderInvariantAlgorithm, RankView,
};
pub use run::{
    estimate_local_failure, estimate_local_failure_parallel, run_deterministic, run_randomized,
    simulate_randomized_with, simulate_with, FailureEstimate, LocalRun,
};
#[allow(deprecated)]
pub use run::{simulate, simulate_logged, simulate_randomized, simulate_randomized_logged};
pub use sync::{run_sync, run_sync_with, simulate_sync_with, NodeInit, SyncAlgorithm, SyncRun};
#[allow(deprecated)]
pub use sync::{simulate_sync, simulate_sync_logged};
pub use view::View;
