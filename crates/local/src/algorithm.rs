//! The view-based LOCAL algorithm interface.

use lcl::OutLabel;

use crate::view::View;

/// A LOCAL algorithm in the functional form of Definition 2.1: "a `T`-round
/// algorithm is simply a function from the space of all possible labeled
/// `T`-hop neighborhoods of a node to the space of outputs".
///
/// The same trait serves deterministic and randomized algorithms: the
/// executor fills [`View::ids`] for deterministic runs and [`View::bits`]
/// for randomized ones.
pub trait LocalAlgorithm {
    /// The radius `T(n)` the algorithm needs on `n`-node graphs.
    fn radius(&self, n: usize) -> u32;

    /// Computes the output labels for the center's half-edges, in port
    /// order. Must return exactly `view.center_degree()` labels.
    fn label(&self, view: &View<'_>) -> Vec<OutLabel>;

    /// A short name for diagnostics.
    fn name(&self) -> &str {
        "anonymous"
    }
}

/// A [`LocalAlgorithm`] built from closures; convenient in tests and
/// examples.
///
/// # Examples
///
/// ```
/// use lcl::OutLabel;
/// use lcl_local::FnAlgorithm;
///
/// // Output the parity of the center's degree at every port (a 0-round
/// // algorithm).
/// let alg = FnAlgorithm::new("degree-parity", |_n| 0, |view| {
///     let d = view.center_degree();
///     vec![OutLabel((d % 2) as u32); d]
/// });
/// ```
pub struct FnAlgorithm<R, F> {
    name: String,
    radius: R,
    label: F,
}

impl<R, F> FnAlgorithm<R, F>
where
    R: Fn(usize) -> u32,
    F: Fn(&View<'_>) -> Vec<OutLabel>,
{
    /// Creates an algorithm from a radius function and a labeling function.
    pub fn new(name: &str, radius: R, label: F) -> Self {
        Self {
            name: name.to_string(),
            radius,
            label,
        }
    }
}

impl<R, F> LocalAlgorithm for FnAlgorithm<R, F>
where
    R: Fn(usize) -> u32,
    F: Fn(&View<'_>) -> Vec<OutLabel>,
{
    fn radius(&self, n: usize) -> u32 {
        (self.radius)(n)
    }

    fn label(&self, view: &View<'_>) -> Vec<OutLabel> {
        (self.label)(view)
    }

    fn name(&self) -> &str {
        &self.name
    }
}

impl<R, F> std::fmt::Debug for FnAlgorithm<R, F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FnAlgorithm")
            .field("name", &self.name)
            .finish_non_exhaustive()
    }
}
