//! Identifier assignments from a polynomial range (Definition 2.1 equips
//! deterministic algorithms with globally unique identifiers).

use lcl_rng::SmallRng;

use lcl_graph::NodeId;

/// An assignment of globally unique identifiers to the nodes of a graph.
///
/// # Examples
///
/// ```
/// use lcl_local::IdAssignment;
///
/// let ids = IdAssignment::random_polynomial(10, 3, 42);
/// assert_eq!(ids.len(), 10);
/// // Identifiers are unique and bounded by n^3.
/// assert!(ids.iter().all(|id| id < 1000));
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct IdAssignment {
    ids: Vec<u64>,
}

impl IdAssignment {
    /// Identifiers `0, 1, ..., n - 1` in node order.
    pub fn sequential(n: usize) -> Self {
        Self {
            ids: (0..n as u64).collect(),
        }
    }

    /// Unique identifiers drawn uniformly from `[0, n^exponent)`;
    /// deterministic given `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `n^exponent` overflows `u64` or is smaller than `n`.
    pub fn random_polynomial(n: usize, exponent: u32, seed: u64) -> Self {
        let range = (n as u64)
            .checked_pow(exponent)
            .expect("why: documented precondition — n^exponent must fit in u64");
        assert!(range >= n as u64, "id range must accommodate n unique ids");
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut set = std::collections::HashSet::with_capacity(n);
        let mut ids = Vec::with_capacity(n);
        while ids.len() < n {
            let candidate = rng.gen_range(0..range);
            if set.insert(candidate) {
                ids.push(candidate);
            }
        }
        Self { ids }
    }

    /// An explicit assignment.
    ///
    /// # Panics
    ///
    /// Panics if the identifiers are not unique.
    pub fn from_vec(ids: Vec<u64>) -> Self {
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), ids.len(), "identifiers must be unique");
        Self { ids }
    }

    /// Number of nodes covered.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the assignment is empty.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// The identifier of node `v`.
    #[inline]
    pub fn id(&self, v: NodeId) -> u64 {
        self.ids[v.index()]
    }

    /// Iterator over identifiers in node order.
    pub fn iter(&self) -> impl Iterator<Item = u64> + '_ {
        self.ids.iter().copied()
    }

    /// The rank (0-based position in sorted order) of each node's
    /// identifier — what an order-invariant algorithm is allowed to see.
    pub fn ranks(&self) -> Vec<u32> {
        let mut order: Vec<usize> = (0..self.ids.len()).collect();
        order.sort_by_key(|&i| self.ids[i]);
        let mut ranks = vec![0u32; self.ids.len()];
        for (rank, &i) in order.iter().enumerate() {
            ranks[i] = rank as u32;
        }
        ranks
    }

    /// The same identifier multiset dealt to different nodes: node `v`
    /// receives the identifier previously held by node `perm[v]`. This
    /// is how fault plans realize adversarial ID permutations
    /// (Definition 2.1 quantifies over *all* assignments; a permutation
    /// explores that quantifier without changing the id range).
    ///
    /// # Panics
    ///
    /// Panics if `perm` is not a permutation of `0..len`.
    pub fn permuted(&self, perm: &[usize]) -> Self {
        assert_eq!(perm.len(), self.ids.len(), "permutation covers the nodes");
        let ids: Vec<u64> = perm.iter().map(|&i| self.ids[i]).collect();
        // `from_vec` re-checks uniqueness, which fails on a non-bijection.
        Self::from_vec(ids)
    }

    /// A fresh assignment with the same relative order but different
    /// values: each identifier is replaced by a random value preserving
    /// ranks. Used by the empirical order-invariance checker.
    pub fn resample_order_preserving(&self, exponent: u32, seed: u64) -> Self {
        let n = self.ids.len();
        if n == 0 {
            return Self { ids: Vec::new() };
        }
        let range = (n as u64)
            .checked_pow(exponent)
            .expect("why: documented precondition — n^exponent must fit in u64");
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut fresh: Vec<u64> = Vec::with_capacity(n);
        let mut set = std::collections::HashSet::with_capacity(n);
        while fresh.len() < n {
            let candidate = rng.gen_range(0..range);
            if set.insert(candidate) {
                fresh.push(candidate);
            }
        }
        fresh.sort_unstable();
        let ranks = self.ranks();
        let ids = ranks.iter().map(|&r| fresh[r as usize]).collect();
        Self { ids }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_ids() {
        let ids = IdAssignment::sequential(4);
        assert_eq!(ids.id(NodeId(2)), 2);
        assert_eq!(ids.ranks(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn random_ids_are_unique_and_bounded() {
        let ids = IdAssignment::random_polynomial(100, 3, 7);
        let set: std::collections::HashSet<_> = ids.iter().collect();
        assert_eq!(set.len(), 100);
        assert!(ids.iter().all(|id| id < 1_000_000));
    }

    #[test]
    fn random_ids_are_deterministic() {
        assert_eq!(
            IdAssignment::random_polynomial(50, 3, 9),
            IdAssignment::random_polynomial(50, 3, 9)
        );
    }

    #[test]
    #[should_panic(expected = "unique")]
    fn from_vec_rejects_duplicates() {
        let _ = IdAssignment::from_vec(vec![1, 1, 2]);
    }

    #[test]
    fn permuted_deals_the_same_ids_to_different_nodes() {
        let ids = IdAssignment::from_vec(vec![30, 10, 20]);
        let adversarial = ids.permuted(&[2, 0, 1]);
        assert_eq!(adversarial, IdAssignment::from_vec(vec![20, 30, 10]));
        let mut multiset: Vec<u64> = adversarial.iter().collect();
        multiset.sort_unstable();
        assert_eq!(multiset, vec![10, 20, 30]);
    }

    #[test]
    #[should_panic(expected = "unique")]
    fn permuted_rejects_non_bijections() {
        let _ = IdAssignment::from_vec(vec![30, 10, 20]).permuted(&[0, 0, 1]);
    }

    #[test]
    fn ranks_reflect_order() {
        let ids = IdAssignment::from_vec(vec![30, 10, 20]);
        assert_eq!(ids.ranks(), vec![2, 0, 1]);
    }

    #[test]
    fn resample_preserves_order() {
        let ids = IdAssignment::from_vec(vec![30, 10, 20]);
        let fresh = ids.resample_order_preserving(3, 11);
        assert_eq!(fresh.ranks(), ids.ranks());
        assert_eq!(fresh.len(), 3);
    }
}
