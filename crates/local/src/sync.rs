//! Synchronous message-passing formulation of the LOCAL model.
//!
//! Iterative algorithms (Cole–Vishkin, rake-and-compress, color reduction)
//! are most naturally written as per-round state machines; this executor
//! runs them and *counts the rounds actually used*, which is what the
//! landscape benches plot against `n`.
//!
//! The formulation is equivalent to the view-based one: `T` rounds of
//! message passing reveal at most the radius-`T` view.

use lcl::{HalfEdgeLabeling, InLabel, OutLabel};
use lcl_faults::{Degraded, FaultPlan};
use lcl_graph::{Graph, NodeId};
use lcl_obs::{Counter, Event, EventLog, RunReport, Span, Trace};

/// The information a node starts with (before any communication).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct NodeInit {
    /// The node's structural index (not visible to the algorithm logic
    /// beyond equality; exposed for deterministic tie-breaking in tests).
    pub node: NodeId,
    /// The announced number of nodes.
    pub n: usize,
    /// The node's unique identifier (or a random bit string in randomized
    /// uses; the executor does not distinguish).
    pub id: u64,
    /// Degree.
    pub degree: u8,
    /// Input labels on the node's half-edges, in port order.
    pub inputs: Vec<InLabel>,
}

/// A synchronous LOCAL algorithm as a per-node state machine.
///
/// Each round, every node produces one message per port ([`send`]) and
/// consumes the messages arriving on its ports ([`receive`]). The run ends
/// when every node reports done.
///
/// [`send`]: SyncAlgorithm::send
/// [`receive`]: SyncAlgorithm::receive
pub trait SyncAlgorithm {
    /// Per-node state.
    type State: Clone;
    /// Per-edge message.
    type Msg: Clone;

    /// Initializes a node's state.
    fn init(&self, init: &NodeInit) -> Self::State;

    /// Produces the message to send through each port, in port order.
    fn send(&self, state: &Self::State, round: u32) -> Vec<Self::Msg>;

    /// Consumes the messages received on each port, in port order.
    fn receive(&self, state: &mut Self::State, inbox: &[Self::Msg], round: u32);

    /// Whether this node has finished (all nodes finishing ends the run).
    fn is_done(&self, state: &Self::State) -> bool;

    /// The output labels for the node's half-edges, in port order.
    fn output(&self, state: &Self::State) -> Vec<OutLabel>;

    /// A short name for diagnostics.
    fn name(&self) -> &str {
        "anonymous"
    }
}

/// The result of a synchronous run.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SyncRun {
    /// The produced half-edge labeling.
    pub output: HalfEdgeLabeling<OutLabel>,
    /// Number of communication rounds used.
    pub rounds: u32,
}

/// Runs a [`SyncAlgorithm`] to completion.
///
/// `ids[v]` provides each node's identifier (use random values for
/// randomized algorithms). The run aborts after `max_rounds` rounds.
///
/// # Panics
///
/// Panics if the algorithm does not halt within `max_rounds` rounds or
/// sends the wrong number of messages.
pub fn run_sync<A: SyncAlgorithm>(
    alg: &A,
    graph: &Graph,
    input: &HalfEdgeLabeling<InLabel>,
    ids: &[u64],
    n_announced: Option<usize>,
    max_rounds: u32,
) -> SyncRun {
    run_sync_with(alg, graph, input, ids, n_announced, max_rounds, |_| {})
}

/// Runs a [`SyncAlgorithm`] to completion and reports the execution
/// trace: rounds used, messages sent, and the instance shape.
///
/// This is the instrumented entrypoint behind the facade's `Simulation`
/// trait; [`run_sync`] is the trace-free variant.
///
/// # Panics
///
/// As [`run_sync`].
#[deprecated(
    since = "0.1.0",
    note = "use `simulate_sync_with(..., RunOptions::new())`"
)]
pub fn simulate_sync<A: SyncAlgorithm>(
    alg: &A,
    graph: &Graph,
    input: &HalfEdgeLabeling<InLabel>,
    ids: &[u64],
    n_announced: Option<usize>,
    max_rounds: u32,
) -> RunReport<SyncRun> {
    simulate_sync_impl(alg, graph, input, ids, n_announced, max_rounds, None)
}

/// Runs a [`SyncAlgorithm`] under [`RunOptions`](lcl_faults::RunOptions).
///
/// Dispatch over the option axes:
///
/// * a **fault plan** routes through the degrading executor of
///   [`crate::faulted`] (crash-stops, panic isolation, no-halt
///   degradation);
/// * a **budget** with `max_rounds` lowers the round cap to
///   `min(max_rounds, budget.max_rounds)` and likewise routes through
///   the degrading executor, so a budget breach is a typed `no-halt`
///   degradation instead of the plain executor's panic;
/// * **events** stream round boundaries (and faults, where they apply)
///   into the log on every path.
///
/// Without faults or a round budget, the run is the plain instrumented
/// executor and the outcome is [`Degraded::clean`].
///
/// # Panics
///
/// Only on the plain path (no fault plan, no round budget), as
/// [`run_sync`]: the algorithm must halt within `max_rounds`.
pub fn simulate_sync_with<A: SyncAlgorithm>(
    alg: &A,
    graph: &Graph,
    input: &HalfEdgeLabeling<InLabel>,
    ids: &[u64],
    n_announced: Option<usize>,
    max_rounds: u32,
    opts: lcl_faults::RunOptions<'_>,
) -> RunReport<Degraded<SyncRun>> {
    let budget_rounds = opts.run_budget().max_rounds;
    let effective = budget_rounds.map_or(max_rounds, |cap| {
        max_rounds.min(u32::try_from(cap).unwrap_or(u32::MAX))
    });
    match opts.fault_plan() {
        Some(plan) => crate::faulted::simulate_sync_faulted_impl(
            alg,
            graph,
            input,
            ids,
            n_announced,
            effective,
            plan,
            opts.event_log(),
        ),
        None if budget_rounds.is_some() => {
            let unfaulted = FaultPlan::new(0);
            crate::faulted::simulate_sync_faulted_impl(
                alg,
                graph,
                input,
                ids,
                n_announced,
                effective,
                &unfaulted,
                opts.event_log(),
            )
        }
        None => simulate_sync_impl(
            alg,
            graph,
            input,
            ids,
            n_announced,
            effective,
            opts.event_log(),
        )
        .map(Degraded::clean),
    }
}

/// Like [`simulate_sync`], with round boundaries recorded into an
/// [`EventLog`]: an [`Event::RoundStart`] before each send phase and an
/// [`Event::RoundEnd`] (with the round's message count) after delivery.
///
/// # Panics
///
/// As [`run_sync`].
#[deprecated(
    since = "0.1.0",
    note = "use `simulate_sync_with(..., RunOptions::new().events(log))`"
)]
pub fn simulate_sync_logged<A: SyncAlgorithm>(
    alg: &A,
    graph: &Graph,
    input: &HalfEdgeLabeling<InLabel>,
    ids: &[u64],
    n_announced: Option<usize>,
    max_rounds: u32,
    log: Option<&EventLog>,
) -> RunReport<SyncRun> {
    simulate_sync_impl(alg, graph, input, ids, n_announced, max_rounds, log)
}

pub(crate) fn simulate_sync_impl<A: SyncAlgorithm>(
    alg: &A,
    graph: &Graph,
    input: &HalfEdgeLabeling<InLabel>,
    ids: &[u64],
    n_announced: Option<usize>,
    max_rounds: u32,
    log: Option<&EventLog>,
) -> RunReport<SyncRun> {
    let mut span = Span::start(format!("local/sync/{}", alg.name()));
    let mut messages = 0u64;
    let run = run_sync_core(
        alg,
        graph,
        input,
        ids,
        n_announced,
        max_rounds,
        |_| {
            messages += 1;
        },
        log,
    );
    span.set(Counter::Nodes, graph.node_count() as u64);
    span.set(Counter::Edges, graph.edge_count() as u64);
    span.set(Counter::Rounds, u64::from(run.rounds));
    span.set(Counter::Messages, messages);
    RunReport::new(run, Trace::new(span.finish()))
}

/// Like [`run_sync`], additionally invoking `observe` on every message
/// sent — the hook behind the CONGEST bandwidth accounting of
/// [`congest`](crate::congest).
///
/// # Panics
///
/// As [`run_sync`].
pub fn run_sync_with<A: SyncAlgorithm>(
    alg: &A,
    graph: &Graph,
    input: &HalfEdgeLabeling<InLabel>,
    ids: &[u64],
    n_announced: Option<usize>,
    max_rounds: u32,
    observe: impl FnMut(&A::Msg),
) -> SyncRun {
    run_sync_core(
        alg,
        graph,
        input,
        ids,
        n_announced,
        max_rounds,
        observe,
        None,
    )
}

#[allow(clippy::too_many_arguments)]
fn run_sync_core<A: SyncAlgorithm>(
    alg: &A,
    graph: &Graph,
    input: &HalfEdgeLabeling<InLabel>,
    ids: &[u64],
    n_announced: Option<usize>,
    max_rounds: u32,
    mut observe: impl FnMut(&A::Msg),
    log: Option<&EventLog>,
) -> SyncRun {
    assert_eq!(ids.len(), graph.node_count(), "ids cover the graph");
    let n = n_announced.unwrap_or_else(|| graph.node_count());

    let mut states: Vec<A::State> = graph
        .nodes()
        .map(|v| {
            alg.init(&NodeInit {
                node: v,
                n,
                id: ids[v.index()],
                degree: graph.degree(v),
                inputs: graph.half_edges_of(v).map(|h| input.get(h)).collect(),
            })
        })
        .collect();

    let mut rounds = 0u32;
    loop {
        if states.iter().all(|s| alg.is_done(s)) {
            break;
        }
        assert!(
            rounds < max_rounds,
            "algorithm {} did not halt within {max_rounds} rounds",
            alg.name()
        );
        if let Some(log) = log {
            log.record(Event::RoundStart {
                round: u64::from(rounds),
            });
        }
        // Send phase: collect all outboxes first (synchronous semantics).
        let outboxes: Vec<Vec<A::Msg>> = graph
            .nodes()
            .map(|v| {
                let out = alg.send(&states[v.index()], rounds);
                assert_eq!(
                    out.len(),
                    graph.degree(v) as usize,
                    "algorithm {} must send one message per port",
                    alg.name()
                );
                for msg in &out {
                    observe(msg);
                }
                out
            })
            .collect();
        // Deliver phase: the message arriving on port p of v is the one
        // sent by the neighbor through the twin port.
        for v in graph.nodes() {
            let inbox: Vec<A::Msg> = graph
                .half_edges_of(v)
                .map(|h| {
                    let twin = graph.twin(h);
                    let u = graph.node_of(twin);
                    outboxes[u.index()][graph.port_of(twin) as usize].clone()
                })
                .collect();
            alg.receive(&mut states[v.index()], &inbox, rounds);
        }
        if let Some(log) = log {
            log.record(Event::RoundEnd {
                round: u64::from(rounds),
                messages: outboxes.iter().map(|o| o.len() as u64).sum(),
            });
        }
        rounds += 1;
    }

    let output = HalfEdgeLabeling::from_node_fn(graph, |v| {
        let out = alg.output(&states[v.index()]);
        assert_eq!(
            out.len(),
            graph.degree(v) as usize,
            "algorithm {} must label each port",
            alg.name()
        );
        out
    });
    SyncRun { output, rounds }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcl_graph::gen;

    /// Every node learns the maximum id within distance `k` by flooding
    /// for `k` rounds, then outputs 1 iff it holds the maximum.
    struct FloodMax {
        k: u32,
    }

    #[derive(Clone)]
    struct FloodState {
        best: u64,
        mine: u64,
        degree: usize,
        round: u32,
        k: u32,
    }

    impl SyncAlgorithm for FloodMax {
        type State = FloodState;
        type Msg = u64;

        fn init(&self, init: &NodeInit) -> FloodState {
            FloodState {
                best: init.id,
                mine: init.id,
                degree: init.degree as usize,
                round: 0,
                k: self.k,
            }
        }

        fn send(&self, state: &FloodState, _round: u32) -> Vec<u64> {
            vec![state.best; state.degree]
        }

        fn receive(&self, state: &mut FloodState, inbox: &[u64], _round: u32) {
            for &m in inbox {
                state.best = state.best.max(m);
            }
            state.round += 1;
        }

        fn is_done(&self, state: &FloodState) -> bool {
            state.round >= state.k
        }

        fn output(&self, state: &FloodState) -> Vec<OutLabel> {
            vec![OutLabel(u32::from(state.best == state.mine)); state.degree]
        }

        fn name(&self) -> &str {
            "flood-max"
        }
    }

    #[test]
    fn flood_max_uses_exactly_k_rounds() {
        let g = gen::path(8);
        let input = lcl::uniform_input(&g);
        let ids: Vec<u64> = (0..8).collect();
        let run = run_sync(&FloodMax { k: 3 }, &g, &input, &ids, None, 100);
        assert_eq!(run.rounds, 3);
    }

    #[test]
    fn flood_max_finds_global_max_with_enough_rounds() {
        let g = gen::path(6);
        let input = lcl::uniform_input(&g);
        let ids = vec![3, 9, 1, 4, 0, 2];
        let run = run_sync(&FloodMax { k: 6 }, &g, &input, &ids, None, 100);
        // Only node 1 (id 9) outputs 1.
        for v in g.nodes() {
            let h = g.half_edge(v, 0);
            let expect = u32::from(v.0 == 1);
            assert_eq!(run.output.get(h), OutLabel(expect));
        }
    }

    #[test]
    fn zero_round_algorithm_uses_zero_rounds() {
        let g = gen::cycle(5);
        let input = lcl::uniform_input(&g);
        let ids: Vec<u64> = (0..5).collect();
        let run = run_sync(&FloodMax { k: 0 }, &g, &input, &ids, None, 100);
        assert_eq!(run.rounds, 0);
    }

    #[test]
    fn simulate_sync_counts_rounds_and_messages() {
        let g = gen::path(8);
        let input = lcl::uniform_input(&g);
        let ids: Vec<u64> = (0..8).collect();
        let report = simulate_sync_impl(&FloodMax { k: 3 }, &g, &input, &ids, None, 100, None);
        assert_eq!(report.outcome.rounds, 3);
        assert_eq!(report.trace.total(Counter::Rounds), 3);
        // 8-path: 14 port messages per round, 3 rounds.
        assert_eq!(report.trace.total(Counter::Messages), 42);
        assert_eq!(report.trace.total(Counter::Nodes), 8);
    }

    #[test]
    fn simulate_sync_logged_brackets_every_round() {
        let g = gen::path(8);
        let input = lcl::uniform_input(&g);
        let ids: Vec<u64> = (0..8).collect();
        let log = EventLog::new(64);
        let report =
            simulate_sync_impl(&FloodMax { k: 3 }, &g, &input, &ids, None, 100, Some(&log));
        assert_eq!(report.outcome.rounds, 3);
        let events = log.events();
        assert_eq!(events.len(), 6); // start + end per round
        assert_eq!(events[0], Event::RoundStart { round: 0 });
        assert_eq!(
            events[5],
            Event::RoundEnd {
                round: 2,
                messages: 14
            }
        );
        // The logged run's trace is identical to the unlogged one.
        let plain = simulate_sync_impl(&FloodMax { k: 3 }, &g, &input, &ids, None, 100, None);
        assert_eq!(report.trace.fingerprint(), plain.trace.fingerprint());
    }

    #[test]
    fn cost_model_matches_trace_counters() {
        use lcl_faults::RunOptions;
        use lcl_obs::CostKind;

        let g = gen::path(8);
        let input = lcl::uniform_input(&g);
        let ids: Vec<u64> = (0..8).collect();
        // A tiny sampled ring: the cost model must still be exact.
        let log = EventLog::with_sampling(2, 3);
        let report = simulate_sync_with(
            &FloodMax { k: 3 },
            &g,
            &input,
            &ids,
            None,
            100,
            RunOptions::new().events(&log),
        );
        let cost = log.cost_model();
        assert_eq!(
            cost.get(CostKind::Round),
            report.trace.total(Counter::Rounds)
        );
        assert_eq!(
            cost.get(CostKind::Message),
            report.trace.total(Counter::Messages)
        );
        assert_eq!(cost.get(CostKind::Round), 3);
        assert_eq!(cost.get(CostKind::Message), 42);
    }

    #[test]
    #[should_panic(expected = "did not halt")]
    fn runaway_algorithm_is_stopped() {
        let g = gen::path(3);
        let input = lcl::uniform_input(&g);
        let ids: Vec<u64> = (0..3).collect();
        let _ = run_sync(&FloodMax { k: 1000 }, &g, &input, &ids, None, 5);
    }
}
