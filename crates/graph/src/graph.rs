//! The immutable, port-numbered graph representation.
//!
//! A [`Graph`] stores its adjacency structure in compressed sparse row (CSR)
//! form. Half-edges are indices into the CSR arrays, so the half-edge
//! `(v, e)` where `e` is the edge at port `p` of `v` has the id
//! `offsets[v] + p`. This makes half-edge labelings plain `Vec`s indexed by
//! [`HalfEdgeId`], which is the hot-path representation used by the
//! verifiers and simulators.

use std::fmt;

/// Identifier of a node in a [`Graph`].
///
/// Node ids are *structural* indices in `0..n`, not the LOCAL-model
/// identifiers from a polynomial range; those are assigned separately by the
/// simulator crates (see `lcl-local`).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct NodeId(pub u32);

/// Identifier of an (undirected) edge in a [`Graph`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct EdgeId(pub u32);

/// Identifier of a half-edge `(v, e)` in a [`Graph`].
///
/// Half-edges are the objects LCL problems label (Definition 2.2 of the
/// paper). The id doubles as an index into labeling vectors.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct HalfEdgeId(pub u32);

impl NodeId {
    /// Returns the node id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl EdgeId {
    /// Returns the edge id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl HalfEdgeId {
    /// Returns the half-edge id as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl fmt::Display for HalfEdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "h{}", self.0)
    }
}

/// An immutable, port-numbered, bounded-degree graph.
///
/// Construct one through [`GraphBuilder`](crate::GraphBuilder) or a
/// generator in [`gen`](crate::gen).
///
/// # Examples
///
/// ```
/// use lcl_graph::{gen, NodeId};
///
/// let g = gen::cycle(4);
/// assert_eq!(g.degree(NodeId(0)), 2);
/// let h = g.half_edge(NodeId(0), 0);
/// let twin = g.twin(h);
/// assert_eq!(g.node_of(twin), g.neighbor(h));
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Graph {
    /// CSR offsets; `offsets[v]..offsets[v + 1]` is the half-edge range of `v`.
    offsets: Vec<u32>,
    /// Neighbor node of each half-edge.
    neighbors: Vec<NodeId>,
    /// Edge id of each half-edge.
    edge_ids: Vec<EdgeId>,
    /// Port of the twin half-edge at the neighbor.
    rev_ports: Vec<u8>,
    /// Node that each half-edge belongs to (inverse of `offsets`).
    owners: Vec<NodeId>,
    /// The two half-edges of each edge, smaller id first.
    edge_halves: Vec<[HalfEdgeId; 2]>,
    /// Maximum degree over all nodes.
    max_degree: u8,
}

impl Graph {
    pub(crate) fn from_parts(
        offsets: Vec<u32>,
        neighbors: Vec<NodeId>,
        edge_ids: Vec<EdgeId>,
        rev_ports: Vec<u8>,
        edge_halves: Vec<[HalfEdgeId; 2]>,
        max_degree: u8,
    ) -> Self {
        let mut owners = vec![NodeId(0); neighbors.len()];
        for v in 0..offsets.len().saturating_sub(1) {
            for h in offsets[v]..offsets[v + 1] {
                owners[h as usize] = NodeId(v as u32);
            }
        }
        Self {
            offsets,
            neighbors,
            edge_ids,
            rev_ports,
            owners,
            edge_halves,
            max_degree,
        }
    }

    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of (undirected) edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edge_halves.len()
    }

    /// Number of half-edges (`2 * edge_count`).
    #[inline]
    pub fn half_edge_count(&self) -> usize {
        self.neighbors.len()
    }

    /// Maximum degree `Δ` of the graph.
    #[inline]
    pub fn max_degree(&self) -> u8 {
        self.max_degree
    }

    /// Degree of node `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of bounds.
    #[inline]
    pub fn degree(&self, v: NodeId) -> u8 {
        (self.offsets[v.index() + 1] - self.offsets[v.index()]) as u8
    }

    /// Iterator over all nodes.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.node_count() as u32).map(NodeId)
    }

    /// Iterator over all edges.
    pub fn edges(&self) -> impl Iterator<Item = EdgeId> + '_ {
        (0..self.edge_count() as u32).map(EdgeId)
    }

    /// Iterator over all half-edges.
    pub fn half_edges(&self) -> impl Iterator<Item = HalfEdgeId> + '_ {
        (0..self.half_edge_count() as u32).map(HalfEdgeId)
    }

    /// The half-edge at port `port` of node `v`.
    ///
    /// # Panics
    ///
    /// Panics if `port >= degree(v)`.
    #[inline]
    pub fn half_edge(&self, v: NodeId, port: u8) -> HalfEdgeId {
        debug_assert!(port < self.degree(v), "port out of range");
        HalfEdgeId(self.offsets[v.index()] + u32::from(port))
    }

    /// Iterator over the half-edges incident to `v`, in port order
    /// (the set `H[v]` of the paper).
    pub fn half_edges_of(&self, v: NodeId) -> impl Iterator<Item = HalfEdgeId> + '_ {
        (self.offsets[v.index()]..self.offsets[v.index() + 1]).map(HalfEdgeId)
    }

    /// Iterator over the neighbors of `v`, in port order.
    pub fn neighbors_of(&self, v: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        let lo = self.offsets[v.index()] as usize;
        let hi = self.offsets[v.index() + 1] as usize;
        self.neighbors[lo..hi].iter().copied()
    }

    /// The node a half-edge belongs to (the `v` of `(v, e)`).
    #[inline]
    pub fn node_of(&self, h: HalfEdgeId) -> NodeId {
        self.owners[h.index()]
    }

    /// The edge a half-edge belongs to (the `e` of `(v, e)`).
    #[inline]
    pub fn edge_of(&self, h: HalfEdgeId) -> EdgeId {
        self.edge_ids[h.index()]
    }

    /// The node at the other end of the half-edge's edge.
    #[inline]
    pub fn neighbor(&self, h: HalfEdgeId) -> NodeId {
        self.neighbors[h.index()]
    }

    /// The port of `h` at its own node.
    #[inline]
    pub fn port_of(&self, h: HalfEdgeId) -> u8 {
        (h.0 - self.offsets[self.node_of(h).index()]) as u8
    }

    /// The twin half-edge: `(u, e)` for `h = (v, e)` with `e = {u, v}`.
    #[inline]
    pub fn twin(&self, h: HalfEdgeId) -> HalfEdgeId {
        let u = self.neighbors[h.index()];
        HalfEdgeId(self.offsets[u.index()] + u32::from(self.rev_ports[h.index()]))
    }

    /// The two half-edges of edge `e` (the set `H[e]` of the paper),
    /// smaller id first.
    #[inline]
    pub fn halves_of_edge(&self, e: EdgeId) -> [HalfEdgeId; 2] {
        self.edge_halves[e.index()]
    }

    /// The two endpoints of edge `e`.
    #[inline]
    pub fn endpoints(&self, e: EdgeId) -> [NodeId; 2] {
        let [a, b] = self.edge_halves[e.index()];
        [self.node_of(a), self.node_of(b)]
    }

    /// Breadth-first distances from `source`, truncated at `cutoff`.
    ///
    /// Nodes farther than `cutoff` get `u32::MAX`.
    pub fn bfs_distances(&self, source: NodeId, cutoff: u32) -> Vec<u32> {
        let mut dist = vec![u32::MAX; self.node_count()];
        let mut queue = std::collections::VecDeque::new();
        dist[source.index()] = 0;
        queue.push_back(source);
        while let Some(v) = queue.pop_front() {
            let d = dist[v.index()];
            if d == cutoff {
                continue;
            }
            for u in self.neighbors_of(v) {
                if dist[u.index()] == u32::MAX {
                    dist[u.index()] = d + 1;
                    queue.push_back(u);
                }
            }
        }
        dist
    }

    /// Eccentricity of `source`: the maximum BFS distance to any reachable node.
    pub fn eccentricity(&self, source: NodeId) -> u32 {
        self.bfs_distances(source, u32::MAX)
            .into_iter()
            .filter(|&d| d != u32::MAX)
            .max()
            .unwrap_or(0)
    }

    /// Connected component ids (`0..k`) and the component count.
    pub fn components(&self) -> (Vec<u32>, usize) {
        let mut comp = vec![u32::MAX; self.node_count()];
        let mut next = 0u32;
        let mut stack = Vec::new();
        for v in self.nodes() {
            if comp[v.index()] != u32::MAX {
                continue;
            }
            comp[v.index()] = next;
            stack.push(v);
            while let Some(u) = stack.pop() {
                for w in self.neighbors_of(u) {
                    if comp[w.index()] == u32::MAX {
                        comp[w.index()] = next;
                        stack.push(w);
                    }
                }
            }
            next += 1;
        }
        (comp, next as usize)
    }

    /// Whether the graph is acyclic (a forest).
    pub fn is_forest(&self) -> bool {
        let (_, k) = self.components();
        self.edge_count() + k == self.node_count()
    }

    /// Whether the graph is connected and acyclic (a tree).
    pub fn is_tree(&self) -> bool {
        let (_, k) = self.components();
        k == 1 && self.edge_count() + 1 == self.node_count()
    }

    /// The girth (length of a shortest cycle), or `None` if the graph is a
    /// forest. Runs one truncated BFS per node; intended for test-sized
    /// graphs.
    pub fn girth(&self) -> Option<u32> {
        let mut best: Option<u32> = None;
        for s in self.nodes() {
            // BFS tracking parent edge; a non-tree edge at depths d1, d2
            // closes a cycle of length d1 + d2 + 1.
            let mut dist = vec![u32::MAX; self.node_count()];
            let mut parent_edge = vec![EdgeId(u32::MAX); self.node_count()];
            let mut queue = std::collections::VecDeque::new();
            dist[s.index()] = 0;
            queue.push_back(s);
            while let Some(v) = queue.pop_front() {
                for h in self.half_edges_of(v) {
                    let e = self.edge_of(h);
                    if e == parent_edge[v.index()] {
                        continue;
                    }
                    let u = self.neighbor(h);
                    if dist[u.index()] == u32::MAX {
                        dist[u.index()] = dist[v.index()] + 1;
                        parent_edge[u.index()] = e;
                        queue.push_back(u);
                    } else {
                        let len = dist[v.index()] + dist[u.index()] + 1;
                        if best.is_none_or(|b| len < b) {
                            best = Some(len);
                        }
                    }
                }
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn path_structure() {
        let g = gen::path(4);
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.half_edge_count(), 6);
        assert_eq!(g.degree(NodeId(0)), 1);
        assert_eq!(g.degree(NodeId(1)), 2);
        assert_eq!(g.max_degree(), 2);
        assert!(g.is_tree());
        assert!(g.is_forest());
        assert_eq!(g.girth(), None);
    }

    #[test]
    fn cycle_structure() {
        let g = gen::cycle(5);
        assert_eq!(g.node_count(), 5);
        assert_eq!(g.edge_count(), 5);
        assert!(!g.is_forest());
        assert_eq!(g.girth(), Some(5));
    }

    #[test]
    fn twin_involution() {
        let g = gen::cycle(6);
        for h in g.half_edges() {
            let t = g.twin(h);
            assert_ne!(h, t);
            assert_eq!(g.twin(t), h);
            assert_eq!(g.edge_of(h), g.edge_of(t));
            assert_eq!(g.node_of(t), g.neighbor(h));
        }
    }

    #[test]
    fn ports_are_consistent() {
        let g = gen::complete_tree(3, 2);
        for v in g.nodes() {
            for (p, h) in g.half_edges_of(v).enumerate() {
                assert_eq!(g.node_of(h), v);
                assert_eq!(g.port_of(h), p as u8);
                assert_eq!(g.half_edge(v, p as u8), h);
            }
        }
    }

    #[test]
    fn edge_halves_cover_all_half_edges() {
        let g = gen::complete_tree(3, 3);
        let mut seen = vec![false; g.half_edge_count()];
        for e in g.edges() {
            let [a, b] = g.halves_of_edge(e);
            assert!(a < b);
            assert_eq!(g.edge_of(a), e);
            assert_eq!(g.edge_of(b), e);
            seen[a.index()] = true;
            seen[b.index()] = true;
        }
        assert!(seen.into_iter().all(|s| s));
    }

    #[test]
    fn bfs_distances_on_path() {
        let g = gen::path(6);
        let d = g.bfs_distances(NodeId(0), u32::MAX);
        assert_eq!(d, vec![0, 1, 2, 3, 4, 5]);
        let d = g.bfs_distances(NodeId(0), 2);
        assert_eq!(d[2], 2);
        assert_eq!(d[3], u32::MAX);
    }

    #[test]
    fn eccentricity_and_components() {
        let g = gen::path(7);
        assert_eq!(g.eccentricity(NodeId(3)), 3);
        assert_eq!(g.eccentricity(NodeId(0)), 6);
        let (comp, k) = g.components();
        assert_eq!(k, 1);
        assert!(comp.iter().all(|&c| c == 0));
    }
}
