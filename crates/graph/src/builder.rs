//! Incremental construction of port-numbered graphs.

use std::error::Error;
use std::fmt;

use crate::graph::{EdgeId, Graph, HalfEdgeId, NodeId};

/// Error produced when a [`GraphBuilder`] is asked to build an invalid graph.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BuildError {
    /// An edge endpoint refers to a node `>= node_count`.
    NodeOutOfRange { node: u32, node_count: u32 },
    /// An edge connects a node to itself.
    SelfLoop { node: u32 },
    /// The same unordered pair appears twice.
    ParallelEdge { a: u32, b: u32 },
    /// A node exceeds the degree bound.
    DegreeExceeded { node: u32, degree: u32, max: u32 },
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            BuildError::NodeOutOfRange { node, node_count } => {
                write!(f, "node {node} out of range (node count {node_count})")
            }
            BuildError::SelfLoop { node } => write!(f, "self-loop at node {node}"),
            BuildError::ParallelEdge { a, b } => {
                write!(f, "parallel edge between {a} and {b}")
            }
            BuildError::DegreeExceeded { node, degree, max } => {
                write!(f, "degree {degree} of node {node} exceeds bound {max}")
            }
        }
    }
}

impl Error for BuildError {}

/// Builder for [`Graph`].
///
/// Ports are assigned in edge-insertion order: the `k`-th edge added at a
/// node occupies port `k` of that node. Generators rely on this to produce
/// deterministic port numberings.
///
/// # Examples
///
/// ```
/// use lcl_graph::GraphBuilder;
///
/// let mut b = GraphBuilder::new(3);
/// b.add_edge(0, 1)?;
/// b.add_edge(1, 2)?;
/// let g = b.build()?;
/// assert_eq!(g.edge_count(), 2);
/// # Ok::<(), lcl_graph::BuildError>(())
/// ```
#[derive(Clone, Debug)]
pub struct GraphBuilder {
    node_count: u32,
    edges: Vec<(u32, u32)>,
    max_degree: Option<u32>,
    check_parallel: bool,
}

impl GraphBuilder {
    /// Creates a builder for a graph on `node_count` nodes.
    pub fn new(node_count: usize) -> Self {
        Self {
            node_count: node_count as u32,
            edges: Vec::new(),
            max_degree: None,
            check_parallel: true,
        }
    }

    /// Enforces a maximum degree at [`build`](Self::build) time.
    pub fn with_max_degree(mut self, max_degree: u8) -> Self {
        self.max_degree = Some(u32::from(max_degree));
        self
    }

    /// Disables the parallel-edge check (it is `O(m log m)`); use when the
    /// caller guarantees simplicity.
    pub fn assume_simple(mut self) -> Self {
        self.check_parallel = false;
        self
    }

    /// Appends a fresh node and returns its id.
    pub fn add_node(&mut self) -> NodeId {
        let id = NodeId(self.node_count);
        self.node_count += 1;
        id
    }

    /// Number of nodes currently declared.
    pub fn node_count(&self) -> usize {
        self.node_count as usize
    }

    /// Adds an undirected edge `{a, b}`.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::NodeOutOfRange`] or [`BuildError::SelfLoop`]
    /// immediately; parallel edges and degree violations are reported by
    /// [`build`](Self::build).
    pub fn add_edge(&mut self, a: usize, b: usize) -> Result<EdgeId, BuildError> {
        let (a, b) = (a as u32, b as u32);
        if a >= self.node_count {
            return Err(BuildError::NodeOutOfRange {
                node: a,
                node_count: self.node_count,
            });
        }
        if b >= self.node_count {
            return Err(BuildError::NodeOutOfRange {
                node: b,
                node_count: self.node_count,
            });
        }
        if a == b {
            return Err(BuildError::SelfLoop { node: a });
        }
        let id = EdgeId(self.edges.len() as u32);
        self.edges.push((a, b));
        Ok(id)
    }

    /// Finalizes the graph.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::ParallelEdge`] if the same unordered pair was
    /// added twice, or [`BuildError::DegreeExceeded`] if a node's degree
    /// exceeds the configured bound (or `u8::MAX` otherwise).
    pub fn build(self) -> Result<Graph, BuildError> {
        let n = self.node_count as usize;
        let mut degree = vec![0u32; n];
        for &(a, b) in &self.edges {
            degree[a as usize] += 1;
            degree[b as usize] += 1;
        }
        let hard_cap = self.max_degree.unwrap_or(u32::from(u8::MAX));
        for (v, &d) in degree.iter().enumerate() {
            if d > hard_cap {
                return Err(BuildError::DegreeExceeded {
                    node: v as u32,
                    degree: d,
                    max: hard_cap,
                });
            }
        }
        if self.check_parallel {
            let mut sorted: Vec<(u32, u32)> = self
                .edges
                .iter()
                .map(|&(a, b)| (a.min(b), a.max(b)))
                .collect();
            sorted.sort_unstable();
            for w in sorted.windows(2) {
                if w[0] == w[1] {
                    return Err(BuildError::ParallelEdge {
                        a: w[0].0,
                        b: w[0].1,
                    });
                }
            }
        }

        let mut offsets = vec![0u32; n + 1];
        for v in 0..n {
            offsets[v + 1] = offsets[v] + degree[v];
        }
        let m2 = self.edges.len() * 2;
        let mut neighbors = vec![NodeId(0); m2];
        let mut edge_ids = vec![EdgeId(0); m2];
        let mut rev_ports = vec![0u8; m2];
        let mut edge_halves = Vec::with_capacity(self.edges.len());
        let mut cursor: Vec<u32> = offsets[..n].to_vec();

        for (idx, &(a, b)) in self.edges.iter().enumerate() {
            let e = EdgeId(idx as u32);
            let ha = cursor[a as usize];
            cursor[a as usize] += 1;
            let hb = cursor[b as usize];
            cursor[b as usize] += 1;
            neighbors[ha as usize] = NodeId(b);
            neighbors[hb as usize] = NodeId(a);
            edge_ids[ha as usize] = e;
            edge_ids[hb as usize] = e;
            rev_ports[ha as usize] = (hb - offsets[b as usize]) as u8;
            rev_ports[hb as usize] = (ha - offsets[a as usize]) as u8;
            let (lo, hi) = if ha < hb { (ha, hb) } else { (hb, ha) };
            edge_halves.push([HalfEdgeId(lo), HalfEdgeId(hi)]);
        }

        let max_degree = degree.iter().copied().max().unwrap_or(0) as u8;
        Ok(Graph::from_parts(
            offsets,
            neighbors,
            edge_ids,
            rev_ports,
            edge_halves,
            max_degree,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_self_loop() {
        let mut b = GraphBuilder::new(2);
        assert_eq!(b.add_edge(1, 1), Err(BuildError::SelfLoop { node: 1 }));
    }

    #[test]
    fn rejects_out_of_range() {
        let mut b = GraphBuilder::new(2);
        assert!(matches!(
            b.add_edge(0, 5),
            Err(BuildError::NodeOutOfRange { node: 5, .. })
        ));
    }

    #[test]
    fn rejects_parallel_edges() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1).unwrap();
        b.add_edge(1, 0).unwrap();
        assert!(matches!(b.build(), Err(BuildError::ParallelEdge { .. })));
    }

    #[test]
    fn rejects_degree_violation() {
        let mut b = GraphBuilder::new(4).with_max_degree(2);
        b.add_edge(0, 1).unwrap();
        b.add_edge(0, 2).unwrap();
        b.add_edge(0, 3).unwrap();
        assert!(matches!(
            b.build(),
            Err(BuildError::DegreeExceeded { node: 0, .. })
        ));
    }

    #[test]
    fn ports_follow_insertion_order() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1).unwrap();
        b.add_edge(0, 2).unwrap();
        b.add_edge(0, 3).unwrap();
        let g = b.build().unwrap();
        let ns: Vec<_> = g.neighbors_of(NodeId(0)).collect();
        assert_eq!(ns, vec![NodeId(1), NodeId(2), NodeId(3)]);
    }

    #[test]
    fn add_node_extends_graph() {
        let mut b = GraphBuilder::new(1);
        let v = b.add_node();
        assert_eq!(v, NodeId(1));
        b.add_edge(0, 1).unwrap();
        let g = b.build().unwrap();
        assert_eq!(g.node_count(), 2);
    }

    #[test]
    fn empty_graph_is_fine() {
        let g = GraphBuilder::new(3).build().unwrap();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.max_degree(), 0);
    }

    #[test]
    fn error_display_is_informative() {
        let err = BuildError::SelfLoop { node: 7 };
        assert!(err.to_string().contains("self-loop"));
    }
}
