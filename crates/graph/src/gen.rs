//! Generators for the graph classes of the paper: paths, cycles, trees `𝒯`,
//! forests `ℱ`, and `d`-dimensional oriented toroidal grids.
//!
//! All generators produce deterministic port numberings; the randomized
//! ones take an explicit seed so every experiment in the suite is
//! reproducible.

use lcl_rng::SmallRng;

use crate::builder::{BuildError, GraphBuilder};
use crate::graph::{EdgeId, Graph, HalfEdgeId, NodeId};

impl Graph {
    /// Builds a graph from explicit, ordered adjacency lists: `adj[v][p]`
    /// is the neighbor behind port `p` of `v`. This gives the caller full
    /// control over the port numbering (the [`GraphBuilder`] assigns ports
    /// by insertion order instead).
    ///
    /// Parallel edges are matched occurrence-by-occurrence, so a torus of
    /// side 2 (where `+k` and `-k` wrap to the same neighbor) is
    /// representable.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::SelfLoop`] on `adj[v]` containing `v`, and
    /// [`BuildError::ParallelEdge`] if the lists are not symmetric (every
    /// occurrence of `u` in `adj[v]` must have a matching occurrence of `v`
    /// in `adj[u]`).
    pub fn from_adjacency(adj: &[Vec<usize>]) -> Result<Graph, BuildError> {
        let n = adj.len();
        let mut offsets = vec![0u32; n + 1];
        for v in 0..n {
            offsets[v + 1] = offsets[v] + adj[v].len() as u32;
            if adj[v].len() > usize::from(u8::MAX) {
                return Err(BuildError::DegreeExceeded {
                    node: v as u32,
                    degree: adj[v].len() as u32,
                    max: u32::from(u8::MAX),
                });
            }
        }
        let m2 = offsets[n] as usize;
        let mut neighbors = vec![NodeId(0); m2];
        let mut edge_ids = vec![EdgeId(u32::MAX); m2];
        let mut rev_ports = vec![0u8; m2];
        let mut edge_halves: Vec<[HalfEdgeId; 2]> = Vec::with_capacity(m2 / 2);

        for (v, list) in adj.iter().enumerate() {
            for (p, &u) in list.iter().enumerate() {
                if u == v {
                    return Err(BuildError::SelfLoop { node: v as u32 });
                }
                if u >= n {
                    return Err(BuildError::NodeOutOfRange {
                        node: u as u32,
                        node_count: n as u32,
                    });
                }
                let h = offsets[v] as usize + p;
                neighbors[h] = NodeId(u as u32);
                if u < v {
                    continue; // matched from the smaller endpoint below
                }
            }
        }

        // Match occurrences: for v < u, the k-th occurrence of u in adj[v]
        // pairs with the k-th occurrence of v in adj[u].
        for (v, list) in adj.iter().enumerate() {
            for (p, &u) in list.iter().enumerate() {
                if u < v {
                    continue;
                }
                let k = list[..p].iter().filter(|&&w| w == u).count();
                let q = match adj[u].iter().enumerate().filter(|&(_, &w)| w == v).nth(k) {
                    Some((q, _)) => q,
                    None => {
                        return Err(BuildError::ParallelEdge {
                            a: v as u32,
                            b: u as u32,
                        })
                    }
                };
                let hv = offsets[v] as usize + p;
                let hu = offsets[u] as usize + q;
                let e = EdgeId(edge_halves.len() as u32);
                edge_ids[hv] = e;
                edge_ids[hu] = e;
                rev_ports[hv] = q as u8;
                rev_ports[hu] = p as u8;
                let (lo, hi) = if hv < hu { (hv, hu) } else { (hu, hv) };
                edge_halves.push([HalfEdgeId(lo as u32), HalfEdgeId(hi as u32)]);
            }
        }
        if edge_ids.contains(&EdgeId(u32::MAX)) {
            // Some occurrence of a smaller neighbor had no partner.
            return Err(BuildError::ParallelEdge { a: 0, b: 0 });
        }

        let max_degree = adj.iter().map(|l| l.len()).max().unwrap_or(0) as u8;
        Ok(Graph::from_parts(
            offsets,
            neighbors,
            edge_ids,
            rev_ports,
            edge_halves,
            max_degree,
        ))
    }
}

/// A path on `n` nodes (`n ≥ 1`); node `i` is adjacent to `i + 1`.
///
/// Interior nodes have port 0 toward the smaller neighbor and port 1 toward
/// the larger one.
pub fn path(n: usize) -> Graph {
    assert!(n >= 1, "path needs at least one node");
    let mut adj = vec![Vec::new(); n];
    #[allow(clippy::needless_range_loop)] // index drives several arrays
    for v in 0..n {
        if v > 0 {
            adj[v].push(v - 1);
        }
        if v + 1 < n {
            adj[v].push(v + 1);
        }
    }
    Graph::from_adjacency(&adj).expect("path adjacency is valid")
}

/// A cycle on `n ≥ 3` nodes; port 0 points to the predecessor
/// (`v - 1 mod n`) and port 1 to the successor.
///
/// # Panics
///
/// Panics if `n < 3`.
pub fn cycle(n: usize) -> Graph {
    assert!(n >= 3, "cycle needs at least 3 nodes");
    let mut adj = vec![Vec::new(); n];
    #[allow(clippy::needless_range_loop)] // index drives several arrays
    for v in 0..n {
        adj[v].push((v + n - 1) % n);
        adj[v].push((v + 1) % n);
    }
    Graph::from_adjacency(&adj).expect("cycle adjacency is valid")
}

/// A star with `leaves` leaves; node 0 is the center.
pub fn star(leaves: usize) -> Graph {
    let mut b = GraphBuilder::new(leaves + 1);
    for leaf in 1..=leaves {
        b.add_edge(0, leaf).expect("star edges are valid");
    }
    b.build().expect("star is a valid graph")
}

/// The complete rooted tree where every internal node has `arity` children
/// and leaves are at depth `depth`. `depth == 0` yields a single node.
///
/// # Panics
///
/// Panics if `arity == 0` and `depth > 0`.
pub fn complete_tree(arity: usize, depth: usize) -> Graph {
    if depth == 0 {
        return GraphBuilder::new(1).build().expect("single node");
    }
    assert!(arity >= 1, "complete tree needs positive arity");
    let mut b = GraphBuilder::new(1);
    let mut frontier = vec![0usize];
    for _ in 0..depth {
        let mut next = Vec::with_capacity(frontier.len() * arity);
        for &parent in &frontier {
            for _ in 0..arity {
                let child = b.add_node().index();
                b.add_edge(parent, child).expect("tree edges are valid");
                next.push(child);
            }
        }
        frontier = next;
    }
    b.build().expect("complete tree is a valid graph")
}

/// A caterpillar: a spine path of `spine` nodes, each with `legs` pendant
/// leaves.
pub fn caterpillar(spine: usize, legs: usize) -> Graph {
    assert!(spine >= 1);
    let mut b = GraphBuilder::new(spine);
    for v in 1..spine {
        b.add_edge(v - 1, v).expect("spine edges are valid");
    }
    for v in 0..spine {
        for _ in 0..legs {
            let leaf = b.add_node().index();
            b.add_edge(v, leaf).expect("leg edges are valid");
        }
    }
    b.build().expect("caterpillar is a valid graph")
}

/// A spider: `legs` paths of length `leg_len` glued at a center node.
pub fn spider(legs: usize, leg_len: usize) -> Graph {
    let mut b = GraphBuilder::new(1);
    for _ in 0..legs {
        let mut prev = 0usize;
        for _ in 0..leg_len {
            let v = b.add_node().index();
            b.add_edge(prev, v).expect("leg edges are valid");
            prev = v;
        }
    }
    b.build().expect("spider is a valid graph")
}

/// A uniformly random-ish tree on `n` nodes with maximum degree
/// `max_degree`: node `i` attaches to a random earlier node with remaining
/// capacity. Deterministic given `seed`.
///
/// # Panics
///
/// Panics if `max_degree < 2` and `n > 2` (no such tree exists).
pub fn random_tree(n: usize, max_degree: u8, seed: u64) -> Graph {
    assert!(n >= 1);
    if n > 2 {
        assert!(max_degree >= 2, "trees on >2 nodes need max degree >= 2");
    }
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n).with_max_degree(max_degree);
    let mut degree = vec![0u32; n];
    for v in 1..n {
        // Sample an earlier node with remaining capacity.
        let candidates: Vec<usize> = (0..v)
            .filter(|&u| degree[u] < u32::from(max_degree))
            .collect();
        assert!(
            !candidates.is_empty(),
            "degree bound too small to grow the tree"
        );
        let u = candidates[rng.gen_range(0..candidates.len())];
        b.add_edge(u, v).expect("tree edges are valid");
        degree[u] += 1;
        degree[v] += 1;
    }
    b.build().expect("random tree respects the degree bound")
}

/// A random forest on `n` nodes with (at least) `components` trees.
/// Deterministic given `seed`.
pub fn random_forest(n: usize, components: usize, max_degree: u8, seed: u64) -> Graph {
    assert!(components >= 1 && components <= n);
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n).with_max_degree(max_degree);
    let mut degree = vec![0u32; n];
    // Nodes 0..components are roots of separate trees; each later node
    // attaches within the tree of a random earlier node of the same stripe.
    for v in components..n {
        let candidates: Vec<usize> = (0..v)
            .filter(|&u| u % components == v % components && degree[u] < u32::from(max_degree))
            .collect();
        assert!(!candidates.is_empty(), "degree bound too small");
        let u = candidates[rng.gen_range(0..candidates.len())];
        b.add_edge(u, v).expect("forest edges are valid");
        degree[u] += 1;
        degree[v] += 1;
    }
    b.build().expect("random forest respects the degree bound")
}

/// Why [`random_regular`] could not produce a graph.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RegularGenError {
    /// `n * d` is odd, so no `d`-regular graph on `n` nodes exists.
    OddStubCount {
        /// Requested node count.
        n: usize,
        /// Requested degree.
        d: u8,
    },
    /// `d >= n`, so no simple `d`-regular graph on `n` nodes exists.
    DegreeTooLarge {
        /// Requested node count.
        n: usize,
        /// Requested degree.
        d: u8,
    },
    /// Every attempted pairing contained a self-loop or parallel edge.
    /// Essentially impossible for `d <= 4`, `n >= 8`; dense corner cases
    /// (say `d = n - 1` with tiny `n`) can exhaust the budget.
    NoSimplePairing {
        /// Requested node count.
        n: usize,
        /// Requested degree.
        d: u8,
        /// Pairings tried before giving up.
        attempts: u32,
    },
}

impl std::fmt::Display for RegularGenError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            RegularGenError::OddStubCount { n, d } => {
                write!(f, "no {d}-regular graph on {n} nodes: n*d must be even")
            }
            RegularGenError::DegreeTooLarge { n, d } => {
                write!(
                    f,
                    "no simple {d}-regular graph on {n} nodes: d must be below n"
                )
            }
            RegularGenError::NoSimplePairing { n, d, attempts } => write!(
                f,
                "no simple {d}-regular pairing found for n = {n} within {attempts} attempts"
            ),
        }
    }
}

impl std::error::Error for RegularGenError {}

/// Pairings tried by [`random_regular`] before reporting
/// [`RegularGenError::NoSimplePairing`].
pub const REGULAR_PAIRING_ATTEMPTS: u32 = 500;

/// A random `d`-regular simple graph on `n` nodes (configuration model
/// with rejection), deterministic given `seed`.
///
/// Used for the paper's high-girth remark (Section 1.1): for any LCL, the
/// complexity on trees equals the complexity on graphs of sufficiently
/// large girth, and random regular graphs have few short cycles.
///
/// # Errors
///
/// Returns a [`RegularGenError`] if `n * d` is odd, `d >= n`, or no
/// simple pairing is found within [`REGULAR_PAIRING_ATTEMPTS`] retries
/// (essentially impossible for `d <= 4`, `n >= 8`).
pub fn random_regular(n: usize, d: u8, seed: u64) -> Result<Graph, RegularGenError> {
    if !(n * usize::from(d)).is_multiple_of(2) {
        return Err(RegularGenError::OddStubCount { n, d });
    }
    if usize::from(d) >= n {
        return Err(RegularGenError::DegreeTooLarge { n, d });
    }
    let mut rng = SmallRng::seed_from_u64(seed);
    'attempt: for _ in 0..REGULAR_PAIRING_ATTEMPTS {
        // Pairing model: d stubs per node, matched uniformly.
        let mut stubs: Vec<usize> = (0..n)
            .flat_map(|v| std::iter::repeat_n(v, usize::from(d)))
            .collect();
        // Fisher-Yates shuffle.
        for i in (1..stubs.len()).rev() {
            let j = rng.gen_range(0..=i);
            stubs.swap(i, j);
        }
        let mut seen = std::collections::HashSet::new();
        let mut builder = GraphBuilder::new(n).with_max_degree(d);
        for pair in stubs.chunks(2) {
            let (a, b) = (pair[0], pair[1]);
            if a == b || !seen.insert((a.min(b), a.max(b))) {
                continue 'attempt; // self-loop or parallel edge: reject
            }
            builder.add_edge(a, b).expect("stub endpoints valid");
        }
        return Ok(builder.build().expect("simple pairing builds"));
    }
    Err(RegularGenError::NoSimplePairing {
        n,
        d,
        attempts: REGULAR_PAIRING_ATTEMPTS,
    })
}

/// A `d`-dimensional toroidal grid with side lengths `dims` (`d = dims.len()`).
///
/// Port convention: port `2k` points in the `+k` direction, port `2k + 1`
/// in the `-k` direction. This is the canonical orientation used by the
/// oriented-grid model of Section 5: the edge labeled with dimension `k`
/// leaves through port `2k` and arrives through port `2k + 1`.
///
/// Node ids are mixed-radix: coordinate `(c_0, ..., c_{d-1})` has id
/// `c_0 + dims[0] * (c_1 + dims[1] * (...))`.
///
/// # Panics
///
/// Panics if any side length is `< 3` (sides of 1 or 2 would create
/// self-loops or parallel edges) or `dims` is empty.
pub fn torus(dims: &[usize]) -> Graph {
    assert!(!dims.is_empty(), "torus needs at least one dimension");
    assert!(
        dims.iter().all(|&s| s >= 3),
        "torus side lengths must be at least 3"
    );
    let n: usize = dims.iter().product();
    let d = dims.len();
    let mut adj = vec![Vec::with_capacity(2 * d); n];
    #[allow(clippy::needless_range_loop)] // index drives several arrays
    for v in 0..n {
        let coords = torus_coords(dims, v);
        for k in 0..d {
            let mut plus = coords.clone();
            plus[k] = (plus[k] + 1) % dims[k];
            let mut minus = coords.clone();
            minus[k] = (minus[k] + dims[k] - 1) % dims[k];
            adj[v].push(torus_id(dims, &plus));
            adj[v].push(torus_id(dims, &minus));
        }
    }
    Graph::from_adjacency(&adj).expect("torus adjacency is valid")
}

/// A non-wrapping (open) `d`-dimensional grid with side lengths `dims`:
/// the oriented-grid model without the toroidal wrap (the paper proves
/// Theorem 5.1 for toroidal grids and conjectures the same for open
/// ones). Ports: the edges incident to a node are ordered `+0, -0, +1,
/// -1, ...` with missing directions skipped, so port numbers vary at the
/// boundary.
///
/// # Panics
///
/// Panics if `dims` is empty or any side is `< 2`.
pub fn grid_open(dims: &[usize]) -> Graph {
    assert!(!dims.is_empty(), "grid needs at least one dimension");
    assert!(
        dims.iter().all(|&s| s >= 2),
        "grid sides must be at least 2"
    );
    let n: usize = dims.iter().product();
    let d = dims.len();
    let mut adj = vec![Vec::new(); n];
    #[allow(clippy::needless_range_loop)] // index drives several arrays
    for v in 0..n {
        let coords = torus_coords(dims, v);
        for k in 0..d {
            if coords[k] + 1 < dims[k] {
                let mut plus = coords.clone();
                plus[k] += 1;
                adj[v].push(torus_id(dims, &plus));
            }
            if coords[k] > 0 {
                let mut minus = coords.clone();
                minus[k] -= 1;
                adj[v].push(torus_id(dims, &minus));
            }
        }
    }
    Graph::from_adjacency(&adj).expect("open grid adjacency is valid")
}

/// The coordinates of node `v` in a torus built by [`torus`].
pub fn torus_coords(dims: &[usize], v: usize) -> Vec<usize> {
    let mut rest = v;
    dims.iter()
        .map(|&s| {
            let c = rest % s;
            rest /= s;
            c
        })
        .collect()
}

/// The node id of coordinates `coords` in a torus built by [`torus`].
pub fn torus_id(dims: &[usize], coords: &[usize]) -> usize {
    let mut id = 0usize;
    for k in (0..dims.len()).rev() {
        id = id * dims[k] + coords[k];
    }
    id
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn star_and_spider_shapes() {
        let s = star(5);
        assert_eq!(s.degree(NodeId(0)), 5);
        assert!(s.is_tree());
        let sp = spider(3, 4);
        assert_eq!(sp.node_count(), 13);
        assert_eq!(sp.degree(NodeId(0)), 3);
        assert!(sp.is_tree());
    }

    #[test]
    fn complete_tree_counts() {
        let t = complete_tree(2, 3);
        assert_eq!(t.node_count(), 15);
        assert!(t.is_tree());
        assert_eq!(t.max_degree(), 3);
        let single = complete_tree(5, 0);
        assert_eq!(single.node_count(), 1);
    }

    #[test]
    fn caterpillar_counts() {
        let c = caterpillar(4, 2);
        assert_eq!(c.node_count(), 12);
        assert!(c.is_tree());
        assert_eq!(c.max_degree(), 4);
    }

    #[test]
    fn random_tree_is_tree_and_bounded() {
        for seed in 0..5 {
            let t = random_tree(64, 4, seed);
            assert!(t.is_tree());
            assert!(t.max_degree() <= 4);
        }
    }

    #[test]
    fn random_tree_is_deterministic() {
        assert_eq!(random_tree(50, 3, 7), random_tree(50, 3, 7));
    }

    #[test]
    fn random_forest_components() {
        let f = random_forest(60, 5, 4, 3);
        assert!(f.is_forest());
        let (_, k) = f.components();
        assert_eq!(k, 5);
    }

    #[test]
    fn torus_structure() {
        let g = torus(&[4, 3]);
        assert_eq!(g.node_count(), 12);
        assert_eq!(g.edge_count(), 24);
        for v in g.nodes() {
            assert_eq!(g.degree(v), 4);
        }
    }

    #[test]
    fn torus_port_convention() {
        let dims = [5, 4];
        let g = torus(&dims);
        for v in g.nodes() {
            let coords = torus_coords(&dims, v.index());
            for k in 0..dims.len() {
                // +k neighbor through port 2k.
                let mut plus = coords.clone();
                plus[k] = (plus[k] + 1) % dims[k];
                let h = g.half_edge(v, (2 * k) as u8);
                assert_eq!(g.neighbor(h).index(), torus_id(&dims, &plus));
                // The twin arrives at port 2k + 1.
                assert_eq!(g.port_of(g.twin(h)), (2 * k + 1) as u8);
            }
        }
    }

    #[test]
    fn open_grid_structure() {
        let g = grid_open(&[4, 3]);
        assert_eq!(g.node_count(), 12);
        // Edges: 3 * 3 (rows) + 4 * 2 (columns) = 17.
        assert_eq!(g.edge_count(), 17);
        // Corner degree 2, interior degree 4.
        let corner = NodeId(0);
        assert_eq!(g.degree(corner), 2);
        let interior = NodeId(torus_id(&[4, 3], &[1, 1]) as u32);
        assert_eq!(g.degree(interior), 4);
        assert_eq!(g.girth(), Some(4));
    }

    #[test]
    fn torus_coords_roundtrip() {
        let dims = [3, 5, 4];
        for v in 0..60 {
            assert_eq!(torus_id(&dims, &torus_coords(&dims, v)), v);
        }
    }

    #[test]
    fn random_regular_is_regular_and_simple() {
        for seed in 0..4 {
            let g = random_regular(24, 3, seed).unwrap();
            assert_eq!(g.node_count(), 24);
            for v in g.nodes() {
                assert_eq!(g.degree(v), 3, "seed {seed}");
            }
            // Simplicity is enforced by the builder; spot-check twins.
            for h in g.half_edges() {
                assert_eq!(g.twin(g.twin(h)), h);
            }
        }
    }

    #[test]
    fn random_regular_often_has_decent_girth() {
        // Random cubic graphs rarely have triangles; find a seed with
        // girth at least 5 quickly (the high-girth experiments do the
        // same search).
        let found = (0..50).any(|seed| {
            random_regular(32, 3, seed)
                .unwrap()
                .girth()
                .is_some_and(|g| g >= 5)
        });
        assert!(found);
    }

    #[test]
    fn random_regular_rejects_odd_products() {
        assert_eq!(
            random_regular(9, 3, 0),
            Err(RegularGenError::OddStubCount { n: 9, d: 3 })
        );
    }

    #[test]
    fn random_regular_rejects_excessive_degree() {
        assert_eq!(
            random_regular(3, 4, 0),
            Err(RegularGenError::DegreeTooLarge { n: 3, d: 4 })
        );
    }

    #[test]
    fn random_regular_reports_exhausted_pairings() {
        // d = n - 1 demands the pairing produce exactly K_n; at n = 8 a
        // uniform pairing is simple with probability ≈ e^{-12}, so the
        // 500-attempt budget is (deterministically, given the seed)
        // exhausted rather than aborting the process.
        assert_eq!(
            random_regular(8, 7, 0),
            Err(RegularGenError::NoSimplePairing {
                n: 8,
                d: 7,
                attempts: REGULAR_PAIRING_ATTEMPTS,
            })
        );
        // The modestly dense case still succeeds well within budget.
        assert!(random_regular(4, 3, 1).is_ok());
    }

    #[test]
    fn from_adjacency_rejects_asymmetry() {
        let adj = vec![vec![1], vec![]];
        assert!(Graph::from_adjacency(&adj).is_err());
    }

    #[test]
    fn from_adjacency_rejects_self_loop() {
        let adj = vec![vec![0]];
        assert!(matches!(
            Graph::from_adjacency(&adj),
            Err(BuildError::SelfLoop { node: 0 })
        ));
    }

    #[test]
    fn from_adjacency_handles_parallel_edges() {
        // Two nodes joined by a double edge (as in a side-2 torus ring).
        let adj = vec![vec![1, 1], vec![0, 0]];
        let g = Graph::from_adjacency(&adj).unwrap();
        assert_eq!(g.edge_count(), 2);
        for h in g.half_edges() {
            assert_eq!(g.twin(g.twin(h)), h);
            assert_eq!(g.edge_of(g.twin(h)), g.edge_of(h));
        }
    }
}
