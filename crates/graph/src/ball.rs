//! Radius-`T` views `B_G(v, T)` with the exact visibility rules of the
//! paper's Definition 2.1.
//!
//! In a `T`-round LOCAL algorithm a node `v` is aware of
//!
//! * all nodes at distance at most `T` from `v`,
//! * all edges that have at least one endpoint at distance at most `T - 1`,
//! * all half-edges whose endpoint is at distance at most `T`.
//!
//! Note the subtlety this implies: two nodes both at distance exactly `T`
//! may be adjacent in `G`, but the connecting edge is *not* part of the
//! view; the corresponding ports appear as [`PortView::Outside`]. [`Ball`]
//! reproduces these rules faithfully, which matters for the simulation step
//! of the round-elimination argument (Section 3.2 enumerates exactly the
//! possible one-hop extensions beyond such a view).

use crate::graph::{Graph, HalfEdgeId, NodeId};

/// What a node of a [`Ball`] sees through one of its ports.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum PortView {
    /// The edge is visible; it leads to ball-local node `node`, arriving
    /// there at port `rev_port`.
    Inside { node: u32, rev_port: u8 },
    /// The half-edge is visible (its degree slot and input label exist) but
    /// the edge behind it is not part of the view.
    Outside,
}

/// One node of a [`Ball`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct BallNode {
    /// The node's id in the original graph.
    pub original: NodeId,
    /// Distance from the ball center.
    pub dist: u32,
    /// Per-port visibility, `ports.len()` equals the node's degree in `G`.
    pub ports: Vec<PortView>,
    /// Original half-edge ids, parallel to `ports`. Used to attach input
    /// labels or identifiers to the view.
    pub half_edges: Vec<HalfEdgeId>,
}

/// The radius-`T` view of a node, in deterministic BFS-port order
/// (node 0 is the center).
///
/// # Examples
///
/// ```
/// use lcl_graph::{gen, NodeId, PortView};
///
/// let g = gen::path(5);
/// let ball = g.ball(NodeId(2), 1);
/// // Nodes 1, 2, 3 are visible; the far ports of nodes 1 and 3 are opaque.
/// assert_eq!(ball.node_count(), 3);
/// assert!(ball.nodes[1]
///     .ports
///     .iter()
///     .any(|p| matches!(p, PortView::Outside)));
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Ball {
    /// The radius this view was extracted with.
    pub radius: u32,
    /// Ball nodes in BFS discovery order; index 0 is the center.
    pub nodes: Vec<BallNode>,
}

impl Ball {
    /// Number of nodes in the view.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The center's entry.
    pub fn center(&self) -> &BallNode {
        &self.nodes[0]
    }

    /// Looks up the ball-local index of an original node id, if visible.
    pub fn local_index_of(&self, v: NodeId) -> Option<usize> {
        self.nodes.iter().position(|b| b.original == v)
    }

    /// A canonical encoding of the view's topology together with one
    /// caller-supplied value per half-edge (input labels, identifier ranks,
    /// random bits, ...).
    ///
    /// Two balls produce equal keys if and only if there is an isomorphism
    /// between them that maps center to center, respects port numbers, and
    /// preserves the attached values. This is the notion of "isomorphic
    /// neighborhoods" used throughout Section 3.2 of the paper.
    pub fn canonical_key<F>(&self, mut attach: F) -> Vec<u64>
    where
        F: FnMut(HalfEdgeId) -> u64,
    {
        let mut key = Vec::with_capacity(self.nodes.len() * 4);
        key.push(self.radius as u64);
        key.push(self.nodes.len() as u64);
        for node in &self.nodes {
            key.push(u64::from(node.dist));
            key.push(node.ports.len() as u64);
            for (p, port) in node.ports.iter().enumerate() {
                match *port {
                    PortView::Inside { node: w, rev_port } => {
                        key.push(2 + u64::from(w) * 64 + u64::from(rev_port));
                    }
                    PortView::Outside => key.push(1),
                }
                key.push(attach(node.half_edges[p]));
            }
        }
        key
    }

    /// A canonical key of the topology alone (no half-edge values).
    pub fn topology_key(&self) -> Vec<u64> {
        self.canonical_key(|_| 0)
    }

    /// Builds a standalone [`Graph`] of the *visible* part of the view,
    /// together with the map from new node ids to original ones.
    ///
    /// Ports in the extracted graph follow the order of visible ports at
    /// each node (invisible ports are skipped), so degrees may be smaller
    /// than in `G`; use [`BallNode::ports`] when exact ports matter.
    pub fn visible_subgraph(&self) -> (Graph, Vec<NodeId>) {
        let mut builder = crate::builder::GraphBuilder::new(self.nodes.len()).assume_simple();
        for (i, node) in self.nodes.iter().enumerate() {
            for port in &node.ports {
                if let PortView::Inside { node: w, .. } = *port {
                    if (w as usize) > i {
                        builder
                            .add_edge(i, w as usize)
                            .expect("ball-local edges are valid");
                    }
                }
            }
        }
        let graph = builder.build().expect("balls are simple graphs");
        let map = self.nodes.iter().map(|b| b.original).collect();
        (graph, map)
    }
}

impl Graph {
    /// Extracts the radius-`radius` view of `center` (Definition 2.1).
    ///
    /// # Panics
    ///
    /// Panics if `center` is out of bounds.
    pub fn ball(&self, center: NodeId, radius: u32) -> Ball {
        // BFS with deterministic port-order exploration.
        let mut local = vec![u32::MAX; self.node_count()];
        let mut order: Vec<NodeId> = Vec::new();
        let mut dist: Vec<u32> = Vec::new();
        local[center.index()] = 0;
        order.push(center);
        dist.push(0);
        let mut head = 0usize;
        while head < order.len() {
            let v = order[head];
            let d = dist[head];
            head += 1;
            if d == radius {
                continue;
            }
            for u in self.neighbors_of(v) {
                if local[u.index()] == u32::MAX {
                    local[u.index()] = order.len() as u32;
                    order.push(u);
                    dist.push(d + 1);
                }
            }
        }

        let nodes = order
            .iter()
            .zip(&dist)
            .map(|(&v, &dv)| {
                let mut ports = Vec::with_capacity(self.degree(v) as usize);
                let mut half_edges = Vec::with_capacity(self.degree(v) as usize);
                for h in self.half_edges_of(v) {
                    let w = self.neighbor(h);
                    let dw = if local[w.index()] == u32::MAX {
                        u32::MAX
                    } else {
                        dist[local[w.index()] as usize]
                    };
                    // Edge visible iff an endpoint lies within radius - 1.
                    let visible = dv < radius || dw.saturating_add(1) <= radius;
                    if visible {
                        ports.push(PortView::Inside {
                            node: local[w.index()],
                            rev_port: self.port_of(self.twin(h)),
                        });
                    } else {
                        ports.push(PortView::Outside);
                    }
                    half_edges.push(h);
                }
                BallNode {
                    original: v,
                    dist: dv,
                    ports,
                    half_edges,
                }
            })
            .collect();

        Ball { radius, nodes }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn radius_zero_sees_only_half_edges() {
        let g = gen::path(3);
        let ball = g.ball(NodeId(1), 0);
        assert_eq!(ball.node_count(), 1);
        assert_eq!(ball.center().ports, vec![PortView::Outside; 2]);
    }

    #[test]
    fn radius_one_on_path() {
        let g = gen::path(5);
        let ball = g.ball(NodeId(2), 1);
        assert_eq!(ball.node_count(), 3);
        // Center sees both edges.
        assert!(ball
            .center()
            .ports
            .iter()
            .all(|p| matches!(p, PortView::Inside { .. })));
        // Distance-1 nodes have one opaque port (their far edge).
        for node in &ball.nodes[1..] {
            let outside = node
                .ports
                .iter()
                .filter(|p| matches!(p, PortView::Outside))
                .count();
            assert_eq!(outside, 1);
        }
    }

    #[test]
    fn boundary_boundary_edges_are_invisible() {
        // Triangle: from any node at radius 1, the two neighbors are both at
        // distance 1 and their connecting edge must be invisible.
        let mut b = crate::GraphBuilder::new(3);
        b.add_edge(0, 1).unwrap();
        b.add_edge(1, 2).unwrap();
        b.add_edge(2, 0).unwrap();
        let g = b.build().unwrap();
        let ball = g.ball(NodeId(0), 1);
        assert_eq!(ball.node_count(), 3);
        for node in &ball.nodes[1..] {
            // Each neighbor sees the edge to the center and an opaque port
            // where the boundary-boundary edge is.
            let inside = node
                .ports
                .iter()
                .filter(|p| matches!(p, PortView::Inside { node: 0, .. }))
                .count();
            assert_eq!(inside, 1);
            assert!(node.ports.iter().any(|p| matches!(p, PortView::Outside)));
        }
    }

    #[test]
    fn canonical_key_is_isomorphism_invariant() {
        // Two different centers of a long path have isomorphic interior
        // views.
        let g = gen::path(9);
        let b1 = g.ball(NodeId(3), 2);
        let b2 = g.ball(NodeId(5), 2);
        assert_eq!(b1.topology_key(), b2.topology_key());
        // An endpoint's view differs.
        let b3 = g.ball(NodeId(0), 2);
        assert_ne!(b1.topology_key(), b3.topology_key());
    }

    #[test]
    fn canonical_key_distinguishes_attachments() {
        let g = gen::path(9);
        let b1 = g.ball(NodeId(3), 2);
        let k_plain = b1.canonical_key(|_| 7);
        let k_ids = b1.canonical_key(|h| u64::from(h.0));
        assert_ne!(k_plain, k_ids);
    }

    #[test]
    fn whole_graph_ball_covers_component() {
        let g = gen::complete_tree(3, 2);
        let ball = g.ball(NodeId(0), 10);
        assert_eq!(ball.node_count(), g.node_count());
        for node in &ball.nodes {
            assert!(node
                .ports
                .iter()
                .all(|p| matches!(p, PortView::Inside { .. })));
        }
    }

    #[test]
    fn visible_subgraph_matches_path_interior() {
        let g = gen::path(7);
        let ball = g.ball(NodeId(3), 2);
        let (sub, map) = ball.visible_subgraph();
        assert_eq!(sub.node_count(), 5);
        assert_eq!(sub.edge_count(), 4);
        assert_eq!(map[0], NodeId(3));
    }

    #[test]
    fn ball_respects_rev_ports() {
        let g = gen::cycle(6);
        let ball = g.ball(NodeId(0), 2);
        for (i, node) in ball.nodes.iter().enumerate() {
            for (p, port) in node.ports.iter().enumerate() {
                if let PortView::Inside { node: w, rev_port } = *port {
                    // The twin port must point back.
                    match ball.nodes[w as usize].ports[rev_port as usize] {
                        PortView::Inside {
                            node: back,
                            rev_port: rp,
                        } => {
                            assert_eq!(back as usize, i);
                            assert_eq!(rp as usize, p);
                        }
                        PortView::Outside => panic!("twin port must be visible"),
                    }
                }
            }
        }
    }
}
