//! Contiguous node-range partitions for sharded execution.
//!
//! A [`ShardMap`] splits the structural node indices `0..n` of a
//! [`Graph`] into `m` contiguous, balanced ranges — the ownership map of
//! the sharded executor (`lcl_shard`). Contiguity is what keeps the map
//! arithmetic: [`ShardMap::shard_of`] is O(1) with no lookup table, so
//! the 10⁷-node runs pay nothing for partition bookkeeping. Balance is
//! canonical (the first `n mod m` shards own one extra node), so the
//! same `(n, m)` pair always produces the identical partition and every
//! sharded run is reproducible from its parameters alone.
//!
//! The map also answers the boundary questions the halo-exchange and
//! frontier-repair layers ask: which nodes of a shard can see another
//! shard ([`ShardMap::frontier_nodes`]), and which edges cross shard
//! boundaries ([`ShardMap::cross_edge_count`]).

use crate::graph::{Graph, NodeId};
use std::ops::Range;

/// A balanced partition of `0..node_count` into contiguous shard ranges.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ShardMap {
    node_count: usize,
    num_shards: usize,
    /// `node_count / num_shards`; the first [`ShardMap::big`] shards own
    /// `base + 1` nodes, the rest `base`.
    base: usize,
    big: usize,
}

impl ShardMap {
    /// Partitions `0..node_count` into `num_shards` contiguous ranges.
    ///
    /// The count is clamped to `1..=max(node_count, 1)`, so there are
    /// never empty shards (except the single shard of an empty graph)
    /// and a zero request behaves like one shard.
    pub fn new(node_count: usize, num_shards: usize) -> Self {
        let num_shards = num_shards.clamp(1, node_count.max(1));
        Self {
            node_count,
            num_shards,
            base: node_count / num_shards,
            big: node_count % num_shards,
        }
    }

    /// Number of shards in the partition.
    pub fn num_shards(&self) -> usize {
        self.num_shards
    }

    /// Number of nodes the partition covers.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// The contiguous structural-index range shard `shard` owns.
    ///
    /// Shards are in index order: `range(s).end == range(s + 1).start`.
    pub fn range(&self, shard: usize) -> Range<usize> {
        debug_assert!(shard < self.num_shards, "shard index in range");
        let start = if shard <= self.big {
            shard * (self.base + 1)
        } else {
            self.big * (self.base + 1) + (shard - self.big) * self.base
        };
        let len = if shard < self.big {
            self.base + 1
        } else {
            self.base
        };
        start..start + len
    }

    /// The shard owning structural node index `index`, in O(1).
    pub fn shard_of_index(&self, index: usize) -> usize {
        debug_assert!(index < self.node_count, "node index in range");
        let split = self.big * (self.base + 1);
        if index < split {
            index / (self.base + 1)
        } else {
            self.big + (index - split) / self.base
        }
    }

    /// The shard owning node `v`.
    pub fn shard_of(&self, v: NodeId) -> usize {
        self.shard_of_index(v.index())
    }

    /// The nodes of `shard` with at least one neighbor in a different
    /// shard, in ascending structural order — the shard's frontier,
    /// which is exactly the set of nodes whose radius-1 view straddles
    /// a shard boundary.
    pub fn frontier_nodes(&self, graph: &Graph, shard: usize) -> Vec<NodeId> {
        self.range(shard)
            .map(|i| NodeId(i as u32))
            .filter(|&v| graph.neighbors_of(v).any(|u| self.shard_of(u) != shard))
            .collect()
    }

    /// Number of edges whose endpoints live in different shards.
    pub fn cross_edge_count(&self, graph: &Graph) -> usize {
        graph
            .edges()
            .filter(|&e| {
                let [a, b] = graph.endpoints(e);
                self.shard_of(a) != self.shard_of(b)
            })
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn ranges_tile_the_index_space_in_order() {
        for n in [0usize, 1, 2, 7, 16, 100, 101] {
            for m in [1usize, 2, 3, 4, 16, 200] {
                let map = ShardMap::new(n, m);
                assert!(map.num_shards() >= 1 && map.num_shards() <= n.max(1));
                let mut next = 0usize;
                for s in 0..map.num_shards() {
                    let r = map.range(s);
                    assert_eq!(r.start, next, "ranges are contiguous ({n}, {m})");
                    assert!(r.end > r.start || n == 0, "no empty shard ({n}, {m})");
                    for i in r.clone() {
                        assert_eq!(map.shard_of_index(i), s);
                    }
                    next = r.end;
                }
                assert_eq!(next, n, "ranges cover every node ({n}, {m})");
            }
        }
    }

    #[test]
    fn balance_gives_the_first_shards_the_extra_nodes() {
        let map = ShardMap::new(10, 4);
        let sizes: Vec<usize> = (0..4).map(|s| map.range(s).len()).collect();
        assert_eq!(sizes, vec![3, 3, 2, 2]);
        assert_eq!(ShardMap::new(10, 4), ShardMap::new(10, 4), "canonical");
    }

    #[test]
    fn shard_count_is_clamped() {
        assert_eq!(ShardMap::new(3, 0).num_shards(), 1);
        assert_eq!(ShardMap::new(3, 99).num_shards(), 3);
        assert_eq!(ShardMap::new(0, 5).num_shards(), 1);
        assert_eq!(ShardMap::new(0, 5).range(0), 0..0);
    }

    #[test]
    fn frontier_and_cross_edges_on_a_path() {
        // path(10) into 4 shards: [0..3][3..6][6..8][8..10]; the three
        // boundary edges are 2-3, 5-6, 7-8.
        let g = gen::path(10);
        let map = ShardMap::new(10, 4);
        assert_eq!(map.cross_edge_count(&g), 3);
        assert_eq!(map.frontier_nodes(&g, 0), vec![NodeId(2)]);
        assert_eq!(map.frontier_nodes(&g, 1), vec![NodeId(3), NodeId(5)]);
        assert_eq!(map.frontier_nodes(&g, 2), vec![NodeId(6), NodeId(7)]);
        assert_eq!(map.frontier_nodes(&g, 3), vec![NodeId(8)]);
        // One shard has no frontier at all.
        let whole = ShardMap::new(10, 1);
        assert_eq!(whole.cross_edge_count(&g), 0);
        assert!(whole.frontier_nodes(&g, 0).is_empty());
    }
}
