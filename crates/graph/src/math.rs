//! Small numeric helpers used across the workspace: `log*`, integer logs,
//! saturating power towers, and integer roots.
//!
//! These are the quantities the paper's statements are phrased in
//! (`log* n`, `log log* n`, `n^{1/k}`, power towers of height `2T + 3`).

/// `⌊log2 x⌋` for `x ≥ 1`.
///
/// # Panics
///
/// Panics if `x == 0`.
pub fn log2_floor(x: u64) -> u32 {
    assert!(x > 0, "log2_floor of zero");
    63 - x.leading_zeros()
}

/// `⌈log2 x⌉` for `x ≥ 1`.
///
/// # Panics
///
/// Panics if `x == 0`.
pub fn log2_ceil(x: u64) -> u32 {
    assert!(x > 0, "log2_ceil of zero");
    if x == 1 {
        0
    } else {
        64 - (x - 1).leading_zeros()
    }
}

/// The iterated logarithm `log* x` (base 2): the number of times `log2`
/// must be applied to `x` until the result is at most 1.
///
/// `log_star(1) == 0`, `log_star(2) == 1`, `log_star(4) == 2`,
/// `log_star(16) == 3`, `log_star(65536) == 4`.
pub fn log_star(x: u64) -> u32 {
    let mut x = x as f64;
    let mut count = 0;
    while x > 1.0 {
        x = x.log2();
        count += 1;
    }
    count
}

/// `log log* x` rounded down, with `log log*(x) = 0` whenever
/// `log* x <= 1`. Used for the dense-region series of Figure 1.
pub fn log_log_star(x: u64) -> u32 {
    let ls = log_star(x);
    if ls <= 1 {
        0
    } else {
        log2_floor(u64::from(ls))
    }
}

/// A power tower `2^2^...^2^top` of the given `height`, saturating at
/// `u64::MAX`. `power_tower(0, t) == t`.
pub fn power_tower(height: u32, top: u64) -> u64 {
    let mut value = top;
    for _ in 0..height {
        if value >= 64 {
            return u64::MAX;
        }
        value = 1u64 << value;
    }
    value
}

/// `⌊x^{1/k}⌋` for `k ≥ 1`.
///
/// # Panics
///
/// Panics if `k == 0`.
pub fn nth_root_floor(x: u64, k: u32) -> u64 {
    assert!(k > 0, "0th root");
    if k == 1 || x <= 1 {
        return x;
    }
    let mut r = (x as f64).powf(1.0 / f64::from(k)).round() as u64;
    // Fix up floating point error.
    while r > 0 && checked_pow(r, k).is_none_or(|p| p > x) {
        r -= 1;
    }
    while checked_pow(r + 1, k).is_some_and(|p| p <= x) {
        r += 1;
    }
    r
}

fn checked_pow(base: u64, exp: u32) -> Option<u64> {
    let mut acc: u64 = 1;
    for _ in 0..exp {
        acc = acc.checked_mul(base)?;
    }
    Some(acc)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log2_bounds() {
        assert_eq!(log2_floor(1), 0);
        assert_eq!(log2_floor(2), 1);
        assert_eq!(log2_floor(3), 1);
        assert_eq!(log2_floor(1024), 10);
        assert_eq!(log2_ceil(1), 0);
        assert_eq!(log2_ceil(2), 1);
        assert_eq!(log2_ceil(3), 2);
        assert_eq!(log2_ceil(1025), 11);
    }

    #[test]
    fn log_star_landmarks() {
        assert_eq!(log_star(1), 0);
        assert_eq!(log_star(2), 1);
        assert_eq!(log_star(4), 2);
        assert_eq!(log_star(16), 3);
        assert_eq!(log_star(65536), 4);
        assert_eq!(log_star(u64::MAX), 5);
    }

    #[test]
    fn log_log_star_is_monotone_and_tiny() {
        assert_eq!(log_log_star(2), 0);
        assert_eq!(log_log_star(65536), 2);
        let mut prev = 0;
        for e in 1..63 {
            let v = log_log_star(1u64 << e);
            assert!(v >= prev);
            prev = v;
        }
    }

    #[test]
    fn power_tower_values() {
        assert_eq!(power_tower(0, 3), 3);
        assert_eq!(power_tower(1, 3), 8);
        assert_eq!(power_tower(2, 2), 16);
        assert_eq!(power_tower(3, 2), 65536);
        assert_eq!(power_tower(4, 2), u64::MAX); // 2^65536 saturates
    }

    #[test]
    fn nth_root_values() {
        assert_eq!(nth_root_floor(27, 3), 3);
        assert_eq!(nth_root_floor(26, 3), 2);
        assert_eq!(nth_root_floor(1 << 40, 2), 1 << 20);
        assert_eq!(nth_root_floor(0, 5), 0);
        assert_eq!(nth_root_floor(1, 5), 1);
        assert_eq!(nth_root_floor(u64::MAX, 1), u64::MAX);
    }
}
