//! Port-numbered bounded-degree graph substrate for the LCL landscape suite.
//!
//! This crate provides the graph-theoretic foundation used by every other
//! crate in the workspace, mirroring the preliminaries of *The Landscape of
//! Distributed Complexities on Trees and Beyond* (PODC 2022), Section 2:
//!
//! * [`Graph`] — an immutable, port-numbered graph of maximum degree `Δ`.
//!   Every node `v` has ports `0..deg(v)` and every edge is incident to a
//!   unique port at each endpoint, exactly as required by Definition 2.1 of
//!   the paper ("each graph comes with a port numbering").
//! * [`HalfEdgeId`] — half-edges `(v, e)` are first-class: LCL problems label
//!   half-edges (Definition 2.2), so the representation is built around them.
//! * [`Ball`] — the radius-`T` view `B_G(v, T)` of a node, with the exact
//!   visibility rules of Definition 2.1 (all nodes in distance `≤ T`, all
//!   edges with an endpoint in distance `≤ T-1`, all half-edges whose
//!   endpoint is in distance `≤ T`).
//! * [`ShardMap`] — balanced contiguous node-range partitions, the
//!   ownership map of the sharded executor (`lcl_shard`).
//! * [`gen`] — deterministic and randomized generators for the graph classes
//!   the paper quantifies over: paths, cycles, trees `𝒯`, forests `ℱ`, and
//!   `d`-dimensional oriented toroidal grids.
//!
//! # Examples
//!
//! ```
//! use lcl_graph::gen;
//!
//! let g = gen::path(5);
//! assert_eq!(g.node_count(), 5);
//! assert_eq!(g.edge_count(), 4);
//! let ball = g.ball(lcl_graph::NodeId(2), 1);
//! assert_eq!(ball.node_count(), 3);
//! ```

pub mod ball;
pub mod builder;
pub mod gen;
pub mod graph;
pub mod line;
pub mod math;
pub mod partition;

pub use ball::{Ball, BallNode, PortView};
pub use builder::{BuildError, GraphBuilder};
pub use graph::{EdgeId, Graph, HalfEdgeId, NodeId};
pub use partition::ShardMap;
