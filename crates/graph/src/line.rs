//! Line graphs: the substrate for edge-labeling problems solved by
//! simulating node algorithms "one level up" (edge coloring of `G` is
//! vertex coloring of `L(G)`).

use crate::builder::GraphBuilder;
use crate::graph::{EdgeId, Graph};

/// The line graph `L(G)`: one node per edge of `G`, adjacent iff the edges
/// share an endpoint. Returns the graph together with the mapping from
/// `L(G)`-node index to the original [`EdgeId`] (the inverse is the
/// identity: `L(G)`-node `i` is edge `i`).
///
/// `L(G)` has maximum degree `2(Δ - 1)` for `G` of maximum degree `Δ`.
pub fn line_graph(g: &Graph) -> (Graph, Vec<EdgeId>) {
    let m = g.edge_count();
    let mut builder = GraphBuilder::new(m);
    // Edges of L(G): for each node of G, all pairs of incident edges.
    let mut seen = std::collections::HashSet::new();
    for v in g.nodes() {
        let incident: Vec<EdgeId> = g.half_edges_of(v).map(|h| g.edge_of(h)).collect();
        for (i, &a) in incident.iter().enumerate() {
            for &b in &incident[i + 1..] {
                let key = (a.min(b), a.max(b));
                if seen.insert(key) {
                    builder
                        .add_edge(a.index(), b.index())
                        .expect("edge ids are in range");
                }
            }
        }
    }
    let graph = builder.build().expect("line graphs are simple");
    let map = (0..m as u32).map(EdgeId).collect();
    (graph, map)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use crate::graph::NodeId;

    #[test]
    fn line_graph_of_a_path_is_a_path() {
        let g = gen::path(5);
        let (l, map) = line_graph(&g);
        assert_eq!(l.node_count(), 4);
        assert_eq!(l.edge_count(), 3);
        assert!(l.is_tree());
        assert_eq!(map.len(), 4);
    }

    #[test]
    fn line_graph_of_a_star_is_complete() {
        let g = gen::star(3);
        let (l, _) = line_graph(&g);
        assert_eq!(l.node_count(), 3);
        assert_eq!(l.edge_count(), 3); // triangle
        assert_eq!(l.girth(), Some(3));
    }

    #[test]
    fn line_graph_degree_bound() {
        let g = gen::random_tree(40, 4, 3);
        let (l, _) = line_graph(&g);
        assert!(l.max_degree() <= 2 * (g.max_degree() - 1));
    }

    #[test]
    fn line_graph_of_cycle_is_cycle() {
        let g = gen::cycle(6);
        let (l, _) = line_graph(&g);
        assert_eq!(l.node_count(), 6);
        assert_eq!(l.edge_count(), 6);
        for v in l.nodes() {
            assert_eq!(l.degree(v), 2);
        }
        let _ = NodeId(0);
    }
}
