//! Node-edge-checkable definitions of the landmark LCL problems.
//!
//! Each constructor returns an explicit [`LclProblem`] in the half-edge
//! formalism of the paper (Definition 2.3); the suite's verifiers check
//! algorithm outputs against these, and the round-elimination tower and
//! classifier take them as input.

use lcl::LclProblem;

/// Proper `k`-coloring on graphs of maximum degree `delta`: every node is
/// monochromatic across its half-edges, adjacent nodes differ.
///
/// Complexity: `Θ(log* n)` for `k ≥ delta + 1` on trees and bounded-degree
/// graphs (class B of the paper's Figure 1).
///
/// # Panics
///
/// Panics if `k == 0` or `k > 26`.
pub fn k_coloring(k: usize, delta: u8) -> LclProblem {
    assert!((1..=26).contains(&k), "1..=26 colors supported");
    let names: Vec<String> = (0..k)
        .map(|i| char::from(b'A' + i as u8).to_string())
        .collect();
    let mut builder = LclProblem::builder(&format!("{k}-coloring"), delta)
        .outputs(names.iter().map(String::as_str));
    for c in &names {
        let starred = format!("{c}*");
        builder = builder.node_pattern(&[&starred]);
    }
    for i in 0..k {
        for j in (i + 1)..k {
            builder = builder.edge(&[&names[i], &names[j]]);
        }
    }
    builder.build().expect("k-coloring is well-formed")
}

/// Proper 2-coloring (global on paths/trees: `Θ(n)` on paths,
/// `Θ(diameter)` on trees — class 5 territory).
pub fn two_coloring(delta: u8) -> LclProblem {
    k_coloring(2, delta)
}

/// 3-coloring with an orientation given as *input* labels: every node sees
/// `l` on its predecessor-side half-edges and `r` on successor-side ones.
/// This is the input-labeled form used on oriented paths/cycles.
pub fn oriented_three_coloring() -> LclProblem {
    LclProblem::builder("oriented-3-coloring", 2)
        .inputs(["l", "r"])
        .outputs(["A", "B", "C"])
        .node_pattern(&["A*"])
        .node_pattern(&["B*"])
        .node_pattern(&["C*"])
        .edge(&["A", "B"])
        .edge(&["A", "C"])
        .edge(&["B", "C"])
        .build()
        .expect("oriented 3-coloring is well-formed")
}

/// Sinkless orientation: every edge is oriented (`O` at the tail, `I` at
/// the head) and every node has at least one outgoing half-edge.
///
/// The celebrated round-elimination fixed point: `Θ(log n)` deterministic
/// and `Θ(log log n)` randomized on trees of degree `≥ 3` (class 3 of the
/// tree landscape).
pub fn sinkless_orientation(delta: u8) -> LclProblem {
    LclProblem::builder("sinkless-orientation", delta)
        .outputs(["I", "O"])
        .node_pattern(&["O", "I*", "O*"])
        .edge(&["I", "O"])
        .build()
        .expect("sinkless orientation is well-formed")
}

/// The *standard* sinkless orientation: only nodes of degree at least 3
/// must have an outgoing half-edge; degree-1 and degree-2 nodes are
/// unconstrained. Unlike [`sinkless_orientation`], this version is
/// solvable on every tree (orient everything toward a leaf).
///
/// Uses degree-restricted configuration patterns — the `@d` form of the
/// text format.
pub fn sinkless_orientation_standard(delta: u8) -> LclProblem {
    assert!(delta >= 3, "the standard problem needs Δ ≥ 3");
    let mut builder = LclProblem::builder("sinkless-standard", delta)
        .outputs(["I", "O"])
        .edge(&["I", "O"]);
    for d in 1..=2u8 {
        builder = builder.node_pattern_for_degree(d, &["I*", "O*"]);
    }
    for d in 3..=delta {
        builder = builder.node_pattern_for_degree(d, &["O", "I*", "O*"]);
    }
    builder.build().expect("standard sinkless is well-formed")
}

/// The anti-matching toy problem: every edge must be bi-chromatic
/// (`{X, Y}`), nodes are unconstrained. Not 0-round solvable, solvable in
/// one round — the canonical demo for the speed-up pipeline (`f(Π)` is
/// 0-round solvable).
pub fn anti_matching(delta: u8) -> LclProblem {
    LclProblem::builder("anti-matching", delta)
        .outputs(["X", "Y"])
        .node_pattern(&["X*", "Y*"])
        .edge(&["X", "Y"])
        .build()
        .expect("anti-matching is well-formed")
}

/// Maximal independent set in pointer form: a node is in the set (all
/// half-edges `I`) or out of it with one half-edge `P` pointing at a
/// set-neighbor and the rest `N`. Complexity `Θ(log* n)` on bounded-degree
/// graphs.
pub fn mis_problem(delta: u8) -> LclProblem {
    LclProblem::builder("mis", delta)
        .outputs(["I", "P", "N"])
        .node_pattern(&["I*"])
        .node_pattern(&["P", "N*"])
        .edge(&["P", "I"]) // the pointer faces a set member
        .edge(&["N", "I"])
        .edge(&["N", "N"])
        .build()
        .expect("mis is well-formed")
}

/// Maximal matching: a matched node has exactly one half-edge `M` (facing
/// the partner's `M`) and `S` elsewhere; a free node is all `F`, and two
/// free nodes may not be adjacent. Complexity `Θ(log* n)` for constant
/// degree.
pub fn maximal_matching_problem(delta: u8) -> LclProblem {
    LclProblem::builder("maximal-matching", delta)
        .outputs(["M", "S", "F"])
        .node_pattern(&["M", "S*"])
        .node_pattern(&["F*"])
        .edge(&["M", "M"]) // a matched edge is claimed by both endpoints
        .edge(&["S", "S"])
        .edge(&["S", "F"])
        .build()
        .expect("maximal matching is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcl::{verify, HalfEdgeLabeling, OutLabel, Problem};
    use lcl_graph::gen;

    #[test]
    fn k_coloring_counts() {
        let p = k_coloring(3, 3);
        assert_eq!(p.output_alphabet().len(), 3);
        assert_eq!(p.edge_config_count(), 3);
        let p5 = k_coloring(5, 4);
        assert_eq!(p5.edge_config_count(), 10);
    }

    #[test]
    fn sinkless_orientation_requires_an_out_edge() {
        let p = sinkless_orientation(3);
        let (i, o) = (OutLabel(0), OutLabel(1));
        assert!(!p.node_allows(&[i, i, i]));
        assert!(p.node_allows(&[i, i, o]));
        assert!(p.node_allows(&[o, o, o]));
    }

    #[test]
    fn mis_solution_verifies_on_a_star() {
        // Center in the set, leaves point at it.
        let g = gen::star(3);
        let p = mis_problem(3);
        let input = lcl::uniform_input(&g);
        let (i, pp) = (OutLabel(0), OutLabel(1));
        let out =
            HalfEdgeLabeling::from_node_fn(&g, |v| if v.0 == 0 { vec![i; 3] } else { vec![pp] });
        assert!(verify(&p, &g, &input, &out).is_empty());
    }

    #[test]
    fn mis_rejects_adjacent_members_and_unmotivated_outsiders() {
        let g = gen::path(2);
        let p = mis_problem(3);
        let input = lcl::uniform_input(&g);
        let i = OutLabel(0);
        // Both endpoints in the set: edge {I, I} is forbidden.
        let out = HalfEdgeLabeling::uniform(&g, i);
        assert!(!verify(&p, &g, &input, &out).is_empty());
        // A pointer facing a non-member is forbidden.
        let pp = OutLabel(1);
        let out = HalfEdgeLabeling::uniform(&g, pp);
        assert!(!verify(&p, &g, &input, &out).is_empty());
    }

    #[test]
    fn matching_solution_verifies_on_a_path() {
        // Path 0-1-2-3: match {0,1} and {2,3}.
        let g = gen::path(4);
        let p = maximal_matching_problem(2);
        let input = lcl::uniform_input(&g);
        let (m, s) = (OutLabel(0), OutLabel(1));
        let out = HalfEdgeLabeling::from_node_fn(&g, |v| match v.0 {
            0 => vec![m],
            1 => vec![m, s],
            2 => vec![s, m],
            _ => vec![m],
        });
        assert!(verify(&p, &g, &input, &out).is_empty());
    }

    #[test]
    fn matching_rejects_adjacent_free_nodes() {
        let g = gen::path(2);
        let p = maximal_matching_problem(2);
        let input = lcl::uniform_input(&g);
        let f = OutLabel(2);
        let out = HalfEdgeLabeling::uniform(&g, f);
        assert!(!verify(&p, &g, &input, &out).is_empty());
    }

    #[test]
    fn standard_sinkless_frees_small_degrees() {
        let p = sinkless_orientation_standard(3);
        let (i, o) = (OutLabel(0), OutLabel(1));
        // Degree 1 and 2 are free.
        assert!(p.node_allows(&[i]));
        assert!(p.node_allows(&[i, i]));
        // Degree 3 needs an out-edge.
        assert!(!p.node_allows(&[i, i, i]));
        assert!(p.node_allows(&[i, i, o]));
    }

    #[test]
    fn standard_sinkless_is_solvable_on_trees() {
        // Orient every edge toward node 0 (a fixed "root-leaf" direction):
        // on a star, the center keeps out-edges? No — orient *away* from
        // the center so the degree-3 center has out-edges and leaves
        // (degree 1, unconstrained) absorb them.
        let g = gen::star(3);
        let p = sinkless_orientation_standard(3);
        let input = lcl::uniform_input(&g);
        let (i, o) = (OutLabel(0), OutLabel(1));
        let out =
            HalfEdgeLabeling::from_node_fn(&g, |v| if v.0 == 0 { vec![o; 3] } else { vec![i] });
        assert!(verify(&p, &g, &input, &out).is_empty());
    }

    #[test]
    fn degree_restricted_patterns_roundtrip_through_text() {
        let p = sinkless_orientation_standard(3);
        let q = lcl::LclProblem::parse(&p.to_text()).unwrap();
        assert_eq!(p.node_config_count(), q.node_config_count());
        assert_eq!(p.edge_config_count(), q.edge_config_count());
    }

    #[test]
    fn at_syntax_parses() {
        let p = lcl::LclProblem::parse("max-degree: 3\nnodes:\n@1 X*\n@3 X X X\nedges:\nX X\n")
            .unwrap();
        let x = OutLabel(0);
        assert!(p.node_allows(&[x]));
        assert!(!p.node_allows(&[x, x])); // degree 2 has no configuration
        assert!(p.node_allows(&[x, x, x]));
    }

    #[test]
    fn oriented_coloring_has_orientation_inputs() {
        let p = oriented_three_coloring();
        assert_eq!(p.input_alphabet().len(), 2);
    }
}
