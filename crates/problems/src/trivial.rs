//! The `O(1)` end of the landscape: problems solvable without looking far
//! at all, plus the paper's own example "find the maximum degree in your
//! 2-hop neighborhood".

use lcl::{LclProblem, OutLabel};
use lcl_local::{LocalAlgorithm, View};

/// The free problem: every labeling over `k` labels is correct. 0-round
/// solvable by construction; the degenerate baseline of class A.
pub fn free_problem(k: usize, delta: u8) -> LclProblem {
    assert!((1..=26).contains(&k));
    let names: Vec<String> = (0..k)
        .map(|i| char::from(b'A' + i as u8).to_string())
        .collect();
    let refs: Vec<&str> = names.iter().map(String::as_str).collect();
    let starred: Vec<String> = names.iter().map(|n| format!("{n}*")).collect();
    let starred_refs: Vec<&str> = starred.iter().map(String::as_str).collect();
    let mut builder = LclProblem::builder(&format!("free-{k}"), delta)
        .outputs(refs.clone())
        .node_pattern(&starred_refs);
    for i in 0..k {
        for j in i..k {
            builder = builder.edge(&[refs[i], refs[j]]);
        }
    }
    builder.build().expect("free problem is well-formed")
}

/// "Is my degree the maximum within 2 hops?" — the paper's introduction
/// example of a constant-time problem. Output 1 iff yes; any labeling that
/// reports the correct Boolean is accepted, so this is naturally checked
/// against [`max_degree_2hop_reference`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct MaxDegree2Hop;

impl LocalAlgorithm for MaxDegree2Hop {
    fn radius(&self, _n: usize) -> u32 {
        2
    }

    fn label(&self, view: &View<'_>) -> Vec<OutLabel> {
        let mine = view.center_degree();
        let max = view
            .ball
            .nodes
            .iter()
            .map(|b| b.ports.len())
            .max()
            .unwrap_or(0);
        vec![OutLabel(u32::from(mine == max)); mine]
    }

    fn name(&self) -> &str {
        "max-degree-2hop"
    }
}

/// Reference answer for [`MaxDegree2Hop`], computed centrally.
pub fn max_degree_2hop_reference(graph: &lcl_graph::Graph) -> Vec<bool> {
    graph
        .nodes()
        .map(|v| {
            let dist = graph.bfs_distances(v, 2);
            let max = graph
                .nodes()
                .filter(|u| dist[u.index()] != u32::MAX)
                .map(|u| graph.degree(u))
                .max()
                .unwrap_or(0);
            graph.degree(v) == max
        })
        .collect()
}

/// A 0-round constant-label algorithm (solves [`free_problem`]).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ConstantZero;

impl LocalAlgorithm for ConstantZero {
    fn radius(&self, _n: usize) -> u32 {
        0
    }

    fn label(&self, view: &View<'_>) -> Vec<OutLabel> {
        vec![OutLabel(0); view.center_degree()]
    }

    fn name(&self) -> &str {
        "constant-zero"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcl_graph::gen;
    use lcl_local::{run_deterministic, IdAssignment};

    #[test]
    fn free_problem_accepts_anything() {
        let p = free_problem(2, 3);
        let g = gen::random_tree(12, 3, 1);
        let input = lcl::uniform_input(&g);
        let ids = IdAssignment::sequential(12);
        let run = run_deterministic(&ConstantZero, &g, &input, &ids, None);
        assert!(lcl::verify(&p, &g, &input, &run.output).is_empty());
    }

    #[test]
    fn max_degree_2hop_matches_reference() {
        let g = gen::caterpillar(5, 2);
        let input = lcl::uniform_input(&g);
        let ids = IdAssignment::sequential(g.node_count());
        let run = run_deterministic(&MaxDegree2Hop, &g, &input, &ids, None);
        let reference = max_degree_2hop_reference(&g);
        for v in g.nodes() {
            if g.degree(v) == 0 {
                continue;
            }
            let h = g.half_edge(v, 0);
            assert_eq!(
                run.output.get(h),
                OutLabel(u32::from(reference[v.index()])),
                "{v:?}"
            );
        }
    }

    #[test]
    fn max_degree_2hop_is_constant_radius() {
        assert_eq!(MaxDegree2Hop.radius(10), 2);
        assert_eq!(MaxDegree2Hop.radius(1 << 30), 2);
    }
}
