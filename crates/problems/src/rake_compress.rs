//! Rake-and-compress (Miller–Reif) layering of trees — the `Θ(log n)`
//! engine behind the classes `Θ(log n)` / `Θ(n^{1/k})` of the tree
//! landscape (Chang–Pettie's hierarchy is built on exactly this
//! decomposition).
//!
//! Every round, *rake* removes nodes with at most one active neighbor and
//! *compress* removes degree-2 nodes that win a random coin against their
//! degree-2 neighbors. On any tree the number of rounds is `O(log n)`
//! with high probability; the measured round count is the `Θ(log n)`
//! series of the Figure 1 benches.

use lcl::OutLabel;
use lcl_local::{NodeInit, SyncAlgorithm};

/// The rake-and-compress peeling algorithm. Outputs each node's layer
/// number modulo 3 (the layer itself is returned by the round count and
/// [`rake_compress_rounds`]).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RakeCompress {
    /// Seed mixed into the per-round coins.
    pub seed: u64,
}

/// Per-node state of [`RakeCompress`].
#[derive(Clone, Debug)]
pub struct RcState {
    id: u64,
    seed: u64,
    degree: u8,
    active: bool,
    neighbor_active: Vec<bool>,
    layer: u32,
    round: u32,
}

fn coin(id: u64, seed: u64, round: u32) -> bool {
    // A splitmix-style hash: deterministic, uniform enough for the
    // constant-probability compress step.
    let mut x = id
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(seed)
        .wrapping_add(u64::from(round) << 32);
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x & 1 == 1
}

impl SyncAlgorithm for RakeCompress {
    type State = RcState;
    /// `(still active, active-degree, coin)`.
    type Msg = (bool, u8, bool);

    fn init(&self, init: &NodeInit) -> RcState {
        RcState {
            id: init.id,
            seed: self.seed,
            degree: init.degree,
            active: true,
            neighbor_active: vec![true; init.degree as usize],
            layer: 0,
            round: 0,
        }
    }

    fn send(&self, state: &RcState, _round: u32) -> Vec<(bool, u8, bool)> {
        let active_degree = state.neighbor_active.iter().filter(|&&a| a).count() as u8;
        let msg = (
            state.active,
            active_degree,
            coin(state.id, state.seed, state.round),
        );
        vec![msg; state.degree as usize]
    }

    fn receive(&self, state: &mut RcState, inbox: &[(bool, u8, bool)], _round: u32) {
        if state.active {
            let active_ports: Vec<usize> = inbox
                .iter()
                .enumerate()
                .filter(|(_, m)| m.0)
                .map(|(p, _)| p)
                .collect();
            let my_coin = coin(state.id, state.seed, state.round);
            let removed = match active_ports.len() {
                // Rake: leaves (and isolated remnants) drop out.
                0 | 1 => true,
                // Compress: win the coin against degree-2 chain neighbors.
                2 => {
                    my_coin
                        && active_ports.iter().all(|&p| {
                            let (_, neighbor_deg, neighbor_coin) = inbox[p];
                            neighbor_deg != 2 || !neighbor_coin
                        })
                }
                _ => false,
            };
            if removed {
                state.active = false;
                state.layer = state.round + 1;
            }
        }
        for (p, m) in inbox.iter().enumerate() {
            state.neighbor_active[p] = m.0;
        }
        state.round += 1;
    }

    fn is_done(&self, state: &RcState) -> bool {
        // One extra round after removal so neighbors observe it.
        !state.active && state.neighbor_active.iter().all(|&a| !a)
    }

    fn output(&self, state: &RcState) -> Vec<OutLabel> {
        vec![OutLabel(state.layer % 3); state.degree as usize]
    }

    fn name(&self) -> &str {
        "rake-compress"
    }
}

/// Runs rake-and-compress on a tree/forest and returns the number of
/// peeling rounds — `O(log n)` with high probability.
pub fn rake_compress_rounds(graph: &lcl_graph::Graph, seed: u64) -> u32 {
    let input = lcl::uniform_input(graph);
    let ids: Vec<u64> = (0..graph.node_count() as u64).collect();
    let run = lcl_local::run_sync(&RakeCompress { seed }, graph, &input, &ids, None, 100_000);
    run.rounds
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcl_graph::gen;

    #[test]
    fn paths_peel_in_logarithmic_rounds() {
        for (n, bound) in [(16usize, 30u32), (256, 60), (4096, 90)] {
            let g = gen::path(n);
            let rounds = rake_compress_rounds(&g, 1);
            assert!(rounds > 0);
            assert!(rounds <= bound, "n={n}: rounds={rounds}");
        }
    }

    #[test]
    fn rounds_grow_with_n() {
        let small = rake_compress_rounds(&gen::path(8), 3);
        let large = rake_compress_rounds(&gen::path(8192), 3);
        assert!(large > small, "small={small} large={large}");
    }

    #[test]
    fn complete_trees_rake_quickly() {
        // A complete binary tree has no long chains: pure raking peels a
        // level per round, so rounds ≈ depth.
        let g = gen::complete_tree(2, 6); // 127 nodes, depth 6
        let rounds = rake_compress_rounds(&g, 2);
        assert!(rounds >= 4, "rounds={rounds}");
        assert!(rounds <= 10, "rounds={rounds}");
    }

    #[test]
    fn stars_and_singletons_terminate() {
        assert!(rake_compress_rounds(&gen::star(3), 1) <= 4);
        let single = lcl_graph::GraphBuilder::new(1).build().unwrap();
        assert!(rake_compress_rounds(&single, 1) <= 2);
    }

    #[test]
    fn coins_are_deterministic_and_mixed() {
        assert_eq!(coin(5, 7, 3), coin(5, 7, 3));
        // Not all equal over a sample.
        let values: std::collections::HashSet<bool> = (0..32).map(|i| coin(i, 0, 0)).collect();
        assert_eq!(values.len(), 2);
    }
}
