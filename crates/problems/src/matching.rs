//! Maximal matching from a `(Δ+1)`-coloring in `O(log* n) + O_Δ(1)`
//! rounds.
//!
//! After coloring, `(Δ+1)·Δ` propose/accept phases run, one per
//! (color, port) pair: in phase `(c, p)` every unmatched node of color `c`
//! proposes through port `p`; every unmatched node that is not proposing
//! accepts its lowest-port proposal. Maximality: if adjacent `u, v` both
//! ended unmatched, then in phase `(color(u), port_u(v))` node `u`
//! proposed to `v` and `v` (a different color, hence not proposing)
//! accepted *someone* — contradiction.

use lcl::OutLabel;
use lcl_local::{NodeInit, SyncAlgorithm};

use crate::coloring::{ColoringState, DeltaPlusOne};

/// Maximal matching via coloring; outputs match
/// [`maximal_matching_problem(Δ)`](crate::catalog::maximal_matching_problem)
/// (`M`/`S`/`F`).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct MatchingByColor {
    /// The degree bound `Δ`.
    pub delta: u8,
}

/// Per-node state of [`MatchingByColor`].
#[derive(Clone, Debug)]
pub struct MatchingState {
    coloring: ColoringState,
    coloring_rounds: u32,
    /// Port of the matched partner, if any.
    partner: Option<u8>,
    /// Port this node proposed through in the current phase, if any.
    proposed: Option<u8>,
    /// Ports with pending proposals received in the current phase.
    proposals: Vec<u8>,
    round: u32,
    total_rounds: u32,
    degree: u8,
}

impl MatchingByColor {
    fn inner(&self) -> DeltaPlusOne {
        DeltaPlusOne { delta: self.delta }
    }

    /// Total rounds: coloring plus two rounds per (color, port) phase.
    pub fn total_rounds(&self, n: usize) -> u32 {
        self.inner().total_rounds(n) + 2 * (u32::from(self.delta) + 1) * u32::from(self.delta)
    }
}

impl SyncAlgorithm for MatchingByColor {
    type State = MatchingState;
    /// Per-port flag: propose (round A) or accept (round B).
    type Msg = Vec<u64>;

    fn init(&self, init: &NodeInit) -> MatchingState {
        MatchingState {
            coloring: self.inner().init(init),
            coloring_rounds: self.inner().total_rounds(init.n),
            partner: None,
            proposed: None,
            proposals: Vec::new(),
            round: 0,
            total_rounds: self.total_rounds(init.n),
            degree: init.degree,
        }
    }

    fn send(&self, state: &MatchingState, round: u32) -> Vec<Vec<u64>> {
        if state.round < state.coloring_rounds {
            return self.inner().send(&state.coloring, round);
        }
        let step = state.round - state.coloring_rounds;
        let (phase, is_accept_round) = (step / 2, step % 2 == 1);
        if !is_accept_round {
            // Round A: propose through port p if of color c and unmatched.
            let color_turn = u64::from(phase) / u64::from(self.delta.max(1));
            let port_turn = (phase % u32::from(self.delta.max(1))) as u8;
            (0..state.degree)
                .map(|p| {
                    let propose = state.partner.is_none()
                        && state.coloring.color() == color_turn
                        && p == port_turn;
                    vec![u64::from(propose)]
                })
                .collect()
        } else {
            // Round B: accept the lowest-port proposal if unmatched and
            // not proposing this phase.
            let accept_port = if state.partner.is_none() && state.proposed.is_none() {
                state.proposals.iter().copied().min()
            } else {
                None
            };
            (0..state.degree)
                .map(|p| vec![u64::from(accept_port == Some(p))])
                .collect()
        }
    }

    fn receive(&self, state: &mut MatchingState, inbox: &[Vec<u64>], round: u32) {
        if state.round < state.coloring_rounds {
            self.inner().receive(&mut state.coloring, inbox, round);
            state.round += 1;
            return;
        }
        let step = state.round - state.coloring_rounds;
        let (phase, is_accept_round) = (step / 2, step % 2 == 1);
        if !is_accept_round {
            // Record proposals received; remember whether we proposed.
            state.proposals = inbox
                .iter()
                .enumerate()
                .filter(|(_, m)| m[0] == 1)
                .map(|(p, _)| p as u8)
                .collect();
            let color_turn = u64::from(phase) / u64::from(self.delta.max(1));
            let port_turn = (phase % u32::from(self.delta.max(1))) as u8;
            state.proposed = (state.partner.is_none()
                && state.coloring.color() == color_turn
                && port_turn < state.degree)
                .then_some(port_turn);
        } else {
            // An accept on the port we proposed through matches us; an
            // accept we sent matches us with the accepted proposer.
            if let Some(p) = state.proposed {
                if inbox[p as usize][0] == 1 {
                    state.partner = Some(p);
                }
            }
            if state.partner.is_none() && state.proposed.is_none() {
                if let Some(&p) = state.proposals.iter().min_by_key(|&&p| p) {
                    // We accepted this proposer in our send phase.
                    state.partner = Some(p);
                }
            }
            state.proposed = None;
            state.proposals.clear();
        }
        state.round += 1;
    }

    fn is_done(&self, state: &MatchingState) -> bool {
        state.round >= state.total_rounds
    }

    fn output(&self, state: &MatchingState) -> Vec<OutLabel> {
        const M: u32 = 0;
        const S: u32 = 1;
        const F: u32 = 2;
        match state.partner {
            Some(q) => (0..state.degree)
                .map(|p| OutLabel(if p == q { M } else { S }))
                .collect(),
            None => vec![OutLabel(F); state.degree as usize],
        }
    }

    fn name(&self) -> &str {
        "matching-by-color"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::maximal_matching_problem;
    use lcl_graph::gen;
    use lcl_local::{run_sync, IdAssignment};

    fn check(graph: &lcl_graph::Graph, delta: u8, seed: u64) {
        let problem = maximal_matching_problem(delta);
        let input = lcl::uniform_input(graph);
        let ids = IdAssignment::random_polynomial(graph.node_count(), 3, seed);
        let alg = MatchingByColor { delta };
        let run = run_sync(
            &alg,
            graph,
            &input,
            &ids.iter().collect::<Vec<_>>(),
            None,
            100_000,
        );
        let violations = lcl::verify(&problem, graph, &input, &run.output);
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn matches_paths_and_cycles() {
        check(&gen::path(2), 2, 1);
        check(&gen::path(29), 2, 2);
        check(&gen::cycle(20), 2, 3);
    }

    #[test]
    fn matches_trees_and_forests() {
        check(&gen::random_tree(44, 3, 4), 3, 4);
        check(&gen::star(3), 3, 5);
        check(&gen::random_forest(36, 3, 3, 6), 3, 7);
    }
}
