//! Global problems: 2-coloring of paths/trees, solved by gathering —
//! complexity `Θ(n)` on paths and `Θ(diameter)` in general (class 5 of
//! the tree landscape; the `Θ(n^{1/k})` family of Chang–Pettie sits on
//! the same "must see far" mechanism).
//!
//! The algorithm is the information-theoretically honest one: a node
//! outputs the parity of its distance to a canonical anchor (the
//! minimum-identifier node of its component), which it can determine only
//! once its view covers the whole component. Used with
//! [`minimal_solving_radius`](lcl_local::minimal_solving_radius), it
//! *measures* the `Θ(n)` lower-bound behavior.

use lcl::OutLabel;
use lcl_graph::PortView;
use lcl_local::{LocalAlgorithm, View};

/// Gather-based 2-coloring: correct exactly when the radius covers each
/// node's component.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TwoColorByAnchor {
    /// The gathering radius to use.
    pub radius: u32,
}

impl LocalAlgorithm for TwoColorByAnchor {
    fn radius(&self, _n: usize) -> u32 {
        self.radius
    }

    fn label(&self, view: &View<'_>) -> Vec<OutLabel> {
        let degree = view.center_degree();
        // The component is fully visible iff no port of any visible node
        // leads outside the view.
        let complete = view.ball.nodes.iter().all(|node| {
            node.ports
                .iter()
                .all(|p| matches!(p, PortView::Inside { .. }))
        });
        if !complete {
            return vec![OutLabel(0); degree]; // insufficient radius
        }
        // Anchor: the minimum-id node; color = parity of distance to it.
        let anchor = (0..view.ball.node_count())
            .min_by_key(|&i| view.ids[i])
            .expect("views are nonempty");
        let (subgraph, _) = view.ball.visible_subgraph();
        let dist = subgraph.bfs_distances(lcl_graph::NodeId(anchor as u32), u32::MAX);
        let mine = dist[0];
        assert_ne!(mine, u32::MAX, "complete views are connected");
        vec![OutLabel(mine % 2); degree]
    }

    fn name(&self) -> &str {
        "2color-by-anchor"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::two_coloring;
    use lcl_graph::gen;
    use lcl_local::{minimal_solving_radius, run_deterministic, IdAssignment};

    #[test]
    fn full_radius_two_colors_paths_and_trees() {
        for g in [gen::path(9), gen::random_tree(20, 3, 4), gen::star(3)] {
            let problem = two_coloring(g.max_degree());
            let input = lcl::uniform_input(&g);
            let ids = IdAssignment::random_polynomial(g.node_count(), 3, 8);
            let alg = TwoColorByAnchor {
                radius: g.node_count() as u32,
            };
            let run = run_deterministic(&alg, &g, &input, &ids, None);
            let violations = lcl::verify(&problem, &g, &input, &run.output);
            assert!(violations.is_empty(), "{violations:?}");
        }
    }

    #[test]
    fn required_radius_grows_linearly_on_paths() {
        let mut radii = Vec::new();
        for n in [8usize, 16, 32] {
            let g = gen::path(n);
            let problem = two_coloring(2);
            let input = lcl::uniform_input(&g);
            let ids = IdAssignment::sequential(n);
            let t = minimal_solving_radius(&problem, &g, &input, &ids, n as u32, |r| {
                TwoColorByAnchor { radius: r }
            })
            .expect("solvable at full radius");
            radii.push(t);
        }
        // Doubling n roughly doubles the required radius (Θ(n)).
        assert!(radii[1] >= radii[0] * 2 - 2, "{radii:?}");
        assert!(radii[2] >= radii[1] * 2 - 2, "{radii:?}");
        // The endpoint nodes force radius ≈ n - 1.
        assert!(radii[2] >= 24, "{radii:?}");
    }

    #[test]
    fn incomplete_views_fail() {
        let g = gen::path(10);
        let problem = two_coloring(2);
        let input = lcl::uniform_input(&g);
        let ids = IdAssignment::sequential(10);
        let alg = TwoColorByAnchor { radius: 2 };
        let run = run_deterministic(&alg, &g, &input, &ids, None);
        assert!(!lcl::verify(&problem, &g, &input, &run.output).is_empty());
    }
}
