//! The shortcut construction behind the *dense region* of the general-graph
//! landscape (`Θ(log log* n)`–`Θ(log* n)`, \[BHKLOS18\], discussed in the
//! paper's introduction): a path plus a balanced binary shortcut tree, so
//! that the radius-`t` ball around a path node contains a path window of
//! length `~2^{t/4}`.
//!
//! The problem — 3-color the *path* (tree half-edges get `⊥`) — then has
//! LOCAL complexity `Θ(log log* n)`-ish in the shortcut graph: a node
//! gathers the `O(log* n)`-long Cole–Vishkin window through the tree in
//! `O(log log* n)` hops and evaluates the coloring *offline*. On trees the
//! paper's Theorem 1.1 forbids exactly this kind of intermediate
//! complexity — the shortcuts (cycles!) are essential, which is what the
//! `fig1_general` bench demonstrates.

use lcl::{HalfEdgeLabeling, InLabel, LclProblem, OutLabel};
use lcl_graph::{Graph, GraphBuilder, PortView};
use lcl_local::{LocalAlgorithm, View};

use crate::cv::{cv_iteration_count, cv_step};

/// Input label on path half-edges toward the smaller position.
pub const IN_PL: InLabel = InLabel(0);
/// Input label on path half-edges toward the larger position.
pub const IN_PR: InLabel = InLabel(1);
/// Input label on shortcut-tree half-edges.
pub const IN_T: InLabel = InLabel(2);

const OUT_A: u32 = 0;
const OUT_BOT: u32 = 3;

/// Builds the shortcut graph over a path of `2^levels` nodes: path nodes
/// `0..2^levels` plus a balanced binary tree whose leaves are the path
/// nodes. Returns the graph and the input labeling marking path-left,
/// path-right, and tree half-edges.
///
/// Maximum degree is 3; the number of nodes is `2^{levels+1} - 1`.
///
/// # Panics
///
/// Panics if `levels == 0`.
pub fn shortcut_path(levels: u32) -> (Graph, HalfEdgeLabeling<InLabel>) {
    assert!(levels >= 1, "need at least two path nodes");
    let m = 1usize << levels;
    let mut b = GraphBuilder::new(m);
    for i in 1..m {
        b.add_edge(i - 1, i).expect("path edges are valid");
    }
    // Tree levels: level 1 has m/2 nodes over pairs, etc.
    let mut below: Vec<usize> = (0..m).collect();
    while below.len() > 1 {
        let mut level = Vec::with_capacity(below.len() / 2);
        for pair in below.chunks(2) {
            let parent = b.add_node().index();
            for &child in pair {
                b.add_edge(child, parent).expect("tree edges are valid");
            }
            level.push(parent);
        }
        below = level;
    }
    let graph = b.build().expect("shortcut graph is simple");
    let input = HalfEdgeLabeling::from_fn(&graph, |h| {
        let v = graph.node_of(h).index();
        let w = graph.neighbor(h).index();
        if v < m && w < m {
            if w < v {
                IN_PL
            } else {
                IN_PR
            }
        } else {
            IN_T
        }
    });
    (graph, input)
}

/// The LCL "3-color the marked path": path half-edges carry a color, all
/// equal per node, differing across path edges; tree half-edges carry `⊥`.
pub fn shortcut_coloring_problem() -> LclProblem {
    let mut builder = LclProblem::builder("shortcut-3-coloring", 3)
        .inputs(["pl", "pr", "t"])
        .outputs(["A", "B", "C", "Bot"])
        .node_pattern(&["Bot*"]);
    for c in ["A", "B", "C"] {
        builder = builder
            .node_pattern(&[c, c, "Bot*"])
            .node_pattern(&[c, "Bot*"]);
    }
    builder
        .edge(&["A", "B"])
        .edge(&["A", "C"])
        .edge(&["B", "C"])
        .edge(&["Bot", "Bot"])
        .allow("pl", &["A", "B", "C"])
        .allow("pr", &["A", "B", "C"])
        .allow("t", &["Bot"])
        .build()
        .expect("shortcut coloring is well-formed")
}

/// The Cole–Vishkin window length a node must see to its right:
/// iterations to 6 colors plus the reduction margin.
pub fn window_size(n: usize) -> u32 {
    let id_bits = 3 * (usize::BITS - n.leading_zeros()).max(1);
    cv_iteration_count(id_bits) + 4
}

/// A radius sufficient to cover the window through the shortcut tree
/// (`4 ⌈log₂ w⌉ + O(1)`, the block-hopping bound).
pub fn default_radius(n: usize) -> u32 {
    let w = u64::from(window_size(n)) + 4;
    4 * lcl_graph::math::log2_ceil(w) + 6
}

/// The window-gathering 3-coloring algorithm on shortcut graphs: walk the
/// marked path inside the ball, simulate Cole–Vishkin plus the three
/// reduction sweeps offline, output the center's color.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ShortcutColoring {
    /// Override for the gathering radius (`None`: [`default_radius`]).
    pub radius: Option<u32>,
}

impl ShortcutColoring {
    fn walk(view: &View<'_>, start: usize, direction: InLabel, limit: usize) -> (Vec<usize>, bool) {
        // Returns ball-node indices strictly beyond `start` in the given
        // direction, and whether the walk ended at a true path endpoint
        // (as opposed to falling off the visible ball).
        let mut nodes = Vec::new();
        let mut current = start;
        for _ in 0..limit {
            let ball_node = &view.ball.nodes[current];
            let mut advanced = false;
            let mut endpoint = true;
            for (p, port) in ball_node.ports.iter().enumerate() {
                if view.inputs[view.half_edge_index(current, p as u8)] != direction {
                    continue;
                }
                endpoint = false;
                if let PortView::Inside { node, .. } = *port {
                    current = node as usize;
                    nodes.push(current);
                    advanced = true;
                }
                break;
            }
            if !advanced {
                return (nodes, endpoint);
            }
        }
        (nodes, false)
    }
}

impl LocalAlgorithm for ShortcutColoring {
    fn radius(&self, n: usize) -> u32 {
        self.radius.unwrap_or_else(|| default_radius(n))
    }

    fn label(&self, view: &View<'_>) -> Vec<OutLabel> {
        let degree = view.center_degree();
        let is_path_node = (0..degree).any(|p| {
            let input = view.inputs[view.half_edge_index(0, p as u8)];
            input == IN_PL || input == IN_PR
        });
        if !is_path_node {
            return vec![OutLabel(OUT_BOT); degree];
        }

        let k = cv_iteration_count(3 * (usize::BITS - view.n.leading_zeros()).max(1));
        let right_needed = (k + 7) as usize; // positions 1 ..= 3 + k + 4
        let (right, right_end) = Self::walk(view, 0, IN_PR, right_needed);
        let (left, left_end) = Self::walk(view, 0, IN_PL, 3);
        if (!right_end && right.len() < right_needed) || (!left_end && left.len() < 3) {
            // The window fell off the visible ball: radius too small.
            return (0..degree)
                .map(|p| {
                    let input = view.inputs[view.half_edge_index(0, p as u8)];
                    OutLabel(if input == IN_T { OUT_BOT } else { OUT_A })
                })
                .collect();
        }

        // Absolute positions: left.len() extra nodes to the left.
        let offset = left.len() as i64;
        let mut ids: Vec<u64> = Vec::with_capacity(left.len() + 1 + right.len());
        for &i in left.iter().rev() {
            ids.push(view.ids[i]);
        }
        ids.push(view.ids[0]);
        for &i in &right {
            ids.push(view.ids[i]);
        }
        let len = ids.len();
        let is_global_right_end = right_end; // last collected node ends the path

        // Cole–Vishkin: k iterations over the collected segment. After
        // iteration j, colors are valid for positions whose needed suffix
        // was collected; the margins guarantee validity on [-3, 3] around
        // the center.
        let mut colors = ids;
        for _ in 0..k {
            let mut next = colors.clone();
            for pos in 0..len {
                let parent = if pos + 1 < len {
                    colors[pos + 1]
                } else if is_global_right_end {
                    colors[pos] ^ 1 // the path's last node is the root
                } else {
                    continue; // beyond the trust horizon; never read
                };
                next[pos] = cv_step(colors[pos], parent);
            }
            colors = next;
        }

        // Reduction sweeps for colors 5, 4, 3, shrinking the trusted
        // range by one position per sweep.
        for (sweep, target) in [5u64, 4, 3].into_iter().enumerate() {
            let margin = sweep + 1;
            let mut next = colors.clone();
            for pos in 0..len {
                if colors[pos] != target {
                    continue;
                }
                // Trust only positions with `margin` valid data around
                // (or true path ends).
                let _ = margin;
                let mut used = Vec::new();
                if pos > 0 {
                    used.push(colors[pos - 1]);
                }
                if pos + 1 < len {
                    used.push(colors[pos + 1]);
                }
                next[pos] = (0..3)
                    .find(|c| !used.contains(c))
                    .expect("a free color in {0,1,2} exists on a path");
            }
            colors = next;
        }

        let my_color = colors[offset as usize];
        debug_assert!(my_color < 3);
        (0..degree)
            .map(|p| {
                let input = view.inputs[view.half_edge_index(0, p as u8)];
                OutLabel(if input == IN_T {
                    OUT_BOT
                } else {
                    my_color as u32
                })
            })
            .collect()
    }

    fn name(&self) -> &str {
        "shortcut-coloring"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcl_local::{minimal_solving_radius, run_deterministic, IdAssignment};

    #[test]
    fn construction_shape() {
        let (g, input) = shortcut_path(4);
        assert_eq!(g.node_count(), 31); // 16 path + 15 tree nodes
        assert_eq!(g.max_degree(), 3);
        assert!(!g.is_forest(), "shortcuts create cycles");
        // Path nodes have pl/pr half-edges, tree nodes only t.
        let path_marks = g.half_edges().filter(|&h| input.get(h) != IN_T).count();
        assert_eq!(path_marks, 2 * 15); // 15 path edges
    }

    #[test]
    fn shortcut_distances_are_logarithmic() {
        let (g, _) = shortcut_path(8); // path of 256
                                       // Path-distance 128 pairs are within ~4 log2(128) + O(1) hops.
        let d = g.bfs_distances(lcl_graph::NodeId(0), u32::MAX);
        assert!(d[128] <= 33, "d = {}", d[128]);
        assert!(d[128] >= 2, "shortcuts are not direct edges");
    }

    #[test]
    fn colors_the_path_properly() {
        let problem = shortcut_coloring_problem();
        for levels in [2u32, 4, 6] {
            let (g, input) = shortcut_path(levels);
            let ids = IdAssignment::random_polynomial(g.node_count(), 3, 9);
            let alg = ShortcutColoring { radius: None };
            let run = run_deterministic(&alg, &g, &input, &ids, None);
            let violations = lcl::verify(&problem, &g, &input, &run.output);
            assert!(violations.is_empty(), "levels={levels}: {violations:?}");
        }
    }

    #[test]
    fn required_radius_is_much_smaller_than_window() {
        let (g, input) = shortcut_path(7); // path of 128
        let problem = shortcut_coloring_problem();
        let ids = IdAssignment::random_polynomial(g.node_count(), 3, 4);
        let t = minimal_solving_radius(&problem, &g, &input, &ids, 64, |r| ShortcutColoring {
            radius: Some(r),
        })
        .expect("solvable within the default radius");
        let w = window_size(g.node_count());
        assert!(
            t <= default_radius(g.node_count()),
            "t = {t} exceeds the default radius"
        );
        // The required radius scales with log of the window (the shortcut
        // compression), not with the window itself. At toy sizes the
        // constants still dominate, so assert the logarithmic bound; the
        // fig1_general bench shows the asymptotic separation.
        let log_bound = 4 * lcl_graph::math::log2_ceil(u64::from(w) + 8) + 6;
        assert!(t <= log_bound, "t = {t}, log bound = {log_bound}");
        assert!(t >= 2, "the window is not radius-1 visible");
    }
}
