//! Maximal independent set from a `(Δ+1)`-coloring — the standard
//! color-class sweep, `O(log* n) + O_Δ(1)` rounds total.
//!
//! After coloring, color classes are processed in order: an undecided node
//! of the current color joins the set unless a neighbor already did; in
//! the final round every non-member picks a pointer to a member neighbor
//! (the [`mis_problem`](crate::catalog::mis_problem) encoding).

use lcl::OutLabel;
use lcl_local::{NodeInit, SyncAlgorithm};

use crate::coloring::{ColoringState, DeltaPlusOne};

/// MIS via coloring; outputs match
/// [`mis_problem(Δ)`](crate::catalog::mis_problem) (`I`/`P`/`N`).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct MisByColor {
    /// The degree bound `Δ`.
    pub delta: u8,
}

/// Membership status during the sweeps.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Status {
    Undecided,
    In,
    Out,
}

/// Per-node state of [`MisByColor`].
#[derive(Clone, Debug)]
pub struct MisState {
    coloring: ColoringState,
    coloring_rounds: u32,
    status: Status,
    /// Last known membership per port (true = neighbor is in the set).
    neighbor_in: Vec<bool>,
    round: u32,
    total_rounds: u32,
    degree: u8,
}

impl MisByColor {
    fn inner(&self) -> DeltaPlusOne {
        DeltaPlusOne { delta: self.delta }
    }

    /// Total rounds: the coloring plus one sweep per color plus one
    /// pointer round.
    pub fn total_rounds(&self, n: usize) -> u32 {
        self.inner().total_rounds(n) + u32::from(self.delta) + 2
    }
}

impl SyncAlgorithm for MisByColor {
    type State = MisState;
    /// Coloring phase: forwarded messages; sweep phase: `[status, color]`
    /// with status 1 = member.
    type Msg = Vec<u64>;

    fn init(&self, init: &NodeInit) -> MisState {
        let coloring_rounds = self.inner().total_rounds(init.n);
        MisState {
            coloring: self.inner().init(init),
            coloring_rounds,
            status: Status::Undecided,
            neighbor_in: vec![false; init.degree as usize],
            round: 0,
            total_rounds: self.total_rounds(init.n),
            degree: init.degree,
        }
    }

    fn send(&self, state: &MisState, round: u32) -> Vec<Vec<u64>> {
        if state.round < state.coloring_rounds {
            self.inner().send(&state.coloring, round)
        } else {
            let status = u64::from(state.status == Status::In);
            vec![vec![status, state.coloring.color()]; state.degree as usize]
        }
    }

    fn receive(&self, state: &mut MisState, inbox: &[Vec<u64>], round: u32) {
        if state.round < state.coloring_rounds {
            self.inner().receive(&mut state.coloring, inbox, round);
            state.round += 1;
            return;
        }
        // Sweep rounds: one color class per round.
        let sweep = state.round - state.coloring_rounds;
        for (p, msg) in inbox.iter().enumerate() {
            state.neighbor_in[p] = msg[0] == 1;
        }
        if u64::from(sweep) == state.coloring.color() && state.status == Status::Undecided {
            state.status = if state.neighbor_in.iter().any(|&b| b) {
                Status::Out
            } else {
                Status::In
            };
        }
        // Nodes whose color class passed and who saw a member resolve Out.
        if state.status == Status::Undecided && state.neighbor_in.iter().any(|&b| b) {
            state.status = Status::Out;
        }
        state.round += 1;
    }

    fn is_done(&self, state: &MisState) -> bool {
        state.round >= state.total_rounds
    }

    fn output(&self, state: &MisState) -> Vec<OutLabel> {
        const I: u32 = 0;
        const P: u32 = 1;
        const N: u32 = 2;
        match state.status {
            Status::In => vec![OutLabel(I); state.degree as usize],
            Status::Out => {
                let pointer = state
                    .neighbor_in
                    .iter()
                    .position(|&b| b)
                    .expect("an out-node has a member neighbor");
                (0..state.degree as usize)
                    .map(|p| OutLabel(if p == pointer { P } else { N }))
                    .collect()
            }
            Status::Undecided => {
                unreachable!("all nodes decide within Δ+1 sweeps")
            }
        }
    }

    fn name(&self) -> &str {
        "mis-by-color"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::mis_problem;
    use lcl_graph::gen;
    use lcl_local::{run_sync, IdAssignment};

    fn check(graph: &lcl_graph::Graph, delta: u8, seed: u64) {
        let problem = mis_problem(delta);
        let input = lcl::uniform_input(graph);
        let ids = IdAssignment::random_polynomial(graph.node_count(), 3, seed);
        let alg = MisByColor { delta };
        let run = run_sync(
            &alg,
            graph,
            &input,
            &ids.iter().collect::<Vec<_>>(),
            None,
            100_000,
        );
        let violations = lcl::verify(&problem, graph, &input, &run.output);
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn mis_on_paths_and_cycles() {
        check(&gen::path(31), 2, 1);
        check(&gen::cycle(24), 2, 2);
    }

    #[test]
    fn mis_on_trees() {
        check(&gen::random_tree(48, 3, 7), 3, 3);
        check(&gen::star(3), 3, 4);
        check(&gen::caterpillar(6, 1), 3, 5);
    }

    #[test]
    fn mis_on_forests() {
        check(&gen::random_forest(40, 4, 3, 9), 3, 6);
    }
}
