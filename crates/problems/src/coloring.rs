//! `(Δ+1)`-coloring of arbitrary bounded-degree graphs in
//! `O(log* n) + O_Δ(1)` rounds, via pseudo-forest decomposition — the
//! classic Goldberg–Plotkin–Shannon/Linial-style construction:
//!
//! 1. one round to learn neighbor identifiers; orient every edge toward
//!    the larger identifier (acyclic), and let a node's `k`-th out-edge be
//!    its parent in *forest* `k`;
//! 2. run Cole–Vishkin in all `Δ` forests in parallel down to 6 colors
//!    each (`log* n + O(1)` rounds);
//! 3. combine the forest colors into one of `6^Δ` colors (proper in `G`),
//!    and eliminate colors `Δ+1 .. 6^Δ` one sweep each (each sweep
//!    recolors an independent color class greedily; `O_Δ(1)` rounds).

use lcl::OutLabel;
use lcl_local::{NodeInit, SyncAlgorithm};

use crate::cv::{cv_iteration_count, cv_step};

/// The `(Δ+1)`-coloring algorithm; outputs match
/// [`k_coloring(Δ+1, Δ)`](crate::catalog::k_coloring).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct DeltaPlusOne {
    /// The degree bound `Δ` the color count is based on.
    pub delta: u8,
}

impl DeltaPlusOne {
    /// Total number of communication rounds on `n`-node graphs.
    pub fn total_rounds(&self, n: usize) -> u32 {
        let id_bits = 3 * (usize::BITS - n.leading_zeros()).max(1);
        let combined = 6u32.pow(u32::from(self.delta));
        1 + cv_iteration_count(id_bits) + (combined - u32::from(self.delta) - 1)
    }
}

/// Per-node state of [`DeltaPlusOne`].
#[derive(Clone, Debug)]
pub struct ColoringState {
    id: u64,
    degree: u8,
    delta: u8,
    /// Ports toward higher-id neighbors, in port order (`k`-th entry =
    /// parent port in forest `k`).
    out_ports: Vec<u8>,
    /// Current color per forest.
    forest_colors: Vec<u64>,
    /// Combined color once the sweeps start.
    combined: u64,
    round: u32,
    cv_rounds: u32,
    total_rounds: u32,
}

impl ColoringState {
    /// The final color (valid once the algorithm is done).
    pub fn color(&self) -> u64 {
        self.combined
    }
}

impl SyncAlgorithm for DeltaPlusOne {
    type State = ColoringState;
    /// Round 0: `[id]`; CV rounds: forest colors; sweeps: `[combined]`.
    type Msg = Vec<u64>;

    fn init(&self, init: &NodeInit) -> ColoringState {
        let id_bits = 3 * (usize::BITS - init.n.leading_zeros()).max(1);
        let cv_rounds = cv_iteration_count(id_bits);
        ColoringState {
            id: init.id,
            degree: init.degree,
            delta: self.delta,
            out_ports: Vec::new(),
            forest_colors: vec![init.id; usize::from(self.delta)],
            combined: 0,
            round: 0,
            cv_rounds,
            total_rounds: self.total_rounds(init.n),
        }
    }

    fn send(&self, state: &ColoringState, _round: u32) -> Vec<Vec<u64>> {
        let payload = if state.round == 0 {
            vec![state.id]
        } else if state.round <= state.cv_rounds {
            state.forest_colors.clone()
        } else {
            vec![state.combined]
        };
        vec![payload; state.degree as usize]
    }

    fn receive(&self, state: &mut ColoringState, inbox: &[Vec<u64>], _round: u32) {
        if state.round == 0 {
            // Learn neighbor ids; orient toward larger id.
            state.out_ports = inbox
                .iter()
                .enumerate()
                .filter(|(_, msg)| msg[0] > state.id)
                .map(|(p, _)| p as u8)
                .collect();
        } else if state.round <= state.cv_rounds {
            // Parallel Cole–Vishkin, one instance per forest.
            #[allow(clippy::needless_range_loop)] // index drives several arrays
            for k in 0..usize::from(state.delta) {
                let mine = state.forest_colors[k];
                let parent = match state.out_ports.get(k) {
                    Some(&p) => inbox[p as usize][k],
                    None => mine ^ 1, // root of forest k
                };
                state.forest_colors[k] = cv_step(mine, parent);
            }
            if state.round == state.cv_rounds {
                // Combine: a proper coloring of G with 6^Δ colors.
                state.combined = state
                    .forest_colors
                    .iter()
                    .rev()
                    .fold(0u64, |acc, &c| acc * 6 + c);
            }
        } else {
            // Sweep eliminating the current target color.
            let sweep = state.round - state.cv_rounds - 1;
            let target = u64::from(6u32.pow(u32::from(state.delta)) - 1 - sweep);
            if state.combined == target {
                let used: Vec<u64> = inbox.iter().map(|m| m[0]).collect();
                state.combined = (0..=u64::from(state.delta))
                    .find(|c| !used.contains(c))
                    .expect("degree ≤ Δ leaves a free color in 0..=Δ");
            }
        }
        state.round += 1;
    }

    fn is_done(&self, state: &ColoringState) -> bool {
        state.round >= state.total_rounds
    }

    fn output(&self, state: &ColoringState) -> Vec<OutLabel> {
        assert!(state.combined <= u64::from(state.delta));
        vec![OutLabel(state.combined as u32); state.degree as usize]
    }

    fn name(&self) -> &str {
        "delta-plus-one"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::k_coloring;
    use lcl_graph::gen;
    use lcl_local::{run_sync, IdAssignment};

    fn check(graph: &lcl_graph::Graph, delta: u8, seed: u64) {
        let problem = k_coloring(usize::from(delta) + 1, delta);
        let input = lcl::uniform_input(graph);
        let ids = IdAssignment::random_polynomial(graph.node_count(), 3, seed);
        let alg = DeltaPlusOne { delta };
        let run = run_sync(
            &alg,
            graph,
            &input,
            &ids.iter().collect::<Vec<_>>(),
            None,
            100_000,
        );
        let violations = lcl::verify(&problem, graph, &input, &run.output);
        assert!(violations.is_empty(), "{violations:?}");
        assert_eq!(run.rounds, alg.total_rounds(graph.node_count()));
    }

    #[test]
    fn colors_paths_with_three_colors() {
        check(&gen::path(40), 2, 1);
    }

    #[test]
    fn colors_cycles() {
        check(&gen::cycle(33), 2, 2);
    }

    #[test]
    fn colors_random_trees() {
        check(&gen::random_tree(60, 3, 5), 3, 3);
    }

    #[test]
    fn colors_caterpillars_and_stars() {
        check(&gen::caterpillar(8, 1), 3, 4);
        check(&gen::star(3), 3, 5);
    }

    #[test]
    fn round_count_is_log_star_plus_constant() {
        let alg = DeltaPlusOne { delta: 3 };
        let small = alg.total_rounds(16);
        let large = alg.total_rounds(1 << 30);
        // The n-dependence is only through the log* term.
        assert!(large - small <= 3, "small={small} large={large}");
    }
}
