//! `(2Δ - 1)`-edge-coloring in `O(log* n)` rounds, by running the
//! `(Δ+1)`-vertex-coloring algorithm on the line graph.
//!
//! `L(G)` has maximum degree `2(Δ-1)`, so [`DeltaPlusOne`] on `L(G)`
//! yields `2Δ - 1` colors with adjacent edges (sharing an endpoint)
//! colored differently. Each simulated `L(G)` round costs `O(1)` real
//! rounds (edges are simulated by their endpoints), so the asymptotic
//! complexity is unchanged; the executor here performs the simulation
//! offline, which is the standard bookkeeping-only reduction.

use lcl::{HalfEdgeLabeling, LclProblem, OutLabel};
use lcl_graph::line::line_graph;
use lcl_graph::Graph;
use lcl_local::{run_sync, IdAssignment};

use crate::coloring::DeltaPlusOne;

/// Proper `k`-edge-coloring as a half-edge LCL: both half-edges of an edge
/// carry the edge's color, and a node's incident edges have pairwise
/// distinct colors.
///
/// # Panics
///
/// Panics if `k == 0` or `k > 26`.
pub fn edge_coloring_problem(k: usize, delta: u8) -> LclProblem {
    assert!((1..=26).contains(&k));
    let names: Vec<String> = (0..k)
        .map(|i| char::from(b'A' + i as u8).to_string())
        .collect();
    let refs: Vec<&str> = names.iter().map(String::as_str).collect();
    let mut builder =
        LclProblem::builder(&format!("{k}-edge-coloring"), delta).outputs(refs.clone());
    // Node configurations: all subsets of distinct colors, sizes 1..=Δ.
    let mut subset = vec![0usize; 0];
    loop {
        // Enumerate strictly increasing index sequences (distinct colors).
        if !subset.is_empty() && subset.len() <= usize::from(delta) {
            let atoms: Vec<&str> = subset.iter().map(|&i| refs[i]).collect();
            builder = builder.node(&atoms);
        }
        // Next subset in colex order.
        if subset.len() < usize::from(delta).min(k) {
            let next = subset.last().map_or(0, |&l| l + 1);
            if next < k {
                subset.push(next);
                continue;
            }
        }
        loop {
            match subset.pop() {
                None => break,
                Some(last) if last + 1 < k => {
                    subset.push(last + 1);
                    break;
                }
                Some(_) => continue,
            }
        }
        if subset.is_empty() {
            break;
        }
    }
    for r in &refs {
        builder = builder.edge(&[r, r]);
    }
    builder.build().expect("edge coloring is well-formed")
}

/// Computes a `(2Δ-1)`-edge-coloring by simulating [`DeltaPlusOne`] on
/// the line graph; returns the half-edge labeling (both halves of an edge
/// share its color) and the number of simulated rounds.
pub fn color_edges(graph: &Graph, ids: &IdAssignment) -> (HalfEdgeLabeling<OutLabel>, u32) {
    let (l, _) = line_graph(graph);
    // L(G) identifiers: the edge ids (unique by construction).
    let l_ids: Vec<u64> = (0..l.node_count() as u64)
        .map(|e| {
            // Derive a deterministic id from the endpoints' ids so the
            // simulation honors the distributed information flow.
            let [a, b] = graph.endpoints(lcl_graph::EdgeId(e as u32));
            ids.id(a).min(ids.id(b)) * graph.node_count() as u64
                + ids.id(a).max(ids.id(b)) % graph.node_count() as u64
        })
        .collect();
    // Ensure uniqueness: fall back to edge index ordering on collision.
    let l_ids = disambiguate(l_ids);
    let delta_l = l.max_degree().max(1);
    let alg = DeltaPlusOne { delta: delta_l };
    let input = lcl::uniform_input(&l);
    let run = run_sync(&alg, &l, &input, &l_ids, None, 10_000_000);
    let labeling = HalfEdgeLabeling::from_fn(graph, |h| {
        let e = graph.edge_of(h);
        let l_node = lcl_graph::NodeId(e.0);
        if l.degree(l_node) > 0 {
            run.output.get(l.half_edge(l_node, 0))
        } else {
            // An isolated edge: any color works.
            OutLabel(0)
        }
    });
    (labeling, run.rounds)
}

fn disambiguate(ids: Vec<u64>) -> Vec<u64> {
    let mut order: Vec<usize> = (0..ids.len()).collect();
    order.sort_by_key(|&i| (ids[i], i));
    let mut out = vec![0u64; ids.len()];
    for (rank, &i) in order.iter().enumerate() {
        out[i] = rank as u64;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcl::Problem as _;
    use lcl_graph::gen;

    #[test]
    fn edge_coloring_problem_constraints() {
        let p = edge_coloring_problem(3, 3);
        let (a, b, c) = (OutLabel(0), OutLabel(1), OutLabel(2));
        assert!(p.node_allows(&[a, b, c]));
        assert!(p.node_allows(&[a, c]));
        assert!(!p.node_allows(&[a, a]));
        assert!(p.edge_allows(a, a));
        assert!(!p.edge_allows(a, b));
    }

    #[test]
    fn colors_tree_edges() {
        for seed in 0..3 {
            let g = gen::random_tree(40, 3, seed);
            let k = 2 * usize::from(g.max_degree()) - 1;
            let problem = edge_coloring_problem(k.max(1), g.max_degree());
            let ids = IdAssignment::random_polynomial(g.node_count(), 3, seed);
            let (labeling, _rounds) = color_edges(&g, &ids);
            let input = lcl::uniform_input(&g);
            let violations = lcl::verify(&problem, &g, &input, &labeling);
            assert!(violations.is_empty(), "seed {seed}: {violations:?}");
        }
    }

    #[test]
    fn colors_cycles_and_stars() {
        for g in [gen::cycle(12), gen::star(3), gen::caterpillar(5, 1)] {
            let k = (2 * usize::from(g.max_degree())).saturating_sub(1).max(1);
            let problem = edge_coloring_problem(k, g.max_degree());
            let ids = IdAssignment::sequential(g.node_count());
            let (labeling, _) = color_edges(&g, &ids);
            let input = lcl::uniform_input(&g);
            assert!(lcl::verify(&problem, &g, &input, &labeling).is_empty());
        }
    }

    #[test]
    fn rounds_are_log_star_scale() {
        let g = gen::random_tree(200, 3, 9);
        let ids = IdAssignment::random_polynomial(200, 3, 9);
        let (_, rounds) = color_edges(&g, &ids);
        // Δ_L = 4 ⇒ 6^4 sweeps dominate; still n-independent.
        assert!(rounds <= 1400, "rounds = {rounds}");
    }
}
