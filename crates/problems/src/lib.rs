//! Concrete LCL problems and distributed algorithms populating every
//! class of the paper's Figure 1 landscape.
//!
//! | Class | Problem | Algorithm here |
//! |---|---|---|
//! | `O(1)` | trivial labelings, degree parity, RE-synthesizable problems | [`trivial`], `lcl-core::speedup_trees` |
//! | `Θ(log* n)` | 3-coloring oriented cycles/paths, `Δ+1`-coloring, MIS, maximal matching | [`cv`], [`coloring`], [`mis`], [`matching`] |
//! | `Θ(log n)` (class C/D engine) | rake-and-compress layering | [`rake_compress`] |
//! | `Θ(n)` / `Θ(diam)` | 2-coloring paths/trees (global) | [`global`] |
//! | dense region on general graphs | 3-coloring a path *through* a shortcut tree (`Θ(log log* n)`-style compression) | [`shortcut`] |
//!
//! Problem *definitions* (node-edge-checkable form) live in [`catalog`];
//! algorithms are `lcl-local` [`SyncAlgorithm`]s or view-based
//! [`LocalAlgorithm`]s whose measured rounds are exactly what the
//! `lcl-bench` figures plot.
//!
//! [`SyncAlgorithm`]: lcl_local::SyncAlgorithm
//! [`LocalAlgorithm`]: lcl_local::LocalAlgorithm

pub mod catalog;
pub mod coloring;
pub mod cv;
pub mod edge_coloring;
pub mod global;
pub mod matching;
pub mod mis;
pub mod rake_compress;
pub mod shortcut;
pub mod trivial;

pub use catalog::{
    anti_matching, k_coloring, maximal_matching_problem, mis_problem, oriented_three_coloring,
    sinkless_orientation, sinkless_orientation_standard, two_coloring,
};
pub use coloring::DeltaPlusOne;
pub use cv::{ColeVishkin, Orientation};
pub use edge_coloring::{color_edges, edge_coloring_problem};
pub use global::TwoColorByAnchor;
pub use matching::MatchingByColor;
pub use mis::MisByColor;
pub use rake_compress::{rake_compress_rounds, RakeCompress};
pub use shortcut::{shortcut_path, ShortcutColoring};
pub use trivial::{free_problem, ConstantZero, MaxDegree2Hop};
