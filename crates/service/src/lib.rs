//! Round elimination as a service.
//!
//! The other crates in this workspace answer "what does this LCL's
//! round-elimination tower look like?" one process at a time. This crate
//! turns that into a long-running, std-only batch service:
//!
//! * [`TowerStore`] — a content-addressed, crash-safe store of
//!   [`TowerSnapshot`](lcl_core::TowerSnapshot)s keyed by the canonical
//!   problem fingerprint ([`lcl::canonical_key`]). Structurally
//!   identical problems — the same constraints under any label renaming
//!   — share one entry, so each structural class is computed once, ever.
//! * [`ClassifyServer`] — a bounded job queue and worker pool. Cache
//!   hits are answered instantly; concurrent identical submissions
//!   coalesce onto one in-flight build; misses run under the retry
//!   supervisor with escalating budgets, checkpointing to disk before
//!   every `f`-step so a killed server resumes instead of recomputing.
//! * [`protocol`] / [`wire`] — a line-delimited JSON protocol spoken
//!   over stdio or a Unix socket (`classify-server` / `classify-client`
//!   in `lcl-bench` are thin wrappers over these). Besides classify
//!   requests it carries two telemetry ops: `stats` (counter snapshot
//!   plus a Prometheus rendering of every per-job span) and `watch` (a
//!   live stream of checkpoint/retry/level-complete events).
//! * [`client`] — connection robustness for remote callers: capped
//!   deterministic retry backoff for transient refusals and a typed
//!   error when the socket path does not exist.
//!
//! # Examples
//!
//! ```
//! use std::sync::Arc;
//! use lcl_service::{ClassifyRequest, ClassifyServer, Response, ServiceConfig, TowerStore};
//!
//! let dir = std::env::temp_dir().join(format!("lcl-service-doc-{}", std::process::id()));
//! # let _ = std::fs::remove_dir_all(&dir);
//! let store = Arc::new(TowerStore::open(&dir)?);
//! let server = ClassifyServer::start(store, ServiceConfig::default());
//! let request = ClassifyRequest {
//!     id: 1,
//!     problem: "name: 2col\nmax-degree: 2\nnodes:\nA*\nB*\nedges:\nA B\n".into(),
//!     steps: 1,
//! };
//! let responses = server.submit(&request).expect("parsable problem, empty queue");
//! let terminal = responses.iter().last().expect("a terminal response");
//! assert!(matches!(terminal, Response::Result(r) if r.id == 1));
//! server.shutdown();
//! # std::fs::remove_dir_all(&dir).ok();
//! # Ok::<(), lcl_service::StoreError>(())
//! ```

pub mod client;
pub mod protocol;
pub mod server;
pub mod store;
pub mod wire;

#[cfg(unix)]
pub use client::{arm_deadlines, connect_with_deadline, connect_with_retry};
pub use client::{deadline_error, is_deadline, ConnectError, RetryPolicy};
pub use protocol::{
    encode_request, encode_response, encode_stats_request, encode_watch_request, parse_any_request,
    parse_flat_object, parse_request, parse_response, push_str_field, ClassifyRequest,
    ClassifyResult, ProtocolError, Request, Response, Scalar, StatsReply,
};
pub use server::{ClassifyServer, ServiceConfig, ServiceStats, SubmitError};
pub use store::{StoreError, TowerStore};
pub use wire::serve_connection;
#[cfg(unix)]
pub use wire::serve_unix;
