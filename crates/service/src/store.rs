//! Content-addressed, crash-safe persistence for round-elimination
//! towers.
//!
//! A [`TowerStore`] is a directory of [`TowerSnapshot`] documents keyed
//! by the 16-hex-digit [`canonical fingerprint`](lcl::canonical_key) of
//! the base problem: structurally identical LCLs (same constraints up to
//! label renaming) share one entry, so a tower is computed once per
//! structural class no matter how many spellings clients submit.
//!
//! Two invariants make the store safe to kill at any instant:
//!
//! * **Atomic publication.** Every write lands in a `*.tmp` sibling
//!   first and is published with a single `rename`. A crash mid-write
//!   leaves only a temp file, which [`TowerStore::open`] sweeps away; a
//!   reader never observes a half-written entry.
//! * **Validated admission.** [`TowerStore::open`] re-parses every
//!   `*.tower.json` it finds and indexes only documents that decode
//!   cleanly; anything else is quarantined (left on disk, never served).
//!
//! Alongside final towers the store keeps *checkpoints*
//! (`<key>.ckpt.json`): the latest partial tower of an in-flight build,
//! written before every supervised f-step so a restarted server resumes
//! instead of recomputing.
//!
//! The store is **single-writer**: [`TowerStore::open`] takes an
//! advisory lock (`store.lock`, created with `O_EXCL` and holding the
//! owner's pid) and refuses with [`StoreError::Locked`] while another
//! live process holds it. A lock left behind by a dead process — the
//! pid no longer exists — is swept and re-taken, so a crashed server
//! never bricks its store. The lock is advisory: it guards against
//! accidental double-opens (two servers pointed at one directory), not
//! against writers that bypass [`TowerStore`].

use std::collections::BTreeSet;
use std::fmt;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use lcl_core::{SnapshotError, TowerSnapshot};

/// Why a store operation failed.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum StoreError {
    /// A filesystem operation failed; `what` names the operation.
    Io {
        /// The operation that failed (e.g. `"create store dir"`).
        what: &'static str,
        /// The path involved.
        path: String,
        /// The underlying error, stringified.
        error: String,
    },
    /// An indexed entry no longer decodes — the document was valid at
    /// admission, so this indicates on-disk corruption after the fact.
    Corrupt {
        /// The store key of the bad entry.
        key: String,
        /// The decode failure.
        error: SnapshotError,
    },
    /// Another live process already holds the store's advisory lock.
    /// The store is single-writer; point the second opener at its own
    /// directory, or stop the owner first.
    Locked {
        /// The lock file path.
        path: String,
        /// The pid recorded in the lock (still alive when checked).
        owner_pid: u32,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { what, path, error } => {
                write!(f, "store i/o failure ({what} at {path}): {error}")
            }
            StoreError::Corrupt { key, error } => {
                write!(f, "store entry {key} is corrupt: {error}")
            }
            StoreError::Locked { path, owner_pid } => {
                write!(
                    f,
                    "store is locked by live process {owner_pid} (advisory lock at {path}); \
                     the store is single-writer"
                )
            }
        }
    }
}

impl std::error::Error for StoreError {}

fn io_err(what: &'static str, path: &Path, error: std::io::Error) -> StoreError {
    StoreError::Io {
        what,
        path: path.display().to_string(),
        error: error.to_string(),
    }
}

/// Suffix of published tower entries.
const TOWER_SUFFIX: &str = ".tower.json";
/// Suffix of in-flight build checkpoints.
const CKPT_SUFFIX: &str = ".ckpt.json";
/// Suffix of not-yet-published writes (swept on open).
const TMP_SUFFIX: &str = ".tmp";
/// The advisory single-writer lock file inside the store directory.
const LOCK_FILE: &str = "store.lock";

/// Whether the process with `pid` is alive. On Linux this is a `/proc`
/// existence check; elsewhere we have no portable std-only probe, so we
/// conservatively report alive (a stale lock then needs manual removal
/// rather than risking two live writers).
fn pid_alive(pid: u32) -> bool {
    if cfg!(target_os = "linux") {
        Path::new(&format!("/proc/{pid}")).exists()
    } else {
        true
    }
}

/// Ownership of the store's advisory lock file; dropping it releases
/// the lock. Removal failures are ignored — the directory may already
/// be gone, and a leftover lock from a dead pid is swept on next open.
#[derive(Debug)]
struct LockGuard {
    path: PathBuf,
}

impl Drop for LockGuard {
    fn drop(&mut self) {
        let _ = fs::remove_file(&self.path);
    }
}

/// One exclusive-create attempt: `Ok(Some)` on success, `Ok(None)` when
/// the lock already exists, `Err` on any other filesystem failure.
fn try_lock(path: &Path) -> Result<Option<LockGuard>, StoreError> {
    match fs::OpenOptions::new()
        .write(true)
        .create_new(true)
        .open(path)
    {
        Ok(mut file) => {
            let pid = format!("{}\n", std::process::id());
            file.write_all(pid.as_bytes())
                .map_err(|e| io_err("write lock file", path, e))?;
            file.sync_all()
                .map_err(|e| io_err("sync lock file", path, e))?;
            Ok(Some(LockGuard {
                path: path.to_path_buf(),
            }))
        }
        Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => Ok(None),
        Err(e) => Err(io_err("create lock file", path, e)),
    }
}

/// Takes the advisory lock in `dir`, sweeping at most one stale lock
/// (unparseable content, or a recorded pid that is no longer alive).
fn acquire_lock(dir: &Path) -> Result<LockGuard, StoreError> {
    let path = dir.join(LOCK_FILE);
    if let Some(guard) = try_lock(&path)? {
        return Ok(guard);
    }
    let owner = fs::read_to_string(&path)
        .ok()
        .and_then(|text| text.trim().parse::<u32>().ok());
    if let Some(pid) = owner {
        if pid_alive(pid) {
            return Err(StoreError::Locked {
                path: path.display().to_string(),
                owner_pid: pid,
            });
        }
    }
    // Unparseable pid or dead owner: the lock is stale. Sweep it and
    // retry the exclusive create once.
    match fs::remove_file(&path) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
        Err(e) => return Err(io_err("sweep stale lock", &path, e)),
    }
    match try_lock(&path)? {
        Some(guard) => Ok(guard),
        // Another opener raced us to the swept slot; report who has it.
        None => {
            let winner = fs::read_to_string(&path)
                .ok()
                .and_then(|text| text.trim().parse::<u32>().ok())
                .unwrap_or(0);
            Err(StoreError::Locked {
                path: path.display().to_string(),
                owner_pid: winner,
            })
        }
    }
}

/// A content-addressed on-disk tower store. See the module docs for the
/// layout and crash-safety invariants. All methods take `&self`; the
/// in-memory index is behind a mutex, so one store can be shared across
/// worker threads via `Arc`.
#[derive(Debug)]
pub struct TowerStore {
    dir: PathBuf,
    index: Mutex<BTreeSet<String>>,
    /// Held for the store's lifetime; released (removed) on drop.
    _lock: LockGuard,
}

impl TowerStore {
    /// Opens (creating if needed) the store rooted at `dir`: takes the
    /// single-writer advisory lock, sweeps crash leftovers (`*.tmp`),
    /// validates every published entry, and indexes the ones that
    /// decode cleanly.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when the directory cannot be created or read;
    /// [`StoreError::Locked`] when another live process holds the
    /// store's lock (a lock whose recorded pid is dead is swept, not an
    /// error). A corrupt *entry* is not an error — it is simply not
    /// indexed.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self, StoreError> {
        let dir = dir.into();
        fs::create_dir_all(&dir).map_err(|e| io_err("create store dir", &dir, e))?;
        let lock = acquire_lock(&dir)?;
        let mut index = BTreeSet::new();
        let entries = fs::read_dir(&dir).map_err(|e| io_err("read store dir", &dir, e))?;
        for entry in entries {
            let entry = entry.map_err(|e| io_err("read store dir entry", &dir, e))?;
            let path = entry.path();
            let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
                continue;
            };
            if name.ends_with(TMP_SUFFIX) {
                // A crash mid-write: the publish rename never happened,
                // so the content is unaccounted for. Remove it.
                fs::remove_file(&path).map_err(|e| io_err("sweep temp file", &path, e))?;
                continue;
            }
            if let Some(key) = name.strip_suffix(TOWER_SUFFIX) {
                let text =
                    fs::read_to_string(&path).map_err(|e| io_err("read tower entry", &path, e))?;
                if TowerSnapshot::parse(&text).is_ok() {
                    index.insert(key.to_string());
                }
            }
        }
        Ok(Self {
            dir,
            index: Mutex::new(index),
            _lock: lock,
        })
    }

    /// The directory this store persists into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Number of published (indexed) tower entries.
    pub fn len(&self) -> usize {
        self.lock_index().len()
    }

    /// `true` when no tower has been published yet.
    pub fn is_empty(&self) -> bool {
        self.lock_index().is_empty()
    }

    /// Whether `key` has a published tower.
    pub fn contains(&self, key: &str) -> bool {
        self.lock_index().contains(key)
    }

    /// Every published key, sorted.
    pub fn keys(&self) -> Vec<String> {
        self.lock_index().iter().cloned().collect()
    }

    /// Loads the published tower for `key`, or `None` when the key is
    /// unknown.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when the entry cannot be read,
    /// [`StoreError::Corrupt`] when an indexed entry no longer decodes.
    pub fn get(&self, key: &str) -> Result<Option<TowerSnapshot>, StoreError> {
        if !self.contains(key) {
            return Ok(None);
        }
        let path = self.tower_path(key);
        let text = fs::read_to_string(&path).map_err(|e| io_err("read tower entry", &path, e))?;
        match TowerSnapshot::parse(&text) {
            Ok(snap) => Ok(Some(snap)),
            Err(error) => Err(StoreError::Corrupt {
                key: key.to_string(),
                error,
            }),
        }
    }

    /// Publishes `snap` as the tower for `key` (atomically: temp file +
    /// rename) and indexes it. Overwrites any previous entry.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when the write or rename fails.
    pub fn put(&self, key: &str, snap: &TowerSnapshot) -> Result<(), StoreError> {
        self.write_atomic(&self.tower_path(key), &snap.to_json())?;
        self.lock_index().insert(key.to_string());
        Ok(())
    }

    /// Persists the in-flight partial tower for `key`. Checkpoints are
    /// written with the same temp-file-plus-rename discipline but are
    /// *not* indexed: they answer [`TowerStore::load_checkpoint`], never
    /// [`TowerStore::get`].
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when the write or rename fails.
    pub fn checkpoint(&self, key: &str, snap: &TowerSnapshot) -> Result<(), StoreError> {
        self.write_atomic(&self.ckpt_path(key), &snap.to_json())
    }

    /// Loads the latest checkpoint for `key`, or `None` when there is
    /// none or it no longer decodes (a bad checkpoint is worth a fresh
    /// build, not a typed failure — the published entry is the one whose
    /// corruption must surface).
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when an existing checkpoint cannot be read.
    pub fn load_checkpoint(&self, key: &str) -> Result<Option<TowerSnapshot>, StoreError> {
        let path = self.ckpt_path(key);
        let text = match fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(io_err("read checkpoint", &path, e)),
        };
        Ok(TowerSnapshot::parse(&text).ok())
    }

    /// Removes the checkpoint for `key`, if any (idempotent).
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when an existing checkpoint cannot be removed.
    pub fn clear_checkpoint(&self, key: &str) -> Result<(), StoreError> {
        let path = self.ckpt_path(key);
        match fs::remove_file(&path) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(io_err("remove checkpoint", &path, e)),
        }
    }

    fn tower_path(&self, key: &str) -> PathBuf {
        self.dir.join(format!("{key}{TOWER_SUFFIX}"))
    }

    fn ckpt_path(&self, key: &str) -> PathBuf {
        self.dir.join(format!("{key}{CKPT_SUFFIX}"))
    }

    fn lock_index(&self) -> std::sync::MutexGuard<'_, BTreeSet<String>> {
        self.index
            .lock()
            .expect("why: no store method can panic while holding the index lock")
    }

    fn write_atomic(&self, path: &Path, content: &str) -> Result<(), StoreError> {
        let tmp = PathBuf::from(format!("{}{TMP_SUFFIX}", path.display()));
        let mut file = fs::File::create(&tmp).map_err(|e| io_err("create temp file", &tmp, e))?;
        file.write_all(content.as_bytes())
            .map_err(|e| io_err("write temp file", &tmp, e))?;
        file.sync_all()
            .map_err(|e| io_err("sync temp file", &tmp, e))?;
        drop(file);
        fs::rename(&tmp, path).map_err(|e| io_err("publish rename", path, e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcl_core::{ReOptions, ReTower};
    use lcl_problems::catalog::sinkless_orientation;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("lcl-service-store-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn small_tower() -> ReTower {
        let mut tower = ReTower::new(sinkless_orientation(3));
        tower.push_f(ReOptions::default()).unwrap();
        tower
    }

    #[test]
    fn put_then_get_round_trips_bit_identically() {
        let dir = tmp_dir("roundtrip");
        let store = TowerStore::open(&dir).unwrap();
        let snap = small_tower().snapshot();
        store.put("00aa", &snap).unwrap();
        assert!(store.contains("00aa"));
        let loaded = store.get("00aa").unwrap().unwrap();
        assert_eq!(loaded.to_json(), snap.to_json());
        assert_eq!(store.get("ffff").unwrap(), None);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn crash_during_write_leaves_no_entry_after_reopen() {
        let dir = tmp_dir("crash");
        let store = TowerStore::open(&dir).unwrap();
        let snap = small_tower().snapshot();
        store.put("00aa", &snap).unwrap();
        // Simulate a crash mid-write: a temp file with half a document,
        // never renamed into place.
        let half = &snap.to_json()[..37];
        fs::write(dir.join("00bb.tower.json.tmp"), half).unwrap();
        // And a crash that corrupted a published entry outright.
        fs::write(dir.join("00cc.tower.json"), half).unwrap();
        drop(store);

        let reopened = TowerStore::open(&dir).unwrap();
        assert_eq!(reopened.keys(), vec!["00aa".to_string()]);
        assert_eq!(reopened.get("00bb").unwrap(), None);
        assert_eq!(reopened.get("00cc").unwrap(), None);
        // The temp file was swept; the undecodable entry is quarantined
        // on disk but never served.
        assert!(!dir.join("00bb.tower.json.tmp").exists());
        assert!(dir.join("00cc.tower.json").exists());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn cold_restart_serves_prior_entries_bit_identically() {
        let dir = tmp_dir("cold");
        let snap = small_tower().snapshot();
        let wire = snap.to_json();
        {
            let store = TowerStore::open(&dir).unwrap();
            store.put("00aa", &snap).unwrap();
        }
        let cold = TowerStore::open(&dir).unwrap();
        assert_eq!(cold.len(), 1);
        let served = cold.get("00aa").unwrap().unwrap();
        assert_eq!(served.to_json(), wire);
        assert_eq!(served.fingerprint(), snap.fingerprint());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoints_are_separate_from_published_entries() {
        let dir = tmp_dir("ckpt");
        let store = TowerStore::open(&dir).unwrap();
        let snap = small_tower().snapshot();
        store.checkpoint("00aa", &snap).unwrap();
        // A checkpoint is not a published tower.
        assert!(!store.contains("00aa"));
        assert_eq!(store.get("00aa").unwrap(), None);
        let resumed = store.load_checkpoint("00aa").unwrap().unwrap();
        assert_eq!(resumed.to_json(), snap.to_json());
        // Checkpoints survive a reopen (that is their whole point).
        drop(store);
        let reopened = TowerStore::open(&dir).unwrap();
        assert!(reopened.load_checkpoint("00aa").unwrap().is_some());
        reopened.clear_checkpoint("00aa").unwrap();
        assert_eq!(reopened.load_checkpoint("00aa").unwrap(), None);
        // Clearing twice is fine.
        reopened.clear_checkpoint("00aa").unwrap();
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn second_open_is_refused_while_the_lock_is_held() {
        let dir = tmp_dir("locked");
        let store = TowerStore::open(&dir).unwrap();
        assert!(dir.join(LOCK_FILE).exists(), "open takes the lock");
        let refused = TowerStore::open(&dir);
        match refused {
            Err(StoreError::Locked { owner_pid, path }) => {
                assert_eq!(owner_pid, std::process::id(), "we are the live owner");
                assert!(path.ends_with(LOCK_FILE));
            }
            other => panic!("expected Locked, got {other:?}"),
        }
        drop(store);
        assert!(!dir.join(LOCK_FILE).exists(), "drop releases the lock");
        let reopened = TowerStore::open(&dir).unwrap();
        assert!(reopened.is_empty());
        drop(reopened);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    #[cfg(target_os = "linux")] // liveness probing is /proc-based
    fn stale_locks_from_dead_owners_are_swept() {
        let dir = tmp_dir("stale");
        fs::create_dir_all(&dir).unwrap();
        // A pid far beyond any kernel's pid_max: its /proc entry cannot
        // exist, so the lock reads as a dead owner's leftover.
        fs::write(dir.join(LOCK_FILE), "4000000000\n").unwrap();
        let store = TowerStore::open(&dir).expect("dead owner's lock is swept");
        drop(store);
        // An unparseable lock is equally stale.
        fs::write(dir.join(LOCK_FILE), "not a pid").unwrap();
        let store = TowerStore::open(&dir).expect("garbage lock is swept");
        let text = fs::read_to_string(dir.join(LOCK_FILE)).unwrap();
        assert_eq!(
            text.trim().parse::<u32>().unwrap(),
            std::process::id(),
            "the swept lock is re-taken under our own pid"
        );
        drop(store);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn version_mismatched_entries_are_not_admitted() {
        let dir = tmp_dir("version");
        {
            let store = TowerStore::open(&dir).unwrap();
            store.put("00aa", &small_tower().snapshot()).unwrap();
        }
        // A future process wrote an entry in a newer format.
        let text = fs::read_to_string(dir.join("00aa.tower.json")).unwrap();
        let future = text.replacen("\"version\":1", "\"version\":7", 1);
        fs::write(dir.join("00aa.tower.json"), future).unwrap();
        let reopened = TowerStore::open(&dir).unwrap();
        assert!(!reopened.contains("00aa"));
        fs::remove_dir_all(&dir).unwrap();
    }
}
