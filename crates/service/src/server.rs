//! The batch classification server: a bounded job queue, a worker pool,
//! and compute-once semantics over the content-addressed
//! [`TowerStore`].
//!
//! A [`ClassifyRequest`] travels one of three paths:
//!
//! 1. **Cache hit** — the problem's canonical fingerprint is already
//!    published in the store *at least as deep as the requested
//!    `steps`*; the snapshot is served immediately, on the submitting
//!    thread, with `cached: true`. No queueing, no recomputation.
//! 2. **Coalesced** — a structurally identical job is already in flight;
//!    the new subscriber is attached to it and receives the same
//!    progress stream and terminal result. A subscriber asking for more
//!    `steps` than the job was enqueued with raises the job's shared
//!    depth target, so one tower is computed — to the deepest requested
//!    level — no matter how many spellings arrive concurrently.
//! 3. **Miss** — the key is absent, or published shallower than the
//!    request needs. The job enters the bounded queue; a worker drives
//!    the build through [`supervise_tower_from`] (escalating budgets,
//!    panic-isolated steps, deterministic retry backoff), persisting a
//!    [checkpoint](TowerStore::checkpoint) before every `f`-step. The
//!    build resumes from the deepest decodable snapshot for the key —
//!    the crash checkpoint of a killed server, or the published tower a
//!    deepening request extends — instead of starting over; the
//!    finished tower is fingerprint-identical either way.
//!
//! Towers are always built from the problem's
//! [`canonical_text_form`], so every spelling of a structural class
//! yields the same tower bytes — the property that makes cached answers
//! valid for all of them.

use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use lcl::{canonical_key, canonical_text_form, LclProblem, ParseError};
use lcl_core::{ReOptions, ReTower, TowerSnapshot};
use lcl_faults::Budget;
use lcl_obs::export::prometheus_text;
use lcl_obs::{Counter, Event, EventLog, Registry, Span, Trace};
use lcl_recover::{supervise_tower_from, RetryPolicy};

use crate::protocol::{ClassifyRequest, ClassifyResult, Response, StatsReply};
use crate::store::{StoreError, TowerStore};

/// Tuning knobs of a [`ClassifyServer`].
#[derive(Clone, Copy, Debug)]
pub struct ServiceConfig {
    /// Worker threads draining the job queue.
    pub workers: usize,
    /// Maximum queued (not yet running) jobs; submissions beyond it are
    /// rejected with [`SubmitError::QueueFull`].
    pub queue_capacity: usize,
    /// Engine knobs for every round-elimination step.
    pub re_opts: ReOptions,
    /// Initial per-`f`-step budget; the supervisor escalates it between
    /// retry attempts.
    pub budget: Budget,
    /// Retry policy for supervised steps.
    pub policy: RetryPolicy,
    /// Capacity of the per-job observability event log.
    pub event_capacity: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            workers: 2,
            queue_capacity: 64,
            re_opts: ReOptions::default(),
            budget: Budget::unlimited(),
            policy: RetryPolicy::default(),
            event_capacity: 256,
        }
    }
}

/// Why a submission was not accepted.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SubmitError {
    /// The problem text did not parse.
    Problem(ParseError),
    /// The job queue is at capacity; resubmit later.
    QueueFull {
        /// The configured capacity that was hit.
        capacity: usize,
    },
    /// The store failed while answering the cache lookup.
    Store(StoreError),
    /// The server is shutting down.
    ShuttingDown,
}

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubmitError::Problem(e) => write!(f, "problem text did not parse: {e}"),
            SubmitError::QueueFull { capacity } => {
                write!(f, "job queue is full ({capacity} jobs)")
            }
            SubmitError::Store(e) => write!(f, "store failure: {e}"),
            SubmitError::ShuttingDown => write!(f, "server is shutting down"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// A deterministic point-in-time view of the server's counters. All
/// counts are since construction; `requests` is the sum of the hit,
/// coalesced, queued, and rejected paths.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct ServiceStats {
    /// Submissions accepted or queue-rejected (exactly the sum of the
    /// four path counters; parse and store-lookup failures never reach
    /// any path and are not counted).
    pub requests: u64,
    /// Requests answered from the store without any computation.
    pub cache_hits: u64,
    /// Requests attached to an already in-flight identical job.
    pub coalesced: u64,
    /// Jobs a worker actually computed (one per structural class and
    /// requested depth increase).
    pub computed: u64,
    /// Jobs that resumed from an on-disk snapshot (a crash checkpoint
    /// or a published tower being deepened).
    pub resumed: u64,
    /// Submissions rejected because the queue was full.
    pub rejected: u64,
    /// Jobs whose supervisor gave up (partial towers, not published).
    pub gave_up: u64,
}

#[derive(Debug)]
struct Job {
    key: String,
    base: LclProblem,
    /// The deepest `steps` any subscriber has asked this build for;
    /// shared with the inflight entry so coalescing can raise it.
    target: Arc<AtomicU64>,
}

type Subscribers = Vec<(u64, mpsc::Sender<Response>)>;

/// The subscribers of an in-flight build plus its shared depth target.
struct Inflight {
    subs: Subscribers,
    target: Arc<AtomicU64>,
}

/// A live telemetry subscription made with [`ClassifyServer::watch`]:
/// every checkpoint/retry/level-complete event of *any* job streams to
/// it as a [`Response::Progress`] carrying the watcher's own id.
struct Watcher {
    id: u64,
    tx: mpsc::Sender<Response>,
    /// Events still owed before the stream closes; `None` is unlimited.
    /// The subscription ack does not count against this.
    remaining: Option<u64>,
}

#[derive(Default)]
struct Counters {
    requests: AtomicU64,
    cache_hits: AtomicU64,
    coalesced: AtomicU64,
    computed: AtomicU64,
    resumed: AtomicU64,
    rejected: AtomicU64,
    gave_up: AtomicU64,
}

struct Inner {
    store: Arc<TowerStore>,
    config: ServiceConfig,
    queue: Mutex<VecDeque<Job>>,
    not_empty: Condvar,
    inflight: Mutex<HashMap<String, Inflight>>,
    shutdown: AtomicBool,
    counters: Counters,
    /// Per-job spans (steps, retries, checkpoints) backing the `stats`
    /// reply's Prometheus text.
    registry: Registry,
    watchers: Mutex<Vec<Watcher>>,
}

/// The classification server. Construct with [`ClassifyServer::start`],
/// submit jobs with [`ClassifyServer::submit`], and stop it with
/// [`ClassifyServer::shutdown`] (also run on drop).
pub struct ClassifyServer {
    inner: Arc<Inner>,
    workers: Vec<JoinHandle<()>>,
}

impl ClassifyServer {
    /// Spawns the worker pool over `store` and returns the running
    /// server.
    pub fn start(store: Arc<TowerStore>, config: ServiceConfig) -> Self {
        let inner = Arc::new(Inner {
            store,
            config,
            queue: Mutex::new(VecDeque::new()),
            not_empty: Condvar::new(),
            inflight: Mutex::new(HashMap::new()),
            shutdown: AtomicBool::new(false),
            counters: Counters::default(),
            registry: Registry::new(),
            watchers: Mutex::new(Vec::new()),
        });
        let workers = (0..config.workers.max(1))
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("classify-worker-{i}"))
                    .spawn(move || worker_loop(&inner))
                    .expect("why: spawning a named thread only fails when out of resources")
            })
            .collect();
        Self { inner, workers }
    }

    /// The store this server publishes into.
    pub fn store(&self) -> &Arc<TowerStore> {
        &self.inner.store
    }

    /// Submits a classification request and returns the stream of
    /// responses for it: zero or more [`Response::Progress`] lines
    /// followed by exactly one terminal [`Response::Result`] or
    /// [`Response::Error`]. The channel disconnects after the terminal
    /// response (or if the server shuts down mid-job).
    ///
    /// # Errors
    ///
    /// [`SubmitError`] when the problem text does not parse, the queue
    /// is full, the store lookup fails, or the server is shutting down.
    pub fn submit(&self, req: &ClassifyRequest) -> Result<mpsc::Receiver<Response>, SubmitError> {
        let inner = &self.inner;
        if inner.shutdown.load(Ordering::SeqCst) {
            return Err(SubmitError::ShuttingDown);
        }
        // `requests` counts only the four documented outcomes (hit,
        // coalesced, queued, rejected); parse and store-lookup failures
        // never reach any of them.
        let problem = LclProblem::parse(&req.problem).map_err(SubmitError::Problem)?;
        let key = canonical_key(&problem);
        let (tx, rx) = mpsc::channel();
        // The inflight lock is held across the store lookup so a worker
        // finishing the same key cannot publish-and-unregister between
        // our miss and our registration (its publish happens before the
        // unregister, so we either coalesce or hit).
        let mut inflight = lock(&inner.inflight);
        if let Some(entry) = inflight.get_mut(&key) {
            // Raise the shared depth target if this subscriber wants a
            // deeper tower; the worker re-checks it before finishing.
            entry.target.fetch_max(req.steps, Ordering::SeqCst);
            entry.subs.push((req.id, tx));
            inner.counters.requests.fetch_add(1, Ordering::Relaxed);
            inner.counters.coalesced.fetch_add(1, Ordering::Relaxed);
            return Ok(rx);
        }
        match inner.store.get(&key) {
            Ok(Some(snap)) if snapshot_derived_f(&snap) >= req.steps => {
                drop(inflight);
                inner.counters.requests.fetch_add(1, Ordering::Relaxed);
                inner.counters.cache_hits.fetch_add(1, Ordering::Relaxed);
                let result = result_from_snapshot(req.id, &key, &snap);
                let _ = tx.send(Response::Result(result));
                return Ok(rx);
            }
            // Absent, or published shallower than requested: enqueue a
            // build (the worker resumes from the published snapshot, so
            // a deepening job pays only for the missing levels).
            Ok(_) => {}
            Err(e) => return Err(SubmitError::Store(e)),
        }
        let mut queue = lock(&inner.queue);
        if queue.len() >= inner.config.queue_capacity {
            inner.counters.requests.fetch_add(1, Ordering::Relaxed);
            inner.counters.rejected.fetch_add(1, Ordering::Relaxed);
            return Err(SubmitError::QueueFull {
                capacity: inner.config.queue_capacity,
            });
        }
        let target = Arc::new(AtomicU64::new(req.steps));
        queue.push_back(Job {
            key: key.clone(),
            base: canonical_text_form(&problem),
            target: Arc::clone(&target),
        });
        inflight.insert(
            key,
            Inflight {
                subs: vec![(req.id, tx)],
                target,
            },
        );
        inner.counters.requests.fetch_add(1, Ordering::Relaxed);
        drop(queue);
        drop(inflight);
        inner.not_empty.notify_one();
        Ok(rx)
    }

    /// A point-in-time snapshot of the server's counters.
    pub fn stats(&self) -> ServiceStats {
        let c = &self.inner.counters;
        ServiceStats {
            requests: c.requests.load(Ordering::Relaxed),
            cache_hits: c.cache_hits.load(Ordering::Relaxed),
            coalesced: c.coalesced.load(Ordering::Relaxed),
            computed: c.computed.load(Ordering::Relaxed),
            resumed: c.resumed.load(Ordering::Relaxed),
            rejected: c.rejected.load(Ordering::Relaxed),
            gave_up: c.gave_up.load(Ordering::Relaxed),
        }
    }

    /// Subscribes to the server's live telemetry stream. The receiver
    /// first sees a `kind: "watch"` acknowledgement, then one
    /// [`Response::Progress`] per checkpoint, retry, or completed
    /// round-elimination level of *any* job, each carrying `id`. A
    /// non-zero `limit` closes the stream after that many events (the
    /// acknowledgement is free); `limit == 0` streams until shutdown.
    pub fn watch(&self, id: u64, limit: u64) -> mpsc::Receiver<Response> {
        let (tx, rx) = mpsc::channel();
        let _ = tx.send(Response::Progress {
            id,
            kind: "watch",
            stage: "subscribed".to_string(),
            detail: limit,
        });
        lock(&self.inner.watchers).push(Watcher {
            id,
            tx,
            remaining: (limit > 0).then_some(limit),
        });
        rx
    }

    /// The wire-ready `stats` reply: the counter snapshot plus the live
    /// watcher count and the Prometheus rendering of every recorded
    /// per-job span.
    pub fn stats_reply(&self, id: u64) -> StatsReply {
        let stats = self.stats();
        StatsReply {
            id,
            requests: stats.requests,
            cache_hits: stats.cache_hits,
            coalesced: stats.coalesced,
            computed: stats.computed,
            resumed: stats.resumed,
            rejected: stats.rejected,
            gave_up: stats.gave_up,
            watchers: lock(&self.inner.watchers).len() as u64,
            prometheus: prometheus_text(&self.inner.registry),
        }
    }

    /// Stops accepting jobs, wakes every worker, and joins the pool.
    /// Queued-but-unstarted jobs are abandoned; their subscribers see
    /// the response channel disconnect.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.inner.shutdown.store(true, Ordering::SeqCst);
        self.inner.not_empty.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
        lock(&self.inner.inflight).clear();
        // Dropping the senders disconnects every watch stream.
        lock(&self.inner.watchers).clear();
    }
}

impl Drop for ClassifyServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn lock<'a, T>(mutex: &'a Mutex<T>) -> std::sync::MutexGuard<'a, T> {
    mutex
        .lock()
        .expect("why: server internals never panic while holding their locks")
}

fn worker_loop(inner: &Inner) {
    loop {
        let job = {
            let mut queue = lock(&inner.queue);
            loop {
                if inner.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                if let Some(job) = queue.pop_front() {
                    break job;
                }
                queue = inner
                    .not_empty
                    .wait(queue)
                    .expect("why: server internals never panic while holding their locks");
            }
        };
        run_job(inner, &job);
    }
}

/// Sends `make(subscriber_id)` to every current subscriber of `key`.
fn broadcast(inner: &Inner, key: &str, make: impl Fn(u64) -> Response) {
    let inflight = lock(&inner.inflight);
    if let Some(entry) = inflight.get(key) {
        for (id, tx) in &entry.subs {
            let _ = tx.send(make(*id));
        }
    }
}

/// Fans one telemetry event out to every live watcher, dropping
/// disconnected streams and streams that just spent their last owed
/// event (their sender drop is what closes the receiver).
fn notify_watchers(inner: &Inner, kind: &'static str, stage: &str, detail: u64) {
    lock(&inner.watchers).retain_mut(|w| {
        if w.tx
            .send(Response::Progress {
                id: w.id,
                kind,
                stage: stage.to_string(),
                detail,
            })
            .is_err()
        {
            return false;
        }
        match &mut w.remaining {
            Some(n) => {
                *n -= 1;
                *n > 0
            }
            None => true,
        }
    });
}

/// Removes `key`'s subscribers and sends each its terminal response.
fn finish(inner: &Inner, key: &str, make: impl Fn(u64) -> Response) {
    let subs = lock(&inner.inflight)
        .remove(key)
        .map(|entry| entry.subs)
        .unwrap_or_default();
    for (id, tx) in subs {
        let _ = tx.send(make(id));
    }
}

/// The deepest decodable resume point for `key`: the crash checkpoint
/// of a killed build, or the already-published tower a deepening
/// request extends. `None` means a fresh build (an undecodable
/// snapshot is worth a recompute, not a failure).
fn deepest_resume_point(inner: &Inner, key: &str) -> Option<ReTower> {
    let candidates = [
        inner.store.load_checkpoint(key).ok().flatten(),
        inner.store.get(key).ok().flatten(),
    ];
    let mut best: Option<ReTower> = None;
    for snap in candidates.into_iter().flatten() {
        if let Ok(tower) = ReTower::resume_from(&snap) {
            if best
                .as_ref()
                .is_none_or(|b| tower.level_count() > b.level_count())
            {
                best = Some(tower);
            }
        }
    }
    best
}

fn run_job(inner: &Inner, job: &Job) {
    inner.counters.computed.fetch_add(1, Ordering::Relaxed);
    let mut resumed_from = 0u64;
    let mut tower = match deepest_resume_point(inner, &job.key) {
        Some(tower) => {
            resumed_from = (tower.level_count() - 1) as u64;
            if resumed_from > 0 {
                inner.counters.resumed.fetch_add(1, Ordering::Relaxed);
            }
            tower
        }
        None => ReTower::new(job.base.clone()),
    };
    let mut gave_up: Option<String> = None;
    let mut span = Span::start(format!("classify/{}", job.key));
    loop {
        loop {
            let derived_f = (tower.level_count() - 1) / 2;
            if derived_f >= job.target.load(Ordering::SeqCst) as usize {
                break;
            }
            // Persist before attempting the next f-step: this is the
            // state a restarted server resumes from.
            if let Err(e) = inner.store.checkpoint(&job.key, &tower.snapshot()) {
                finish(inner, &job.key, |id| Response::Error {
                    id,
                    error: format!("checkpoint failed: {e}"),
                });
                return;
            }
            let stage = format!("re-tower/level-{}", tower.level_count());
            broadcast(inner, &job.key, |id| Response::Progress {
                id,
                kind: "checkpoint",
                stage: stage.clone(),
                detail: (tower.level_count() - 1) as u64,
            });
            notify_watchers(
                inner,
                "checkpoint",
                &stage,
                (tower.level_count() - 1) as u64,
            );
            span.add(Counter::Checkpoints, 1);
            // A fresh log per step: the supervisor's ring buffer evicts
            // old events, so replaying with a cursor into a shared log
            // would re-send or drop retries once it wraps. The tower
            // writes its own level-complete events into the same log.
            let log = Arc::new(EventLog::new(inner.config.event_capacity));
            tower.set_event_log(Arc::clone(&log));
            let recovery = supervise_tower_from(
                tower,
                derived_f + 1,
                inner.config.re_opts,
                inner.config.budget,
                inner.config.policy,
                Some(&log),
            );
            tower = recovery.tower;
            tower.clear_event_log();
            for event in log.events() {
                match event {
                    Event::Retry { stage, attempt, .. } => {
                        broadcast(inner, &job.key, |id| Response::Progress {
                            id,
                            kind: "retry",
                            stage: stage.clone(),
                            detail: attempt,
                        });
                        notify_watchers(inner, "retry", &stage, attempt);
                        span.add(Counter::Retries, 1);
                    }
                    Event::LevelComplete { level, labels, .. } => {
                        notify_watchers(
                            inner,
                            "level-complete",
                            &format!("re-tower/level-{level}"),
                            labels,
                        );
                    }
                    _ => {}
                }
            }
            if let Some(err) = recovery.gave_up {
                gave_up = Some(err.to_string());
                break;
            }
        }
        let snap = tower.snapshot();
        if gave_up.is_none() {
            // Publish, then drop the checkpoint: the order matters — a
            // crash between the two leaves both, and resume is merely
            // redundant.
            if let Err(e) = inner.store.put(&job.key, &snap) {
                finish(inner, &job.key, |id| Response::Error {
                    id,
                    error: format!("publish failed: {e}"),
                });
                return;
            }
            let _ = inner.store.clear_checkpoint(&job.key);
        } else {
            // Keep the checkpoint: a resubmission with a bigger budget
            // picks up where this attempt stopped.
            inner.counters.gave_up.fetch_add(1, Ordering::Relaxed);
        }
        // Decide the terminal under the inflight lock: a deeper request
        // coalescing at this instant either raised the target before we
        // read it here (we keep building), or arrives after the entry
        // is removed and hits the just-published snapshot instead.
        let mut inflight = lock(&inner.inflight);
        let achieved = (tower.level_count() - 1) / 2;
        if gave_up.is_none() && achieved < job.target.load(Ordering::SeqCst) as usize {
            drop(inflight);
            continue;
        }
        let subs = inflight
            .remove(&job.key)
            .map(|entry| entry.subs)
            .unwrap_or_default();
        drop(inflight);
        span.set(Counter::Steps, achieved as u64);
        inner
            .registry
            .record("classify-job", Trace::new(span.finish()));
        let template = ClassifyResult {
            id: 0,
            fingerprint: job.key.clone(),
            tower_fingerprint: snap.fingerprint(),
            levels: tower.level_count() as u64,
            fixpoint: fixpoint_from_snapshot(&snap),
            cached: false,
            resumed_from_level: resumed_from,
            gave_up,
        };
        for (id, tx) in subs {
            let _ = tx.send(Response::Result(ClassifyResult {
                id,
                ..template.clone()
            }));
        }
        return;
    }
}

/// The earliest level the topmost level's extensional table repeats,
/// read from the snapshot's per-level spans (counter `fixpoint-of`).
fn fixpoint_from_snapshot(snap: &TowerSnapshot) -> Option<u64> {
    snap.spans.iter().rev().find_map(|span| {
        span.counters
            .iter()
            .find(|(name, _)| name == "fixpoint-of")
            .map(|&(_, v)| v)
    })
}

/// Derived `f`-rounds a stored tower contains: each `f = R̄ ∘ R` step
/// adds two layers on top of the base level.
fn snapshot_derived_f(snap: &TowerSnapshot) -> u64 {
    (snap.layers.len() / 2) as u64
}

/// Builds the `cached: true` result a store hit is answered with.
fn result_from_snapshot(id: u64, key: &str, snap: &TowerSnapshot) -> ClassifyResult {
    ClassifyResult {
        id,
        fingerprint: key.to_string(),
        tower_fingerprint: snap.fingerprint(),
        levels: (snap.layers.len() + 1) as u64,
        fixpoint: fixpoint_from_snapshot(snap),
        cached: true,
        resumed_from_level: 0,
        gave_up: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcl_problems::catalog::{sinkless_orientation, two_coloring};
    use std::path::PathBuf;

    fn tmp_store(tag: &str) -> (Arc<TowerStore>, PathBuf) {
        let dir =
            std::env::temp_dir().join(format!("lcl-service-server-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        (Arc::new(TowerStore::open(&dir).unwrap()), dir)
    }

    fn request(id: u64, problem: &LclProblem, steps: u64) -> ClassifyRequest {
        ClassifyRequest {
            id,
            problem: problem.to_text(),
            steps,
        }
    }

    fn terminal(rx: &mpsc::Receiver<Response>) -> Response {
        let mut last = None;
        for resp in rx.iter() {
            let is_terminal = !matches!(resp, Response::Progress { .. });
            last = Some(resp);
            if is_terminal {
                break;
            }
        }
        last.expect("a terminal response must arrive")
    }

    #[test]
    fn a_miss_computes_and_a_permuted_resubmission_hits() {
        let (store, dir) = tmp_store("hit");
        let server = ClassifyServer::start(store, ServiceConfig::default());
        let p = sinkless_orientation(3);
        let rx = server.submit(&request(1, &p, 2)).unwrap();
        let first = match terminal(&rx) {
            Response::Result(r) => r,
            other => panic!("expected a result, got {other:?}"),
        };
        assert!(!first.cached);
        assert_eq!(first.levels, 5);
        assert!(first.gave_up.is_none());

        // The same structural problem under permuted labels is a hit.
        let twin = lcl::relabeled(&p, &[1, 0]);
        assert_ne!(twin.to_text(), p.to_text());
        let rx = server.submit(&request(2, &twin, 2)).unwrap();
        let second = match terminal(&rx) {
            Response::Result(r) => r,
            other => panic!("expected a result, got {other:?}"),
        };
        assert!(second.cached);
        assert_eq!(second.id, 2);
        assert_eq!(second.fingerprint, first.fingerprint);
        assert_eq!(second.tower_fingerprint, first.tower_fingerprint);
        let stats = server.stats();
        assert_eq!(stats.requests, 2);
        assert_eq!(stats.computed, 1);
        assert_eq!(stats.cache_hits, 1);
        server.shutdown();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn concurrent_identical_submissions_compute_once() {
        let (store, dir) = tmp_store("coalesce");
        // One worker: submissions made while the queue is stalled by an
        // earlier job all land before their job starts, so every
        // duplicate must coalesce.
        let server = ClassifyServer::start(
            store,
            ServiceConfig {
                workers: 1,
                ..ServiceConfig::default()
            },
        );
        let p = sinkless_orientation(3);
        let orders: [&[u32]; 3] = [&[0, 1], &[1, 0], &[0, 1]];
        let receivers: Vec<_> = orders
            .iter()
            .enumerate()
            .map(|(i, order)| {
                let spelling = lcl::relabeled(&p, order);
                server.submit(&request(i as u64, &spelling, 2)).unwrap()
            })
            .collect();
        let mut fingerprints = Vec::new();
        for (i, rx) in receivers.iter().enumerate() {
            match terminal(rx) {
                Response::Result(r) => {
                    assert_eq!(r.id, i as u64);
                    fingerprints.push(r.tower_fingerprint);
                }
                other => panic!("expected a result, got {other:?}"),
            }
        }
        assert!(fingerprints.windows(2).all(|w| w[0] == w[1]));
        let stats = server.stats();
        assert_eq!(stats.requests, 3);
        assert_eq!(
            stats.computed, 1,
            "three spellings of one class must compute once"
        );
        assert_eq!(stats.cache_hits + stats.coalesced, 2);
        assert_eq!(server.store().len(), 1);
        server.shutdown();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn a_deeper_request_rebuilds_a_shallower_published_tower() {
        let (store, dir) = tmp_store("deepen");
        let server = ClassifyServer::start(store, ServiceConfig::default());
        let p = sinkless_orientation(3);
        let rx = server.submit(&request(1, &p, 1)).unwrap();
        let shallow = match terminal(&rx) {
            Response::Result(r) => r,
            other => panic!("expected a result, got {other:?}"),
        };
        assert!(!shallow.cached);
        assert_eq!(shallow.levels, 3);

        // A deeper request must not be capped by the 1-step entry: it
        // deepens the published tower instead of echoing it.
        let rx = server.submit(&request(2, &p, 2)).unwrap();
        let deep = match terminal(&rx) {
            Response::Result(r) => r,
            other => panic!("expected a result, got {other:?}"),
        };
        assert!(!deep.cached);
        assert_eq!(deep.levels, 5);
        assert_eq!(
            deep.resumed_from_level, 2,
            "deepening resumes from the published snapshot"
        );

        // A shallow request is now served the deeper tower from cache.
        let rx = server.submit(&request(3, &p, 1)).unwrap();
        let hit = match terminal(&rx) {
            Response::Result(r) => r,
            other => panic!("expected a result, got {other:?}"),
        };
        assert!(hit.cached);
        assert_eq!(hit.levels, 5);
        let stats = server.stats();
        assert_eq!(stats.computed, 2);
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(stats.resumed, 1);
        server.shutdown();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn coalesced_deeper_requests_raise_the_build_target() {
        let (store, dir) = tmp_store("deep-coalesce");
        let server = ClassifyServer::start(
            store,
            ServiceConfig {
                workers: 1,
                ..ServiceConfig::default()
            },
        );
        // Stall the single worker with an unrelated job so both
        // submissions below land before their job starts.
        let blocker = two_coloring(3);
        let p = sinkless_orientation(3);
        let rx_blocker = server.submit(&request(0, &blocker, 1)).unwrap();
        let rx_shallow = server.submit(&request(1, &p, 1)).unwrap();
        let rx_deep = server.submit(&request(2, &p, 2)).unwrap();
        let _ = terminal(&rx_blocker);
        // The coalesced steps=2 subscriber raised the job's target, so
        // one build runs to depth 2 and both subscribers see it.
        for (rx, id) in [(&rx_shallow, 1u64), (&rx_deep, 2u64)] {
            match terminal(rx) {
                Response::Result(r) => {
                    assert_eq!(r.id, id);
                    assert!(!r.cached);
                    assert_eq!(r.levels, 5, "the raised target governs the build");
                }
                other => panic!("expected a result, got {other:?}"),
            }
        }
        let stats = server.stats();
        assert_eq!(stats.computed, 2, "the blocker plus one coalesced build");
        assert_eq!(stats.coalesced, 1);
        server.shutdown();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn killed_mid_job_resumes_from_the_checkpoint_to_an_identical_tower() {
        let (store, dir) = tmp_store("resume");
        let p = sinkless_orientation(3);
        let key = canonical_key(&p);

        // Reference: an uninterrupted two-step build.
        let reference = {
            let server = ClassifyServer::start(Arc::clone(&store), ServiceConfig::default());
            let rx = server.submit(&request(1, &p, 2)).unwrap();
            let r = match terminal(&rx) {
                Response::Result(r) => r,
                other => panic!("expected a result, got {other:?}"),
            };
            server.shutdown();
            r.tower_fingerprint
        };

        // "Kill the server mid-job": plant the one-f-step checkpoint a
        // dying worker would have left behind, with no published entry.
        let canonical = canonical_text_form(&p);
        let mut partial = ReTower::new(canonical);
        partial.push_f(ReOptions::default()).unwrap();
        let dir2 = dir.with_file_name(format!("lcl-service-server-resume2-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir2);
        let store2 = Arc::new(TowerStore::open(&dir2).unwrap());
        store2.checkpoint(&key, &partial.snapshot()).unwrap();

        // A restarted server must resume from level 2, not recompute.
        let server = ClassifyServer::start(Arc::clone(&store2), ServiceConfig::default());
        let rx = server.submit(&request(9, &p, 2)).unwrap();
        let resumed = match terminal(&rx) {
            Response::Result(r) => r,
            other => panic!("expected a result, got {other:?}"),
        };
        assert_eq!(resumed.resumed_from_level, 2);
        assert_eq!(resumed.tower_fingerprint, reference);
        assert_eq!(server.stats().resumed, 1);
        // The checkpoint is gone once the tower is published.
        assert_eq!(store2.load_checkpoint(&key).unwrap(), None);
        server.shutdown();
        std::fs::remove_dir_all(&dir).unwrap();
        std::fs::remove_dir_all(&dir2).unwrap();
    }

    #[test]
    fn unparseable_problems_and_full_queues_are_typed_errors() {
        let (store, dir) = tmp_store("errors");
        let server = ClassifyServer::start(
            store,
            ServiceConfig {
                workers: 1,
                queue_capacity: 1,
                ..ServiceConfig::default()
            },
        );
        let bad = ClassifyRequest {
            id: 1,
            problem: "this is not an LCL".to_string(),
            steps: 1,
        };
        assert!(matches!(server.submit(&bad), Err(SubmitError::Problem(_))));
        assert_eq!(
            server.stats().requests,
            0,
            "a parse failure reaches none of the four request paths"
        );
        server.shutdown();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn a_gave_up_job_reports_partial_and_keeps_its_checkpoint() {
        let (store, dir) = tmp_store("partial");
        let server = ClassifyServer::start(
            Arc::clone(&store),
            ServiceConfig {
                // A one-round cap that never escalates cannot finish any
                // f-step.
                budget: Budget::unlimited().with_max_rounds(1),
                policy: RetryPolicy {
                    max_attempts: 2,
                    escalation: 1,
                    ..RetryPolicy::default()
                },
                ..ServiceConfig::default()
            },
        );
        let p = sinkless_orientation(3);
        let key = canonical_key(&p);
        let rx = server.submit(&request(1, &p, 1)).unwrap();
        let result = match terminal(&rx) {
            Response::Result(r) => r,
            other => panic!("expected a result, got {other:?}"),
        };
        assert!(result.gave_up.is_some());
        // Partial towers are never published, but the checkpoint stays
        // for a future resubmission.
        assert!(!store.contains(&key));
        assert!(store.load_checkpoint(&key).unwrap().is_some());
        assert_eq!(server.stats().gave_up, 1);
        server.shutdown();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn watchers_stream_job_telemetry_until_their_limit() {
        let (store, dir) = tmp_store("watch");
        let server = ClassifyServer::start(store, ServiceConfig::default());
        let unlimited = server.watch(7, 0);
        let capped = server.watch(8, 1);
        let p = sinkless_orientation(3);
        let rx = server.submit(&request(1, &p, 1)).unwrap();
        let _ = terminal(&rx);

        // Every telemetry event is fanned out before the worker sends
        // the terminal result, so by now the streams are complete.
        let events: Vec<Response> = unlimited.try_iter().collect();
        match &events[0] {
            Response::Progress {
                id: 7,
                kind: "watch",
                stage,
                detail: 0,
            } if stage == "subscribed" => {}
            other => panic!("expected the subscription ack first, got {other:?}"),
        }
        let kinds: Vec<&str> = events
            .iter()
            .map(|e| match e {
                Response::Progress { kind, .. } => *kind,
                other => panic!("watch streams only progress lines, got {other:?}"),
            })
            .collect();
        assert!(kinds.contains(&"checkpoint"), "kinds: {kinds:?}");
        assert!(kinds.contains(&"level-complete"), "kinds: {kinds:?}");

        // The capped stream owes exactly one event after its ack; its
        // sender is then dropped, so iterating terminates.
        let capped_events: Vec<Response> = capped.iter().collect();
        assert_eq!(
            capped_events.len(),
            2,
            "ack plus exactly one event: {capped_events:?}"
        );
        assert!(matches!(capped_events[1], Response::Progress { id: 8, .. }));
        server.shutdown();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn the_stats_reply_carries_counters_watchers_and_prometheus_text() {
        let (store, dir) = tmp_store("stats-reply");
        let server = ClassifyServer::start(store, ServiceConfig::default());
        let p = two_coloring(3);
        let rx = server.submit(&request(1, &p, 1)).unwrap();
        let _ = terminal(&rx);
        let _watch = server.watch(2, 0);
        let reply = server.stats_reply(9);
        assert_eq!(reply.id, 9);
        assert_eq!(reply.requests, 1);
        assert_eq!(reply.computed, 1);
        assert_eq!(reply.watchers, 1);
        assert!(
            reply.prometheus.contains("classify-job"),
            "the job span must be rendered: {}",
            reply.prometheus
        );
        server.shutdown();
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
