//! The line-delimited JSON wire protocol of the classification service.
//!
//! Each request and each response is one JSON object per line — trivial
//! to speak from a shell (`nc -U`), trivial to log, and parseable with
//! the same zero-dependency discipline as the rest of the workspace.
//!
//! A client sends [`ClassifyRequest`] lines:
//!
//! ```json
//! {"id":1,"problem":"name: 3col\n...","steps":2}
//! ```
//!
//! and receives, per request, zero or more `progress` events (checkpoint
//! and retry notifications streamed while the tower builds) followed by
//! exactly one terminal line — a `result` or an `error`:
//!
//! ```json
//! {"id":1,"event":"progress","kind":"checkpoint","stage":"re-tower/level-2","detail":1}
//! {"id":1,"event":"result","status":"ok","fingerprint":"…","tower_fingerprint":"…",
//!  "levels":5,"fixpoint":1,"cached":false,"resumed_from_level":0}
//! ```
//!
//! Besides classification jobs, two telemetry operations share the same
//! line discipline, selected by an `"op"` field (absent for classify):
//!
//! ```json
//! {"id":2,"op":"stats"}
//! {"id":3,"op":"watch","limit":10}
//! ```
//!
//! `stats` answers with one [`StatsReply`] line — the live
//! [`ServiceStats`](crate::ServiceStats) counters plus the Prometheus
//! exposition text of the server's registry. `watch` subscribes the
//! connection to the server's obs events (checkpoint / retry /
//! level-complete) as they happen across *all* in-flight jobs, streamed
//! as `progress` lines until `limit` events were sent (0 = until the
//! server shuts down).
//!
//! Field values are flat scalars (strings, `u64`, booleans, `null`), so
//! the decoder here is a deliberately small flat-object scanner rather
//! than a general JSON parser.

use std::fmt;

/// A classification job: an LCL problem in its
/// [text form](lcl::LclProblem::to_text) and how many `f = R̄ ∘ R`
/// rounds to build. The `id` is echoed on every response line so
/// clients can multiplex.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ClassifyRequest {
    /// Client-chosen correlation id, echoed verbatim.
    pub id: u64,
    /// The problem, in the text format [`lcl::LclProblem::parse`] reads.
    pub problem: String,
    /// Number of `f`-rounds the tower must reach.
    pub steps: u64,
}

/// Any request a connection may send: a classification job or one of
/// the telemetry operations.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Request {
    /// A classification job (no `"op"` field on the wire).
    Classify(ClassifyRequest),
    /// `{"op":"stats"}` — answer with one [`StatsReply`] line.
    Stats {
        /// Client-chosen correlation id, echoed verbatim.
        id: u64,
    },
    /// `{"op":"watch"}` — stream live obs events as `progress` lines.
    Watch {
        /// Client-chosen correlation id, echoed verbatim.
        id: u64,
        /// Maximum events to stream before the server closes the
        /// subscription; 0 means unlimited (until shutdown).
        limit: u64,
    },
}

/// The terminal payload of a successful classification.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ClassifyResult {
    /// Echoed request id.
    pub id: u64,
    /// The canonical problem fingerprint (the store key).
    pub fingerprint: String,
    /// Structural fingerprint of the served tower.
    pub tower_fingerprint: String,
    /// Levels in the tower (base plus derived).
    pub levels: u64,
    /// Earliest level the top level's extensional table repeats, when
    /// fixpoint detection certified a cycle.
    pub fixpoint: Option<u64>,
    /// `true` when the tower was served from the store without any
    /// recomputation.
    pub cached: bool,
    /// Derived level count the build resumed from (0 for a fresh
    /// build or a cache hit).
    pub resumed_from_level: u64,
    /// `Some(reason)` when the supervisor gave up and the tower is
    /// partial; such towers are reported but never published.
    pub gave_up: Option<String>,
}

/// The payload of a `stats` telemetry reply: the live service counters
/// (field-for-field [`ServiceStats`](crate::ServiceStats)) plus the
/// Prometheus exposition text of the server's registry.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct StatsReply {
    /// Echoed request id.
    pub id: u64,
    /// Requests accepted since the server started.
    pub requests: u64,
    /// Jobs served straight from the store.
    pub cache_hits: u64,
    /// Requests coalesced onto an already-running build.
    pub coalesced: u64,
    /// Towers actually built.
    pub computed: u64,
    /// Builds resumed from a checkpoint.
    pub resumed: u64,
    /// Requests rejected (queue full or shutting down).
    pub rejected: u64,
    /// Builds the supervisor gave up on.
    pub gave_up: u64,
    /// Watch subscriptions currently registered.
    pub watchers: u64,
    /// Prometheus text-exposition rendering of the server's registry.
    pub prometheus: String,
}

/// One line sent back to a client.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Response {
    /// A streamed observability event from the in-flight build.
    Progress {
        /// Echoed request id.
        id: u64,
        /// `"checkpoint"`, `"retry"`, `"level-complete"`, or `"watch"`
        /// (the subscription acknowledgement).
        kind: &'static str,
        /// The supervised stage, e.g. `"re-tower/level-3"`.
        stage: String,
        /// Completed-level count for checkpoints, attempt number for
        /// retries, level count for level-completes, the event limit
        /// for watch acks.
        detail: u64,
    },
    /// The terminal success line.
    Result(ClassifyResult),
    /// The `stats` telemetry reply.
    Stats(StatsReply),
    /// The terminal failure line.
    Error {
        /// Echoed request id (0 when the line did not parse far enough
        /// to recover one).
        id: u64,
        /// What went wrong, as prose.
        error: String,
    },
}

/// Why a wire line could not be decoded.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ProtocolError {
    /// The line is not the flat JSON object the protocol requires.
    Malformed {
        /// Byte offset of the failure.
        pos: usize,
        /// What the scanner expected.
        what: &'static str,
    },
    /// A required field is absent or has the wrong type.
    Field {
        /// The field name.
        name: &'static str,
        /// What was wrong with it.
        what: &'static str,
    },
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::Malformed { pos, what } => {
                write!(f, "malformed protocol line at byte {pos}: expected {what}")
            }
            ProtocolError::Field { name, what } => {
                write!(f, "protocol field `{name}`: {what}")
            }
        }
    }
}

impl std::error::Error for ProtocolError {}

/// A scalar field value of a protocol line.
///
/// Part of the reusable flat-object layer ([`parse_flat_object`] /
/// [`push_str_field`]): other line-JSON wires in the workspace — the
/// cross-process shard protocol among them — speak the same scalar
/// vocabulary instead of growing their own JSON subset.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Scalar {
    /// A JSON string (escapes already decoded).
    Str(String),
    /// An unsigned integer; the protocol has no fractions or signs.
    Num(u64),
    /// A JSON boolean.
    Bool(bool),
    /// JSON `null`.
    Null,
}

/// Appends `s` to `out` with protocol-line escaping: quotes,
/// backslashes, and every control character below `0x20` are escaped so
/// the result never breaks the one-object-per-line framing.
pub fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// Appends `"name":"value"` to `out` (no separators), escaping the
/// value via [`escape_into`].
pub fn push_str_field(out: &mut String, name: &str, value: &str) {
    out.push('"');
    out.push_str(name);
    out.push_str("\":\"");
    escape_into(out, value);
    out.push('"');
}

/// Renders a request as one protocol line (no trailing newline).
pub fn encode_request(req: &ClassifyRequest) -> String {
    let mut out = String::new();
    out.push('{');
    out.push_str(&format!("\"id\":{},", req.id));
    push_str_field(&mut out, "problem", &req.problem);
    out.push_str(&format!(",\"steps\":{}", req.steps));
    out.push('}');
    out
}

/// Renders a `stats` telemetry request as one protocol line.
pub fn encode_stats_request(id: u64) -> String {
    format!("{{\"id\":{id},\"op\":\"stats\"}}")
}

/// Renders a `watch` subscription request as one protocol line.
/// `limit` = 0 subscribes until the server shuts down.
pub fn encode_watch_request(id: u64, limit: u64) -> String {
    format!("{{\"id\":{id},\"op\":\"watch\",\"limit\":{limit}}}")
}

/// Renders a response as one protocol line (no trailing newline).
pub fn encode_response(resp: &Response) -> String {
    let mut out = String::new();
    out.push('{');
    match resp {
        Response::Progress {
            id,
            kind,
            stage,
            detail,
        } => {
            out.push_str(&format!("\"id\":{id},\"event\":\"progress\","));
            out.push_str(&format!("\"kind\":\"{kind}\","));
            push_str_field(&mut out, "stage", stage);
            out.push_str(&format!(",\"detail\":{detail}"));
        }
        Response::Result(r) => {
            out.push_str(&format!("\"id\":{},\"event\":\"result\",", r.id));
            out.push_str(&format!(
                "\"status\":\"{}\",",
                if r.gave_up.is_some() { "partial" } else { "ok" }
            ));
            push_str_field(&mut out, "fingerprint", &r.fingerprint);
            out.push(',');
            push_str_field(&mut out, "tower_fingerprint", &r.tower_fingerprint);
            out.push_str(&format!(",\"levels\":{},", r.levels));
            match r.fixpoint {
                Some(level) => out.push_str(&format!("\"fixpoint\":{level},")),
                None => out.push_str("\"fixpoint\":null,"),
            }
            out.push_str(&format!(
                "\"cached\":{},\"resumed_from_level\":{}",
                r.cached, r.resumed_from_level
            ));
            if let Some(reason) = &r.gave_up {
                out.push(',');
                push_str_field(&mut out, "gave_up", reason);
            }
        }
        Response::Stats(s) => {
            out.push_str(&format!("\"id\":{},\"event\":\"stats\",", s.id));
            out.push_str(&format!(
                "\"requests\":{},\"cache_hits\":{},\"coalesced\":{},\
                 \"computed\":{},\"resumed\":{},\"rejected\":{},\
                 \"gave_up\":{},\"watchers\":{},",
                s.requests,
                s.cache_hits,
                s.coalesced,
                s.computed,
                s.resumed,
                s.rejected,
                s.gave_up,
                s.watchers
            ));
            push_str_field(&mut out, "prometheus", &s.prometheus);
        }
        Response::Error { id, error } => {
            out.push_str(&format!("\"id\":{id},\"event\":\"error\","));
            push_str_field(&mut out, "error", error);
        }
    }
    out.push('}');
    out
}

/// Scans one flat JSON object line into its `(name, value)` fields, in
/// wire order. This is the whole decoder of the line discipline:
/// strictly one object per line (trailing garbage is rejected), field
/// values limited to [`Scalar`]s. Reused by every line-JSON wire in the
/// workspace.
///
/// # Errors
///
/// [`ProtocolError::Malformed`] when the line is not exactly one flat
/// JSON object of scalar fields.
pub fn parse_flat_object(line: &str) -> Result<Vec<(String, Scalar)>, ProtocolError> {
    let bytes = line.as_bytes();
    let mut pos = 0usize;
    let mut fields = Vec::new();
    skip_ws(bytes, &mut pos);
    expect(bytes, &mut pos, b'{', "an object opening `{`")?;
    skip_ws(bytes, &mut pos);
    if peek(bytes, pos) == Some(b'}') {
        pos += 1;
        expect_line_end(bytes, pos)?;
        return Ok(fields);
    }
    loop {
        skip_ws(bytes, &mut pos);
        let name = parse_string(line, bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        expect(bytes, &mut pos, b':', "a `:` after the field name")?;
        skip_ws(bytes, &mut pos);
        let value = parse_scalar(line, bytes, &mut pos)?;
        fields.push((name, value));
        skip_ws(bytes, &mut pos);
        match peek(bytes, pos) {
            Some(b',') => pos += 1,
            Some(b'}') => {
                pos += 1;
                expect_line_end(bytes, pos)?;
                return Ok(fields);
            }
            _ => {
                return Err(ProtocolError::Malformed {
                    pos,
                    what: "a `,` or the closing `}`",
                })
            }
        }
    }
}

/// Only whitespace may follow the object's closing `}` — anything else
/// is trailing garbage, not a protocol line.
fn expect_line_end(bytes: &[u8], mut pos: usize) -> Result<(), ProtocolError> {
    skip_ws(bytes, &mut pos);
    if pos == bytes.len() {
        Ok(())
    } else {
        Err(ProtocolError::Malformed {
            pos,
            what: "end of line after the closing `}`",
        })
    }
}

fn peek(bytes: &[u8], pos: usize) -> Option<u8> {
    bytes.get(pos).copied()
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while matches!(peek(bytes, *pos), Some(b' ' | b'\t' | b'\r' | b'\n')) {
        *pos += 1;
    }
}

fn expect(
    bytes: &[u8],
    pos: &mut usize,
    byte: u8,
    what: &'static str,
) -> Result<(), ProtocolError> {
    if peek(bytes, *pos) == Some(byte) {
        *pos += 1;
        Ok(())
    } else {
        Err(ProtocolError::Malformed { pos: *pos, what })
    }
}

fn parse_scalar(line: &str, bytes: &[u8], pos: &mut usize) -> Result<Scalar, ProtocolError> {
    match peek(bytes, *pos) {
        Some(b'"') => Ok(Scalar::Str(parse_string(line, bytes, pos)?)),
        Some(b'0'..=b'9') => {
            let start = *pos;
            while matches!(peek(bytes, *pos), Some(b'0'..=b'9')) {
                *pos += 1;
            }
            line[start..*pos]
                .parse::<u64>()
                .map(Scalar::Num)
                .map_err(|_| ProtocolError::Malformed {
                    pos: start,
                    what: "a number fitting u64",
                })
        }
        Some(b't') if bytes[*pos..].starts_with(b"true") => {
            *pos += 4;
            Ok(Scalar::Bool(true))
        }
        Some(b'f') if bytes[*pos..].starts_with(b"false") => {
            *pos += 5;
            Ok(Scalar::Bool(false))
        }
        Some(b'n') if bytes[*pos..].starts_with(b"null") => {
            *pos += 4;
            Ok(Scalar::Null)
        }
        _ => Err(ProtocolError::Malformed {
            pos: *pos,
            what: "a string, number, boolean, or null",
        }),
    }
}

fn parse_string(line: &str, bytes: &[u8], pos: &mut usize) -> Result<String, ProtocolError> {
    expect(bytes, pos, b'"', "a string opening `\"`")?;
    let mut out = String::new();
    loop {
        match peek(bytes, *pos) {
            None => {
                return Err(ProtocolError::Malformed {
                    pos: *pos,
                    what: "a closing `\"`",
                })
            }
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match peek(bytes, *pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let code = parse_hex4(line, *pos)?;
                        if (0xD800..=0xDBFF).contains(&code) {
                            // A high surrogate: standard encoders (e.g.
                            // `json.dumps` with `ensure_ascii`) spell
                            // non-BMP characters as a \uXXXX\uXXXX
                            // pair; require and combine the low half.
                            let pair_err = ProtocolError::Malformed {
                                pos: *pos,
                                what: "a \\u low surrogate completing the pair",
                            };
                            if bytes.get(*pos + 5) != Some(&b'\\')
                                || bytes.get(*pos + 6) != Some(&b'u')
                            {
                                return Err(pair_err);
                            }
                            let low = parse_hex4(line, *pos + 6)?;
                            if !(0xDC00..=0xDFFF).contains(&low) {
                                return Err(pair_err);
                            }
                            let scalar = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                            out.push(char::from_u32(scalar).expect(
                                "why: a combined surrogate pair always lands in a valid plane",
                            ));
                            *pos += 10;
                        } else {
                            let c = char::from_u32(code).ok_or(ProtocolError::Malformed {
                                pos: *pos,
                                what: "a \\u high surrogate before a low surrogate",
                            })?;
                            out.push(c);
                            *pos += 4;
                        }
                    }
                    _ => {
                        return Err(ProtocolError::Malformed {
                            pos: *pos,
                            what: "a valid escape character",
                        })
                    }
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one full UTF-8 character from the source.
                let rest = &line[*pos..];
                let c = rest
                    .chars()
                    .next()
                    .expect("why: peek returned Some, so the slice is non-empty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

/// Reads the four hex digits of a `\uXXXX` escape; `pos_of_u` is the
/// byte offset of the `u`.
fn parse_hex4(line: &str, pos_of_u: usize) -> Result<u32, ProtocolError> {
    let err = ProtocolError::Malformed {
        pos: pos_of_u,
        what: "four hex digits after \\u",
    };
    let hex = line.get(pos_of_u + 1..pos_of_u + 5).ok_or(err.clone())?;
    if !hex.bytes().all(|b| b.is_ascii_hexdigit()) {
        // from_str_radix would accept a sign here; JSON does not.
        return Err(err);
    }
    u32::from_str_radix(hex, 16).map_err(|_| err)
}

/// The required string field `name` from a parsed flat object.
///
/// # Errors
///
/// [`ProtocolError::Field`] when the field is absent or not a string.
pub fn get_str(fields: &[(String, Scalar)], name: &'static str) -> Result<String, ProtocolError> {
    match fields.iter().find(|(n, _)| n == name) {
        Some((_, Scalar::Str(s))) => Ok(s.clone()),
        Some(_) => Err(ProtocolError::Field {
            name,
            what: "must be a string",
        }),
        None => Err(ProtocolError::Field {
            name,
            what: "is required",
        }),
    }
}

/// The required unsigned-number field `name` from a parsed flat object.
///
/// # Errors
///
/// [`ProtocolError::Field`] when the field is absent or not a number.
pub fn get_num(fields: &[(String, Scalar)], name: &'static str) -> Result<u64, ProtocolError> {
    match fields.iter().find(|(n, _)| n == name) {
        Some((_, Scalar::Num(n))) => Ok(*n),
        Some(_) => Err(ProtocolError::Field {
            name,
            what: "must be an unsigned number",
        }),
        None => Err(ProtocolError::Field {
            name,
            what: "is required",
        }),
    }
}

/// Decodes one request line.
///
/// # Errors
///
/// [`ProtocolError`] when the line is not a flat JSON object or a
/// required field (`id`, `problem`, `steps`) is missing or mistyped.
pub fn parse_request(line: &str) -> Result<ClassifyRequest, ProtocolError> {
    let fields = parse_flat_object(line)?;
    Ok(ClassifyRequest {
        id: get_num(&fields, "id")?,
        problem: get_str(&fields, "problem")?,
        steps: get_num(&fields, "steps")?,
    })
}

/// Decodes one request line of any operation: an `"op"` field selects
/// the telemetry requests, its absence means a classification job.
///
/// # Errors
///
/// [`ProtocolError`] when the line is not a flat JSON object, names an
/// unknown `op`, or is missing a field its operation requires.
pub fn parse_any_request(line: &str) -> Result<Request, ProtocolError> {
    let fields = parse_flat_object(line)?;
    match fields.iter().find(|(n, _)| n == "op") {
        None => Ok(Request::Classify(ClassifyRequest {
            id: get_num(&fields, "id")?,
            problem: get_str(&fields, "problem")?,
            steps: get_num(&fields, "steps")?,
        })),
        Some((_, Scalar::Str(op))) => match op.as_str() {
            "stats" => Ok(Request::Stats {
                id: get_num(&fields, "id")?,
            }),
            "watch" => Ok(Request::Watch {
                id: get_num(&fields, "id")?,
                // Absent limit means unlimited, same as an explicit 0.
                limit: get_num(&fields, "limit").unwrap_or(0),
            }),
            _ => Err(ProtocolError::Field {
                name: "op",
                what: "must be stats or watch (or absent for classify)",
            }),
        },
        Some(_) => Err(ProtocolError::Field {
            name: "op",
            what: "must be a string",
        }),
    }
}

/// Decodes one response line (the client side of the protocol).
///
/// # Errors
///
/// [`ProtocolError`] when the line is not a flat JSON object, names an
/// unknown `event`, or is missing a field its event requires.
pub fn parse_response(line: &str) -> Result<Response, ProtocolError> {
    let fields = parse_flat_object(line)?;
    let id = get_num(&fields, "id")?;
    match get_str(&fields, "event")?.as_str() {
        "progress" => Ok(Response::Progress {
            id,
            kind: match get_str(&fields, "kind")?.as_str() {
                "retry" => "retry",
                "level-complete" => "level-complete",
                "watch" => "watch",
                _ => "checkpoint",
            },
            stage: get_str(&fields, "stage")?,
            detail: get_num(&fields, "detail")?,
        }),
        "result" => Ok(Response::Result(ClassifyResult {
            id,
            fingerprint: get_str(&fields, "fingerprint")?,
            tower_fingerprint: get_str(&fields, "tower_fingerprint")?,
            levels: get_num(&fields, "levels")?,
            fixpoint: match fields.iter().find(|(n, _)| n == "fixpoint") {
                Some((_, Scalar::Num(n))) => Some(*n),
                _ => None,
            },
            cached: matches!(
                fields.iter().find(|(n, _)| n == "cached"),
                Some((_, Scalar::Bool(true)))
            ),
            resumed_from_level: get_num(&fields, "resumed_from_level")?,
            gave_up: get_str(&fields, "gave_up").ok(),
        })),
        "stats" => Ok(Response::Stats(StatsReply {
            id,
            requests: get_num(&fields, "requests")?,
            cache_hits: get_num(&fields, "cache_hits")?,
            coalesced: get_num(&fields, "coalesced")?,
            computed: get_num(&fields, "computed")?,
            resumed: get_num(&fields, "resumed")?,
            rejected: get_num(&fields, "rejected")?,
            gave_up: get_num(&fields, "gave_up")?,
            watchers: get_num(&fields, "watchers")?,
            prometheus: get_str(&fields, "prometheus")?,
        })),
        "error" => Ok(Response::Error {
            id,
            error: get_str(&fields, "error")?,
        }),
        _ => Err(ProtocolError::Field {
            name: "event",
            what: "must be progress, result, stats, or error",
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip_through_the_wire_form() {
        let req = ClassifyRequest {
            id: 42,
            problem: "name: 3col\nmax-degree: 2\nnodes:\nA*\nedges:\nA A\n".to_string(),
            steps: 3,
        };
        let line = encode_request(&req);
        assert!(!line.contains('\n'), "one request per line: {line}");
        assert_eq!(parse_request(&line).unwrap(), req);
    }

    #[test]
    fn responses_round_trip_through_the_wire_form() {
        let variants = [
            Response::Progress {
                id: 7,
                kind: "checkpoint",
                stage: "re-tower/level-3".to_string(),
                detail: 2,
            },
            Response::Result(ClassifyResult {
                id: 7,
                fingerprint: "00ff00ff00ff00ff".to_string(),
                tower_fingerprint: "a1a2a3a4a5a6a7a8".to_string(),
                levels: 5,
                fixpoint: Some(1),
                cached: true,
                resumed_from_level: 0,
                gave_up: None,
            }),
            Response::Result(ClassifyResult {
                id: 8,
                fingerprint: "00ff00ff00ff00ff".to_string(),
                tower_fingerprint: "a1a2a3a4a5a6a7a8".to_string(),
                levels: 3,
                fixpoint: None,
                cached: false,
                resumed_from_level: 2,
                gave_up: Some("stage failed: budget".to_string()),
            }),
            Response::Error {
                id: 9,
                error: "problem text did not parse".to_string(),
            },
        ];
        for resp in variants {
            let line = encode_response(&resp);
            assert!(!line.contains('\n'), "one response per line: {line}");
            assert_eq!(parse_response(&line).unwrap(), resp, "{line}");
        }
    }

    #[test]
    fn telemetry_requests_round_trip_and_dispatch_by_op() {
        let stats = encode_stats_request(5);
        assert_eq!(parse_any_request(&stats).unwrap(), Request::Stats { id: 5 });
        let watch = encode_watch_request(6, 10);
        assert_eq!(
            parse_any_request(&watch).unwrap(),
            Request::Watch { id: 6, limit: 10 }
        );
        // A limit-less watch subscribes until shutdown.
        assert_eq!(
            parse_any_request("{\"id\":6,\"op\":\"watch\"}").unwrap(),
            Request::Watch { id: 6, limit: 0 }
        );
        // No op field: the line is a classification job.
        let classify = ClassifyRequest {
            id: 1,
            problem: "p".to_string(),
            steps: 2,
        };
        assert_eq!(
            parse_any_request(&encode_request(&classify)).unwrap(),
            Request::Classify(classify)
        );
        // Unknown and mistyped ops are typed field errors.
        assert!(matches!(
            parse_any_request("{\"id\":1,\"op\":\"surprise\"}"),
            Err(ProtocolError::Field { name: "op", .. })
        ));
        assert!(matches!(
            parse_any_request("{\"id\":1,\"op\":7}"),
            Err(ProtocolError::Field { name: "op", .. })
        ));
    }

    #[test]
    fn stats_replies_round_trip_with_prometheus_text() {
        let reply = Response::Stats(StatsReply {
            id: 3,
            requests: 12,
            cache_hits: 4,
            coalesced: 2,
            computed: 6,
            resumed: 1,
            rejected: 0,
            gave_up: 0,
            watchers: 1,
            prometheus: "# TYPE lcl_requests counter\nlcl_requests 12\n".to_string(),
        });
        let line = encode_response(&reply);
        assert!(!line.contains('\n'), "one response per line: {line}");
        assert_eq!(parse_response(&line).unwrap(), reply);
    }

    #[test]
    fn new_progress_kinds_survive_the_wire() {
        for kind in ["level-complete", "watch"] {
            let resp = Response::Progress {
                id: 2,
                kind: match kind {
                    "watch" => "watch",
                    _ => "level-complete",
                },
                stage: "re-tower/level-4".to_string(),
                detail: 4,
            };
            let line = encode_response(&resp);
            assert_eq!(parse_response(&line).unwrap(), resp, "{line}");
        }
    }

    #[test]
    fn status_reflects_partial_towers() {
        let ok = Response::Result(ClassifyResult {
            id: 1,
            fingerprint: String::new(),
            tower_fingerprint: String::new(),
            levels: 1,
            fixpoint: None,
            cached: false,
            resumed_from_level: 0,
            gave_up: None,
        });
        assert!(encode_response(&ok).contains("\"status\":\"ok\""));
        let partial = Response::Result(ClassifyResult {
            gave_up: Some("budget".to_string()),
            ..match ok {
                Response::Result(r) => r,
                _ => unreachable!(),
            }
        });
        assert!(encode_response(&partial).contains("\"status\":\"partial\""));
    }

    #[test]
    fn malformed_lines_are_typed_errors() {
        assert!(matches!(
            parse_request("not json"),
            Err(ProtocolError::Malformed { .. })
        ));
        assert!(matches!(
            parse_request("{\"id\":1}"),
            Err(ProtocolError::Field {
                name: "problem",
                ..
            })
        ));
        assert!(matches!(
            parse_request("{\"id\":\"one\",\"problem\":\"p\",\"steps\":1}"),
            Err(ProtocolError::Field { name: "id", .. })
        ));
        assert!(matches!(
            parse_request("{\"id\":1,\"problem\":\"p\",\"steps\":1,}"),
            Err(ProtocolError::Malformed { .. })
        ));
        assert!(matches!(
            parse_response("{\"id\":1,\"event\":\"surprise\"}"),
            Err(ProtocolError::Field { name: "event", .. })
        ));
    }

    #[test]
    fn trailing_garbage_after_the_object_is_rejected() {
        for line in [
            "{\"id\":1,\"problem\":\"p\",\"steps\":1}garbage",
            "{\"id\":1,\"problem\":\"p\",\"steps\":1}{\"id\":2}",
            "{} extra",
        ] {
            assert!(
                matches!(parse_request(line), Err(ProtocolError::Malformed { .. })),
                "{line}"
            );
        }
        // Trailing whitespace is not garbage.
        assert!(parse_request("{\"id\":1,\"problem\":\"p\",\"steps\":1}  ").is_ok());
    }

    #[test]
    fn surrogate_pair_escapes_decode_and_lone_halves_are_rejected() {
        // Python: json.dumps("😀") == '"\\ud83d\\ude00"'.
        let req =
            parse_request("{\"id\":1,\"problem\":\"\\ud83d\\ude00 ok\",\"steps\":1}").unwrap();
        assert_eq!(req.problem, "\u{1f600} ok");
        for line in [
            // A lone high surrogate, an unpaired high surrogate, and a
            // lone low surrogate.
            "{\"id\":1,\"problem\":\"\\ud83d\",\"steps\":1}",
            "{\"id\":1,\"problem\":\"\\ud83d x\",\"steps\":1}",
            "{\"id\":1,\"problem\":\"\\ude00\",\"steps\":1}",
        ] {
            assert!(
                matches!(parse_request(line), Err(ProtocolError::Malformed { .. })),
                "{line}"
            );
        }
    }

    #[test]
    fn escapes_cover_control_characters_and_unicode() {
        let req = ClassifyRequest {
            id: 1,
            problem: "tabs\there\nquotes \"q\" backslash \\ bell \u{7} π".to_string(),
            steps: 1,
        };
        let line = encode_request(&req);
        assert_eq!(parse_request(&line).unwrap(), req);
        assert!(line.contains("\\u0007"));
    }
}
