//! Transport drivers: speaking the line protocol over any
//! reader/writer pair, and over a Unix domain socket.
//!
//! [`serve_connection`] is the transport-agnostic core — it reads
//! request lines, submits them, and streams every response line back,
//! flushing after each. The stdio driver is just
//! `serve_connection(&server, stdin.lock(), stdout.lock())`; the socket
//! driver ([`serve_unix`]) accepts connections and runs the same loop on
//! a thread per client.
//!
//! Requests on one connection are handled in order: the response stream
//! of a request is fully written before the next line is read. Clients
//! needing concurrency open multiple connections — jobs still coalesce
//! on the server side, so identical problems cost one computation
//! regardless of how many connections ask.

use std::io::{BufRead, Write};
use std::sync::Arc;

use crate::protocol::{encode_response, parse_any_request, Request, Response};
use crate::server::ClassifyServer;

/// Drives one client: reads request lines from `reader` until EOF,
/// writing the full response stream of each to `writer`. Malformed lines
/// and rejected submissions are answered with a single `error` line
/// instead of closing the connection.
///
/// Telemetry ops are served in-band: `"op": "stats"` answers with one
/// `stats` line; `"op": "watch"` streams live progress events until the
/// requested limit is spent (a zero limit holds the connection open for
/// the server's lifetime, so remote dashboards can tail it).
///
/// # Errors
///
/// Propagates I/O errors from the transport; protocol-level failures are
/// reported in-band.
pub fn serve_connection(
    server: &ClassifyServer,
    reader: impl BufRead,
    mut writer: impl Write,
) -> std::io::Result<()> {
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let req = match parse_any_request(&line) {
            Ok(req) => req,
            Err(e) => {
                respond(
                    &mut writer,
                    &Response::Error {
                        id: 0,
                        error: e.to_string(),
                    },
                )?;
                continue;
            }
        };
        match req {
            Request::Stats { id } => {
                respond(&mut writer, &Response::Stats(server.stats_reply(id)))?;
            }
            Request::Watch { id, limit } => {
                for resp in server.watch(id, limit).iter() {
                    respond(&mut writer, &resp)?;
                }
            }
            Request::Classify(req) => match server.submit(&req) {
                Ok(rx) => {
                    for resp in rx.iter() {
                        respond(&mut writer, &resp)?;
                    }
                }
                Err(e) => {
                    respond(
                        &mut writer,
                        &Response::Error {
                            id: req.id,
                            error: e.to_string(),
                        },
                    )?;
                }
            },
        }
    }
    Ok(())
}

fn respond(writer: &mut impl Write, resp: &Response) -> std::io::Result<()> {
    writer.write_all(encode_response(resp).as_bytes())?;
    writer.write_all(b"\n")?;
    writer.flush()
}

/// Accepts clients on `listener` forever, serving each connection on its
/// own thread. Per-connection I/O errors drop that client only.
///
/// # Errors
///
/// Returns the first `accept` failure.
#[cfg(unix)]
pub fn serve_unix(
    listener: std::os::unix::net::UnixListener,
    server: Arc<ClassifyServer>,
) -> std::io::Result<()> {
    loop {
        let (stream, _addr) = listener.accept()?;
        let server = Arc::clone(&server);
        std::thread::Builder::new()
            .name("classify-conn".to_string())
            .spawn(move || {
                let reader = std::io::BufReader::new(match stream.try_clone() {
                    Ok(clone) => clone,
                    Err(_) => return,
                });
                let _ = serve_connection(&server, reader, stream);
            })
            .expect("why: spawning a named thread only fails when out of resources");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{
        encode_request, encode_stats_request, encode_watch_request, parse_response, ClassifyRequest,
    };
    use crate::server::ServiceConfig;
    use crate::store::TowerStore;
    use lcl_problems::catalog::sinkless_orientation;

    fn tmp_server(tag: &str) -> (ClassifyServer, std::path::PathBuf) {
        let dir =
            std::env::temp_dir().join(format!("lcl-service-wire-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = Arc::new(TowerStore::open(&dir).unwrap());
        (ClassifyServer::start(store, ServiceConfig::default()), dir)
    }

    #[test]
    fn a_connection_streams_results_and_inline_errors() {
        let (server, dir) = tmp_server("stream");
        let good = encode_request(&ClassifyRequest {
            id: 5,
            problem: sinkless_orientation(3).to_text(),
            steps: 1,
        });
        let input = format!("{good}\nnot json\n\n");
        let mut output = Vec::new();
        serve_connection(&server, input.as_bytes(), &mut output).unwrap();
        let lines: Vec<Response> = String::from_utf8(output)
            .unwrap()
            .lines()
            .map(|l| parse_response(l).unwrap())
            .collect();
        // The good request ends in a result echoing its id; the bad line
        // gets an error without killing the connection.
        let result = lines
            .iter()
            .find_map(|r| match r {
                Response::Result(r) => Some(r),
                _ => None,
            })
            .expect("a result line");
        assert_eq!(result.id, 5);
        assert!(!result.cached);
        assert!(lines
            .iter()
            .any(|r| matches!(r, Response::Error { id: 0, .. })));
        server.shutdown();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stats_and_watch_ops_are_served_in_band() {
        let (server, dir) = tmp_server("telemetry");
        let server = Arc::new(server);

        // A stats op answers with exactly one stats line.
        let mut output = Vec::new();
        let input = format!("{}\n", encode_stats_request(4));
        serve_connection(&server, input.as_bytes(), &mut output).unwrap();
        let text = String::from_utf8(output).unwrap();
        let reply = match parse_response(text.trim()).unwrap() {
            Response::Stats(s) => s,
            other => panic!("expected a stats line, got {other:?}"),
        };
        assert_eq!(reply.id, 4);
        assert_eq!(reply.requests, 0, "nothing submitted yet");

        // A limited watch op streams live events of a concurrent job,
        // then its connection loop ends once the limit is spent.
        let watcher = {
            let server = Arc::clone(&server);
            std::thread::spawn(move || {
                let mut out = Vec::new();
                let input = format!("{}\n", encode_watch_request(6, 2));
                serve_connection(&server, input.as_bytes(), &mut out).unwrap();
                out
            })
        };
        while server.stats_reply(0).watchers == 0 {
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        let rx = server
            .submit(&ClassifyRequest {
                id: 1,
                problem: sinkless_orientation(3).to_text(),
                steps: 1,
            })
            .unwrap();
        for _ in rx.iter() {}
        let out = watcher.join().unwrap();
        let lines: Vec<Response> = String::from_utf8(out)
            .unwrap()
            .lines()
            .map(|l| parse_response(l).unwrap())
            .collect();
        assert_eq!(lines.len(), 3, "ack plus the two subscribed events");
        assert!(matches!(
            &lines[0],
            Response::Progress {
                id: 6,
                kind: "watch",
                ..
            }
        ));
        assert!(lines[1..].iter().all(|l| matches!(
            l,
            Response::Progress { id: 6, kind, .. }
                if ["checkpoint", "retry", "level-complete"].contains(kind)
        )));
        Arc::try_unwrap(server)
            .unwrap_or_else(|_| panic!("the watcher thread has been joined"))
            .shutdown();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[cfg(unix)]
    #[test]
    fn unix_socket_round_trip() {
        use std::io::{BufRead as _, BufReader, Write as _};
        use std::os::unix::net::{UnixListener, UnixStream};

        let (server, dir) = tmp_server("unix");
        let sock = dir.with_extension("sock");
        let _ = std::fs::remove_file(&sock);
        let listener = UnixListener::bind(&sock).unwrap();
        let server = Arc::new(server);
        {
            let server = Arc::clone(&server);
            // The accept loop (and the server Arc it holds) lives until
            // the test process exits; a blocked accept with no clients
            // is inert.
            std::thread::spawn(move || {
                let _ = serve_unix(listener, server);
            });
        }
        let mut stream = UnixStream::connect(&sock).unwrap();
        let line = encode_request(&ClassifyRequest {
            id: 77,
            problem: sinkless_orientation(3).to_text(),
            steps: 1,
        });
        stream.write_all(line.as_bytes()).unwrap();
        stream.write_all(b"\n").unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut terminal = None;
        let mut buf = String::new();
        while reader.read_line(&mut buf).unwrap() > 0 {
            let resp = parse_response(buf.trim_end()).unwrap();
            let done = !matches!(resp, Response::Progress { .. });
            terminal = Some(resp);
            if done {
                break;
            }
            buf.clear();
        }
        match terminal {
            Some(Response::Result(r)) => {
                assert_eq!(r.id, 77);
                assert_eq!(r.levels, 3);
            }
            other => panic!("expected a result over the socket, got {other:?}"),
        }
        std::fs::remove_file(&sock).unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
