//! Client-side connection robustness for the classify service.
//!
//! A freshly started `classify-server` takes a moment to bind its
//! socket, and a restarting one leaves a stale socket file behind that
//! refuses connections until the new process rebinds. Both are
//! transient, so the client retries them under a *capped deterministic
//! backoff* — no jitter, the same delay sequence every run, mirroring
//! the `Retry` event convention used by the in-process supervisor. A
//! socket path that does not exist at all is a different failure
//! (wrong path, server never started) and surfaces immediately as the
//! typed [`ConnectError::SocketMissing`] instead of being retried.

use std::fmt;
use std::path::{Path, PathBuf};

/// Exponent cap for the backoff doubling: delays grow `base × 2^k`
/// with `k` clamped to this, so the longest wait is `16 × base`.
const BACKOFF_EXPONENT_CAP: u32 = 4;

/// How a connection attempt is retried: `retries` further attempts
/// after the first, with a deterministic doubling backoff starting at
/// `backoff_ms` and capped at `16 × backoff_ms`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Additional attempts after the first (0 = fail on first refusal).
    pub retries: u32,
    /// Base delay in milliseconds before the first retry.
    pub backoff_ms: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            retries: 0,
            backoff_ms: 50,
        }
    }
}

impl RetryPolicy {
    /// The delay slept before retry `attempt` (1-based): deterministic
    /// doubling, capped. `base × 2^min(attempt − 1, 4)`.
    pub fn delay_ms(&self, attempt: u32) -> u64 {
        let exponent = attempt.saturating_sub(1).min(BACKOFF_EXPONENT_CAP);
        self.backoff_ms.saturating_mul(1u64 << exponent)
    }
}

/// Why the client could not reach the server.
#[derive(Debug)]
pub enum ConnectError {
    /// The socket path does not exist: wrong path or the server was
    /// never started. Not retried — retrying cannot create the file.
    SocketMissing {
        /// The path that was probed.
        path: PathBuf,
    },
    /// Every attempt failed with a transient error (connection refused
    /// or timed out).
    Exhausted {
        /// The socket path that refused.
        path: PathBuf,
        /// Total connection attempts made (first try + retries).
        attempts: u32,
        /// The error of the final attempt.
        last: std::io::Error,
    },
    /// A non-transient transport error; retrying would not help.
    Io(std::io::Error),
    /// The peer accepted the connection but then went silent past the
    /// armed socket deadline ([`arm_deadlines`]): the read or write
    /// expired instead of hanging the caller forever.
    Timeout {
        /// The socket path of the silent peer.
        path: PathBuf,
        /// The deadline that expired, in milliseconds.
        timeout_ms: u64,
    },
}

impl fmt::Display for ConnectError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConnectError::SocketMissing { path } => write!(
                f,
                "socket path {} does not exist (is the server running?)",
                path.display()
            ),
            ConnectError::Exhausted {
                path,
                attempts,
                last,
            } => write!(
                f,
                "{} refused after {attempts} attempt(s): {last}",
                path.display()
            ),
            ConnectError::Io(e) => write!(f, "connect failed: {e}"),
            ConnectError::Timeout { path, timeout_ms } => write!(
                f,
                "{} went silent: no progress within the {timeout_ms} ms socket deadline",
                path.display()
            ),
        }
    }
}

impl std::error::Error for ConnectError {}

/// Whether an I/O error is worth another attempt: the server is (re)
/// starting or momentarily overloaded, not absent or misaddressed.
fn transient(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::ConnectionRefused
            | std::io::ErrorKind::TimedOut
            | std::io::ErrorKind::WouldBlock
    )
}

/// Connects to the server's Unix socket under `policy`.
///
/// Each attempt first checks the path exists (surfacing
/// [`ConnectError::SocketMissing`] without burning retries), then
/// connects; transient failures sleep the capped deterministic backoff
/// and try again. `on_retry` is called before each sleep with
/// `(attempt, delay_ms, error)` so callers can narrate progress.
///
/// # Errors
///
/// [`ConnectError::SocketMissing`] when the path does not exist,
/// [`ConnectError::Exhausted`] when every attempt failed transiently,
/// [`ConnectError::Io`] on the first non-transient failure.
#[cfg(unix)]
pub fn connect_with_retry(
    path: &Path,
    policy: RetryPolicy,
    mut on_retry: impl FnMut(u32, u64, &std::io::Error),
) -> Result<std::os::unix::net::UnixStream, ConnectError> {
    let attempts = policy.retries.saturating_add(1);
    for attempt in 1..=attempts {
        if !path.exists() {
            return Err(ConnectError::SocketMissing {
                path: path.to_path_buf(),
            });
        }
        match std::os::unix::net::UnixStream::connect(path) {
            Ok(stream) => return Ok(stream),
            Err(e) if !transient(&e) => return Err(ConnectError::Io(e)),
            Err(e) if attempt == attempts => {
                return Err(ConnectError::Exhausted {
                    path: path.to_path_buf(),
                    attempts,
                    last: e,
                });
            }
            Err(e) => {
                let delay = policy.delay_ms(attempt);
                on_retry(attempt, delay, &e);
                std::thread::sleep(std::time::Duration::from_millis(delay));
            }
        }
    }
    unreachable!("the loop returns on the final attempt")
}

/// Arms both socket deadlines on a connected stream: every subsequent
/// read and write must make progress within `timeout_ms` milliseconds
/// or fail with a timeout kind ([`is_deadline`]). A zero timeout is
/// clamped to one millisecond — zero would tell the OS "no deadline",
/// the opposite of what the caller asked for.
///
/// # Errors
///
/// The underlying `setsockopt` failure, which is not transient.
#[cfg(unix)]
pub fn arm_deadlines(
    stream: &std::os::unix::net::UnixStream,
    timeout_ms: u64,
) -> std::io::Result<()> {
    let deadline = std::time::Duration::from_millis(timeout_ms.max(1));
    stream.set_read_timeout(Some(deadline))?;
    stream.set_write_timeout(Some(deadline))
}

/// Whether `e` is the OS reporting an expired socket deadline. Unix
/// sockets surface an expired `SO_RCVTIMEO`/`SO_SNDTIMEO` as either
/// `WouldBlock` (Linux) or `TimedOut` (other unices) — callers must
/// treat both as the deadline firing.
pub fn is_deadline(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

/// Folds an I/O failure observed *after* [`arm_deadlines`] into the
/// typed connect error: deadline expiries become
/// [`ConnectError::Timeout`], anything else stays [`ConnectError::Io`].
pub fn deadline_error(path: &Path, timeout_ms: u64, e: std::io::Error) -> ConnectError {
    if is_deadline(&e) {
        ConnectError::Timeout {
            path: path.to_path_buf(),
            timeout_ms,
        }
    } else {
        ConnectError::Io(e)
    }
}

/// Connects under `policy` like [`connect_with_retry`], then arms the
/// socket deadlines when `timeout_ms` is set — the connect-and-never-
/// hang entrypoint remote callers should prefer.
///
/// # Errors
///
/// Everything [`connect_with_retry`] returns, plus [`ConnectError::Io`]
/// when arming the deadlines fails.
#[cfg(unix)]
pub fn connect_with_deadline(
    path: &Path,
    policy: RetryPolicy,
    timeout_ms: Option<u64>,
    on_retry: impl FnMut(u32, u64, &std::io::Error),
) -> Result<std::os::unix::net::UnixStream, ConnectError> {
    let stream = connect_with_retry(path, policy, on_retry)?;
    if let Some(ms) = timeout_ms {
        arm_deadlines(&stream, ms).map_err(ConnectError::Io)?;
    }
    Ok(stream)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_and_caps() {
        let policy = RetryPolicy {
            retries: 8,
            backoff_ms: 50,
        };
        let delays: Vec<u64> = (1..=8).map(|a| policy.delay_ms(a)).collect();
        assert_eq!(delays, [50, 100, 200, 400, 800, 800, 800, 800]);
        // Deterministic: the same policy always yields the same ladder.
        assert_eq!(policy.delay_ms(3), policy.delay_ms(3));
    }

    #[test]
    fn backoff_saturates_instead_of_overflowing() {
        let policy = RetryPolicy {
            retries: 1,
            backoff_ms: u64::MAX,
        };
        assert_eq!(policy.delay_ms(5), u64::MAX);
    }

    #[cfg(unix)]
    #[test]
    fn missing_socket_is_typed_and_not_retried() {
        let path = std::env::temp_dir().join(format!("lcl-client-absent-{}", std::process::id()));
        let mut retries_seen = 0;
        let err = connect_with_retry(
            &path,
            RetryPolicy {
                retries: 3,
                backoff_ms: 1,
            },
            |_, _, _| retries_seen += 1,
        )
        .unwrap_err();
        assert!(matches!(err, ConnectError::SocketMissing { .. }), "{err}");
        assert_eq!(retries_seen, 0, "a missing path must fail fast");
    }

    #[cfg(unix)]
    #[test]
    fn refused_socket_exhausts_the_deterministic_ladder() {
        // Bind then drop: the socket file remains but nothing listens,
        // so every connect is ECONNREFUSED — the transient case.
        let dir = std::env::temp_dir().join(format!("lcl-client-refused-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("server.sock");
        drop(std::os::unix::net::UnixListener::bind(&path).unwrap());
        let mut ladder = Vec::new();
        let err = connect_with_retry(
            &path,
            RetryPolicy {
                retries: 2,
                backoff_ms: 1,
            },
            |attempt, delay, _| ladder.push((attempt, delay)),
        )
        .unwrap_err();
        match err {
            ConnectError::Exhausted { attempts, last, .. } => {
                assert_eq!(attempts, 3);
                assert_eq!(last.kind(), std::io::ErrorKind::ConnectionRefused);
            }
            other => panic!("expected Exhausted, got {other}"),
        }
        assert_eq!(ladder, [(1, 1), (2, 2)]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[cfg(unix)]
    #[test]
    fn silent_peer_times_out_instead_of_hanging() {
        use std::io::Read as _;
        let dir = std::env::temp_dir().join(format!("lcl-client-silent-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("server.sock");
        // Accepts, then never writes: without a deadline the read below
        // would block forever.
        let listener = std::os::unix::net::UnixListener::bind(&path).unwrap();
        let mut stream =
            connect_with_deadline(&path, RetryPolicy::default(), Some(30), |_, _, _| {
                panic!("no retry expected")
            })
            .unwrap();
        let (_held_open, _) = listener.accept().unwrap();
        let err = stream.read_exact(&mut [0u8; 1]).unwrap_err();
        assert!(is_deadline(&err), "expected a deadline kind, got {err:?}");
        let typed = deadline_error(&path, 30, err);
        assert!(matches!(
            typed,
            ConnectError::Timeout { timeout_ms: 30, .. }
        ));
        assert!(typed.to_string().contains("30 ms"), "{typed}");
        // A genuine transport error is not relabeled as a timeout.
        let broken = std::io::Error::from(std::io::ErrorKind::BrokenPipe);
        assert!(matches!(
            deadline_error(&path, 30, broken),
            ConnectError::Io(_)
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[cfg(unix)]
    #[test]
    fn live_socket_connects_on_the_first_attempt() {
        let dir = std::env::temp_dir().join(format!("lcl-client-live-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("server.sock");
        let _listener = std::os::unix::net::UnixListener::bind(&path).unwrap();
        let stream = connect_with_retry(&path, RetryPolicy::default(), |_, _, _| {
            panic!("no retry expected")
        });
        assert!(stream.is_ok());
        std::fs::remove_dir_all(&dir).ok();
    }
}
