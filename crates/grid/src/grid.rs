//! The oriented toroidal grid substrate.

use lcl_graph::{gen, Graph, NodeId};

/// A `d`-dimensional oriented toroidal grid.
///
/// Edges follow the canonical orientation of Section 5: every edge belongs
/// to a dimension `k` and is oriented in the `+k` direction; the port
/// convention makes the orientation locally visible (port `2k` leaves in
/// `+k`, port `2k+1` in `-k`), which is exactly the "consistently oriented
/// and dimension-labeled" structure the paper assumes.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct OrientedGrid {
    dims: Vec<usize>,
    graph: Graph,
}

impl OrientedGrid {
    /// Builds the oriented torus with the given side lengths.
    ///
    /// # Panics
    ///
    /// Panics if `dims` is empty or a side is `< 3` (see
    /// [`lcl_graph::gen::torus`]).
    pub fn new(dims: &[usize]) -> Self {
        Self {
            dims: dims.to_vec(),
            graph: gen::torus(dims),
        }
    }

    /// The underlying port-numbered graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Side lengths per dimension.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Number of dimensions `d`.
    pub fn dimension_count(&self) -> usize {
        self.dims.len()
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.graph.node_count()
    }

    /// The coordinates of node `v`.
    pub fn coords(&self, v: NodeId) -> Vec<usize> {
        gen::torus_coords(&self.dims, v.index())
    }

    /// The node at the given coordinates (wrapping).
    pub fn node_at(&self, coords: &[usize]) -> NodeId {
        let wrapped: Vec<usize> = coords
            .iter()
            .zip(&self.dims)
            .map(|(&c, &s)| c % s)
            .collect();
        NodeId(gen::torus_id(&self.dims, &wrapped) as u32)
    }

    /// The node reached from `v` by moving `offset[k]` steps in each
    /// dimension (offsets may be negative; movement wraps).
    pub fn offset(&self, v: NodeId, offset: &[i64]) -> NodeId {
        let coords = self.coords(v);
        let wrapped: Vec<usize> = coords
            .iter()
            .zip(offset)
            .zip(&self.dims)
            .map(|((&c, &o), &s)| {
                let s = s as i64;
                (((c as i64 + o) % s + s) % s) as usize
            })
            .collect();
        self.node_at(&wrapped)
    }

    /// The dimension an edge at port `port` belongs to.
    pub fn dimension_of_port(&self, port: u8) -> usize {
        (port / 2) as usize
    }

    /// Whether the edge at `port` leaves in the positive direction of its
    /// dimension.
    pub fn is_positive_port(&self, port: u8) -> bool {
        port.is_multiple_of(2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coordinates_roundtrip() {
        let grid = OrientedGrid::new(&[3, 4, 5]);
        for v in grid.graph().nodes() {
            assert_eq!(grid.node_at(&grid.coords(v)), v);
        }
    }

    #[test]
    fn offset_moves_and_wraps() {
        let grid = OrientedGrid::new(&[4, 4]);
        let v = grid.node_at(&[3, 0]);
        assert_eq!(grid.coords(grid.offset(v, &[1, 0])), vec![0, 0]);
        assert_eq!(grid.coords(grid.offset(v, &[-1, -1])), vec![2, 3]);
        assert_eq!(grid.offset(v, &[0, 0]), v);
        assert_eq!(grid.offset(v, &[4, 8]), v);
    }

    #[test]
    fn ports_encode_orientation() {
        let grid = OrientedGrid::new(&[3, 3]);
        let v = grid.node_at(&[1, 1]);
        for port in 0..4u8 {
            let k = grid.dimension_of_port(port);
            let h = grid.graph().half_edge(v, port);
            let w = grid.graph().neighbor(h);
            let mut expected = vec![0i64; 2];
            expected[k] = if grid.is_positive_port(port) { 1 } else { -1 };
            assert_eq!(w, grid.offset(v, &expected));
        }
    }
}
