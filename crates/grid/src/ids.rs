//! Per-dimension identifier assignments of the PROD-LOCAL model
//! (Definition 5.2): node `u` holds identifiers `id_1(u), ..., id_d(u)`,
//! and `id_i(u) = id_i(v)` iff `u` and `v` share the `i`-th coordinate.

use lcl_rng::SmallRng;

use lcl_graph::NodeId;

use crate::grid::OrientedGrid;

/// An assignment of one identifier per (dimension, coordinate value).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ProdIds {
    /// `per_dim[k][c]` = the identifier shared by all nodes whose `k`-th
    /// coordinate is `c`.
    per_dim: Vec<Vec<u64>>,
}

impl ProdIds {
    /// Sequential identifiers: dimension `k`, coordinate `c` gets a
    /// distinct value `k * stride + c`.
    pub fn sequential(grid: &OrientedGrid) -> Self {
        let stride = grid.dims().iter().copied().max().unwrap_or(0) as u64 + 1;
        let per_dim = grid
            .dims()
            .iter()
            .enumerate()
            .map(|(k, &s)| (0..s as u64).map(|c| k as u64 * stride + c).collect())
            .collect();
        Self { per_dim }
    }

    /// Random identifiers from `[0, n^exponent)`, unique across all
    /// dimensions; deterministic given `seed`.
    pub fn random_polynomial(grid: &OrientedGrid, exponent: u32, seed: u64) -> Self {
        let n = grid.node_count() as u64;
        let range = n
            .checked_pow(exponent)
            .expect("why: documented precondition — n^exponent must fit in u64")
            .max(grid.dims().iter().map(|&s| s as u64).sum::<u64>());
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut used = std::collections::HashSet::new();
        let per_dim = grid
            .dims()
            .iter()
            .map(|&s| {
                (0..s)
                    .map(|_| loop {
                        let candidate = rng.gen_range(0..range);
                        if used.insert(candidate) {
                            break candidate;
                        }
                    })
                    .collect()
            })
            .collect();
        Self { per_dim }
    }

    /// An explicit assignment.
    ///
    /// # Panics
    ///
    /// Panics if identifiers repeat across the whole assignment.
    pub fn from_tables(per_dim: Vec<Vec<u64>>) -> Self {
        let mut all: Vec<u64> = per_dim.iter().flatten().copied().collect();
        let len = all.len();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), len, "identifiers must be globally unique");
        Self { per_dim }
    }

    /// The identifier of coordinate `c` in dimension `k`.
    pub fn id(&self, k: usize, c: usize) -> u64 {
        self.per_dim[k][c]
    }

    /// The `d` identifiers of node `v` on `grid`.
    pub fn ids_of(&self, grid: &OrientedGrid, v: NodeId) -> Vec<u64> {
        grid.coords(v)
            .iter()
            .enumerate()
            .map(|(k, &c)| self.id(k, c))
            .collect()
    }

    /// The same per-dimension identifier tables dealt to different
    /// coordinates: in dimension `k`, coordinate `c` receives the
    /// identifier previously held by coordinate `perms[k][c]`. This is
    /// how fault plans realize adversarial ID permutations in the
    /// PROD-LOCAL model (each dimension's slice identifiers are
    /// reshuffled; the id multiset is unchanged).
    ///
    /// # Panics
    ///
    /// Panics if `perms` does not hold one permutation of `0..dims[k]`
    /// per dimension.
    pub fn permuted(&self, perms: &[Vec<usize>]) -> Self {
        assert_eq!(
            perms.len(),
            self.per_dim.len(),
            "one permutation per dimension"
        );
        let per_dim: Vec<Vec<u64>> = self
            .per_dim
            .iter()
            .zip(perms)
            .map(|(row, perm)| {
                assert_eq!(perm.len(), row.len(), "permutation covers the dimension");
                perm.iter().map(|&c| row[c]).collect()
            })
            .collect();
        // `from_tables` re-checks global uniqueness, rejecting non-bijections.
        Self::from_tables(per_dim)
    }

    /// A fresh assignment with the same global relative order of all
    /// identifiers but different values (for order-invariance checks).
    pub fn resample_order_preserving(&self, seed: u64) -> Self {
        let mut all: Vec<u64> = self.per_dim.iter().flatten().copied().collect();
        let count = all.len();
        all.sort_unstable();
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut fresh = std::collections::BTreeSet::new();
        while fresh.len() < count {
            fresh.insert(rng.gen::<u64>() / 2);
        }
        let fresh: Vec<u64> = fresh.into_iter().collect();
        let rank_of = |id: u64| {
            all.binary_search(&id)
                .expect("why: rank_of is only called with ids drawn from `all`")
        };
        let per_dim = self
            .per_dim
            .iter()
            .map(|row| row.iter().map(|&id| fresh[rank_of(id)]).collect())
            .collect();
        Self { per_dim }
    }

    /// Packs the `d` identifiers of each node into one globally unique
    /// identifier (the Proposition 5.3 encoding
    /// `I = Σ_i I_i · range^(i-1)`), yielding a plain LOCAL-model
    /// assignment.
    pub fn pack(&self, grid: &OrientedGrid) -> lcl_local::IdAssignment {
        let range = self.per_dim.iter().flatten().copied().max().unwrap_or(0) + 1;
        let ids = grid
            .graph()
            .nodes()
            .map(|v| {
                let mut packed: u64 = 0;
                for (k, &c) in grid.coords(v).iter().enumerate().rev() {
                    packed = packed
                        .checked_mul(range)
                        .and_then(|p| p.checked_add(self.id(k, c)))
                        .expect(
                            "why: documented precondition — the packed encoding must fit in u64",
                        );
                }
                packed
            })
            .collect();
        lcl_local::IdAssignment::from_vec(ids)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_ids_are_per_coordinate() {
        let grid = OrientedGrid::new(&[3, 4]);
        let ids = ProdIds::sequential(&grid);
        let u = grid.node_at(&[1, 2]);
        let v = grid.node_at(&[1, 3]);
        // Same first coordinate => same first id; different second ids.
        assert_eq!(ids.ids_of(&grid, u)[0], ids.ids_of(&grid, v)[0]);
        assert_ne!(ids.ids_of(&grid, u)[1], ids.ids_of(&grid, v)[1]);
    }

    #[test]
    fn random_ids_are_unique_and_deterministic() {
        let grid = OrientedGrid::new(&[4, 4]);
        let a = ProdIds::random_polynomial(&grid, 3, 9);
        let b = ProdIds::random_polynomial(&grid, 3, 9);
        assert_eq!(a, b);
        let all: std::collections::HashSet<u64> = (0..2)
            .flat_map(|k| (0..4).map(move |c| (k, c)))
            .map(|(k, c)| a.id(k, c))
            .collect();
        assert_eq!(all.len(), 8);
    }

    #[test]
    fn resample_preserves_global_order() {
        let grid = OrientedGrid::new(&[3, 3]);
        let a = ProdIds::random_polynomial(&grid, 3, 1);
        let b = a.resample_order_preserving(2);
        // Compare pairwise order of all (dim, coord) entries.
        for k1 in 0..2 {
            for c1 in 0..3 {
                for k2 in 0..2 {
                    for c2 in 0..3 {
                        assert_eq!(a.id(k1, c1) < a.id(k2, c2), b.id(k1, c1) < b.id(k2, c2));
                    }
                }
            }
        }
    }

    #[test]
    fn packed_ids_are_unique() {
        let grid = OrientedGrid::new(&[3, 5]);
        let ids = ProdIds::sequential(&grid);
        let packed = ids.pack(&grid);
        assert_eq!(packed.len(), 15);
    }

    #[test]
    #[should_panic(expected = "globally unique")]
    fn from_tables_rejects_duplicates() {
        let _ = ProdIds::from_tables(vec![vec![1, 2], vec![2, 3]]);
    }
}
