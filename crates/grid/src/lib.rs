//! Oriented `d`-dimensional grids and the PROD-LOCAL model (Section 5 of
//! the paper).
//!
//! An *oriented grid* is a toroidal grid whose edges are consistently
//! oriented and labeled with the dimension they belong to. On such grids
//! the paper proves the third gap theorem (Theorem 5.1): no LCL has local
//! complexity between `ω(1)` and `o(log* n)`.
//!
//! The proof pipeline works in the **PROD-LOCAL** model (Definition 5.2),
//! where every node holds `d` identifiers — one per dimension, equal
//! exactly for nodes sharing that coordinate. This crate provides:
//!
//! * [`OrientedGrid`] — the graph substrate with the canonical port
//!   convention (port `2k` = `+k` direction, port `2k+1` = `-k`).
//! * [`ProdIds`] — per-dimension identifier assignments.
//! * [`ProdLocalAlgorithm`] + [`run_prod_local`] — the PROD-LOCAL
//!   executor over box-shaped views.
//! * [`OrderInvariantProdAlgorithm`] — the order-invariant variant used by
//!   Propositions 5.4/5.5.
//!
//! # Examples
//!
//! ```
//! use lcl_grid::OrientedGrid;
//!
//! let grid = OrientedGrid::new(&[4, 5]);
//! assert_eq!(grid.node_count(), 20);
//! assert_eq!(grid.dimension_count(), 2);
//! let v = grid.node_at(&[2, 3]);
//! assert_eq!(grid.coords(v), vec![2, 3]);
//! ```

pub mod faulted;
pub mod grid;
pub mod ids;
pub mod run;
pub mod view;

#[allow(deprecated)]
pub use faulted::simulate_prod_faulted;
pub use grid::OrientedGrid;
pub use ids::ProdIds;
pub use run::{
    is_empirically_order_invariant_prod, run_order_invariant_prod, run_prod_local, simulate_with,
    FnProdAlgorithm, OrderInvariantProdAlgorithm, ProdLocalAlgorithm, ProdRun,
};
#[allow(deprecated)]
pub use run::{simulate, simulate_prod_logged};
pub use view::{GridView, RankGridView};
