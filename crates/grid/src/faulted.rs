//! Fault-injected PROD-LOCAL execution with graceful degradation.
//!
//! The opt-in counterpart of [`simulate`](crate::run::simulate): a
//! [`FaultPlan`] is applied deterministically, every cell's labeling
//! invocation runs panic-isolated, and every fault becomes a typed
//! [`NodeFault`] record plus an [`lcl_obs::Event::Fault`] in the event
//! log — the run never aborts.
//!
//! Fault semantics on oriented grids (view-based, so "rounds" are 0):
//!
//! * **Crash-stop** — the cell cannot collect its radius-`T` box and
//!   emits placeholder labels.
//! * **View corruption** — the per-dimension slice identifiers visible
//!   in the cell's window are XOR-perturbed (the cell's own coordinates
//!   excepted); the cell still answers, possibly incorrectly.
//! * **ID permutation** — each dimension's slice-identifier table is
//!   reshuffled ([`ProdIds::permuted`]), exploring Definition 5.2's
//!   quantifier over assignments.
//! * **Panics / wrong arity** — isolated and recorded; the cell emits
//!   placeholder labels.

use lcl::{HalfEdgeLabeling, InLabel, OutLabel};
use lcl_faults::{inject_panic, isolate, plan::perturb, Degraded, FaultPlan, NodeFault};
use lcl_obs::{Counter, Event, EventLog, RunReport, Span, Trace};

use crate::grid::OrientedGrid;
use crate::ids::ProdIds;
use crate::run::{build_view, ProdLocalAlgorithm, ProdRun};

fn record_fault(
    faults: &mut Vec<NodeFault>,
    log: Option<&EventLog>,
    node: u64,
    tag: &'static str,
    payload: String,
) {
    if let Some(log) = log {
        log.record(Event::Fault {
            node,
            round: 0,
            fault: tag,
        });
    }
    faults.push(NodeFault {
        node,
        round: 0,
        payload,
    });
}

/// Runs a PROD-LOCAL algorithm under a [`FaultPlan`], degrading instead
/// of panicking. See the module docs for the per-fault semantics.
#[deprecated(
    since = "0.1.0",
    note = "use `simulate_with(..., RunOptions::new().faults(plan).events(log))`"
)]
pub fn simulate_prod_faulted(
    alg: &(impl ProdLocalAlgorithm + ?Sized),
    grid: &OrientedGrid,
    input: &HalfEdgeLabeling<InLabel>,
    ids: &ProdIds,
    n_announced: Option<usize>,
    plan: &FaultPlan,
    log: Option<&EventLog>,
) -> RunReport<Degraded<ProdRun>> {
    simulate_prod_faulted_impl(alg, grid, input, ids, n_announced, plan, log)
}

pub(crate) fn simulate_prod_faulted_impl(
    alg: &(impl ProdLocalAlgorithm + ?Sized),
    grid: &OrientedGrid,
    input: &HalfEdgeLabeling<InLabel>,
    ids: &ProdIds,
    n_announced: Option<usize>,
    plan: &FaultPlan,
    log: Option<&EventLog>,
) -> RunReport<Degraded<ProdRun>> {
    let permuted;
    let ids = if plan.permutes_ids() {
        let perms: Vec<Vec<usize>> = grid
            .dims()
            .iter()
            .map(|&s| {
                plan.permutation(s)
                    .expect("why: permutes_ids() returned true, so permutation() is Some")
            })
            .collect();
        permuted = ids.permuted(&perms);
        &permuted
    } else {
        ids
    };
    let n = n_announced.unwrap_or_else(|| grid.node_count());
    let radius = alg.radius(n);
    let mut span = Span::start(format!("prod-local/faulted/{}", alg.name()));
    let d = grid.dimension_count();
    let window = (2 * radius as u64 + 1).pow(d as u32);
    let mut view_nodes = 0u64;
    let mut faults = Vec::new();
    let output = HalfEdgeLabeling::from_node_fn(grid.graph(), |v| {
        let node = v.index() as u64;
        if plan.crash_round(v.index()).is_some() {
            record_fault(&mut faults, log, node, "crash-stop", "crash-stop".into());
            return vec![OutLabel(0); 2 * d];
        }
        let mut view = build_view(grid, input, ids, v, radius, n);
        view_nodes += window;
        span.observe(Counter::ViewNodes, window);
        if let Some(salt) = plan.corrupt_salt(v.index()) {
            if let Some(log) = log {
                log.record(Event::Fault {
                    node,
                    round: 0,
                    fault: "corrupt-view",
                });
            }
            // The cell still knows its own slice identifiers (offset 0 in
            // every dimension, index `radius`); the rest of the window is
            // the adversary's to rewrite.
            let t = radius as usize;
            let mut word = 0u64;
            for row in view.ids.iter_mut() {
                for (i, id) in row.iter_mut().enumerate() {
                    if i != t {
                        *id ^= perturb(salt, word);
                    }
                    word += 1;
                }
            }
        }
        let labels = if plan.panics(v.index()) {
            isolate(|| inject_panic(node))
        } else {
            isolate(|| alg.label(&view))
        };
        match labels {
            Ok(labels) if labels.len() == 2 * d => labels,
            Ok(labels) => {
                let payload = format!("returned {} labels for {} ports", labels.len(), 2 * d);
                record_fault(&mut faults, log, node, "wrong-arity", payload);
                vec![OutLabel(0); 2 * d]
            }
            Err(payload) => {
                record_fault(&mut faults, log, node, "panic", payload);
                vec![OutLabel(0); 2 * d]
            }
        }
    });
    span.set(Counter::Nodes, grid.node_count() as u64);
    span.set(Counter::Edges, grid.graph().edge_count() as u64);
    span.set(Counter::Queries, grid.node_count() as u64);
    span.set(Counter::Radius, u64::from(radius));
    span.set(Counter::Rounds, u64::from(radius));
    span.set(Counter::ViewNodes, view_nodes);
    span.set(Counter::Faults, faults.len() as u64);
    let degraded = Degraded {
        outcome: ProdRun { output, radius },
        faults,
    };
    RunReport::new(degraded, Trace::new(span.finish()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run::FnProdAlgorithm;
    use lcl_faults::Fault;

    fn echo_alg(
    ) -> FnProdAlgorithm<impl Fn(usize) -> u32, impl Fn(&crate::view::GridView) -> Vec<OutLabel>>
    {
        FnProdAlgorithm::new(
            "echo-x",
            |_| 1,
            |view| vec![OutLabel((view.id(0, 0) % 1000) as u32); 2 * view.d],
        )
    }

    #[test]
    fn empty_plan_matches_the_unfaulted_run() {
        let grid = OrientedGrid::new(&[4, 5]);
        let ids = ProdIds::sequential(&grid);
        let input = lcl::uniform_input(grid.graph());
        let plan = FaultPlan::new(3);
        let report =
            simulate_prod_faulted_impl(&echo_alg(), &grid, &input, &ids, None, &plan, None);
        assert!(!report.outcome.is_degraded());
        let plain = crate::run::simulate_impl(&echo_alg(), &grid, &input, &ids, None, None);
        assert_eq!(report.outcome.outcome, plain.outcome);
    }

    #[test]
    fn crash_and_panic_degrade_cells_without_aborting() {
        let grid = OrientedGrid::new(&[3, 3]);
        let ids = ProdIds::sequential(&grid);
        let input = lcl::uniform_input(grid.graph());
        let plan = FaultPlan::new(0)
            .with(Fault::Crash { node: 1, round: 0 })
            .with(Fault::PanicNode { node: 4 });
        let log = EventLog::new(64);
        let report =
            simulate_prod_faulted_impl(&echo_alg(), &grid, &input, &ids, None, &plan, Some(&log));
        let degraded = &report.outcome;
        assert_eq!(degraded.faults.len(), 2);
        assert_eq!(degraded.faults[0].payload, "crash-stop");
        assert!(degraded.faults[1]
            .payload
            .contains("injected panic at node 4"));
        assert_eq!(report.trace.total(Counter::Faults), 2);
        let fault_events = log
            .events()
            .iter()
            .filter(|e| matches!(e, Event::Fault { .. }))
            .count();
        assert_eq!(fault_events, 2);
    }

    #[test]
    fn corrupt_window_spares_the_cells_own_slices() {
        let grid = OrientedGrid::new(&[4, 4]);
        let ids = ProdIds::sequential(&grid);
        let input = lcl::uniform_input(grid.graph());
        // Echo own dim-0 id: corruption must not change it (offset 0 is
        // the cell's own slice), even though neighbors are perturbed.
        let plan = FaultPlan::new(0).with(Fault::CorruptView { node: 5, salt: 9 });
        let honest = simulate_prod_faulted_impl(
            &echo_alg(),
            &grid,
            &input,
            &ids,
            None,
            &FaultPlan::new(0),
            None,
        );
        let corrupted =
            simulate_prod_faulted_impl(&echo_alg(), &grid, &input, &ids, None, &plan, None);
        assert!(!corrupted.outcome.is_degraded(), "silent corruption");
        assert_eq!(corrupted.outcome.outcome, honest.outcome.outcome);
        // An algorithm reading a *neighbor* slice does see the corruption.
        let neighbor_alg = FnProdAlgorithm::new(
            "echo-left",
            |_| 1,
            |view| vec![OutLabel((view.id(0, -1) % 1000) as u32); 2 * view.d],
        );
        let honest = simulate_prod_faulted_impl(
            &neighbor_alg,
            &grid,
            &input,
            &ids,
            None,
            &FaultPlan::new(0),
            None,
        );
        let corrupted =
            simulate_prod_faulted_impl(&neighbor_alg, &grid, &input, &ids, None, &plan, None);
        assert_ne!(corrupted.outcome.outcome, honest.outcome.outcome);
    }

    #[test]
    fn id_permutation_reshuffles_slices_deterministically() {
        let grid = OrientedGrid::new(&[4, 5]);
        let ids = ProdIds::sequential(&grid);
        let input = lcl::uniform_input(grid.graph());
        let plan = FaultPlan::new(17).with_permuted_ids();
        let a = simulate_prod_faulted_impl(&echo_alg(), &grid, &input, &ids, None, &plan, None);
        let b = simulate_prod_faulted_impl(&echo_alg(), &grid, &input, &ids, None, &plan, None);
        assert_eq!(a.outcome, b.outcome);
        assert_eq!(a.trace.fingerprint(), b.trace.fingerprint());
        // Per column, outputs are a permutation of the sequential ids.
        let mut seen: Vec<u32> = (0..4)
            .map(|x| {
                let v = grid.node_at(&[x, 0]);
                a.outcome.outcome.output.get(grid.graph().half_edge(v, 0)).0
            })
            .collect();
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2, 3]);
    }
}
