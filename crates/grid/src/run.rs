//! Executing PROD-LOCAL algorithms on oriented grids.

use lcl::{HalfEdgeLabeling, InLabel, OutLabel};
use lcl_obs::{Counter, Event, EventLog, RunReport, Span, Trace};

use crate::grid::OrientedGrid;
use crate::ids::ProdIds;
use crate::view::{GridView, RankGridView};

/// A PROD-LOCAL algorithm (Definition 5.2): a function from box views with
/// per-dimension identifiers to the center's `2d` half-edge outputs.
pub trait ProdLocalAlgorithm {
    /// The radius `T(n)`.
    fn radius(&self, n: usize) -> u32;

    /// Outputs for the center's ports (`2d` labels, port order: `+0, -0,
    /// +1, -1, ...`).
    fn label(&self, view: &GridView) -> Vec<OutLabel>;

    /// A short name for diagnostics.
    fn name(&self) -> &str {
        "anonymous"
    }
}

/// An order-invariant PROD-LOCAL algorithm: a function of the rank view
/// only (the hypothesis of Proposition 5.5).
pub trait OrderInvariantProdAlgorithm {
    /// The radius `T(n)`.
    fn radius(&self, n: usize) -> u32;

    /// Outputs for the center's ports.
    fn label(&self, view: &RankGridView) -> Vec<OutLabel>;

    /// A short name for diagnostics.
    fn name(&self) -> &str {
        "anonymous"
    }
}

/// The result of a PROD-LOCAL run.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ProdRun {
    /// The produced half-edge labeling on the grid's graph.
    pub output: HalfEdgeLabeling<OutLabel>,
    /// The radius used for this `n`.
    pub radius: u32,
}

pub(crate) fn build_view(
    grid: &OrientedGrid,
    input: &HalfEdgeLabeling<InLabel>,
    ids: &ProdIds,
    center: lcl_graph::NodeId,
    radius: u32,
    n: usize,
) -> GridView {
    let d = grid.dimension_count();
    let t = radius as i64;
    let coords = grid.coords(center);
    let view_ids: Vec<Vec<u64>> = (0..d)
        .map(|k| {
            let s = grid.dims()[k] as i64;
            (-t..=t)
                .map(|o| {
                    let c = (((coords[k] as i64 + o) % s + s) % s) as usize;
                    ids.id(k, c)
                })
                .collect()
        })
        .collect();

    // Enumerate window nodes in mixed-radix order (dimension 0 fastest).
    let side = 2 * radius as usize + 1;
    let window = side.pow(d as u32);
    let mut inputs = Vec::with_capacity(window * 2 * d);
    let mut offsets = vec![-t; d];
    for _ in 0..window {
        let w = grid.offset(center, &offsets);
        for h in grid.graph().half_edges_of(w) {
            inputs.push(input.get(h));
        }
        // Increment mixed-radix counter.
        for item in offsets.iter_mut() {
            if *item < t {
                *item += 1;
                break;
            }
            *item = -t;
        }
    }

    GridView {
        d,
        radius,
        n,
        ids: view_ids,
        inputs,
    }
}

/// Runs a PROD-LOCAL algorithm on an oriented grid and reports the
/// execution trace: the radius used, the instance shape, and the total
/// window nodes materialized (each radius-`T` view is a box of
/// `(2T+1)^d` nodes).
///
/// This is the instrumented entrypoint behind the facade's `Simulation`
/// trait; [`run_prod_local`] forwards here and discards the trace.
#[deprecated(since = "0.1.0", note = "use `simulate_with(..., RunOptions::new())`")]
pub fn simulate(
    alg: &(impl ProdLocalAlgorithm + ?Sized),
    grid: &OrientedGrid,
    input: &HalfEdgeLabeling<InLabel>,
    ids: &ProdIds,
    n_announced: Option<usize>,
) -> RunReport<ProdRun> {
    simulate_impl(alg, grid, input, ids, n_announced, None)
}

/// Runs a PROD-LOCAL algorithm under
/// [`RunOptions`](lcl_faults::RunOptions): optional event capture,
/// optional fault plan. With a fault plan the run is the degrading
/// executor of [`crate::faulted`]; without one the outcome is
/// [`Degraded::clean`](lcl_faults::Degraded::clean) and bit-identical to
/// the plain run. Budgets have no dimension that applies to view-based
/// PROD-LOCAL runs and are ignored here.
pub fn simulate_with(
    alg: &(impl ProdLocalAlgorithm + ?Sized),
    grid: &OrientedGrid,
    input: &HalfEdgeLabeling<InLabel>,
    ids: &ProdIds,
    n_announced: Option<usize>,
    opts: lcl_faults::RunOptions<'_>,
) -> RunReport<lcl_faults::Degraded<ProdRun>> {
    match opts.fault_plan() {
        Some(plan) => crate::faulted::simulate_prod_faulted_impl(
            alg,
            grid,
            input,
            ids,
            n_announced,
            plan,
            opts.event_log(),
        ),
        None => simulate_impl(alg, grid, input, ids, n_announced, opts.event_log())
            .map(lcl_faults::Degraded::clean),
    }
}

/// Like [`simulate`], with every window materialization recorded as an
/// [`Event::ViewMaterialized`] into the given [`EventLog`].
#[deprecated(
    since = "0.1.0",
    note = "use `simulate_with(..., RunOptions::new().events(log))`"
)]
pub fn simulate_prod_logged(
    alg: &(impl ProdLocalAlgorithm + ?Sized),
    grid: &OrientedGrid,
    input: &HalfEdgeLabeling<InLabel>,
    ids: &ProdIds,
    n_announced: Option<usize>,
    log: Option<&EventLog>,
) -> RunReport<ProdRun> {
    simulate_impl(alg, grid, input, ids, n_announced, log)
}

pub(crate) fn simulate_impl(
    alg: &(impl ProdLocalAlgorithm + ?Sized),
    grid: &OrientedGrid,
    input: &HalfEdgeLabeling<InLabel>,
    ids: &ProdIds,
    n_announced: Option<usize>,
    log: Option<&EventLog>,
) -> RunReport<ProdRun> {
    let n = n_announced.unwrap_or_else(|| grid.node_count());
    let radius = alg.radius(n);
    let mut span = Span::start(format!("prod-local/{}", alg.name()));
    let d = grid.dimension_count();
    let window = (2 * radius as u64 + 1).pow(d as u32);
    let mut view_nodes = 0u64;
    let output = HalfEdgeLabeling::from_node_fn(grid.graph(), |v| {
        let view = build_view(grid, input, ids, v, radius, n);
        view_nodes += window;
        span.observe(Counter::ViewNodes, window);
        if let Some(log) = log {
            log.record(Event::ViewMaterialized {
                node: v.index() as u64,
                radius: u64::from(radius),
                size: window,
            });
        }
        let labels = alg.label(&view);
        assert_eq!(
            labels.len(),
            2 * d,
            "algorithm {} must label all 2d ports",
            alg.name()
        );
        labels
    });
    span.set(Counter::Nodes, grid.node_count() as u64);
    span.set(Counter::Edges, grid.graph().edge_count() as u64);
    span.set(Counter::Queries, grid.node_count() as u64);
    span.set(Counter::Radius, u64::from(radius));
    span.set(Counter::Rounds, u64::from(radius));
    span.set(Counter::ViewNodes, view_nodes);
    RunReport::new(ProdRun { output, radius }, Trace::new(span.finish()))
}

/// Runs a PROD-LOCAL algorithm on an oriented grid, discarding the trace.
///
/// Note: superseded by [`simulate`], which additionally reports the
/// execution trace; this thin wrapper remains for source compatibility.
pub fn run_prod_local(
    alg: &(impl ProdLocalAlgorithm + ?Sized),
    grid: &OrientedGrid,
    input: &HalfEdgeLabeling<InLabel>,
    ids: &ProdIds,
    n_announced: Option<usize>,
) -> ProdRun {
    simulate_impl(alg, grid, input, ids, n_announced, None).outcome
}

/// Runs an order-invariant PROD-LOCAL algorithm (the identifiers only
/// contribute their relative order).
pub fn run_order_invariant_prod(
    alg: &(impl OrderInvariantProdAlgorithm + ?Sized),
    grid: &OrientedGrid,
    input: &HalfEdgeLabeling<InLabel>,
    ids: &ProdIds,
    n_announced: Option<usize>,
) -> ProdRun {
    struct Adapter<'a, A: ?Sized>(&'a A);
    impl<A: OrderInvariantProdAlgorithm + ?Sized> ProdLocalAlgorithm for Adapter<'_, A> {
        fn radius(&self, n: usize) -> u32 {
            self.0.radius(n)
        }
        fn label(&self, view: &GridView) -> Vec<OutLabel> {
            self.0.label(&view.to_ranks())
        }
        fn name(&self) -> &str {
            self.0.name()
        }
    }
    run_prod_local(&Adapter(alg), grid, input, ids, n_announced)
}

/// Empirically checks PROD-LOCAL order invariance: reruns the algorithm
/// under order-preserving resamplings of the per-dimension identifiers
/// and compares outputs. `false` is a definite counterexample (the
/// Proposition 5.4 hypothesis fails); `true` is evidence.
pub fn is_empirically_order_invariant_prod(
    alg: &(impl ProdLocalAlgorithm + ?Sized),
    grid: &OrientedGrid,
    input: &HalfEdgeLabeling<InLabel>,
    base_ids: &ProdIds,
    samples: usize,
    seed: u64,
) -> bool {
    let baseline = run_prod_local(alg, grid, input, base_ids, None);
    for s in 0..samples {
        let fresh = base_ids.resample_order_preserving(seed.wrapping_add(s as u64));
        let run = run_prod_local(alg, grid, input, &fresh, None);
        if run.output != baseline.output {
            return false;
        }
    }
    true
}

/// A [`ProdLocalAlgorithm`] built from closures.
pub struct FnProdAlgorithm<R, F> {
    name: String,
    radius: R,
    label: F,
}

impl<R, F> FnProdAlgorithm<R, F>
where
    R: Fn(usize) -> u32,
    F: Fn(&GridView) -> Vec<OutLabel>,
{
    /// Creates an algorithm from a radius function and a labeling function.
    pub fn new(name: &str, radius: R, label: F) -> Self {
        Self {
            name: name.to_string(),
            radius,
            label,
        }
    }
}

impl<R, F> ProdLocalAlgorithm for FnProdAlgorithm<R, F>
where
    R: Fn(usize) -> u32,
    F: Fn(&GridView) -> Vec<OutLabel>,
{
    fn radius(&self, n: usize) -> u32 {
        (self.radius)(n)
    }

    fn label(&self, view: &GridView) -> Vec<OutLabel> {
        (self.label)(view)
    }

    fn name(&self) -> &str {
        &self.name
    }
}

impl<R, F> std::fmt::Debug for FnProdAlgorithm<R, F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FnProdAlgorithm")
            .field("name", &self.name)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn views_carry_slice_ids() {
        let grid = OrientedGrid::new(&[4, 5]);
        let ids = ProdIds::sequential(&grid);
        let input = lcl::uniform_input(grid.graph());
        // Every node outputs 1 iff its dim-0 id is the smallest visible
        // dim-0 slice id.
        let alg = FnProdAlgorithm::new(
            "min-slice",
            |_| 1,
            |view| {
                let mine = view.id(0, 0);
                let min = (-1..=1).map(|o| view.id(0, o)).min().unwrap();
                vec![OutLabel(u32::from(mine == min)); 2 * view.d]
            },
        );
        let run = run_prod_local(&alg, &grid, &input, &ids, None);
        assert_eq!(run.radius, 1);
        // With sequential ids, coordinate 0 is the smallest among {3,0,1}
        // (wrapping at side 4): nodes with x=0 adjacent to x=3 and x=1.
        let v = grid.node_at(&[0, 2]);
        let h = grid.graph().half_edge(v, 0);
        assert_eq!(run.output.get(h), OutLabel(1));
        let w = grid.node_at(&[2, 2]);
        let h = grid.graph().half_edge(w, 0);
        assert_eq!(run.output.get(h), OutLabel(0));
    }

    #[test]
    fn order_invariant_run_ignores_id_values() {
        let grid = OrientedGrid::new(&[3, 3]);
        let input = lcl::uniform_input(grid.graph());
        struct MinRank;
        impl OrderInvariantProdAlgorithm for MinRank {
            fn radius(&self, _n: usize) -> u32 {
                1
            }
            fn label(&self, view: &RankGridView) -> Vec<OutLabel> {
                let is_min =
                    (0..view.d).all(|k| (-1..=1).all(|o| view.rank(k, 0) <= view.rank(k, o)));
                vec![OutLabel(u32::from(is_min)); 2 * view.d]
            }
        }
        let a = ProdIds::random_polynomial(&grid, 3, 5);
        let b = a.resample_order_preserving(77);
        let run_a = run_order_invariant_prod(&MinRank, &grid, &input, &a, None);
        let run_b = run_order_invariant_prod(&MinRank, &grid, &input, &b, None);
        assert_eq!(run_a.output, run_b.output);
    }

    #[test]
    fn order_invariance_checker_separates() {
        let grid = OrientedGrid::new(&[4, 4]);
        let input = lcl::uniform_input(grid.graph());
        let ids = ProdIds::random_polynomial(&grid, 3, 3);
        // Rank-based: invariant.
        struct MinRank;
        impl OrderInvariantProdAlgorithm for MinRank {
            fn radius(&self, _n: usize) -> u32 {
                1
            }
            fn label(&self, view: &RankGridView) -> Vec<OutLabel> {
                let is_min = (-1..=1).all(|o| view.rank(0, 0) <= view.rank(0, o));
                vec![OutLabel(u32::from(is_min)); 2 * view.d]
            }
        }
        struct AsProd(MinRank);
        impl ProdLocalAlgorithm for AsProd {
            fn radius(&self, n: usize) -> u32 {
                self.0.radius(n)
            }
            fn label(&self, view: &GridView) -> Vec<OutLabel> {
                self.0.label(&view.to_ranks())
            }
        }
        assert!(is_empirically_order_invariant_prod(
            &AsProd(MinRank),
            &grid,
            &input,
            &ids,
            6,
            9
        ));
        // Value-based: not invariant.
        let parity = FnProdAlgorithm::new(
            "parity",
            |_| 0,
            |view| vec![OutLabel((view.id(0, 0) % 2) as u32); 2 * view.d],
        );
        assert!(!is_empirically_order_invariant_prod(
            &parity, &grid, &input, &ids, 12, 9
        ));
    }

    #[test]
    fn simulate_reports_window_counters() {
        let grid = OrientedGrid::new(&[4, 5]);
        let ids = ProdIds::sequential(&grid);
        let input = lcl::uniform_input(grid.graph());
        let alg = FnProdAlgorithm::new("const", |_| 1, |view| vec![OutLabel(0); 2 * view.d]);
        let report = simulate_impl(&alg, &grid, &input, &ids, None, None);
        assert_eq!(report.trace.total(Counter::Nodes), 20);
        assert_eq!(report.trace.total(Counter::Radius), 1);
        // Each radius-1 window on a 2-torus has 3^2 = 9 nodes.
        assert_eq!(report.trace.total(Counter::ViewNodes), 20 * 9);
        assert_eq!(report.outcome.radius, 1);
    }

    #[test]
    fn simulate_prod_logged_records_window_events() {
        use lcl_obs::{Event, EventLog};
        let grid = OrientedGrid::new(&[4, 5]);
        let ids = ProdIds::sequential(&grid);
        let input = lcl::uniform_input(grid.graph());
        let alg = FnProdAlgorithm::new("const", |_| 1, |view| vec![OutLabel(0); 2 * view.d]);
        let log = EventLog::new(64);
        let report = simulate_impl(&alg, &grid, &input, &ids, None, Some(&log));
        let events = log.events();
        assert_eq!(events.len(), 20);
        assert_eq!(
            events[0],
            Event::ViewMaterialized {
                node: 0,
                radius: 1,
                size: 9,
            }
        );
        let hist = report
            .trace
            .root()
            .histogram(Counter::ViewNodes)
            .expect("histogram recorded");
        assert_eq!(hist.count(), 20);
        assert_eq!(hist.sum(), 20 * 9);
    }

    #[test]
    fn cost_model_matches_window_counters() {
        use lcl_faults::RunOptions;
        use lcl_obs::{CostKind, EventLog};
        let grid = OrientedGrid::new(&[4, 5]);
        let ids = ProdIds::sequential(&grid);
        let input = lcl::uniform_input(grid.graph());
        let alg = FnProdAlgorithm::new("const", |_| 1, |view| vec![OutLabel(0); 2 * view.d]);
        // Zero capacity: a pure cost tally, no stored events.
        let log = EventLog::new(0);
        let report = simulate_with(
            &alg,
            &grid,
            &input,
            &ids,
            None,
            RunOptions::new().events(&log),
        );
        let cost = log.cost_model();
        assert_eq!(
            cost.get(CostKind::ViewMaterialized),
            report.trace.total(Counter::Queries)
        );
        // Per-node work is the window size; every radius-1 window on a
        // 2-torus holds 9 nodes.
        assert_eq!(cost.node_total(), report.trace.total(Counter::ViewNodes));
        assert_eq!(cost.node_averaged(), Some(9.0));
    }

    #[test]
    fn window_wraps_on_small_torus() {
        let grid = OrientedGrid::new(&[3, 3]);
        let ids = ProdIds::sequential(&grid);
        let input = lcl::uniform_input(grid.graph());
        // Radius 2 window (side 5) on a side-3 torus wraps: slices repeat.
        let alg = FnProdAlgorithm::new(
            "wrap",
            |_| 2,
            |view| {
                assert_eq!(view.id(0, -2), view.id(0, 1));
                assert_eq!(view.id(1, 2), view.id(1, -1));
                vec![OutLabel(0); 2 * view.d]
            },
        );
        let _ = run_prod_local(&alg, &grid, &input, &ids, None);
    }

    #[test]
    fn center_of_view_is_the_node() {
        let grid = OrientedGrid::new(&[4, 4]);
        let ids = ProdIds::sequential(&grid);
        let input = lcl::uniform_input(grid.graph());
        let alg = FnProdAlgorithm::new(
            "echo-x",
            |_| 0,
            |view| {
                // With sequential ids, dim-0 id equals the x coordinate.
                vec![OutLabel(view.id(0, 0) as u32); 2 * view.d]
            },
        );
        let run = run_prod_local(&alg, &grid, &input, &ids, None);
        let v = grid.node_at(&[3, 1]);
        let h = grid.graph().half_edge(v, 0);
        assert_eq!(run.output.get(h), OutLabel(3));
    }
}
