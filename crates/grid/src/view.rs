//! Box-shaped views of the PROD-LOCAL model.

use lcl::InLabel;

/// What a node sees in a `T`-round PROD-LOCAL algorithm: the box
/// `[-T, T]^d` of offsets around it (the torus wraps, so the box always
/// exists), the per-dimension identifiers of every coordinate slice in the
/// box, and the input labels of every half-edge in the box.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct GridView {
    /// Number of dimensions.
    pub d: usize,
    /// View radius `T`.
    pub radius: u32,
    /// Announced number of nodes.
    pub n: usize,
    /// `ids[k][t]` = identifier of the coordinate slice at offset
    /// `t - T` in dimension `k` (so `ids[k][T]` is the center's).
    pub ids: Vec<Vec<u64>>,
    /// Input labels: for each window node (mixed-radix over offsets,
    /// dimension 0 fastest) its `2d` half-edge labels in port order.
    pub inputs: Vec<InLabel>,
}

impl GridView {
    /// Window side length `2T + 1`.
    pub fn side(&self) -> usize {
        2 * self.radius as usize + 1
    }

    /// Flat index of the window node at the given offsets
    /// (each in `[-T, T]`).
    ///
    /// # Panics
    ///
    /// Panics if an offset is out of range.
    pub fn node_index(&self, offsets: &[i64]) -> usize {
        let t = self.radius as i64;
        let side = self.side() as i64;
        let mut idx: i64 = 0;
        for k in (0..self.d).rev() {
            let o = offsets[k];
            assert!((-t..=t).contains(&o), "offset out of view");
            idx = idx * side + (o + t);
        }
        idx as usize
    }

    /// The input label at `port` of the window node at `offsets`.
    pub fn input_at(&self, offsets: &[i64], port: u8) -> InLabel {
        self.inputs[self.node_index(offsets) * 2 * self.d + port as usize]
    }

    /// The identifier of the coordinate slice at `offset` in dimension `k`.
    pub fn id(&self, k: usize, offset: i64) -> u64 {
        self.ids[k][(offset + self.radius as i64) as usize]
    }

    /// The center's `d` identifiers.
    pub fn center_ids(&self) -> Vec<u64> {
        (0..self.d).map(|k| self.id(k, 0)).collect()
    }

    /// Converts to the order-invariant view: every identifier replaced by
    /// its rank among all identifiers in the view (the global comparison
    /// of Definition 5.2's order-indistinguishability).
    pub fn to_ranks(&self) -> RankGridView {
        let mut all: Vec<u64> = self.ids.iter().flatten().copied().collect();
        all.sort_unstable();
        all.dedup();
        let ranks = self
            .ids
            .iter()
            .map(|row| {
                row.iter()
                    .map(|id| {
                        all.binary_search(id)
                            .expect("why: `all` was collected from these same window ids")
                            as u32
                    })
                    .collect()
            })
            .collect();
        RankGridView {
            d: self.d,
            radius: self.radius,
            n: self.n,
            ranks,
            inputs: self.inputs.clone(),
        }
    }
}

/// The order-invariant counterpart of [`GridView`]: identifiers replaced
/// by ranks.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RankGridView {
    /// Number of dimensions.
    pub d: usize,
    /// View radius `T`.
    pub radius: u32,
    /// Announced number of nodes.
    pub n: usize,
    /// `ranks[k][t]` = rank of slice `t - T` of dimension `k` among all
    /// identifiers visible in the view.
    pub ranks: Vec<Vec<u32>>,
    /// Input labels, as in [`GridView::inputs`].
    pub inputs: Vec<InLabel>,
}

impl RankGridView {
    /// Window side length `2T + 1`.
    pub fn side(&self) -> usize {
        2 * self.radius as usize + 1
    }

    /// Flat index of the window node at the given offsets.
    pub fn node_index(&self, offsets: &[i64]) -> usize {
        let t = self.radius as i64;
        let side = self.side() as i64;
        let mut idx: i64 = 0;
        for k in (0..self.d).rev() {
            let o = offsets[k];
            assert!((-t..=t).contains(&o), "offset out of view");
            idx = idx * side + (o + t);
        }
        idx as usize
    }

    /// The input label at `port` of the window node at `offsets`.
    pub fn input_at(&self, offsets: &[i64], port: u8) -> InLabel {
        self.inputs[self.node_index(offsets) * 2 * self.d + port as usize]
    }

    /// The rank of the slice at `offset` in dimension `k`.
    pub fn rank(&self, k: usize, offset: i64) -> u32 {
        self.ranks[k][(offset + self.radius as i64) as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_view() -> GridView {
        GridView {
            d: 2,
            radius: 1,
            n: 100,
            ids: vec![vec![30, 10, 20], vec![5, 40, 15]],
            inputs: vec![InLabel(0); 9 * 4],
        }
    }

    #[test]
    fn node_index_is_mixed_radix() {
        let v = sample_view();
        assert_eq!(v.node_index(&[-1, -1]), 0);
        assert_eq!(v.node_index(&[0, -1]), 1);
        assert_eq!(v.node_index(&[-1, 0]), 3);
        assert_eq!(v.node_index(&[1, 1]), 8);
    }

    #[test]
    fn ids_are_offset_addressed() {
        let v = sample_view();
        assert_eq!(v.id(0, -1), 30);
        assert_eq!(v.id(0, 0), 10);
        assert_eq!(v.id(1, 1), 15);
        assert_eq!(v.center_ids(), vec![10, 40]);
    }

    #[test]
    fn ranks_are_global_across_dimensions() {
        let v = sample_view();
        let r = v.to_ranks();
        // Sorted ids: 5, 10, 15, 20, 30, 40.
        assert_eq!(r.rank(0, 0), 1); // id 10
        assert_eq!(r.rank(1, -1), 0); // id 5
        assert_eq!(r.rank(1, 0), 5); // id 40
    }

    #[test]
    #[should_panic(expected = "offset out of view")]
    fn out_of_range_offsets_panic() {
        let v = sample_view();
        let _ = v.node_index(&[2, 0]);
    }
}
