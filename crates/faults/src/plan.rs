//! Seeded, serializable fault schedules.
//!
//! A [`FaultPlan`] is the unit of chaos: a list of [`Fault`]s plus a
//! seed, applied deterministically by the `simulate_*_faulted`
//! entrypoints. Plans serialize to a line-oriented text format
//! ([`FaultPlan::to_text`] / [`FaultPlan::parse`]) so an interesting
//! plan found by the chaos soak can be committed verbatim into a
//! regression test or an EXPERIMENTS.md recipe.

use std::fmt;

use lcl_rng::SmallRng;

/// One injected fault.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Fault {
    /// Node `node` crash-stops at round `round`: from that round on its
    /// state is frozen — it still emits its last messages (fail-silent
    /// nodes would deadlock executors whose message types have no
    /// default), never receives, and reports done.
    Crash {
        /// Structural node index.
        node: usize,
        /// Zero-based round at which the node stops participating.
        round: u32,
    },
    /// Node `node` sees a corrupted radius-`T` view: the identifiers and
    /// random bits in its ball (or its probe answers / grid window) are
    /// perturbed by a deterministic mask derived from `salt`.
    CorruptView {
        /// Structural node index (or query index in VOLUME/LCA).
        node: usize,
        /// Seed of the perturbation mask; see [`perturb`].
        salt: u64,
    },
    /// Node `node`'s algorithm invocation panics (via [`inject_panic`]).
    /// The executor isolates it and records a [`NodeFault`] instead of
    /// aborting the process.
    ///
    /// [`inject_panic`]: crate::inject_panic
    /// [`NodeFault`]: crate::NodeFault
    PanicNode {
        /// Structural node index (or query index).
        node: usize,
    },
    /// The `nth` probe issued while answering query `query` returns a
    /// corrupted `NodeInfo`-style answer (the VOLUME adversary lying).
    ProbeLie {
        /// Query index whose probe sequence is corrupted.
        query: usize,
        /// Zero-based index of the corrupted probe within that query.
        nth: u64,
    },
}

/// A deterministic, serializable schedule of faults for one run.
///
/// The plan's `seed` drives every derived choice (the adversarial ID
/// permutation, corruption masks), so a `(seed, plan)` pair fully
/// determines a faulted execution.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct FaultPlan {
    seed: u64,
    permute_ids: bool,
    faults: Vec<Fault>,
}

impl FaultPlan {
    /// An empty plan (no faults, identifiers untouched) with a seed for
    /// derived choices.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            permute_ids: false,
            faults: Vec::new(),
        }
    }

    /// Adds one fault (builder style).
    pub fn with(mut self, fault: Fault) -> Self {
        self.faults.push(fault);
        self
    }

    /// Requests an adversarial permutation of the identifier assignment,
    /// derived from the plan seed (builder style).
    pub fn with_permuted_ids(mut self) -> Self {
        self.permute_ids = true;
        self
    }

    /// A random plan over `nodes` nodes and rounds `0..max_round`:
    /// between zero and three faults of uniformly chosen kinds, plus an
    /// ID permutation half the time. Identical arguments yield the
    /// identical plan.
    pub fn random(seed: u64, nodes: usize, max_round: u32) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut plan = Self::new(seed);
        plan.permute_ids = rng.gen_bool(0.5);
        if nodes == 0 {
            return plan;
        }
        let count = rng.gen_range(0usize..=3);
        for _ in 0..count {
            let node = rng.gen_range(0usize..nodes);
            let fault = match rng.gen_range(0u32..4) {
                0 => Fault::Crash {
                    node,
                    round: rng.gen_range(0u32..=max_round),
                },
                1 => Fault::CorruptView {
                    node,
                    salt: rng.gen(),
                },
                2 => Fault::PanicNode { node },
                _ => Fault::ProbeLie {
                    query: node,
                    nth: rng.gen_range(0u64..=4),
                },
            };
            plan.faults.push(fault);
        }
        plan
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Whether this plan permutes the identifier assignment.
    pub fn permutes_ids(&self) -> bool {
        self.permute_ids
    }

    /// The scheduled faults, in application order.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// Whether the plan changes anything at all.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty() && !self.permute_ids
    }

    /// The earliest round at which `node` crash-stops, if scheduled.
    pub fn crash_round(&self, node: usize) -> Option<u32> {
        self.faults
            .iter()
            .filter_map(|f| match f {
                Fault::Crash { node: v, round } if *v == node => Some(*round),
                _ => None,
            })
            .min()
    }

    /// The corruption salt for `node`'s view, if scheduled.
    pub fn corrupt_salt(&self, node: usize) -> Option<u64> {
        self.faults.iter().find_map(|f| match f {
            Fault::CorruptView { node: v, salt } if *v == node => Some(*salt),
            _ => None,
        })
    }

    /// Whether `node`'s algorithm invocation is scheduled to panic.
    pub fn panics(&self, node: usize) -> bool {
        self.faults
            .iter()
            .any(|f| matches!(f, Fault::PanicNode { node: v } if *v == node))
    }

    /// The index of the probe to corrupt while answering `query`, if any.
    pub fn probe_lie(&self, query: usize) -> Option<u64> {
        self.faults.iter().find_map(|f| match f {
            Fault::ProbeLie { query: q, nth } if *q == query => Some(*nth),
            _ => None,
        })
    }

    /// The adversarial identifier permutation over `0..n`, if the plan
    /// requests one: a Fisher–Yates shuffle driven by the plan seed.
    /// `permutation[v]` is the *rank* whose identifier node `v` receives.
    pub fn permutation(&self, n: usize) -> Option<Vec<usize>> {
        if !self.permute_ids {
            return None;
        }
        let mut rng = SmallRng::seed_from_u64(self.seed ^ PERMUTE_SALT);
        let mut perm: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            perm.swap(i, rng.gen_range(0usize..=i));
        }
        Some(perm)
    }

    /// Line-oriented text rendering; [`FaultPlan::parse`] round-trips it.
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = format!("plan seed={} permute-ids={}\n", self.seed, self.permute_ids);
        for fault in &self.faults {
            match fault {
                Fault::Crash { node, round } => {
                    let _ = writeln!(out, "crash node={node} round={round}");
                }
                Fault::CorruptView { node, salt } => {
                    let _ = writeln!(out, "corrupt node={node} salt={salt}");
                }
                Fault::PanicNode { node } => {
                    let _ = writeln!(out, "panic node={node}");
                }
                Fault::ProbeLie { query, nth } => {
                    let _ = writeln!(out, "probe-lie query={query} nth={nth}");
                }
            }
        }
        out
    }

    /// Parses the [`FaultPlan::to_text`] format. Blank lines and `#`
    /// comments are ignored.
    pub fn parse(text: &str) -> Result<Self, PlanParseError> {
        let mut plan = None;
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut words = line.split_whitespace();
            let head = words.next().unwrap_or_default();
            let field = |key: &str| -> Result<u64, PlanParseError> {
                let prefix = format!("{key}=");
                line.split_whitespace()
                    .find_map(|w| w.strip_prefix(&prefix))
                    .ok_or(PlanParseError {
                        line: lineno + 1,
                        what: "missing field",
                    })?
                    .parse()
                    .map_err(|_| PlanParseError {
                        line: lineno + 1,
                        what: "malformed number",
                    })
            };
            match head {
                "plan" => {
                    let mut p = Self::new(field("seed")?);
                    p.permute_ids = words.any(|w| w == "permute-ids=true");
                    plan = Some(p);
                }
                _ => {
                    let plan = plan.as_mut().ok_or(PlanParseError {
                        line: lineno + 1,
                        what: "fault before the plan header",
                    })?;
                    let fault = match head {
                        "crash" => Fault::Crash {
                            node: field("node")? as usize,
                            round: field("round")? as u32,
                        },
                        "corrupt" => Fault::CorruptView {
                            node: field("node")? as usize,
                            salt: field("salt")?,
                        },
                        "panic" => Fault::PanicNode {
                            node: field("node")? as usize,
                        },
                        "probe-lie" => Fault::ProbeLie {
                            query: field("query")? as usize,
                            nth: field("nth")?,
                        },
                        _ => {
                            return Err(PlanParseError {
                                line: lineno + 1,
                                what: "unknown fault kind",
                            })
                        }
                    };
                    plan.faults.push(fault);
                }
            }
        }
        plan.ok_or(PlanParseError {
            line: 0,
            what: "no plan header",
        })
    }
}

const PERMUTE_SALT: u64 = 0x9d5c_f0aa_11f4_27b3;

/// Deterministic nonzero perturbation mask for corrupted views: word `i`
/// of a view corrupted with `salt` is XORed with `perturb(salt, i)`.
pub fn perturb(salt: u64, i: u64) -> u64 {
    let mut rng = SmallRng::seed_from_u64(salt ^ i.wrapping_mul(0x2545_f491_4f6c_dd1d));
    rng.next_u64() | 1
}

/// A [`FaultPlan::parse`] failure: the 1-based line and what was wrong.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PlanParseError {
    /// 1-based line number (0 when the whole text is unusable).
    pub line: usize,
    /// What was wrong with the line.
    pub what: &'static str,
}

impl fmt::Display for PlanParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fault plan line {}: {}", self.line, self.what)
    }
}

impl std::error::Error for PlanParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_round_trips() {
        let plan = FaultPlan::new(42)
            .with_permuted_ids()
            .with(Fault::Crash { node: 3, round: 2 })
            .with(Fault::CorruptView { node: 1, salt: 99 })
            .with(Fault::PanicNode { node: 0 })
            .with(Fault::ProbeLie { query: 5, nth: 3 });
        let text = plan.to_text();
        assert_eq!(FaultPlan::parse(&text).unwrap(), plan);
    }

    #[test]
    fn parse_ignores_comments_and_rejects_garbage() {
        let plan =
            FaultPlan::parse("# chaos\nplan seed=7 permute-ids=false\n\ncrash node=0 round=1\n")
                .unwrap();
        assert_eq!(plan.seed(), 7);
        assert_eq!(plan.crash_round(0), Some(1));
        assert!(FaultPlan::parse("crash node=0 round=1").is_err());
        assert!(FaultPlan::parse("plan seed=1\nwobble node=0").is_err());
        assert!(FaultPlan::parse("plan seed=1\ncrash node=x round=1").is_err());
    }

    #[test]
    fn random_plans_are_reproducible_and_in_range() {
        for seed in 0..50 {
            let a = FaultPlan::random(seed, 8, 4);
            let b = FaultPlan::random(seed, 8, 4);
            assert_eq!(a, b);
            for fault in a.faults() {
                match *fault {
                    Fault::Crash { node, round } => {
                        assert!(node < 8 && round <= 4);
                    }
                    Fault::CorruptView { node, .. } | Fault::PanicNode { node } => {
                        assert!(node < 8);
                    }
                    Fault::ProbeLie { query, nth } => {
                        assert!(query < 8 && nth <= 4);
                    }
                }
            }
        }
    }

    #[test]
    fn accessors_pick_out_scheduled_faults() {
        let plan = FaultPlan::new(1)
            .with(Fault::Crash { node: 2, round: 5 })
            .with(Fault::Crash { node: 2, round: 3 })
            .with(Fault::PanicNode { node: 4 })
            .with(Fault::ProbeLie { query: 1, nth: 2 });
        assert_eq!(plan.crash_round(2), Some(3), "earliest crash wins");
        assert_eq!(plan.crash_round(0), None);
        assert!(plan.panics(4) && !plan.panics(2));
        assert_eq!(plan.probe_lie(1), Some(2));
        assert_eq!(plan.corrupt_salt(9), None);
        assert!(!plan.is_empty());
        assert!(FaultPlan::new(0).is_empty());
    }

    #[test]
    fn permutation_is_a_seeded_bijection() {
        let plan = FaultPlan::new(13).with_permuted_ids();
        let perm = plan.permutation(16).unwrap();
        let mut seen = [false; 16];
        for &p in &perm {
            assert!(!seen[p]);
            seen[p] = true;
        }
        assert_eq!(perm, plan.permutation(16).unwrap());
        assert!(FaultPlan::new(13).permutation(16).is_none());
    }

    #[test]
    fn perturbation_masks_are_nonzero_and_stable() {
        for i in 0..64 {
            let m = perturb(77, i);
            assert_ne!(m, 0);
            assert_eq!(m, perturb(77, i));
        }
        assert_ne!(perturb(77, 0), perturb(78, 0));
    }
}
