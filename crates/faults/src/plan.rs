//! Seeded, serializable fault schedules.
//!
//! A [`FaultPlan`] is the unit of chaos: a list of [`Fault`]s plus a
//! seed, applied deterministically by the `simulate_*_faulted`
//! entrypoints. Plans serialize to a line-oriented text format
//! ([`FaultPlan::to_text`] / [`FaultPlan::parse`]) so an interesting
//! plan found by the chaos soak can be committed verbatim into a
//! regression test or an EXPERIMENTS.md recipe.

use std::fmt;

use lcl_rng::SmallRng;

/// One injected fault.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Fault {
    /// Node `node` crash-stops at round `round`: from that round on its
    /// state is frozen — it still emits its last messages (fail-silent
    /// nodes would deadlock executors whose message types have no
    /// default), never receives, and reports done.
    Crash {
        /// Structural node index.
        node: usize,
        /// Zero-based round at which the node stops participating.
        round: u32,
    },
    /// Node `node` sees a corrupted radius-`T` view: the identifiers and
    /// random bits in its ball (or its probe answers / grid window) are
    /// perturbed by a deterministic mask derived from `salt`.
    CorruptView {
        /// Structural node index (or query index in VOLUME/LCA).
        node: usize,
        /// Seed of the perturbation mask; see [`perturb`].
        salt: u64,
    },
    /// Node `node`'s algorithm invocation panics (via [`inject_panic`]).
    /// The executor isolates it and records a [`NodeFault`] instead of
    /// aborting the process.
    ///
    /// [`inject_panic`]: crate::inject_panic
    /// [`NodeFault`]: crate::NodeFault
    PanicNode {
        /// Structural node index (or query index).
        node: usize,
    },
    /// The `nth` probe issued while answering query `query` returns a
    /// corrupted `NodeInfo`-style answer (the VOLUME adversary lying).
    ProbeLie {
        /// Query index whose probe sequence is corrupted.
        query: usize,
        /// Zero-based index of the corrupted probe within that query.
        nth: u64,
    },
    /// Whole-shard loss: shard `shard` of a partitioned run dies at the
    /// start of superstep `superstep`, computes nothing that superstep,
    /// and its outgoing boundary halos are lost. The sharded executor
    /// rebuilds it from its last `ShardSnapshot` plus the halos its
    /// neighbors retained; executors without shards ignore the entry.
    ShardCrash {
        /// Shard index (out-of-range entries are inert).
        shard: usize,
        /// Zero-based superstep at which the whole shard is lost.
        superstep: u32,
    },
    /// Process-level shard kill: in a cross-process run the supervisor
    /// delivers a real `SIGKILL` to shard `shard`'s worker process
    /// mid-superstep `superstep`. Unlike [`Fault::ShardCrash`] (which the
    /// shard handles internally via its snapshot), a kill is invisible to
    /// the victim — the supervisor detects the death, respawns the
    /// worker, and replays it back to the current superstep, so the run's
    /// output is unchanged. In-process executors ignore the entry.
    ShardKill {
        /// Shard index (out-of-range entries are inert).
        shard: usize,
        /// Zero-based superstep during which the worker is killed.
        superstep: u32,
    },
}

/// A deterministic, serializable schedule of faults for one run.
///
/// The plan's `seed` drives every derived choice (the adversarial ID
/// permutation, corruption masks), so a `(seed, plan)` pair fully
/// determines a faulted execution.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct FaultPlan {
    seed: u64,
    permute_ids: bool,
    faults: Vec<Fault>,
}

impl FaultPlan {
    /// An empty plan (no faults, identifiers untouched) with a seed for
    /// derived choices.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            permute_ids: false,
            faults: Vec::new(),
        }
    }

    /// Adds one fault (builder style).
    pub fn with(mut self, fault: Fault) -> Self {
        self.faults.push(fault);
        self
    }

    /// Requests an adversarial permutation of the identifier assignment,
    /// derived from the plan seed (builder style).
    pub fn with_permuted_ids(mut self) -> Self {
        self.permute_ids = true;
        self
    }

    /// A random plan over `nodes` nodes and rounds `0..max_round`:
    /// between zero and three faults of uniformly chosen kinds, plus an
    /// ID permutation half the time. Identical arguments yield the
    /// identical plan.
    pub fn random(seed: u64, nodes: usize, max_round: u32) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut plan = Self::new(seed);
        plan.permute_ids = rng.gen_bool(0.5);
        if nodes == 0 {
            return plan;
        }
        let count = rng.gen_range(0usize..=3);
        for _ in 0..count {
            let node = rng.gen_range(0usize..nodes);
            let fault = match rng.gen_range(0u32..4) {
                0 => Fault::Crash {
                    node,
                    round: rng.gen_range(0u32..=max_round),
                },
                1 => Fault::CorruptView {
                    node,
                    salt: rng.gen(),
                },
                2 => Fault::PanicNode { node },
                _ => Fault::ProbeLie {
                    query: node,
                    nth: rng.gen_range(0u64..=4),
                },
            };
            plan.faults.push(fault);
        }
        plan
    }

    /// A random whole-shard chaos plan: exactly `crashes` distinct
    /// shards out of `num_shards` crash, each at a uniformly chosen
    /// superstep in `0..=max_superstep`. No node-level faults and no ID
    /// permutation, so the only damage a sharded run can take is the
    /// boundary damage the frontier-repair path is designed to mend.
    /// Identical arguments yield the identical plan.
    pub fn random_shard_chaos(
        seed: u64,
        num_shards: usize,
        crashes: usize,
        max_superstep: u32,
    ) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed ^ SHARD_CHAOS_SALT);
        let mut plan = Self::new(seed);
        if num_shards == 0 {
            return plan;
        }
        let mut shards: Vec<usize> = (0..num_shards).collect();
        for i in (1..num_shards).rev() {
            shards.swap(i, rng.gen_range(0usize..=i));
        }
        shards.truncate(crashes.min(num_shards));
        shards.sort_unstable();
        for shard in shards {
            plan.faults.push(Fault::ShardCrash {
                shard,
                superstep: rng.gen_range(0u32..=max_superstep),
            });
        }
        plan
    }

    /// A random process-kill chaos plan: exactly `kills` distinct shards
    /// out of `num_shards` have their worker process `SIGKILL`ed, each
    /// during a uniformly chosen superstep in `0..=max_superstep`. No
    /// node-level faults and no ID permutation — a kill plan must leave
    /// the run's output untouched (the supervisor respawns and replays),
    /// so this plan shape is the soak's proof of output transparency.
    /// Identical arguments yield the identical plan.
    pub fn random_kill_chaos(
        seed: u64,
        num_shards: usize,
        kills: usize,
        max_superstep: u32,
    ) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed ^ KILL_CHAOS_SALT);
        let mut plan = Self::new(seed);
        if num_shards == 0 {
            return plan;
        }
        let mut shards: Vec<usize> = (0..num_shards).collect();
        for i in (1..num_shards).rev() {
            shards.swap(i, rng.gen_range(0usize..=i));
        }
        shards.truncate(kills.min(num_shards));
        shards.sort_unstable();
        for shard in shards {
            plan.faults.push(Fault::ShardKill {
                shard,
                superstep: rng.gen_range(0u32..=max_superstep),
            });
        }
        plan
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Whether this plan permutes the identifier assignment.
    pub fn permutes_ids(&self) -> bool {
        self.permute_ids
    }

    /// The scheduled faults, in application order.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// Whether the plan changes anything at all.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty() && !self.permute_ids
    }

    /// The earliest round at which `node` crash-stops, if scheduled.
    pub fn crash_round(&self, node: usize) -> Option<u32> {
        self.faults
            .iter()
            .filter_map(|f| match f {
                Fault::Crash { node: v, round } if *v == node => Some(*round),
                _ => None,
            })
            .min()
    }

    /// The corruption salt for `node`'s view, if scheduled.
    pub fn corrupt_salt(&self, node: usize) -> Option<u64> {
        self.faults.iter().find_map(|f| match f {
            Fault::CorruptView { node: v, salt } if *v == node => Some(*salt),
            _ => None,
        })
    }

    /// Whether `node`'s algorithm invocation is scheduled to panic.
    pub fn panics(&self, node: usize) -> bool {
        self.faults
            .iter()
            .any(|f| matches!(f, Fault::PanicNode { node: v } if *v == node))
    }

    /// The index of the probe to corrupt while answering `query`, if any.
    pub fn probe_lie(&self, query: usize) -> Option<u64> {
        self.faults.iter().find_map(|f| match f {
            Fault::ProbeLie { query: q, nth } if *q == query => Some(*nth),
            _ => None,
        })
    }

    /// The earliest superstep at which whole shard `shard` is lost, if
    /// scheduled.
    pub fn shard_crash(&self, shard: usize) -> Option<u32> {
        self.faults
            .iter()
            .filter_map(|f| match f {
                Fault::ShardCrash {
                    shard: s,
                    superstep,
                } if *s == shard => Some(*superstep),
                _ => None,
            })
            .min()
    }

    /// Every superstep at which shard `shard` is scheduled to crash, in
    /// ascending order (a shard may be lost more than once per run).
    pub fn shard_crashes(&self, shard: usize) -> Vec<u32> {
        let mut supersteps: Vec<u32> = self
            .faults
            .iter()
            .filter_map(|f| match f {
                Fault::ShardCrash {
                    shard: s,
                    superstep,
                } if *s == shard => Some(*superstep),
                _ => None,
            })
            .collect();
        supersteps.sort_unstable();
        supersteps.dedup();
        supersteps
    }

    /// Every superstep during which shard `shard`'s worker process is
    /// scheduled to be killed, in ascending order (a worker may be
    /// killed more than once per run).
    pub fn shard_kills(&self, shard: usize) -> Vec<u32> {
        let mut supersteps: Vec<u32> = self
            .faults
            .iter()
            .filter_map(|f| match f {
                Fault::ShardKill {
                    shard: s,
                    superstep,
                } if *s == shard => Some(*superstep),
                _ => None,
            })
            .collect();
        supersteps.sort_unstable();
        supersteps.dedup();
        supersteps
    }

    /// The adversarial identifier permutation over `0..n`, if the plan
    /// requests one: a Fisher–Yates shuffle driven by the plan seed.
    /// `permutation[v]` is the *rank* whose identifier node `v` receives.
    pub fn permutation(&self, n: usize) -> Option<Vec<usize>> {
        if !self.permute_ids {
            return None;
        }
        let mut rng = SmallRng::seed_from_u64(self.seed ^ PERMUTE_SALT);
        let mut perm: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            perm.swap(i, rng.gen_range(0usize..=i));
        }
        Some(perm)
    }

    /// Line-oriented text rendering; [`FaultPlan::parse`] round-trips it.
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = format!("plan seed={} permute-ids={}\n", self.seed, self.permute_ids);
        for fault in &self.faults {
            match fault {
                Fault::Crash { node, round } => {
                    let _ = writeln!(out, "crash node={node} round={round}");
                }
                Fault::CorruptView { node, salt } => {
                    let _ = writeln!(out, "corrupt node={node} salt={salt}");
                }
                Fault::PanicNode { node } => {
                    let _ = writeln!(out, "panic node={node}");
                }
                Fault::ProbeLie { query, nth } => {
                    let _ = writeln!(out, "probe-lie query={query} nth={nth}");
                }
                Fault::ShardCrash { shard, superstep } => {
                    let _ = writeln!(out, "crash-shard shard={shard} superstep={superstep}");
                }
                Fault::ShardKill { shard, superstep } => {
                    let _ = writeln!(out, "kill-shard shard={shard} superstep={superstep}");
                }
            }
        }
        out
    }

    /// Parses the [`FaultPlan::to_text`] format strictly. Blank lines
    /// and `#` comments are ignored; everything else must be a known
    /// directive whose tokens are each a recognized `key=value` pair
    /// given exactly once — unknown directives, unknown or duplicated
    /// fields, stray tokens, malformed or overflowing numbers, and
    /// repeated `plan` headers are all typed [`PlanParseError`]s, never
    /// panics or silently dropped input.
    pub fn parse(text: &str) -> Result<Self, PlanParseError> {
        let mut plan: Option<FaultPlan> = None;
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let at = |issue: PlanIssue| PlanParseError {
                line: lineno + 1,
                issue,
            };
            let mut words = line.split_whitespace();
            let head = words.next().unwrap_or_default();
            let keys: &[&str] = match head {
                "plan" => &["seed", "permute-ids"],
                "crash" => &["node", "round"],
                "corrupt" => &["node", "salt"],
                "panic" => &["node"],
                "probe-lie" => &["query", "nth"],
                "crash-shard" | "kill-shard" => &["shard", "superstep"],
                other => return Err(at(PlanIssue::UnknownDirective(other.to_string()))),
            };
            let fields = Fields::collect(words, keys).map_err(&at)?;
            match head {
                "plan" => {
                    if plan.is_some() {
                        return Err(at(PlanIssue::DuplicateHeader));
                    }
                    let mut p = Self::new(fields.u64("seed").map_err(&at)?);
                    p.permute_ids = fields.bool_or("permute-ids", false).map_err(&at)?;
                    plan = Some(p);
                }
                _ => {
                    let plan = plan
                        .as_mut()
                        .ok_or_else(|| at(PlanIssue::FaultBeforeHeader))?;
                    let fault = match head {
                        "crash" => Fault::Crash {
                            node: fields.index("node").map_err(&at)?,
                            round: fields.u32("round").map_err(&at)?,
                        },
                        "corrupt" => Fault::CorruptView {
                            node: fields.index("node").map_err(&at)?,
                            salt: fields.u64("salt").map_err(&at)?,
                        },
                        "panic" => Fault::PanicNode {
                            node: fields.index("node").map_err(&at)?,
                        },
                        "probe-lie" => Fault::ProbeLie {
                            query: fields.index("query").map_err(&at)?,
                            nth: fields.u64("nth").map_err(&at)?,
                        },
                        "crash-shard" => Fault::ShardCrash {
                            shard: fields.index("shard").map_err(&at)?,
                            superstep: fields.u32("superstep").map_err(&at)?,
                        },
                        _ => Fault::ShardKill {
                            shard: fields.index("shard").map_err(&at)?,
                            superstep: fields.u32("superstep").map_err(&at)?,
                        },
                    };
                    plan.faults.push(fault);
                }
            }
        }
        plan.ok_or(PlanParseError {
            line: 0,
            issue: PlanIssue::MissingHeader,
        })
    }
}

/// The validated `key=value` pairs of one plan line.
struct Fields {
    pairs: Vec<(&'static str, String)>,
}

impl Fields {
    /// Collects every remaining token as a recognized `key=value` pair,
    /// rejecting stray tokens, unknown keys, and duplicates.
    fn collect<'a>(
        words: impl Iterator<Item = &'a str>,
        keys: &[&'static str],
    ) -> Result<Self, PlanIssue> {
        let mut pairs: Vec<(&'static str, String)> = Vec::new();
        for word in words {
            let Some((key, value)) = word.split_once('=') else {
                return Err(PlanIssue::StrayToken(word.to_string()));
            };
            let Some(&known) = keys.iter().find(|&&k| k == key) else {
                return Err(PlanIssue::UnknownField(key.to_string()));
            };
            if pairs.iter().any(|(k, _)| *k == known) {
                return Err(PlanIssue::DuplicateField(known));
            }
            pairs.push((known, value.to_string()));
        }
        Ok(Self { pairs })
    }

    fn get(&self, key: &'static str) -> Result<&str, PlanIssue> {
        self.pairs
            .iter()
            .find(|(k, _)| *k == key)
            .map(|(_, v)| v.as_str())
            .ok_or(PlanIssue::MissingField(key))
    }

    /// A required `u64` field; overflow is a malformed number, not a
    /// silent wrap.
    fn u64(&self, key: &'static str) -> Result<u64, PlanIssue> {
        let value = self.get(key)?;
        value.parse().map_err(|_| PlanIssue::MalformedNumber {
            field: key,
            value: value.to_string(),
        })
    }

    /// A required `u32` field; values beyond `u32::MAX` are rejected
    /// instead of truncated.
    fn u32(&self, key: &'static str) -> Result<u32, PlanIssue> {
        let wide = self.u64(key)?;
        u32::try_from(wide).map_err(|_| PlanIssue::ValueOutOfRange {
            field: key,
            value: wide,
        })
    }

    /// A required node/query index; values beyond `usize::MAX` are
    /// rejected instead of truncated.
    fn index(&self, key: &'static str) -> Result<usize, PlanIssue> {
        let wide = self.u64(key)?;
        usize::try_from(wide).map_err(|_| PlanIssue::ValueOutOfRange {
            field: key,
            value: wide,
        })
    }

    /// An optional boolean field; only the literals `true` and `false`
    /// are accepted.
    fn bool_or(&self, key: &'static str, default: bool) -> Result<bool, PlanIssue> {
        match self.get(key) {
            Err(PlanIssue::MissingField(_)) => Ok(default),
            Err(other) => Err(other),
            Ok("true") => Ok(true),
            Ok("false") => Ok(false),
            Ok(value) => Err(PlanIssue::MalformedBoolean {
                field: key,
                value: value.to_string(),
            }),
        }
    }
}

const PERMUTE_SALT: u64 = 0x9d5c_f0aa_11f4_27b3;
const SHARD_CHAOS_SALT: u64 = 0x51a8_dc4a_0b7e_9f25;
const KILL_CHAOS_SALT: u64 = 0x7e31_905b_44ac_8dd6;

/// Deterministic nonzero perturbation mask for corrupted views: word `i`
/// of a view corrupted with `salt` is XORed with `perturb(salt, i)`.
pub fn perturb(salt: u64, i: u64) -> u64 {
    let mut rng = SmallRng::seed_from_u64(salt ^ i.wrapping_mul(0x2545_f491_4f6c_dd1d));
    rng.next_u64() | 1
}

/// A [`FaultPlan::parse`] failure: the 1-based line and what was wrong.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct PlanParseError {
    /// 1-based line number (0 when the whole text is unusable).
    pub line: usize,
    /// What was wrong with the line.
    pub issue: PlanIssue,
}

/// The specific defect [`FaultPlan::parse`] found in a plan line.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum PlanIssue {
    /// The text contained no `plan seed=...` header line.
    MissingHeader,
    /// A second `plan` header appeared after the first.
    DuplicateHeader,
    /// A fault directive appeared before the `plan` header.
    FaultBeforeHeader,
    /// The line's first token is not a known directive.
    UnknownDirective(String),
    /// A token was not a `key=value` pair.
    StrayToken(String),
    /// A `key=value` pair whose key the directive does not accept.
    UnknownField(String),
    /// A field the directive requires was absent.
    MissingField(&'static str),
    /// The same field was given more than once on one line.
    DuplicateField(&'static str),
    /// A numeric field that failed to parse as `u64` (including
    /// overflow).
    MalformedNumber {
        /// The field whose value was rejected.
        field: &'static str,
        /// The rejected text.
        value: String,
    },
    /// A numeric field that parsed but exceeds its narrower target type
    /// (`u32` rounds, `usize` indices).
    ValueOutOfRange {
        /// The field whose value was rejected.
        field: &'static str,
        /// The out-of-range value.
        value: u64,
    },
    /// A boolean field with a value other than `true` or `false`.
    MalformedBoolean {
        /// The field whose value was rejected.
        field: &'static str,
        /// The rejected text.
        value: String,
    },
}

impl fmt::Display for PlanIssue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanIssue::MissingHeader => write!(f, "no plan header"),
            PlanIssue::DuplicateHeader => write!(f, "duplicate plan header"),
            PlanIssue::FaultBeforeHeader => write!(f, "fault before the plan header"),
            PlanIssue::UnknownDirective(head) => write!(f, "unknown directive `{head}`"),
            PlanIssue::StrayToken(token) => write!(f, "stray token `{token}`"),
            PlanIssue::UnknownField(key) => write!(f, "unknown field `{key}`"),
            PlanIssue::MissingField(key) => write!(f, "missing field `{key}`"),
            PlanIssue::DuplicateField(key) => write!(f, "duplicate field `{key}`"),
            PlanIssue::MalformedNumber { field, value } => {
                write!(f, "malformed number `{value}` for field `{field}`")
            }
            PlanIssue::ValueOutOfRange { field, value } => {
                write!(f, "value {value} out of range for field `{field}`")
            }
            PlanIssue::MalformedBoolean { field, value } => {
                write!(f, "malformed boolean `{value}` for field `{field}`")
            }
        }
    }
}

impl fmt::Display for PlanParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fault plan line {}: {}", self.line, self.issue)
    }
}

impl std::error::Error for PlanParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_round_trips() {
        let plan = FaultPlan::new(42)
            .with_permuted_ids()
            .with(Fault::Crash { node: 3, round: 2 })
            .with(Fault::CorruptView { node: 1, salt: 99 })
            .with(Fault::PanicNode { node: 0 })
            .with(Fault::ProbeLie { query: 5, nth: 3 })
            .with(Fault::ShardCrash {
                shard: 2,
                superstep: 1,
            })
            .with(Fault::ShardKill {
                shard: 3,
                superstep: 0,
            });
        let text = plan.to_text();
        assert!(text.contains("crash-shard shard=2 superstep=1"));
        assert!(text.contains("kill-shard shard=3 superstep=0"));
        assert_eq!(FaultPlan::parse(&text).unwrap(), plan);
    }

    #[test]
    fn parse_ignores_comments_and_rejects_garbage() {
        let plan =
            FaultPlan::parse("# chaos\nplan seed=7 permute-ids=false\n\ncrash node=0 round=1\n")
                .unwrap();
        assert_eq!(plan.seed(), 7);
        assert_eq!(plan.crash_round(0), Some(1));
        assert!(FaultPlan::parse("crash node=0 round=1").is_err());
        assert!(FaultPlan::parse("plan seed=1\nwobble node=0").is_err());
        assert!(FaultPlan::parse("plan seed=1\ncrash node=x round=1").is_err());
    }

    #[test]
    fn parse_reports_typed_issues_for_hostile_input() {
        let issue = |text: &str| FaultPlan::parse(text).expect_err("should reject").issue;
        assert_eq!(issue(""), PlanIssue::MissingHeader);
        assert_eq!(
            issue("plan seed=1\nplan seed=2"),
            PlanIssue::DuplicateHeader
        );
        assert_eq!(issue("crash node=0 round=1"), PlanIssue::FaultBeforeHeader);
        assert_eq!(
            issue("plan seed=1\nwobble node=0"),
            PlanIssue::UnknownDirective("wobble".to_string())
        );
        assert_eq!(
            issue("plan seed=1\ncrash node=0 round=1 junk"),
            PlanIssue::StrayToken("junk".to_string())
        );
        assert_eq!(
            issue("plan seed=1\ncrash node=0 salt=1"),
            PlanIssue::UnknownField("salt".to_string())
        );
        assert_eq!(
            issue("plan seed=1\ncrash node=0"),
            PlanIssue::MissingField("round")
        );
        assert_eq!(
            issue("plan seed=1\ncrash node=0 node=1 round=1"),
            PlanIssue::DuplicateField("node")
        );
        assert_eq!(
            issue("plan seed=1\ncrash node=0 round=99999999999999999999"),
            PlanIssue::MalformedNumber {
                field: "round",
                value: "99999999999999999999".to_string(),
            }
        );
        assert_eq!(
            issue("plan seed=1\ncrash node=0 round=4294967296"),
            PlanIssue::ValueOutOfRange {
                field: "round",
                value: 4_294_967_296,
            }
        );
        assert_eq!(
            issue("plan seed=1 permute-ids=maybe"),
            PlanIssue::MalformedBoolean {
                field: "permute-ids",
                value: "maybe".to_string(),
            }
        );
        let err = FaultPlan::parse("plan seed=1\ncrash node=0 round=1 junk").expect_err("line");
        assert_eq!(err.line, 2);
        assert!(format!("{err}").contains("line 2"));
    }

    #[test]
    fn parse_tolerates_stray_whitespace_but_not_stray_tokens() {
        let plan =
            FaultPlan::parse("  plan   seed=9  permute-ids=true \n\t corrupt  node=1 salt=4\n")
                .expect("whitespace-padded plans are fine");
        assert_eq!(plan.seed(), 9);
        assert!(plan.permutes_ids());
        assert_eq!(plan.corrupt_salt(1), Some(4));
        assert!(FaultPlan::parse("plan seed=9 seed=9").is_err());
        assert!(FaultPlan::parse("plan seed=9 extra").is_err());
    }

    /// Satellite 1's fuzz gate: 1k seeded byte-level mutations of valid
    /// plan texts. Parsing must never panic, and anything that still
    /// parses must survive a `to_text`/`parse` round trip.
    #[test]
    fn parse_survives_a_thousand_seeded_mutations() {
        let mut accepted = 0u32;
        for seed in 0..1000u64 {
            let base = FaultPlan::random(seed, 16, 8).to_text();
            let mut rng = SmallRng::seed_from_u64(seed ^ 0x5eed_f00d_cafe_0001);
            let mut bytes = base.into_bytes();
            for _ in 0..1 + (rng.next_u64() % 4) {
                match rng.next_u64() % 4 {
                    0 if !bytes.is_empty() => {
                        let i = (rng.next_u64() as usize) % bytes.len();
                        bytes[i] = (rng.next_u64() % 256) as u8;
                    }
                    1 => {
                        let i = (rng.next_u64() as usize) % (bytes.len() + 1);
                        bytes.insert(i, b"=x9 \n\tplancrash#"[(rng.next_u64() % 16) as usize]);
                    }
                    2 if !bytes.is_empty() => {
                        let i = (rng.next_u64() as usize) % bytes.len();
                        bytes.remove(i);
                    }
                    _ if !bytes.is_empty() => {
                        let i = (rng.next_u64() as usize) % bytes.len();
                        let tail: Vec<u8> = bytes[i..].to_vec();
                        bytes.extend_from_slice(&tail);
                    }
                    _ => {}
                }
            }
            let mutated = String::from_utf8_lossy(&bytes).into_owned();
            if let Ok(plan) = FaultPlan::parse(&mutated) {
                accepted += 1;
                let reparsed = FaultPlan::parse(&plan.to_text()).expect("round trip");
                assert_eq!(reparsed, plan, "mutated-but-valid plan must round-trip");
            }
        }
        assert!(accepted > 0, "some light mutations should still parse");
        assert!(accepted < 1000, "heavy mutations should be rejected");
    }

    #[test]
    fn random_plans_are_reproducible_and_in_range() {
        for seed in 0..50 {
            let a = FaultPlan::random(seed, 8, 4);
            let b = FaultPlan::random(seed, 8, 4);
            assert_eq!(a, b);
            for fault in a.faults() {
                match *fault {
                    Fault::Crash { node, round } => {
                        assert!(node < 8 && round <= 4);
                    }
                    Fault::CorruptView { node, .. } | Fault::PanicNode { node } => {
                        assert!(node < 8);
                    }
                    Fault::ProbeLie { query, nth } => {
                        assert!(query < 8 && nth <= 4);
                    }
                    Fault::ShardCrash { .. } | Fault::ShardKill { .. } => {
                        unreachable!("node-level random plans never schedule shard loss")
                    }
                }
            }
        }
    }

    #[test]
    fn accessors_pick_out_scheduled_faults() {
        let plan = FaultPlan::new(1)
            .with(Fault::Crash { node: 2, round: 5 })
            .with(Fault::Crash { node: 2, round: 3 })
            .with(Fault::PanicNode { node: 4 })
            .with(Fault::ProbeLie { query: 1, nth: 2 });
        assert_eq!(plan.crash_round(2), Some(3), "earliest crash wins");
        assert_eq!(plan.crash_round(0), None);
        assert!(plan.panics(4) && !plan.panics(2));
        assert_eq!(plan.probe_lie(1), Some(2));
        assert_eq!(plan.corrupt_salt(9), None);
        assert!(!plan.is_empty());
        assert!(FaultPlan::new(0).is_empty());
    }

    #[test]
    fn shard_crash_accessors_and_chaos_plans() {
        let plan = FaultPlan::new(3)
            .with(Fault::ShardCrash {
                shard: 1,
                superstep: 4,
            })
            .with(Fault::ShardCrash {
                shard: 1,
                superstep: 2,
            })
            .with(Fault::Crash { node: 9, round: 0 });
        assert_eq!(plan.shard_crash(1), Some(2), "earliest loss wins");
        assert_eq!(plan.shard_crash(0), None);
        assert_eq!(plan.shard_crashes(1), vec![2, 4]);
        assert!(plan.shard_crashes(7).is_empty());

        for seed in 0..50u64 {
            let a = FaultPlan::random_shard_chaos(seed, 8, 2, 3);
            assert_eq!(a, FaultPlan::random_shard_chaos(seed, 8, 2, 3));
            assert_eq!(a.faults().len(), 2);
            assert!(!a.permutes_ids(), "shard chaos keeps ids untouched");
            let mut shards = Vec::new();
            for fault in a.faults() {
                let Fault::ShardCrash { shard, superstep } = *fault else {
                    unreachable!("shard chaos plans are shard-loss only");
                };
                assert!(shard < 8 && superstep <= 3);
                shards.push(shard);
            }
            let mut deduped = shards.clone();
            deduped.dedup();
            assert_eq!(shards, deduped, "crashed shards are distinct and sorted");
        }
        assert!(FaultPlan::random_shard_chaos(1, 0, 3, 2).is_empty());
        assert_eq!(FaultPlan::random_shard_chaos(1, 4, 9, 2).faults().len(), 4);
    }

    #[test]
    fn shard_kill_accessors_and_chaos_plans() {
        let plan = FaultPlan::new(5)
            .with(Fault::ShardKill {
                shard: 2,
                superstep: 3,
            })
            .with(Fault::ShardKill {
                shard: 2,
                superstep: 1,
            })
            .with(Fault::ShardCrash {
                shard: 2,
                superstep: 0,
            });
        assert_eq!(plan.shard_kills(2), vec![1, 3]);
        assert!(plan.shard_kills(0).is_empty());
        assert_eq!(
            plan.shard_crashes(2),
            vec![0],
            "kills and crashes are separate schedules"
        );

        let mut salts_diverge = false;
        for seed in 0..50u64 {
            let a = FaultPlan::random_kill_chaos(seed, 8, 2, 3);
            assert_eq!(a, FaultPlan::random_kill_chaos(seed, 8, 2, 3));
            assert_eq!(a.faults().len(), 2);
            assert!(!a.permutes_ids(), "kill chaos keeps ids untouched");
            let mut shards = Vec::new();
            for fault in a.faults() {
                let Fault::ShardKill { shard, superstep } = *fault else {
                    unreachable!("kill chaos plans are process-kill only");
                };
                assert!(shard < 8 && superstep <= 3);
                shards.push(shard);
            }
            let mut deduped = shards.clone();
            deduped.dedup();
            assert_eq!(shards, deduped, "killed shards are distinct and sorted");
            let mirrored: Vec<Fault> = FaultPlan::random_shard_chaos(seed, 8, 2, 3)
                .faults()
                .iter()
                .map(|f| match *f {
                    Fault::ShardCrash { shard, superstep } => Fault::ShardKill { shard, superstep },
                    other => other,
                })
                .collect();
            salts_diverge |= a.faults() != mirrored.as_slice();
        }
        assert!(
            salts_diverge,
            "kill chaos draws from its own salt, not the crash schedule"
        );
        assert!(FaultPlan::random_kill_chaos(1, 0, 3, 2).is_empty());
        assert_eq!(FaultPlan::random_kill_chaos(1, 4, 9, 2).faults().len(), 4);
    }

    #[test]
    fn permutation_is_a_seeded_bijection() {
        let plan = FaultPlan::new(13).with_permuted_ids();
        let perm = plan.permutation(16).unwrap();
        let mut seen = [false; 16];
        for &p in &perm {
            assert!(!seen[p]);
            seen[p] = true;
        }
        assert_eq!(perm, plan.permutation(16).unwrap());
        assert!(FaultPlan::new(13).permutation(16).is_none());
    }

    #[test]
    fn perturbation_masks_are_nonzero_and_stable() {
        for i in 0..64 {
            let m = perturb(77, i);
            assert_ne!(m, 0);
            assert_eq!(m, perturb(77, i));
        }
        assert_ne!(perturb(77, 0), perturb(78, 0));
    }
}
