//! Resource budgets with cooperative cancellation.
//!
//! A [`Budget`] caps what one computation may consume: derived labels
//! (the quantity that explodes under round elimination — `R(Π)` label
//! sets grow exponentially), rounds/levels, an estimated memory
//! footprint, and wall-clock time. Budgeted entrypoints check the budget
//! at natural checkpoints and return a typed [`BudgetExceeded`] carrying
//! the partial progress instead of running away.
//!
//! A [`CancelToken`] is the cross-thread half: cloned into the
//! `core::par` scoped-thread fan-out, checked between work chunks, and
//! flippable from outside ([`CancelToken::cancel`]) or by an armed
//! deadline. Cancellation is *cooperative* — a checkpoint observes the
//! flag and unwinds with an error; nothing is killed mid-write.
//!
//! Determinism: every budget except the wall deadline is a pure function
//! of the computation, so label/round/memory breaches are bit-identical
//! across thread counts. Deadlines are deliberately wall-clock and
//! excluded from reproducibility claims.

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Resource caps for one budgeted computation. `None` means unlimited.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct Budget {
    /// Cap on rounds (LOCAL) or tower levels (round elimination).
    pub max_rounds: Option<u64>,
    /// Cap on distinct derived labels interned at any single level.
    pub max_labels: Option<u64>,
    /// Cap on the estimated working-set size, in bytes.
    pub max_memory: Option<u64>,
    /// Wall-clock deadline, measured from [`Budget::token`].
    pub deadline: Option<Duration>,
}

impl Budget {
    /// A budget with every cap disabled.
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// Caps rounds / tower levels (builder style).
    pub fn with_max_rounds(mut self, rounds: u64) -> Self {
        self.max_rounds = Some(rounds);
        self
    }

    /// Caps distinct derived labels per level (builder style).
    pub fn with_max_labels(mut self, labels: u64) -> Self {
        self.max_labels = Some(labels);
        self
    }

    /// Caps the estimated memory footprint in bytes (builder style).
    pub fn with_max_memory(mut self, bytes: u64) -> Self {
        self.max_memory = Some(bytes);
        self
    }

    /// Arms a wall-clock deadline (builder style).
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// This budget with every finite cap multiplied by `factor`
    /// (saturating) — the escalation step of a retry supervisor: each
    /// retry runs under a strictly roomier budget, so a computation that
    /// breached only because the caps were tight eventually fits.
    /// Unlimited caps stay unlimited; a `factor` of 0 or 1 returns the
    /// budget unchanged.
    pub fn escalate(&self, factor: u64) -> Self {
        let factor = factor.max(1);
        let scale = |cap: Option<u64>| cap.map(|c| c.saturating_mul(factor));
        Self {
            max_rounds: scale(self.max_rounds),
            max_labels: scale(self.max_labels),
            max_memory: scale(self.max_memory),
            deadline: self
                .deadline
                .map(|d| d.saturating_mul(factor.min(u64::from(u32::MAX)) as u32)),
        }
    }

    /// A fresh [`CancelToken`] for this budget, with the deadline (if
    /// any) armed from now.
    pub fn token(&self) -> CancelToken {
        match self.deadline {
            Some(d) => CancelToken::with_deadline(d),
            None => CancelToken::new(),
        }
    }

    /// Checks the per-level label cap.
    pub fn check_labels(
        &self,
        stage: &str,
        labels: u64,
        partial: u64,
    ) -> Result<(), BudgetExceeded> {
        check(self.max_labels, labels, Breach::Labels, stage, partial)
    }

    /// Checks the round / level cap.
    pub fn check_rounds(
        &self,
        stage: &str,
        rounds: u64,
        partial: u64,
    ) -> Result<(), BudgetExceeded> {
        check(self.max_rounds, rounds, Breach::Rounds, stage, partial)
    }

    /// Checks the memory-estimate cap.
    pub fn check_memory(
        &self,
        stage: &str,
        bytes: u64,
        partial: u64,
    ) -> Result<(), BudgetExceeded> {
        check(self.max_memory, bytes, Breach::Memory, stage, partial)
    }
}

fn check(
    cap: Option<u64>,
    observed: u64,
    kind: fn(u64, u64) -> Breach,
    stage: &str,
    partial: u64,
) -> Result<(), BudgetExceeded> {
    match cap {
        Some(limit) if observed > limit => Err(BudgetExceeded {
            stage: stage.to_string(),
            breach: kind(limit, observed),
            partial,
        }),
        _ => Ok(()),
    }
}

/// Which cap was breached, with the limit and the observed value.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Breach {
    /// Round / level cap.
    Rounds(u64, u64),
    /// Derived-label cap.
    Labels(u64, u64),
    /// Memory-estimate cap (bytes).
    Memory(u64, u64),
    /// The wall deadline passed, or the token was cancelled externally.
    Cancelled,
}

impl fmt::Display for Breach {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Breach::Rounds(limit, got) => write!(f, "rounds {got} > cap {limit}"),
            Breach::Labels(limit, got) => write!(f, "labels {got} > cap {limit}"),
            Breach::Memory(limit, got) => write!(f, "memory estimate {got} B > cap {limit} B"),
            Breach::Cancelled => write!(f, "cancelled (deadline or external)"),
        }
    }
}

/// A budget breach: where it happened, which cap, and how much progress
/// had completed (the partial result stays with the caller — a budgeted
/// `ReTower` push leaves every already-built level in the tower).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct BudgetExceeded {
    /// The stage that hit the cap (e.g. `"re-tower/level-3"`).
    pub stage: String,
    /// Which cap, with limit and observed value.
    pub breach: Breach,
    /// Completed work units at the breach (levels built, rounds run, …).
    pub partial: u64,
}

impl fmt::Display for BudgetExceeded {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "budget exceeded at {}: {} ({} units completed)",
            self.stage, self.breach, self.partial
        )
    }
}

impl std::error::Error for BudgetExceeded {}

/// A rejected entrypoint configuration (zero trials, zero threads, …):
/// the typed replacement for `assert!`-style precondition panics.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct InvalidConfig {
    /// The offending parameter.
    pub param: &'static str,
    /// What the parameter must satisfy.
    pub requirement: &'static str,
    /// The rejected value.
    pub got: u64,
}

impl fmt::Display for InvalidConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid configuration: {} must be {}, got {}",
            self.param, self.requirement, self.got
        )
    }
}

impl std::error::Error for InvalidConfig {}

#[derive(Debug)]
struct TokenInner {
    cancelled: AtomicBool,
    deadline: Option<Instant>,
}

/// A cooperative cancellation flag shared across worker threads.
///
/// Cloning is cheap (an `Arc`); workers call [`CancelToken::is_cancelled`]
/// between chunks, budgeted loops call [`CancelToken::checkpoint`] at
/// natural boundaries. The token trips either when [`CancelToken::cancel`]
/// is called from any thread or when its armed deadline passes.
#[derive(Clone, Debug)]
pub struct CancelToken {
    inner: Arc<TokenInner>,
}

impl CancelToken {
    /// A token that only trips on an explicit [`CancelToken::cancel`].
    pub fn new() -> Self {
        Self {
            inner: Arc::new(TokenInner {
                cancelled: AtomicBool::new(false),
                deadline: None,
            }),
        }
    }

    /// A token that additionally trips once `deadline` has elapsed.
    pub fn with_deadline(deadline: Duration) -> Self {
        Self {
            inner: Arc::new(TokenInner {
                cancelled: AtomicBool::new(false),
                deadline: Some(Instant::now() + deadline),
            }),
        }
    }

    /// Trips the token; every subsequent checkpoint fails.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Relaxed);
    }

    /// Whether the token has tripped (explicitly or by deadline).
    pub fn is_cancelled(&self) -> bool {
        if self.inner.cancelled.load(Ordering::Relaxed) {
            return true;
        }
        match self.inner.deadline {
            Some(at) if Instant::now() >= at => {
                // Latch, so later checks are branch-cheap and consistent.
                self.inner.cancelled.store(true, Ordering::Relaxed);
                true
            }
            _ => false,
        }
    }

    /// Fails with a typed [`BudgetExceeded`] if the token has tripped.
    pub fn checkpoint(&self, stage: &str, partial: u64) -> Result<(), BudgetExceeded> {
        if self.is_cancelled() {
            Err(BudgetExceeded {
                stage: stage.to_string(),
                breach: Breach::Cancelled,
                partial,
            })
        } else {
            Ok(())
        }
    }
}

impl Default for CancelToken {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_never_breaches() {
        let b = Budget::unlimited();
        assert!(b.check_labels("s", u64::MAX, 0).is_ok());
        assert!(b.check_rounds("s", u64::MAX, 0).is_ok());
        assert!(b.check_memory("s", u64::MAX, 0).is_ok());
    }

    #[test]
    fn escalation_scales_finite_caps_and_keeps_unlimited() {
        let b = Budget::unlimited()
            .with_max_labels(10)
            .with_max_rounds(4)
            .with_deadline(Duration::from_millis(100));
        let up = b.escalate(3);
        assert_eq!(up.max_labels, Some(30));
        assert_eq!(up.max_rounds, Some(12));
        assert_eq!(up.max_memory, None, "unlimited stays unlimited");
        assert_eq!(up.deadline, Some(Duration::from_millis(300)));
        assert_eq!(b.escalate(0), b, "factor 0 is a no-op");
        assert_eq!(b.escalate(1), b, "factor 1 is a no-op");
        let huge = Budget::unlimited().with_max_labels(u64::MAX / 2);
        assert_eq!(
            huge.escalate(4).max_labels,
            Some(u64::MAX),
            "saturates instead of overflowing"
        );
    }

    #[test]
    fn caps_breach_with_stage_and_partial() {
        let b = Budget::unlimited().with_max_labels(10);
        assert!(b.check_labels("re-tower/level-2", 10, 1).is_ok());
        let err = b.check_labels("re-tower/level-2", 11, 1).unwrap_err();
        assert_eq!(err.stage, "re-tower/level-2");
        assert_eq!(err.breach, Breach::Labels(10, 11));
        assert_eq!(err.partial, 1);
        assert!(err.to_string().contains("labels 11 > cap 10"));
    }

    #[test]
    fn explicit_cancel_trips_checkpoints_everywhere() {
        let token = CancelToken::new();
        assert!(token.checkpoint("stage", 0).is_ok());
        let clone = token.clone();
        std::thread::scope(|s| {
            s.spawn(move || clone.cancel());
        });
        assert!(token.is_cancelled());
        let err = token.checkpoint("stage", 7).unwrap_err();
        assert_eq!(err.breach, Breach::Cancelled);
        assert_eq!(err.partial, 7);
    }

    #[test]
    fn deadline_trips_and_latches() {
        let token = CancelToken::with_deadline(Duration::from_millis(0));
        std::thread::sleep(Duration::from_millis(2));
        assert!(token.is_cancelled());
        assert!(token.is_cancelled(), "stays tripped");
    }

    #[test]
    fn budget_token_arms_the_deadline() {
        let with = Budget::unlimited().with_deadline(Duration::from_secs(3600));
        assert!(!with.token().is_cancelled());
        let without = Budget::unlimited();
        assert!(!without.token().is_cancelled());
    }

    #[test]
    fn invalid_config_reports_all_three_parts() {
        let err = InvalidConfig {
            param: "trials",
            requirement: "> 0",
            got: 0,
        };
        let text = err.to_string();
        assert!(text.contains("trials") && text.contains("> 0") && text.contains('0'));
    }
}
