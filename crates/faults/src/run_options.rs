//! One knob bundle for every simulator entrypoint.
//!
//! The instrumented simulators grew a Cartesian explosion of
//! entrypoints — `simulate`, `simulate_logged`, `simulate_faulted`, each
//! per model — where every axis (event capture, fault injection,
//! resource budgets) doubled the surface. [`RunOptions`] collapses the
//! axes into one borrowing builder consumed by a single `simulate_with`
//! per model:
//!
//! ```
//! use lcl_faults::{Budget, FaultPlan, RunOptions};
//! use lcl_obs::EventLog;
//!
//! let log = EventLog::new(1024);
//! let plan = FaultPlan::parse("plan seed=7\ncrash node=0 round=1\n")?;
//! let opts = RunOptions::new()
//!     .events(&log)
//!     .faults(&plan)
//!     .budget(Budget::unlimited().with_max_rounds(8));
//! assert!(opts.event_log().is_some());
//! assert!(opts.fault_plan().is_some());
//! assert_eq!(opts.run_budget().max_rounds, Some(8));
//! # Ok::<(), lcl_faults::PlanParseError>(())
//! ```
//!
//! Every axis defaults to *off*: `RunOptions::new()` (or
//! [`RunOptions::default()`]) reproduces the plain, unlogged, fault-free
//! run bit-for-bit. The struct is `Copy` and borrows its log and plan,
//! so handing the same options to many runs is free and keeps ownership
//! where it was under the old API.

use lcl_obs::EventLog;

use crate::budget::Budget;
use crate::plan::FaultPlan;

/// Options for one simulator run: optional event capture, optional
/// fault injection, optional resource budget.
///
/// Consumed by the `simulate_with` entrypoint of each model crate
/// (`local`, `volume`, `grid`) and by the classification service when
/// submitting tower jobs. The default is a plain run: no events, no
/// faults, unlimited budget.
#[derive(Clone, Copy, Default)]
pub struct RunOptions<'a> {
    events: Option<&'a EventLog>,
    faults: Option<&'a FaultPlan>,
    budget: Option<Budget>,
    shards: Option<usize>,
    io_timeout_ms: Option<u64>,
}

impl<'a> RunOptions<'a> {
    /// A plain run: no event capture, no faults, unlimited budget.
    pub fn new() -> Self {
        Self::default()
    }

    /// Streams [`lcl_obs::Event`]s into `log` during the run.
    pub fn events(mut self, log: &'a EventLog) -> Self {
        self.events = Some(log);
        self
    }

    /// Injects the faults scheduled by `plan`; the run returns a
    /// `Degraded` outcome whose fault list records every hit.
    pub fn faults(mut self, plan: &'a FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Caps the run's resources. Models interpret the budget's
    /// dimensions where they apply (e.g. `max_rounds` bounds a sync
    /// execution; tower jobs honor label/memory caps).
    pub fn budget(mut self, budget: Budget) -> Self {
        self.budget = Some(budget);
        self
    }

    /// Partitions the run into `num_shards` contiguous-range shards,
    /// each its own fault domain, executed as boundary-exchange
    /// supersteps. Routed by the sharded entrypoints (`lcl_shard`);
    /// single-image executors ignore the axis and stay bit-identical
    /// to an unset value. A count of zero is clamped to one shard.
    pub fn sharded(mut self, num_shards: usize) -> Self {
        self.shards = Some(num_shards.max(1));
        self
    }

    /// The requested shard count, if the run asked to be partitioned.
    pub fn shard_count(&self) -> Option<usize> {
        self.shards
    }

    /// Bounds every socket read and write the run performs to
    /// `timeout_ms` milliseconds. Honored wherever the run crosses a
    /// process boundary — the cross-process shard wire and the
    /// classification-service client — so a hung peer surfaces as a
    /// typed timeout instead of a stuck run. A timeout of zero is
    /// clamped to one millisecond (zero would mean "no timeout" to the
    /// OS). Purely in-process executors ignore the axis.
    pub fn io_timeout(mut self, timeout_ms: u64) -> Self {
        self.io_timeout_ms = Some(timeout_ms.max(1));
        self
    }

    /// The socket deadline in milliseconds, if one was set.
    pub fn io_timeout_ms(&self) -> Option<u64> {
        self.io_timeout_ms
    }

    /// The event log to stream into, if any.
    pub fn event_log(&self) -> Option<&'a EventLog> {
        self.events
    }

    /// The fault plan to inject, if any.
    pub fn fault_plan(&self) -> Option<&'a FaultPlan> {
        self.faults
    }

    /// The effective budget: the one set, or [`Budget::unlimited`].
    pub fn run_budget(&self) -> Budget {
        self.budget.unwrap_or_else(Budget::unlimited)
    }

    /// Whether a budget was explicitly set.
    pub fn has_budget(&self) -> bool {
        self.budget.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_a_plain_run() {
        let opts = RunOptions::new();
        assert!(opts.event_log().is_none());
        assert!(opts.fault_plan().is_none());
        assert!(opts.shard_count().is_none());
        assert!(!opts.has_budget());
        assert_eq!(opts.run_budget().max_rounds, None);
        assert_eq!(opts.run_budget().max_labels, None);
    }

    #[test]
    fn axes_compose_independently() {
        let log = EventLog::new(16);
        let opts = RunOptions::new().events(&log);
        assert!(opts.event_log().is_some());
        assert!(opts.fault_plan().is_none());

        let plan = FaultPlan::parse("plan seed=1\n").expect("why: literal plan is well-formed");
        let opts = opts
            .faults(&plan)
            .budget(Budget::unlimited().with_max_rounds(3));
        assert!(opts.event_log().is_some());
        assert!(opts.fault_plan().is_some());
        assert_eq!(opts.run_budget().max_rounds, Some(3));
    }

    #[test]
    fn sharding_is_an_independent_axis() {
        let opts = RunOptions::new().sharded(4);
        assert_eq!(opts.shard_count(), Some(4));
        assert!(opts.fault_plan().is_none() && !opts.has_budget());
        assert_eq!(
            RunOptions::new().sharded(0).shard_count(),
            Some(1),
            "zero shards clamps to one"
        );
    }

    #[test]
    fn io_timeout_is_an_independent_axis() {
        let opts = RunOptions::new();
        assert_eq!(opts.io_timeout_ms(), None, "default is no deadline");
        let opts = opts.io_timeout(250);
        assert_eq!(opts.io_timeout_ms(), Some(250));
        assert!(opts.fault_plan().is_none() && !opts.has_budget());
        assert_eq!(
            RunOptions::new().io_timeout(0).io_timeout_ms(),
            Some(1),
            "zero would disable the OS deadline; clamp to 1 ms"
        );
    }

    #[test]
    fn options_are_copy() {
        let log = EventLog::new(16);
        let opts = RunOptions::new().events(&log);
        let copied = opts;
        assert!(opts.event_log().is_some());
        assert!(copied.event_log().is_some());
    }
}
