//! Deterministic fault injection, resource budgets, and panic isolation.
//!
//! The paper's models are *adversarial*: LOCAL is defined over worst-case
//! identifier assignments (Definition 2.1), VOLUME over adaptively chosen
//! probe answers, and every classification theorem only holds if the
//! checker survives the instances an adversary would pick. This crate
//! makes that boundary executable on purpose:
//!
//! * [`FaultPlan`] / [`Fault`] — a seeded, serializable schedule of
//!   faults (crash-stop at a round, half-edge view corruption,
//!   adversarial ID permutations, probe-answer lies, injected node
//!   panics) consumed by the opt-in `simulate_*_faulted` entrypoints of
//!   the `local`, `volume`, and `grid` crates.
//! * [`Budget`] / [`CancelToken`] / [`BudgetExceeded`] — resource caps
//!   (derived-label count, round/level count, wall deadline, memory
//!   estimate) with cooperative cancellation checked inside the
//!   `core::par` fan-out and `ReTower` level construction. Breaching a
//!   budget is a typed error carrying the partial progress, never a
//!   runaway computation.
//! * [`isolate`] / [`NodeFault`] / [`Degraded`] — `catch_unwind`
//!   wrappers that turn a panicking node algorithm into a typed,
//!   per-node fault record. A faulted simulator run always ends in one
//!   of three ways: a valid output, a typed error, or a typed
//!   degradation ([`Degraded`] with a non-empty fault list) — never a
//!   process abort.
//! * [`RunOptions`] — the one knob bundle consumed by each model's
//!   `simulate_with` entrypoint: optional event capture, optional fault
//!   plan, optional budget. Replaces the deprecated
//!   `simulate`/`simulate_logged`/`simulate_faulted` triplets.
//!
//! Everything is deterministic given `(seed, plan)`: the same plan on
//! the same instance yields bit-identical outcomes at any worker-thread
//! count (wall-clock deadlines are the one deliberately nondeterministic
//! budget and are excluded from reproducibility claims).

pub mod budget;
pub mod panic_guard;
pub mod plan;
pub mod run_options;

pub use budget::{Breach, Budget, BudgetExceeded, CancelToken, InvalidConfig};
pub use panic_guard::{inject_panic, isolate, Degraded, NodeFault};
pub use plan::{Fault, FaultPlan, PlanIssue, PlanParseError};
pub use run_options::RunOptions;
