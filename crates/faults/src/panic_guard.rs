//! Panic-isolated execution of node algorithms.
//!
//! A production simulator cannot let one faulty `LocalAlgorithm`
//! implementation take down the process. [`isolate`] runs a node's
//! algorithm invocation under `catch_unwind` and converts a panic into
//! its payload string; the faulted executors wrap that into a
//! [`NodeFault`] record and substitute placeholder output, so the run
//! completes as a typed degradation ([`Degraded`]) instead of aborting.
//!
//! While an isolated closure runs, the default panic hook's backtrace
//! spam is suppressed through a thread-local flag — a chaos soak
//! injecting hundreds of panics stays readable. Panics outside
//! [`isolate`] still reach the previously installed hook unchanged.

use std::cell::Cell;
use std::fmt;
use std::panic::{self, AssertUnwindSafe};
use std::sync::Once;

thread_local! {
    static ISOLATING: Cell<bool> = const { Cell::new(false) };
}

static HOOK: Once = Once::new();

fn install_quiet_hook() {
    HOOK.call_once(|| {
        let previous = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if !ISOLATING.with(Cell::get) {
                previous(info);
            }
        }));
    });
}

/// The payload of an injected [`inject_panic`] fault, distinguishable
/// from a genuine algorithm panic by downcast.
struct InjectedPanic {
    node: u64,
}

/// Panics with a typed marker payload; used by the faulted executors to
/// realize a [`Fault::PanicNode`](crate::Fault::PanicNode) inside the
/// isolated algorithm invocation.
pub fn inject_panic(node: u64) -> ! {
    panic::panic_any(InjectedPanic { node })
}

/// Runs `f` with panics caught and converted to their payload string.
///
/// The closure is wrapped in `AssertUnwindSafe`: faulted executors only
/// pass closures whose captured state is either owned or discarded on
/// the error path, so a broken invariant cannot leak into later use.
pub fn isolate<T>(f: impl FnOnce() -> T) -> Result<T, String> {
    install_quiet_hook();
    let was = ISOLATING.with(|flag| flag.replace(true));
    let result = panic::catch_unwind(AssertUnwindSafe(f));
    ISOLATING.with(|flag| flag.set(was));
    result.map_err(|payload| {
        if let Some(injected) = payload.downcast_ref::<InjectedPanic>() {
            format!("injected panic at node {}", injected.node)
        } else if let Some(s) = payload.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "opaque panic payload".to_string()
        }
    })
}

/// One node's failure during a faulted run: which node, at which round,
/// and the panic payload (or a fault-kind tag for non-panic faults such
/// as crash-stops).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct NodeFault {
    /// Structural node index (or query index in VOLUME/LCA).
    pub node: u64,
    /// Round at which the fault hit (0 for view-based executions).
    pub round: u64,
    /// Panic payload or fault-kind tag (`"crash-stop"`, …).
    pub payload: String,
}

impl fmt::Display for NodeFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "node {} faulted at round {}: {}",
            self.node, self.round, self.payload
        )
    }
}

impl std::error::Error for NodeFault {}

/// A faulted run's result: the (possibly partial) outcome plus every
/// [`NodeFault`] recorded along the way. An empty fault list means the
/// plan didn't bite and the outcome is a normal, fully valid result.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Degraded<T> {
    /// The run's outcome; faulted nodes carry placeholder labels.
    pub outcome: T,
    /// Per-node fault records, in node order.
    pub faults: Vec<NodeFault>,
}

impl<T> Degraded<T> {
    /// Wraps an outcome that suffered no faults.
    pub fn clean(outcome: T) -> Self {
        Self {
            outcome,
            faults: Vec::new(),
        }
    }

    /// Whether any fault was recorded.
    pub fn is_degraded(&self) -> bool {
        !self.faults.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn isolate_passes_values_through() {
        assert_eq!(isolate(|| 41 + 1), Ok(42));
    }

    #[test]
    fn isolate_catches_str_and_string_payloads() {
        assert_eq!(isolate(|| -> u32 { panic!("boom") }), Err("boom".into()));
        let dynamic = isolate(|| -> u32 { panic!("node {} broke", 3) });
        assert_eq!(dynamic, Err("node 3 broke".into()));
    }

    #[test]
    fn injected_panics_carry_their_node() {
        let err = isolate(|| -> () { inject_panic(7) }).unwrap_err();
        assert_eq!(err, "injected panic at node 7");
    }

    #[test]
    fn opaque_payloads_get_a_tag() {
        let err = isolate(|| -> () { panic::panic_any(best_effort()) }).unwrap_err();
        assert_eq!(err, "opaque panic payload");
    }

    fn best_effort() -> Box<u128> {
        Box::new(5)
    }

    #[test]
    fn isolation_nests_and_restores_the_flag() {
        let outer = isolate(|| {
            let inner = isolate(|| -> u32 { panic!("inner") });
            assert_eq!(inner, Err("inner".into()));
            ISOLATING.with(Cell::get)
        });
        assert_eq!(outer, Ok(true));
        assert!(!ISOLATING.with(Cell::get));
    }

    #[test]
    fn degraded_distinguishes_clean_from_faulted() {
        let clean: Degraded<u32> = Degraded::clean(1);
        assert!(!clean.is_degraded());
        let hurt = Degraded {
            outcome: 1u32,
            faults: vec![NodeFault {
                node: 0,
                round: 2,
                payload: "crash-stop".into(),
            }],
        };
        assert!(hurt.is_degraded());
        assert!(hurt.faults[0].to_string().contains("crash-stop"));
    }
}
