//! The four panels of the paper's Figure 1, regenerated as measured
//! series (E1–E4 of the experiment index).

use lcl_core::{tree_speedup, SpeedupOptions};
use lcl_graph::math::{log2_floor, log_log_star, log_star};
use lcl_graph::{gen, NodeId};
use lcl_grid::OrientedGrid;
use lcl_local::{minimal_solving_radius, run_sync, IdAssignment};
use lcl_problems::cv::{orientation_inputs, ColeVishkin, Orientation};
use lcl_problems::{
    anti_matching, rake_compress_rounds, shortcut_path, two_coloring, DeltaPlusOne,
    ShortcutColoring, TwoColorByAnchor,
};
use lcl_volume::run_volume;

use crate::cells;
use crate::grid_algos::run_row_coloring;
use crate::table::Table;
use crate::volume_algos::{ConstProbe, CvProbeColoring, TwoColorProbes};

/// E1 — Figure 1, top-left: the tree landscape. For each `n`, the
/// measured rounds of a representative of every inhabited class; the gap
/// (no problems between `ω(1)` and `o(log* n)`) shows as the jump between
/// the flat O(1) column and the `log*`-shaped columns.
pub fn trees() -> Table {
    let mut table = Table::new(
        "E1 / Figure 1 top-left — trees: rounds by class",
        &[
            "n",
            "log*n",
            "O(1) synth (anti-matching)",
            "Θ(log* n) CV-3col",
            "Θ(log* n) Δ+1-col",
            "Θ(log n) rake-compress",
            "Θ(n) 2-col radius",
        ],
    );

    // Synthesize the O(1) algorithm once (Theorem 3.11 pipeline).
    let anti = anti_matching(3);
    let outcome = tree_speedup(&anti, SpeedupOptions::default());
    let alg = outcome
        .try_algorithm()
        .expect("why: anti-matching is o(log* n), so Theorem 3.11 synthesis must succeed");

    // Simulated graphs are capped at 2^13 nodes; the announced `n` (which
    // drives every algorithm's schedule, per Definition 2.1) sweeps much
    // further so the log*-shaped columns actually bend.
    for exp in [4u32, 6, 8, 10, 13, 20, 40, 60] {
        let n = 1usize << exp;
        let actual = n.min(1 << 13);
        // O(1): the synthesized algorithm's rounds on a random tree.
        let tree = gen::random_tree(actual.min(4096), 3, u64::from(exp));
        let input = lcl::uniform_input(&tree);
        let ids: Vec<u64> = (0..tree.node_count() as u64).map(|i| i * 3 + 1).collect();
        let synth_rounds = run_sync(&alg, &tree, &input, &ids, Some(n), 10).rounds;

        // Θ(log* n): Cole–Vishkin on an oriented path.
        let path = gen::path(actual.min(1 << 12));
        let cv_input = orientation_inputs(&path, Orientation::Path);
        let cv_ids = IdAssignment::random_polynomial(path.node_count(), 3, u64::from(exp));
        let cv_rounds = run_sync(
            &ColeVishkin,
            &path,
            &cv_input,
            &cv_ids.iter().collect::<Vec<_>>(),
            Some(n),
            100,
        )
        .rounds;

        // Θ(log* n) with a Δ-dependent constant: Δ+1 coloring (Δ = 2 to
        // keep the additive constant readable).
        let dp1 = DeltaPlusOne { delta: 2 };
        let dp1_rounds = dp1.total_rounds(n);

        // Θ(log n): rake-and-compress peeling rounds (actual graph size —
        // its rounds are driven by the real structure, not the announced
        // n).
        let rc_tree = gen::random_tree(actual, 3, u64::from(exp) + 7);
        let rc_rounds = rake_compress_rounds(&rc_tree, u64::from(exp));

        // Θ(n): minimal gathering radius for 2-coloring a path (kept to
        // small n — the measurement is quadratic).
        let radius = if n <= 256 {
            let p = gen::path(n);
            let problem = two_coloring(2);
            let pinput = lcl::uniform_input(&p);
            let pids = IdAssignment::sequential(n);
            minimal_solving_radius(&problem, &p, &pinput, &pids, n as u32, |r| {
                TwoColorByAnchor { radius: r }
            })
            .map(|r| r.to_string())
            .unwrap_or_else(|| "-".into())
        } else {
            "(skipped)".into()
        };

        table.row(cells!(
            n,
            log_star(n as u64),
            synth_rounds,
            cv_rounds,
            dp1_rounds,
            rc_rounds,
            radius
        ));
    }
    table
}

/// E2 — Figure 1, top-right: oriented grids. O(1) (orientation-canonical
/// pattern), `Θ(log* n)` (row coloring), `Θ(√n)` (2-coloring by
/// gathering) on 2-dimensional tori.
pub fn grids() -> Table {
    let mut table = Table::new(
        "E2 / Figure 1 top-right — oriented grids (d = 2): rounds by class",
        &[
            "side",
            "n",
            "log*n",
            "O(1) pattern",
            "Θ(log* n) row-3col",
            "Θ(log* n) 5-col",
            "Θ(√n) 2-col radius",
        ],
    );
    for side in [4usize, 8, 16, 24] {
        let grid = OrientedGrid::new(&[side, side]);
        let n = grid.node_count();

        // O(1): the identifier-free canonical pattern needs radius 1
        // regardless of n (Theorem 5.1's conclusion); measured as the
        // fooled radius.
        let o1 = 1u32;

        let (row_rounds, row_valid) = run_row_coloring(&grid, side as u64);
        assert!(row_valid, "row coloring must verify");
        let (full_rounds, full_valid) =
            crate::grid_algos::run_torus_coloring(&grid, side as u64 + 1);
        assert!(full_valid, "torus coloring must verify");

        // Θ(√n): gather-based 2-coloring of the (even-sided, bipartite)
        // torus; the minimal radius is about the side length.
        let radius = if side <= 16 {
            let problem = two_coloring(4);
            let input = lcl::uniform_input(grid.graph());
            let ids = IdAssignment::sequential(n);
            minimal_solving_radius(&problem, grid.graph(), &input, &ids, 2 * side as u32, |r| {
                TwoColorByAnchor { radius: r }
            })
            .map(|r| r.to_string())
            .unwrap_or_else(|| "-".into())
        } else {
            "(skipped)".into()
        };

        table.row(cells!(
            side,
            n,
            log_star(n as u64),
            o1,
            row_rounds,
            full_rounds,
            radius
        ));
    }
    table
}

/// E3 — Figure 1, bottom-left: the dense region on general graphs. On
/// shortcut graphs, the minimal radius for 3-coloring the embedded path
/// tracks `~4 log₂(window)` — a `Θ(log log* n)`-type compression of the
/// `Θ(log* n)` window. On trees the paper proves this cannot happen.
pub fn general() -> Table {
    let mut table = Table::new(
        "E3 / Figure 1 bottom-left — shortcut graphs: the dense region",
        &[
            "path len",
            "n",
            "log*n",
            "loglog*n",
            "CV window w",
            "measured radius",
            "4·log2(w)+6",
        ],
    );
    let problem = lcl_problems::shortcut::shortcut_coloring_problem();
    for levels in [4u32, 6, 8, 10] {
        let (g, input) = shortcut_path(levels);
        let n = g.node_count();
        let ids = IdAssignment::random_polynomial(n, 3, u64::from(levels));
        let w = lcl_problems::shortcut::window_size(n);
        let t = minimal_solving_radius(&problem, &g, &input, &ids, 64, |r| ShortcutColoring {
            radius: Some(r),
        });
        table.row(cells!(
            1u32 << levels,
            n,
            log_star(n as u64),
            log_log_star(n as u64),
            w,
            t.map(|r| r.to_string()).unwrap_or_else(|| "-".into()),
            4 * log2_floor(u64::from(w) + 8) + 6
        ));
    }
    table
}

/// E4 — Figure 1, bottom-right: the VOLUME model. Max probes per query
/// for the three inhabited regimes `O(1)`, `Θ(log* n)`, `Θ(n)`.
pub fn volume() -> Table {
    let mut table = Table::new(
        "E4 / Figure 1 bottom-right — VOLUME model: max probes per query",
        &[
            "n",
            "log*n",
            "O(1) const-probe",
            "Θ(log* n) CV-3col",
            "Θ(n) 2-col",
        ],
    );
    for exp in [4u32, 6, 8, 10] {
        let n = 1usize << exp;
        let cycle = gen::cycle(n);
        let cinput = lcl::uniform_input(&cycle);
        let cids = IdAssignment::random_polynomial(n, 3, u64::from(exp));

        let const_probes = run_volume(&ConstProbe, &cycle, &cinput, &cids, None)
            .expect("in budget")
            .max_probes;
        let cv_probes = run_volume(&CvProbeColoring, &cycle, &cinput, &cids, None)
            .expect("in budget")
            .max_probes;

        let path = gen::path(n);
        let pinput = lcl::uniform_input(&path);
        let pids = IdAssignment::random_polynomial(n, 3, u64::from(exp) + 1);
        let walk_probes = run_volume(&TwoColorProbes, &path, &pinput, &pids, None)
            .expect("in budget")
            .max_probes;

        table.row(cells!(
            n,
            log_star(n as u64),
            const_probes,
            cv_probes,
            walk_probes
        ));
    }
    table
}

/// Sanity hook used by integration tests: the top-left panel's O(1)
/// column must be flat and its global column linear-ish.
pub fn tree_panel_shape_holds() -> bool {
    let anti = anti_matching(3);
    let outcome = tree_speedup(&anti, SpeedupOptions::default());
    if !outcome.is_constant() {
        return false;
    }
    let alg = outcome.algorithm();
    let mut rounds = Vec::new();
    for n in [32usize, 1024] {
        let tree = gen::random_tree(n, 3, 5);
        let input = lcl::uniform_input(&tree);
        let ids: Vec<u64> = (0..n as u64).collect();
        rounds.push(run_sync(&alg, &tree, &input, &ids, None, 10).rounds);
    }
    rounds[0] == rounds[1] && rounds[0] <= 2 && {
        // Global: radius grows with n.
        let p8 = gen::path(8);
        let p64 = gen::path(64);
        let problem = two_coloring(2);
        let r8 = minimal_solving_radius(
            &problem,
            &p8,
            &lcl::uniform_input(&p8),
            &IdAssignment::sequential(8),
            8,
            |r| TwoColorByAnchor { radius: r },
        );
        let r64 = minimal_solving_radius(
            &problem,
            &p64,
            &lcl::uniform_input(&p64),
            &IdAssignment::sequential(64),
            64,
            |r| TwoColorByAnchor { radius: r },
        );
        matches!((r8, r64), (Some(a), Some(b)) if b >= 4 * a)
    }
}

/// A tiny smoke check used by the `figures` bench itself.
pub fn quick_check() {
    assert!(gen::path(4).ball(NodeId(0), 1).node_count() == 2);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tree_panel_shape() {
        assert!(tree_panel_shape_holds());
    }

    #[test]
    fn general_panel_produces_rows() {
        // Smallest instance only (the full sweep runs in the bench).
        let problem = lcl_problems::shortcut::shortcut_coloring_problem();
        let (g, input) = shortcut_path(4);
        let ids = IdAssignment::random_polynomial(g.node_count(), 3, 3);
        let t = minimal_solving_radius(&problem, &g, &input, &ids, 64, |r| ShortcutColoring {
            radius: Some(r),
        });
        assert!(t.is_some());
    }
}
