//! The round-elimination engine benchmark: builds towers for a battery of
//! catalog problems with the parallel fan-out on and off, reports the
//! per-level engine counters ([`lcl_core::LevelStats`]), microbenchmarks
//! interned label lookup against the linear scan it replaced, and writes
//! everything to `BENCH_re_engine.json` at the repository root.
//!
//! The JSON is hand-rolled (the build environment is offline, so no
//! serde); the schema is flat enough to diff between runs.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

use lcl::{LclProblem, OutLabel};
use lcl_core::{ReOptions, ReTower};
use lcl_problems::catalog::{anti_matching, k_coloring, sinkless_orientation};

use crate::cells;
use crate::table::Table;

/// One problem's tower build, measured.
struct ProblemReport {
    name: String,
    steps: usize,
    seq_wall: Duration,
    par_wall: Duration,
    /// `(level, stats)` pairs for every derived level, from the parallel
    /// build (the sequential build produces identical levels — asserted).
    levels: Vec<(usize, lcl_core::LevelStats)>,
    cache_hits: u64,
    cache_misses: u64,
}

/// The interner-lookup microbenchmark: resolving every level's member
/// sets back to label ids, interned (`lookup_label`) vs the linear scan
/// over `label_members` that the engine used before.
struct LookupReport {
    labels: usize,
    queries: u64,
    interned_ns: f64,
    scan_ns: f64,
}

/// The forced-thread-count sweep on the E1-pipeline problem: the data
/// behind the gated `par_speedup` (sequential reference vs 2 and 8
/// workers, same problem, same step count).
struct SweepReport {
    name: &'static str,
    steps: usize,
    seq_wall: Duration,
    wall_t2: Duration,
    wall_t8: Duration,
}

fn build_tower(problem: &LclProblem, steps: usize, parallel: bool) -> (ReTower, Duration) {
    build_tower_opts(
        problem,
        steps,
        ReOptions {
            parallel,
            ..ReOptions::default()
        },
    )
}

fn build_tower_opts(problem: &LclProblem, steps: usize, opts: ReOptions) -> (ReTower, Duration) {
    let start = Instant::now();
    let mut tower = ReTower::new(problem.clone());
    for _ in 0..steps {
        tower
            .push_f(opts)
            .expect("battery problems build under default caps");
    }
    (tower, start.elapsed())
}

fn measure_sweep(name: &'static str, problem: &LclProblem, steps: usize) -> SweepReport {
    let (seq_tower, seq_wall) = build_tower(problem, steps, false);
    let mut walls = [Duration::ZERO; 2];
    for (i, threads) in [2usize, 8].into_iter().enumerate() {
        let opts = ReOptions {
            parallel: true,
            threads,
            ..ReOptions::default()
        };
        let (tower, wall) = build_tower_opts(problem, steps, opts);
        assert_eq!(
            tower.fingerprint(),
            seq_tower.fingerprint(),
            "tower diverged from the sequential reference at {threads} threads"
        );
        walls[i] = wall;
    }
    SweepReport {
        name,
        steps,
        seq_wall,
        wall_t2: walls[0],
        wall_t8: walls[1],
    }
}

fn measure_problem(name: &str, problem: &LclProblem, steps: usize) -> ProblemReport {
    let (seq_tower, seq_wall) = build_tower(problem, steps, false);
    let (par_tower, par_wall) = build_tower(problem, steps, true);
    // The parallel fan-out must be a pure reshuffling of the work:
    // bit-identical snapshots, not just equal alphabet sizes.
    assert_eq!(
        seq_tower.fingerprint(),
        par_tower.fingerprint(),
        "parallel and sequential towers diverged on {name}"
    );
    let levels = par_tower
        .stats()
        .iter()
        .enumerate()
        .map(|(k, s)| (k + 1, s.clone()))
        .collect();
    let (cache_hits, cache_misses) = par_tower.node_cache_counters();
    ProblemReport {
        name: name.to_string(),
        steps,
        seq_wall,
        par_wall,
        levels,
        cache_hits,
        cache_misses,
    }
}

/// Times resolving every derived label's member set back to its id,
/// repeated until the clock resolves, via the interner and via the linear
/// scan the pre-interner engine performed.
fn measure_lookup(tower: &ReTower) -> LookupReport {
    let mut queries: Vec<(usize, Vec<u32>)> = Vec::new();
    for level in 1..tower.level_count() {
        for l in 0..tower.alphabet_size(level) {
            queries.push((
                level,
                tower.label_members(level, OutLabel(l as u32)).to_vec(),
            ));
        }
    }
    let rounds = 2_000u64;
    let interned = {
        let start = Instant::now();
        for _ in 0..rounds {
            for (level, members) in &queries {
                std::hint::black_box(tower.lookup_label(*level, members));
            }
        }
        start.elapsed()
    };
    let scan = {
        let start = Instant::now();
        for _ in 0..rounds {
            for (level, members) in &queries {
                let found = (0..tower.alphabet_size(*level)).position(|l| {
                    tower.label_members(*level, OutLabel(l as u32)) == members.as_slice()
                });
                std::hint::black_box(found);
            }
        }
        start.elapsed()
    };
    let total = rounds * queries.len() as u64;
    LookupReport {
        labels: queries.len(),
        queries: total,
        interned_ns: interned.as_nanos() as f64 / total as f64,
        scan_ns: scan.as_nanos() as f64 / total as f64,
    }
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.4}")
    } else {
        "null".to_string()
    }
}

fn emit_json(
    reports: &[ProblemReport],
    sweep: &SweepReport,
    lookup: &LookupReport,
    threads: usize,
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"bench\": \"re_engine\",");
    let _ = writeln!(out, "  \"threads_available\": {threads},");
    out.push_str("  \"problems\": [\n");
    for (i, r) in reports.iter().enumerate() {
        out.push_str("    {\n");
        let _ = writeln!(out, "      \"name\": \"{}\",", r.name);
        let _ = writeln!(out, "      \"f_steps\": {},", r.steps);
        let _ = writeln!(out, "      \"seq_wall_ms\": {},", json_f64(ms(r.seq_wall)));
        let _ = writeln!(out, "      \"par_wall_ms\": {},", json_f64(ms(r.par_wall)));
        let _ = writeln!(
            out,
            "      \"par_speedup\": {},",
            json_f64(ms(r.seq_wall) / ms(r.par_wall))
        );
        let _ = writeln!(out, "      \"node_cache_hits\": {},", r.cache_hits);
        let _ = writeln!(out, "      \"node_cache_misses\": {},", r.cache_misses);
        out.push_str("      \"levels\": [\n");
        for (j, (level, s)) in r.levels.iter().enumerate() {
            let fixpoint = s.fixpoint_of.map_or("null".to_string(), |f| f.to_string());
            let _ = write!(
                out,
                "        {{\"level\": {level}, \"labels_full\": {}, \"labels\": {}, \
                 \"configurations\": {}, \"cache_hits\": {}, \"cache_misses\": {}, \
                 \"fixpoint_of\": {fixpoint}, \"wall_ms\": {}}}",
                s.labels_full,
                s.labels,
                s.configurations,
                s.cache_hits,
                s.cache_misses,
                json_f64(ms(s.wall))
            );
            out.push_str(if j + 1 < r.levels.len() { ",\n" } else { "\n" });
        }
        out.push_str("      ]\n");
        out.push_str(if i + 1 < reports.len() {
            "    },\n"
        } else {
            "    }\n"
        });
    }
    out.push_str("  ],\n");
    out.push_str("  \"thread_sweep\": {\n");
    let _ = writeln!(out, "    \"name\": \"{}\",", sweep.name);
    let _ = writeln!(out, "    \"f_steps\": {},", sweep.steps);
    let _ = writeln!(
        out,
        "    \"seq_wall_ms\": {},",
        json_f64(ms(sweep.seq_wall))
    );
    let _ = writeln!(out, "    \"wall_ms_t2\": {},", json_f64(ms(sweep.wall_t2)));
    let _ = writeln!(out, "    \"par_wall_ms\": {},", json_f64(ms(sweep.wall_t8)));
    let _ = writeln!(
        out,
        "    \"par_speedup\": {}",
        json_f64(ms(sweep.seq_wall) / ms(sweep.wall_t8))
    );
    out.push_str("  },\n");
    out.push_str("  \"label_lookup\": {\n");
    let _ = writeln!(out, "    \"labels\": {},", lookup.labels);
    let _ = writeln!(out, "    \"queries\": {},", lookup.queries);
    let _ = writeln!(
        out,
        "    \"interned_ns\": {},",
        json_f64(lookup.interned_ns)
    );
    let _ = writeln!(out, "    \"linear_scan_ns\": {},", json_f64(lookup.scan_ns));
    let _ = writeln!(
        out,
        "    \"speedup\": {}",
        json_f64(lookup.scan_ns / lookup.interned_ns)
    );
    out.push_str("  }\n");
    out.push_str("}\n");
    out
}

/// The battery: problems whose towers build under default caps, chosen to
/// cover both behaviors — universes that stay put (sinkless orientation),
/// grow (coloring, anti-matching), and collapse to a fixpoint (the
/// X-X-only problem, whose levels cycle and exercise the memo).
fn battery() -> Vec<(&'static str, LclProblem, usize)> {
    let collapse = LclProblem::parse("max-degree: 2\nnodes:\nX*\nY*\nedges:\nX X\n")
        .expect("valid problem source");
    vec![
        ("anti-matching-d3", anti_matching(3), 2),
        ("3-coloring-d3", k_coloring(3, 3), 1),
        ("sinkless-orientation-d3", sinkless_orientation(3), 1),
        ("xx-collapse-d2", collapse, 3),
    ]
}

/// Runs the engine benchmark, prints the per-level table, and writes
/// `BENCH_re_engine.json` at the repository root. Returns the table.
pub fn re_engine() -> Table {
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut table = Table::new(
        "RE engine — interned, parallel tower construction",
        &[
            "problem",
            "level",
            "labels (full)",
            "configs",
            "memo hits/misses",
            "fixpoint",
            "wall",
        ],
    );
    let mut reports = Vec::new();
    for (name, problem, steps) in battery() {
        let report = measure_problem(name, &problem, steps);
        for (level, s) in &report.levels {
            table.row(cells!(
                name,
                level,
                format!("{} ({})", s.labels, s.labels_full),
                s.configurations,
                format!("{}/{}", s.cache_hits, s.cache_misses),
                s.fixpoint_of
                    .map_or("-".to_string(), |f| format!("= level {f}")),
                format!("{:.2} ms", ms(s.wall))
            ));
        }
        table.row(cells!(
            name,
            "total",
            "",
            "",
            format!("{}/{}", report.cache_hits, report.cache_misses),
            "",
            format!(
                "seq {:.2} / par {:.2} ms",
                ms(report.seq_wall),
                ms(report.par_wall)
            )
        ));
        reports.push(report);
    }

    // The gated 1/2/8-thread sweep on the E1-pipeline problem (the
    // anti-matching tower behind Theorem 3.11).
    let (sweep_name, sweep_problem, sweep_steps) = battery().swap_remove(0);
    let sweep = measure_sweep(sweep_name, &sweep_problem, sweep_steps);
    table.row(cells!(
        "thread sweep",
        sweep.name,
        "",
        "",
        "",
        format!("{:.2}x @ 8 threads", ms(sweep.seq_wall) / ms(sweep.wall_t8)),
        format!(
            "seq {:.2} / t2 {:.2} / t8 {:.2} ms",
            ms(sweep.seq_wall),
            ms(sweep.wall_t2),
            ms(sweep.wall_t8)
        )
    ));

    // Lookup microbenchmark on the largest tower of the battery.
    let (tower, _) = build_tower(&sweep_problem, sweep_steps, true);
    let lookup = measure_lookup(&tower);
    table.row(cells!(
        "label lookup",
        "-",
        lookup.labels,
        lookup.queries,
        "",
        format!("{:.0}x", lookup.scan_ns / lookup.interned_ns),
        format!(
            "interned {:.0} ns / scan {:.0} ns",
            lookup.interned_ns, lookup.scan_ns
        )
    ));

    let json = emit_json(&reports, &sweep, &lookup, threads);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_re_engine.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => println!("could not write {path}: {e}"),
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn battery_builds_and_reports() {
        let (name, problem, steps) = &battery()[3];
        assert_eq!(*name, "xx-collapse-d2");
        let report = measure_problem(name, problem, *steps);
        assert_eq!(report.levels.len(), 2 * steps);
        // The collapsing problem must certify its cycle with memo traffic
        // on the fixpoint level.
        let (level, s) = report
            .levels
            .iter()
            .find(|(_, s)| s.fixpoint_of.is_some())
            .expect("the collapse battery entry reaches a fixpoint");
        assert!(*level >= 2);
        assert!(s.cache_hits > 0, "fixpoint level must hit the memo: {s:?}");
    }

    #[test]
    fn lookup_microbenchmark_counts_queries() {
        let (tower, _) = build_tower(&anti_matching(3), 1, true);
        let lookup = measure_lookup(&tower);
        assert!(lookup.labels > 0);
        assert_eq!(lookup.queries, 2_000 * lookup.labels as u64);
        assert!(lookup.interned_ns > 0.0 && lookup.scan_ns > 0.0);
    }

    #[test]
    fn json_is_structurally_balanced() {
        let report = measure_problem("anti-matching-d3", &anti_matching(3), 1);
        let sweep = measure_sweep("anti-matching-d3", &anti_matching(3), 1);
        let lookup = LookupReport {
            labels: 3,
            queries: 6000,
            interned_ns: 50.0,
            scan_ns: 400.0,
        };
        let json = emit_json(&[report], &sweep, &lookup, 4);
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced braces:\n{json}"
        );
        assert!(json.contains("\"bench\": \"re_engine\""));
        assert!(json.contains("\"thread_sweep\""));
        assert!(json.contains("\"label_lookup\""));
        assert!(!json.contains("NaN") && !json.contains("inf"));
        // The emitted report passes its own schema and self-diffs clean —
        // the same fixed point the committed baseline must satisfy.
        let doc = crate::json::parse(&json).expect("own report parses");
        assert_eq!(
            crate::diff::detect_schema(&doc),
            crate::diff::Schema::ReEngine
        );
        let errors = crate::diff::check_schema(&doc, crate::diff::Schema::ReEngine);
        assert!(errors.is_empty(), "{errors:?}");
    }

    #[test]
    fn sweep_towers_stay_bit_identical() {
        let sweep = measure_sweep("sinkless-orientation-d3", &sinkless_orientation(3), 1);
        // measure_sweep asserts fingerprint equality internally; getting
        // here means 1, 2, and 8 threads built the same tower.
        assert!(sweep.seq_wall > Duration::ZERO);
        assert!(sweep.wall_t2 > Duration::ZERO && sweep.wall_t8 > Duration::ZERO);
    }
}
