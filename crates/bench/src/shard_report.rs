//! Sharded-substrate benchmark: one large clean LOCAL run plus one
//! seeded shard-chaos-and-repair scenario, writing `BENCH_shard.json`
//! at the repository root.
//!
//! Two phases, both seed-determined:
//!
//! * **Scale** — a round-guarded flooding algorithm over a 10⁶-node
//!   path partitioned into 8 shards: every message, halo, and superstep
//!   count is a pure function of the instance, so the keys are diffed
//!   bit-exact.
//! * **Chaos + repair** — the synthesized E1 pipeline algorithm under a
//!   whole-shard-loss plan at the *tight* round budget (exactly the
//!   `steps` rounds the synthesis promises). The crashed shards rebuild
//!   from their snapshots; the healthy frontier loses its halos,
//!   degrades to placeholder labels, and is mended by the cone-gated
//!   frontier repair — ending `Certified` with only frontier nodes
//!   patched.
//!
//! Only `total_wall_ms` varies with the host; every other key is a
//! deterministic counter.

use std::collections::BTreeSet;
use std::fmt::Write as _;
use std::time::Instant;

use lcl::{uniform_input, OutLabel};
use lcl_core::{tree_speedup, SpeedupOptions, SpeedupOutcome};
use lcl_faults::{FaultPlan, RunOptions};
use lcl_graph::gen;
use lcl_local::{NodeInit, SyncAlgorithm};
use lcl_obs::Counter;
use lcl_problems::anti_matching;
use lcl_recover::RepairOptions;
use lcl_shard::{repair_sharded, simulate_sharded_with};

use crate::table::Table;

/// Nodes in the clean scale run.
const SCALE_NODES: usize = 1_000_000;
/// Shards in both phases.
const SHARDS: usize = 8;
/// Runner threads for both phases.
const THREADS: usize = 2;
/// Nodes in the chaos instance.
const CHAOS_NODES: usize = 4_096;
/// Seed of the chaos plan and instance.
const CHAOS_SEED: u64 = 0x5a4d_c0de;
/// Whole-shard losses in the chaos plan (⌈SHARDS/4⌉).
const CRASHES: usize = SHARDS.div_ceil(4);

/// Round-guarded flooding (mirrors the chaos soak's scale fixture): a
/// node ignores messages once its own round counter reaches `k`, so the
/// output is `1` exactly where the node's identifier is maximal within
/// distance `k`.
struct GuardedFlood {
    k: u32,
}

#[derive(Clone)]
struct FloodState {
    best: u64,
    mine: u64,
    degree: usize,
    round: u32,
    k: u32,
}

impl SyncAlgorithm for GuardedFlood {
    type State = FloodState;
    type Msg = u64;

    fn init(&self, init: &NodeInit) -> FloodState {
        FloodState {
            best: init.id,
            mine: init.id,
            degree: init.degree as usize,
            round: 0,
            k: self.k,
        }
    }

    fn send(&self, state: &FloodState, _round: u32) -> Vec<u64> {
        vec![state.best; state.degree]
    }

    fn receive(&self, state: &mut FloodState, inbox: &[u64], _round: u32) {
        if state.round >= state.k {
            return;
        }
        for &msg in inbox {
            state.best = state.best.max(msg);
        }
        state.round += 1;
    }

    fn is_done(&self, state: &FloodState) -> bool {
        state.round >= state.k
    }

    fn output(&self, state: &FloodState) -> Vec<OutLabel> {
        vec![OutLabel(u32::from(state.best == state.mine)); state.degree]
    }

    fn name(&self) -> &str {
        "guarded-flood"
    }
}

/// Everything `BENCH_shard.json` records.
pub struct ShardNumbers {
    /// Nodes in the scale run.
    pub nodes: u64,
    /// Edges in the scale run.
    pub edges: u64,
    /// Supersteps of the scale run (shards × rounds).
    pub supersteps: u64,
    /// Algorithm messages of the scale run.
    pub messages: u64,
    /// Cross-shard halo messages of the scale run.
    pub halo_messages: u64,
    /// Cross-shard halo bytes of the scale run.
    pub halo_bytes: u64,
    /// Whole-shard losses taken by the chaos run.
    pub shards_crashed: u64,
    /// Snapshot rebuilds performed by the chaos run.
    pub shards_rebuilt: u64,
    /// Superstep-start checkpoints taken by crash-planned shards.
    pub checkpoints: u64,
    /// Healthy frontier nodes that lost a halo in the chaos run.
    pub frontier_nodes: u64,
    /// Nodes rewritten by the cone-gated repair's patch (the witness;
    /// includes in-ball rewrites that did not change a label).
    pub repaired_nodes: u64,
    /// 1 iff the chaos run ended `Certified`.
    pub certified: u64,
    /// Host-dependent total wall time of both phases.
    pub total_wall_ms: f64,
}

/// Phase 1: the clean 10⁶-node run.
fn run_scale(numbers: &mut ShardNumbers) {
    let g = gen::path(SCALE_NODES);
    let input = uniform_input(&g);
    let ids: Vec<u64> = (0..SCALE_NODES as u64).map(|i| i ^ 0x5a5a_5a5a).collect();
    let run = simulate_sharded_with(
        &GuardedFlood { k: 2 },
        &g,
        &input,
        &ids,
        None,
        8,
        THREADS,
        RunOptions::new().sharded(SHARDS),
    );
    assert!(run.outcome.faults.is_empty(), "the scale run is clean");
    assert_eq!(run.outcome.outcome.rounds, 2);
    numbers.nodes = run.trace.total(Counter::Nodes);
    numbers.edges = run.trace.total(Counter::Edges);
    numbers.supersteps = run.trace.total(Counter::Supersteps);
    numbers.messages = run.trace.total(Counter::Messages);
    numbers.halo_messages = run.trace.total(Counter::HaloMessages);
    numbers.halo_bytes = run.trace.total(Counter::HaloBytes);
}

/// Phase 2: the seeded chaos-and-repair scenario at the tight budget.
fn run_chaos(numbers: &mut ShardNumbers) {
    let problem = anti_matching(3);
    let outcome = tree_speedup(&problem, SpeedupOptions::default());
    let steps = match &outcome {
        SpeedupOutcome::ConstantRound { steps, .. } => *steps as u32,
        other => {
            unreachable!("anti-matching synthesizes a constant-round algorithm, got {other:?}")
        }
    };
    let alg = outcome.algorithm();
    let g = gen::random_tree(CHAOS_NODES, 3, CHAOS_SEED);
    let input = uniform_input(&g);
    let ids: Vec<u64> = (0..CHAOS_NODES as u64)
        .map(|i| i * 31 + CHAOS_SEED * 7 + 1)
        .collect();
    let plan = FaultPlan::random_shard_chaos(CHAOS_SEED, SHARDS, CRASHES, 0);
    let run = simulate_sharded_with(
        &alg,
        &g,
        &input,
        &ids,
        None,
        steps,
        THREADS,
        RunOptions::new().faults(&plan).sharded(SHARDS),
    );
    numbers.shards_crashed = run.trace.total(Counter::ShardCrashes);
    numbers.shards_rebuilt = run.trace.total(Counter::ShardRebuilds);
    numbers.checkpoints = run.trace.total(Counter::Checkpoints);
    let frontier: BTreeSet<u64> = run
        .outcome
        .faults
        .iter()
        .filter(|f| f.payload.contains("halo from crashed shard"))
        .map(|f| f.node)
        .collect();
    numbers.frontier_nodes = frontier.len() as u64;
    let (certified, report, _patched) = repair_sharded(
        &problem,
        &alg,
        &g,
        &input,
        &ids,
        None,
        steps,
        run.outcome.outcome.output.clone(),
        RepairOptions { max_rounds: 3 },
    )
    .expect("why: shard-loss damage is frontier-confined, so the cone repair mends it");
    let changed = g.nodes().filter(|&v| {
        g.half_edges_of(v)
            .any(|h| certified.get().get(h) != run.outcome.outcome.output.get(h))
    });
    for v in changed {
        assert!(
            frontier.contains(&u64::from(v.0)),
            "repair only ever changes frontier nodes, changed {}",
            v.index()
        );
    }
    numbers.repaired_nodes = report.patched_nodes;
    numbers.certified = 1;
}

/// Renders the flat JSON document. Counters are seed-determined and
/// diffed bit-exact; only `total_wall_ms` is compared under tolerance.
pub fn emit_json(n: &ShardNumbers) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"bench\": \"shard\",");
    let _ = writeln!(out, "  \"shards\": {SHARDS},");
    let _ = writeln!(out, "  \"runner_threads\": {THREADS},");
    let _ = writeln!(out, "  \"nodes\": {},", n.nodes);
    let _ = writeln!(out, "  \"edges\": {},", n.edges);
    let _ = writeln!(out, "  \"supersteps\": {},", n.supersteps);
    let _ = writeln!(out, "  \"messages\": {},", n.messages);
    let _ = writeln!(out, "  \"halo_messages\": {},", n.halo_messages);
    let _ = writeln!(out, "  \"halo_bytes\": {},", n.halo_bytes);
    let _ = writeln!(out, "  \"shards_crashed\": {},", n.shards_crashed);
    let _ = writeln!(out, "  \"shards_rebuilt\": {},", n.shards_rebuilt);
    let _ = writeln!(out, "  \"checkpoints\": {},", n.checkpoints);
    let _ = writeln!(out, "  \"frontier_nodes\": {},", n.frontier_nodes);
    let _ = writeln!(out, "  \"repaired_nodes\": {},", n.repaired_nodes);
    let _ = writeln!(out, "  \"certified\": {},", n.certified);
    let _ = writeln!(out, "  \"total_wall_ms\": {:.1}", n.total_wall_ms);
    out.push_str("}\n");
    out
}

/// Runs both phases, prints the summary table, and writes
/// `BENCH_shard.json` at the repository root. Returns the table.
pub fn shard_report() -> Table {
    let mut numbers = ShardNumbers {
        nodes: 0,
        edges: 0,
        supersteps: 0,
        messages: 0,
        halo_messages: 0,
        halo_bytes: 0,
        shards_crashed: 0,
        shards_rebuilt: 0,
        checkpoints: 0,
        frontier_nodes: 0,
        repaired_nodes: 0,
        certified: 0,
        total_wall_ms: 0.0,
    };
    let t0 = Instant::now();
    run_scale(&mut numbers);
    run_chaos(&mut numbers);
    numbers.total_wall_ms = t0.elapsed().as_secs_f64() * 1e3;

    let mut table = Table::new(
        "SHARD — sharded LOCAL substrate: scale run + chaos-and-repair",
        &["metric", "value"],
    );
    table.row(crate::cells!(
        "shards × runner threads",
        format!("{SHARDS} × {THREADS}")
    ));
    table.row(crate::cells!("scale nodes", numbers.nodes));
    table.row(crate::cells!("scale supersteps", numbers.supersteps));
    table.row(crate::cells!("scale messages", numbers.messages));
    table.row(crate::cells!(
        "halo traffic (msgs / bytes)",
        format!("{} / {}", numbers.halo_messages, numbers.halo_bytes)
    ));
    table.row(crate::cells!(
        "chaos losses (crashed / rebuilt)",
        format!("{} / {}", numbers.shards_crashed, numbers.shards_rebuilt)
    ));
    table.row(crate::cells!("checkpoints", numbers.checkpoints));
    table.row(crate::cells!(
        "frontier damaged / patch witness",
        format!("{} / {}", numbers.frontier_nodes, numbers.repaired_nodes)
    ));
    table.row(crate::cells!("certified", numbers.certified == 1));
    table.row(crate::cells!(
        "total wall",
        format!("{:.1} ms", numbers.total_wall_ms)
    ));

    let json = emit_json(&numbers);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_shard.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => println!("could not write {path}: {e}"),
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diff::{check_schema, detect_schema, diff, DiffOptions, Schema};
    use crate::json::parse;

    #[test]
    fn emitted_json_passes_the_shard_schema() {
        let numbers = ShardNumbers {
            nodes: 100,
            edges: 99,
            supersteps: 16,
            messages: 396,
            halo_messages: 28,
            halo_bytes: 224,
            shards_crashed: 2,
            shards_rebuilt: 2,
            checkpoints: 2,
            frontier_nodes: 5,
            repaired_nodes: 3,
            certified: 1,
            total_wall_ms: 12.5,
        };
        let doc = parse(&emit_json(&numbers)).expect("emitted JSON parses");
        assert_eq!(detect_schema(&doc), Schema::Shard);
        assert!(check_schema(&doc, Schema::Shard).is_empty());
        assert!(diff(&doc, &doc, DiffOptions::default()).is_clean());
    }

    /// The chaos phase on a reduced instance: deterministic counters,
    /// a certified ending, and frontier-only repair — the same
    /// invariants the full benchmark asserts, sized for the test suite.
    #[test]
    fn reduced_chaos_phase_certifies() {
        let problem = anti_matching(3);
        let outcome = tree_speedup(&problem, SpeedupOptions::default());
        let SpeedupOutcome::ConstantRound { steps, .. } = &outcome else {
            panic!("anti-matching synthesizes a constant-round algorithm");
        };
        let steps = *steps as u32;
        let alg = outcome.algorithm();
        let n = 256;
        let g = gen::random_tree(n, 3, CHAOS_SEED);
        let input = uniform_input(&g);
        let ids: Vec<u64> = (0..n as u64).map(|i| i * 31 + CHAOS_SEED * 7 + 1).collect();
        let plan = FaultPlan::random_shard_chaos(CHAOS_SEED, SHARDS, CRASHES, 0);
        let run = simulate_sharded_with(
            &alg,
            &g,
            &input,
            &ids,
            None,
            steps,
            THREADS,
            RunOptions::new().faults(&plan).sharded(SHARDS),
        );
        assert_eq!(run.trace.total(Counter::ShardCrashes), CRASHES as u64);
        let (_certified, report, _patched) = repair_sharded(
            &problem,
            &alg,
            &g,
            &input,
            &ids,
            None,
            steps,
            run.outcome.outcome.output.clone(),
            RepairOptions { max_rounds: 3 },
        )
        .expect("the reduced chaos scenario ends Certified");
        assert!(report.patched_nodes > 0, "the tight budget forces mending");
    }
}
