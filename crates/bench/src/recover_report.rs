//! Recovery counters for the self-healing runtime, written to
//! `BENCH_recover.json` at the repository root.
//!
//! Where `BENCH_obs.json` traces the *happy path* of every Figure 1
//! panel, this report exercises the recovery path: each R1 stage runs a
//! faulted model entrypoint under a fixed [`FaultPlan`], hands the
//! degraded outcome to the matching `repair_*_degraded` wrapper, and
//! records the resulting `recover/…` trace (violations found, mending
//! rounds, nodes patched). The R2 stage drives a round-elimination tower
//! through [`supervise_tower`] under a deliberately tight budget, so the
//! trace carries the checkpoint/retry counters of a real interrupted
//! build. Every counter is deterministic; wall-clock fields are the only
//! nondeterministic quantities in the file, exactly as in the other
//! committed baselines the `bench-diff` gate checks.

use lcl::{uniform_input, LclProblem, OutLabel};
use lcl_core::ReOptions;
use lcl_faults::{Budget, Fault, FaultPlan, RunOptions};
use lcl_graph::gen;
use lcl_grid::{FnProdAlgorithm, OrientedGrid, ProdIds};
use lcl_local::IdAssignment;
use lcl_obs::{Counter, Registry, Trace};
use lcl_problems::catalog::sinkless_orientation;
use lcl_problems::{k_coloring, DeltaPlusOne};
use lcl_recover::{
    repair_lca_degraded, repair_prod_degraded, repair_sync_degraded, repair_volume_degraded,
    supervise_tower, RepairOptions, RetryPolicy,
};
use lcl_volume::lca::VolumeAsLca;
use lcl_volume::{FnVolumeAlgorithm, ProbeError, ProbeSession};

use crate::cells;
use crate::table::Table;

/// Path LCL: endpoints label E, internal nodes I; X is never valid, so
/// corruption-induced X labels surface as verifier violations.
fn endpoints_problem() -> LclProblem {
    LclProblem::builder("endpoints", 2)
        .outputs(["E", "I", "X"])
        .node_pattern(&["E"])
        .node_pattern(&["I*"])
        .edge(&["E", "I"])
        .edge(&["I", "I"])
        .build()
        .expect("why: the endpoints description is a fixed, valid LCL")
}

/// Solves [`endpoints_problem`] on a path with ids `1..=n` — unless a
/// corrupted view hands it an out-of-range id, which betrays itself as
/// the invalid label X.
#[allow(clippy::type_complexity)] // `impl Trait` closure types cannot be aliased
fn threshold_alg(
    n: u64,
) -> FnVolumeAlgorithm<
    impl Fn(usize) -> usize,
    impl Fn(&mut ProbeSession<'_>) -> Result<Vec<OutLabel>, ProbeError>,
> {
    FnVolumeAlgorithm::new(
        "threshold",
        |_| 1,
        move |s| {
            let d = s.queried().degree as usize;
            if s.queried().id > n {
                Ok(vec![OutLabel(2); d])
            } else if d == 1 {
                Ok(vec![OutLabel(0)])
            } else {
                Ok(vec![OutLabel(1); d])
            }
        },
    )
}

/// R1/sync — two adjacent crash-stops break a Δ+1 coloring on a path;
/// localized mending restores a certified 3-coloring.
fn collect_sync(reg: &Registry) {
    let g = gen::path(16);
    let input = uniform_input(&g);
    let ids: Vec<u64> = (1..=16).collect();
    let plan = FaultPlan::new(11)
        .with(Fault::Crash { node: 7, round: 0 })
        .with(Fault::Crash { node: 8, round: 0 });
    let alg = DeltaPlusOne { delta: 2 };
    let p = k_coloring(3, 2);
    let report = lcl_local::simulate_sync_with(
        &alg,
        &g,
        &input,
        &ids,
        None,
        1000,
        RunOptions::new().faults(&plan),
    );
    let mended = repair_sync_degraded(
        &alg,
        &p,
        &g,
        &input,
        &ids,
        None,
        1000,
        &plan,
        &report.outcome,
        RepairOptions::default(),
    );
    reg.record("R1/sync/delta-plus-one", mended.trace);
}

/// R1/volume — a corrupted view makes the threshold algorithm emit the
/// poison label; repair patches the ball around the corrupted node.
fn collect_volume(reg: &Registry) {
    let n = 24usize;
    let g = gen::path(n);
    let input = uniform_input(&g);
    let ids = IdAssignment::from_vec((1..=n as u64).collect());
    let plan = FaultPlan::new(5).with(Fault::CorruptView { node: 11, salt: 9 });
    let p = endpoints_problem();
    let alg = threshold_alg(n as u64);
    let report = lcl_volume::simulate_with(
        &alg,
        &g,
        &input,
        &ids,
        None,
        RunOptions::new().faults(&plan),
    )
    .expect("faulted runs degrade instead of erroring");
    let mended = repair_volume_degraded(
        &alg,
        &p,
        &g,
        &input,
        &ids,
        None,
        &plan,
        &report.outcome,
        RepairOptions::default(),
    );
    reg.record("R1/volume/threshold", mended.trace);
}

/// R1/lca — the same corruption through the LCA embedding, this time
/// under an adversarial ID permutation the reference must reapply.
fn collect_lca(reg: &Registry) {
    let n = 24usize;
    let g = gen::path(n);
    let input = uniform_input(&g);
    let ids = IdAssignment::from_vec((1..=n as u64).collect());
    let plan = FaultPlan::new(21)
        .with(Fault::CorruptView { node: 5, salt: 7 })
        .with_permuted_ids();
    let p = endpoints_problem();
    let alg = VolumeAsLca(threshold_alg(n as u64));
    let report =
        lcl_volume::simulate_lca_with(&alg, &g, &input, &ids, RunOptions::new().faults(&plan))
            .expect("faulted runs degrade instead of erroring");
    let mended = repair_lca_degraded(
        &alg,
        &p,
        &g,
        &input,
        &ids,
        &plan,
        &report.outcome,
        RepairOptions::default(),
    );
    reg.record("R1/lca/threshold", mended.trace);
}

/// R1/prod — window-id corruption on an oriented grid; the free problem
/// rejects only the poison label, so the violation set is the corrupted
/// cell's neighborhood.
fn collect_prod(reg: &Registry) {
    let grid = OrientedGrid::new(&[6, 6]);
    let input = uniform_input(grid.graph());
    let ids = ProdIds::sequential(&grid);
    let p = LclProblem::builder("grid-free", 4)
        .outputs(["A", "X"])
        .node_pattern(&["A*"])
        .edge(&["A", "A"])
        .build()
        .expect("why: the grid-free description is a fixed, valid LCL");
    let alg = FnProdAlgorithm::new(
        "grid-threshold",
        |_| 1,
        |view: &lcl_grid::GridView| {
            let label = if view.id(0, -1) > 64 {
                OutLabel(1)
            } else {
                OutLabel(0)
            };
            vec![label; 2 * view.d]
        },
    );
    let plan = FaultPlan::new(3).with(Fault::CorruptView { node: 14, salt: 2 });
    let report = lcl_grid::simulate_with(
        &alg,
        &grid,
        &input,
        &ids,
        None,
        RunOptions::new().faults(&plan),
    );
    let mended = repair_prod_degraded(
        &alg,
        &p,
        &grid,
        &input,
        &ids,
        None,
        &plan,
        &report.outcome,
        RepairOptions::default(),
    );
    reg.record("R1/prod/grid-threshold", mended.trace);
}

/// R2 — a supervised tower build under a round cap that breaches on the
/// second `f`-step, forcing a checkpoint/resume/escalate cycle before
/// the build completes.
fn collect_supervisor(reg: &Registry) {
    let recovery = supervise_tower(
        sinkless_orientation(3),
        2,
        ReOptions::default(),
        Budget::unlimited().with_max_rounds(2),
        RetryPolicy::default(),
        None,
    );
    reg.record("R2/tower/sinkless-supervised", recovery.trace);
}

/// Collects one registry covering the repair path of all four faulted
/// models plus the tower supervisor. Deterministic up to wall-clock.
pub fn collect_registry() -> Registry {
    let reg = Registry::new();
    collect_sync(&reg);
    collect_volume(&reg);
    collect_lca(&reg);
    collect_prod(&reg);
    collect_supervisor(&reg);
    reg
}

fn counter(trace: &Trace, c: Counter) -> u64 {
    trace.root().get(c).unwrap_or(0)
}

/// Runs every recovery stage, prints the per-stage summary, and writes
/// `BENCH_recover.json` at the repository root. Returns the table.
pub fn recover_report() -> Table {
    let mut table = Table::new(
        "RECOVER — certified repair and supervised-resume counters",
        &[
            "stage",
            "violations",
            "repairs",
            "patched",
            "retries",
            "checkpoints",
            "wall",
        ],
    );
    let reg = collect_registry();
    for (label, trace) in reg.snapshot() {
        table.row(cells!(
            label,
            counter(&trace, Counter::Violations),
            counter(&trace, Counter::Repairs),
            counter(&trace, Counter::RepairedNodes),
            counter(&trace, Counter::Retries),
            counter(&trace, Counter::Checkpoints),
            format!("{:.2} ms", trace.root().wall().as_secs_f64() * 1e3)
        ));
    }

    let json = reg.to_json();
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_recover.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => println!("could not write {path}: {e}"),
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_covers_every_model_and_the_supervisor() {
        let reg = collect_registry();
        let snapshot = reg.snapshot();
        let labels: Vec<&str> = snapshot.iter().map(|(label, _)| label.as_str()).collect();
        for stage in [
            "R1/sync/delta-plus-one",
            "R1/volume/threshold",
            "R1/lca/threshold",
            "R1/prod/grid-threshold",
            "R2/tower/sinkless-supervised",
        ] {
            assert!(labels.contains(&stage), "{stage} missing from {labels:?}");
        }
        // Every R1 stage found damage and mended it.
        for (label, trace) in &snapshot {
            if label.starts_with("R1/") {
                assert!(counter(trace, Counter::Violations) >= 1, "{label}");
                assert!(counter(trace, Counter::Repairs) >= 1, "{label}");
                assert!(counter(trace, Counter::RepairedNodes) >= 1, "{label}");
            }
        }
        // The tight budget forced at least one retry and two checkpoints.
        let (_, tower) = snapshot
            .iter()
            .find(|(label, _)| label.starts_with("R2/"))
            .expect("supervisor trace recorded");
        assert!(counter(tower, Counter::Retries) >= 1);
        assert!(counter(tower, Counter::Checkpoints) >= 2);
        let json = reg.to_json();
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(json.contains("\"repairs\""));
        assert!(json.contains("\"checkpoints\""));
    }
}
