//! Process-per-shard benchmark: one clean cross-process scale run plus
//! one seeded SIGKILL-chaos scenario, writing `BENCH_procshard.json`
//! at the repository root.
//!
//! Two phases, both seed-determined:
//!
//! * **Clean** — a round-guarded flooding algorithm over a 10⁵-node
//!   path split across 8 `shard-worker` processes: every message,
//!   halo, and superstep count is a pure function of the instance, so
//!   the keys are diffed bit-exact.
//! * **Kill chaos** — the synthesized E1 pipeline algorithm while the
//!   fault plan SIGKILLs 2 of the 8 worker processes mid-superstep.
//!   The supervisor respawns each victim, rehydrates it by command
//!   replay, and the run's output must be **bit-identical** to the
//!   clean unsharded run; `repair_sharded` then certifies it without
//!   patching a node.
//!
//! The worker binary is resolved next to the bench executable's
//! parent directory (`target/release/shard-worker`), so run
//! `cargo build --release` first — `scripts/check.sh` does.
//!
//! Only the `*_wall_ms` keys vary with the host; every other key is a
//! deterministic counter.

use std::fmt::Write as _;
use std::time::Instant;

use lcl::uniform_input;
use lcl_core::{tree_speedup, SpeedupOptions, SpeedupOutcome};
use lcl_faults::{FaultPlan, RunOptions};
use lcl_local::simulate_sync_with;
use lcl_obs::Counter;
use lcl_problems::anti_matching;
use lcl_procshard::{run_proc_sharded, AlgSpec, GraphSpec, InputSpec, ProcJob, ProcOptions};
use lcl_recover::RepairOptions;
use lcl_shard::repair_sharded;

use crate::table::Table;

/// Nodes in the clean scale run.
const SCALE_NODES: usize = 100_000;
/// Worker processes in both phases.
const SHARDS: usize = 8;
/// Nodes in the kill-chaos instance.
const CHAOS_NODES: usize = 4_096;
/// Seed of the kill plan and instance.
const CHAOS_SEED: u64 = 0x5169_c111;
/// SIGKILLs delivered by the chaos plan (⌈SHARDS/4⌉).
const KILLS: usize = SHARDS.div_ceil(4);

/// Everything `BENCH_procshard.json` records.
pub struct ProcShardNumbers {
    /// Nodes in the clean scale run.
    pub nodes: u64,
    /// Edges in the clean scale run.
    pub edges: u64,
    /// Supersteps of the clean scale run (shards × rounds).
    pub supersteps: u64,
    /// Algorithm messages of the clean scale run.
    pub messages: u64,
    /// Cross-process halo messages of the clean scale run.
    pub halo_messages: u64,
    /// Cross-process halo bytes of the clean scale run.
    pub halo_bytes: u64,
    /// SIGKILLs the chaos plan delivered.
    pub kills_injected: u64,
    /// Worker respawns the supervisor performed.
    pub respawns: u64,
    /// Distinct workers brought back by replay rehydration.
    pub rehydrated_shards: u64,
    /// Faults on the chaos run's record (one per kill).
    pub faults: u64,
    /// 1 iff the chaos run's output was bit-identical to the clean
    /// unsharded run and `repair_sharded` certified it with zero
    /// patched nodes.
    pub certified: u64,
    /// Host-dependent wall time of the clean phase.
    pub clean_wall_ms: f64,
    /// Host-dependent wall time of the kill-chaos phase.
    pub chaos_wall_ms: f64,
    /// Host-dependent total wall time of both phases.
    pub total_wall_ms: f64,
}

/// Phase 1: the clean 10⁵-node cross-process run.
fn run_clean(numbers: &mut ProcShardNumbers) {
    let job = ProcJob {
        graph: GraphSpec::Path { n: SCALE_NODES },
        alg: AlgSpec::GuardedFlood { k: 2 },
        input: InputSpec::Uniform,
        ids: (0..SCALE_NODES as u64).map(|i| i ^ 0x5a5a_5a5a).collect(),
        n_announced: None,
        max_rounds: 8,
    };
    let run = run_proc_sharded(
        &job,
        RunOptions::new().sharded(SHARDS),
        &ProcOptions::default(),
    )
    .expect("why: the clean scale run needs target/release/shard-worker — run cargo build --release first");
    assert!(run.outcome.faults.is_empty(), "the scale run is clean");
    assert_eq!(run.outcome.outcome.rounds, 2);
    numbers.nodes = run.trace.total(Counter::Nodes);
    numbers.edges = run.trace.total(Counter::Edges);
    numbers.supersteps = run.trace.total(Counter::Supersteps);
    numbers.messages = run.trace.total(Counter::Messages);
    numbers.halo_messages = run.trace.total(Counter::HaloMessages);
    numbers.halo_bytes = run.trace.total(Counter::HaloBytes);
}

/// Phase 2: the seeded SIGKILL-chaos scenario.
fn run_kill_chaos(numbers: &mut ProcShardNumbers) {
    let problem = anti_matching(3);
    let outcome = tree_speedup(&problem, SpeedupOptions::default());
    let steps = match &outcome {
        SpeedupOutcome::ConstantRound { steps, .. } => *steps as u32,
        other => {
            unreachable!("anti-matching synthesizes a constant-round algorithm, got {other:?}")
        }
    };
    let alg = outcome.algorithm();
    let spec = GraphSpec::RandomTree {
        n: CHAOS_NODES,
        max_degree: 3,
        seed: CHAOS_SEED,
    };
    let g = spec.build();
    let input = uniform_input(&g);
    let ids: Vec<u64> = (0..CHAOS_NODES as u64)
        .map(|i| i * 31 + CHAOS_SEED * 7 + 1)
        .collect();
    let clean = simulate_sync_with(&alg, &g, &input, &ids, None, 10, RunOptions::new());
    let plan = FaultPlan::random_kill_chaos(CHAOS_SEED, SHARDS, KILLS, 0);
    let job = ProcJob {
        graph: spec,
        alg: AlgSpec::AntiMatchingE1 { delta: 3 },
        input: InputSpec::Uniform,
        ids: ids.clone(),
        n_announced: None,
        max_rounds: 10,
    };
    let run = run_proc_sharded(
        &job,
        RunOptions::new().sharded(SHARDS).faults(&plan),
        &ProcOptions::default(),
    )
    .expect("why: SIGKILLed workers are respawned and replayed, never fatal");
    numbers.kills_injected = KILLS as u64;
    numbers.respawns = run.trace.total(Counter::Retries);
    numbers.rehydrated_shards = (0..SHARDS)
        .filter(|&s| !plan.shard_kills(s).is_empty())
        .count() as u64;
    numbers.faults = run.outcome.faults.len() as u64;
    assert_eq!(
        run.outcome.outcome, clean.outcome.outcome,
        "kills are output-transparent"
    );
    let (_certified, report, _patched) = repair_sharded(
        &problem,
        &alg,
        &g,
        &input,
        &ids,
        None,
        steps,
        run.outcome.outcome.output.clone(),
        RepairOptions { max_rounds: 3 },
    )
    .expect("why: a replay-rehydrated output is clean-equivalent, so it certifies");
    assert_eq!(report.patched_nodes, 0, "rehydration left nothing to mend");
    numbers.certified = 1;
}

/// Renders the flat JSON document. Counters are seed-determined and
/// diffed bit-exact; only the `*_wall_ms` keys are compared under
/// tolerance.
pub fn emit_json(n: &ProcShardNumbers) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"bench\": \"procshard\",");
    let _ = writeln!(out, "  \"shards\": {SHARDS},");
    let _ = writeln!(out, "  \"nodes\": {},", n.nodes);
    let _ = writeln!(out, "  \"edges\": {},", n.edges);
    let _ = writeln!(out, "  \"supersteps\": {},", n.supersteps);
    let _ = writeln!(out, "  \"messages\": {},", n.messages);
    let _ = writeln!(out, "  \"halo_messages\": {},", n.halo_messages);
    let _ = writeln!(out, "  \"halo_bytes\": {},", n.halo_bytes);
    let _ = writeln!(out, "  \"kills_injected\": {},", n.kills_injected);
    let _ = writeln!(out, "  \"respawns\": {},", n.respawns);
    let _ = writeln!(out, "  \"rehydrated_shards\": {},", n.rehydrated_shards);
    let _ = writeln!(out, "  \"faults\": {},", n.faults);
    let _ = writeln!(out, "  \"certified\": {},", n.certified);
    let _ = writeln!(out, "  \"clean_wall_ms\": {:.1},", n.clean_wall_ms);
    let _ = writeln!(out, "  \"chaos_wall_ms\": {:.1},", n.chaos_wall_ms);
    let _ = writeln!(out, "  \"total_wall_ms\": {:.1}", n.total_wall_ms);
    out.push_str("}\n");
    out
}

/// Runs both phases, prints the summary table, and writes
/// `BENCH_procshard.json` at the repository root. Returns the table.
pub fn procshard_report() -> Table {
    let mut numbers = ProcShardNumbers {
        nodes: 0,
        edges: 0,
        supersteps: 0,
        messages: 0,
        halo_messages: 0,
        halo_bytes: 0,
        kills_injected: 0,
        respawns: 0,
        rehydrated_shards: 0,
        faults: 0,
        certified: 0,
        clean_wall_ms: 0.0,
        chaos_wall_ms: 0.0,
        total_wall_ms: 0.0,
    };
    let t0 = Instant::now();
    run_clean(&mut numbers);
    numbers.clean_wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    let t1 = Instant::now();
    run_kill_chaos(&mut numbers);
    numbers.chaos_wall_ms = t1.elapsed().as_secs_f64() * 1e3;
    numbers.total_wall_ms = t0.elapsed().as_secs_f64() * 1e3;

    let mut table = Table::new(
        "PROCSHARD — process-per-shard substrate: clean scale run + SIGKILL chaos",
        &["metric", "value"],
    );
    table.row(crate::cells!("worker processes", SHARDS));
    table.row(crate::cells!("scale nodes", numbers.nodes));
    table.row(crate::cells!("scale supersteps", numbers.supersteps));
    table.row(crate::cells!("scale messages", numbers.messages));
    table.row(crate::cells!(
        "halo traffic (msgs / bytes)",
        format!("{} / {}", numbers.halo_messages, numbers.halo_bytes)
    ));
    table.row(crate::cells!(
        "kills / respawns / rehydrated",
        format!(
            "{} / {} / {}",
            numbers.kills_injected, numbers.respawns, numbers.rehydrated_shards
        )
    ));
    table.row(crate::cells!("faults on record", numbers.faults));
    table.row(crate::cells!("certified", numbers.certified == 1));
    table.row(crate::cells!(
        "clean / chaos wall",
        format!(
            "{:.1} ms / {:.1} ms",
            numbers.clean_wall_ms, numbers.chaos_wall_ms
        )
    ));
    table.row(crate::cells!(
        "total wall",
        format!("{:.1} ms", numbers.total_wall_ms)
    ));

    let json = emit_json(&numbers);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_procshard.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => println!("could not write {path}: {e}"),
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diff::{check_schema, detect_schema, diff, DiffOptions, Schema};
    use crate::json::parse;

    #[test]
    fn emitted_json_passes_the_procshard_schema() {
        let numbers = ProcShardNumbers {
            nodes: 100,
            edges: 99,
            supersteps: 16,
            messages: 396,
            halo_messages: 28,
            halo_bytes: 224,
            kills_injected: 2,
            respawns: 2,
            rehydrated_shards: 2,
            faults: 2,
            certified: 1,
            clean_wall_ms: 120.5,
            chaos_wall_ms: 80.2,
            total_wall_ms: 200.7,
        };
        let doc = parse(&emit_json(&numbers)).expect("emitted JSON parses");
        assert_eq!(detect_schema(&doc), Schema::ProcShard);
        assert!(check_schema(&doc, Schema::ProcShard).is_empty());
        assert!(diff(&doc, &doc, DiffOptions::default()).is_clean());
    }
}
