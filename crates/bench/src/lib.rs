//! The benchmark harness: every figure of the paper, regenerated.
//!
//! The paper's evaluation is Figure 1 — four landscape panels — plus the
//! quantitative theorem statements. Each experiment here prints the
//! series/rows that reproduce one artifact (see `DESIGN.md`'s experiment
//! index E1–E10 and `EXPERIMENTS.md` for paper-vs-measured):
//!
//! * [`fig1::trees`] — E1, top-left panel: measured rounds per class on
//!   trees/paths.
//! * [`fig1::grids`] — E2, top-right panel: oriented grids.
//! * [`fig1::general`] — E3, bottom-left panel: the dense region via the
//!   shortcut construction.
//! * [`fig1::volume`] — E4, bottom-right panel: probe complexities.
//! * [`gaps::speedup_trees`] — E5, Theorem 3.11 as a synthesizer.
//! * [`gaps::failure_probabilities`] — E6, Theorem 3.4's bound vs
//!   measured.
//! * [`gaps::volume_gap`] — E7, Theorem 4.1/4.3.
//! * [`gaps::grid_gap`] — E8, Theorem 5.1.
//! * [`gaps::landscape_paths`] — E9, the decidable path/cycle slice.
//! * [`gaps::label_growth`] — E10, the label-growth ablation.
//! * [`re_engine::re_engine`] — the round-elimination engine counters
//!   (interning, parallel fan-out, memo cache, fixpoint detection),
//!   written to `BENCH_re_engine.json`.
//! * [`obs_report::obs_report`] — per-stage execution traces for every
//!   Figure 1 panel, collected through the instrumented `simulate*`
//!   entrypoints and written to `BENCH_obs.json` (also available alone
//!   via `cargo bench -p lcl-bench --bench obs`).
//! * [`recover_report::recover_report`] — recovery counters (repairs,
//!   retries, checkpoints) for the certified-repair and tower-supervisor
//!   paths, written to `BENCH_recover.json` (`--bench recover`).
//! * [`service_report::service_report`] — the classification service
//!   under a seeded 1 000-request mix with ~30 % structural duplicates:
//!   dedup/coalescing counters, cache-hit latency, and a checkpoint
//!   resume check, written to `BENCH_service.json` (`--bench service`).
//!   The `classify-server` / `classify-client` binaries expose the same
//!   service over a Unix socket for interactive use.
//! * [`curves::curves_report`] — E11, theory-vs-practice curves: decade
//!   sweeps of event-derived cost counts per Figure 1 panel,
//!   least-squares-fitted against candidate asymptotic shapes and
//!   written to `BENCH_curves.json` (`--bench curves`). The committed
//!   file is gated on the *fitted class* bit-exactly — wall noise
//!   cannot fail it.
//! * [`procshard_report::procshard_report`] — the process-per-shard
//!   substrate: a clean cross-process scale run plus a seeded
//!   SIGKILL-respawn-rehydrate scenario, written to
//!   `BENCH_procshard.json` (`--bench procshard`; needs
//!   `target/release/shard-worker`, so `cargo build --release` first).
//! * [`shrink::shrink_plan`] — the chaos-seed shrinker behind the
//!   `shrink-chaos` binary (`scripts/shrink_chaos.sh`).
//!
//! Run everything with `cargo bench -p lcl-bench --bench figures`; the
//! microbenchmarks of the hot paths live in `--bench micro`.
//!
//! The committed baselines are *gated*: the `bench-diff` binary
//! ([`json`] + [`diff`]) compares a fresh report against the committed
//! one — counters bit-exact, wall times within tolerance — and exits
//! nonzero on any regression. `scripts/check.sh` runs it.

pub mod chaos;
pub mod curves;
pub mod diff;
pub mod fig1;
pub mod gaps;
pub mod grid_algos;
pub mod json;
pub mod obs_report;
pub mod procshard_report;
pub mod re_engine;
pub mod recover_report;
pub mod service_report;
pub mod shard_report;
pub mod shrink;
pub mod table;
pub mod timing;
pub mod volume_algos;
