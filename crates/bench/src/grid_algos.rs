//! Grid-specific harness algorithms for the Figure 1 top-right panel.
//!
//! * [`RowColoring`] — 3-colors every dimension-0 row cycle via
//!   Cole–Vishkin: the `Θ(log* n)` representative on oriented grids.
//! * [`row_coloring_problem`] + [`dim_inputs`] — its node-edge-checkable
//!   form (dimension-0 half-edges are marked by input labels so the
//!   verifier knows which edges carry colors).
//!
//! The `Θ(ᵈ√n)` representative is plain 2-coloring, solved by the generic
//! gather algorithm [`lcl_problems::TwoColorByAnchor`] (even-sided tori
//! are bipartite), and the `O(1)` representative is the identifier-free
//! [`lcl_core::speedup_grids::OrientationCanonical`] pattern.

use lcl::{HalfEdgeLabeling, InLabel, LclProblem, OutLabel};
use lcl_grid::OrientedGrid;
use lcl_local::{NodeInit, SyncAlgorithm};
use lcl_problems::cv::{cv_iteration_count, cv_step};

/// Input label marking dimension-0 half-edges.
pub const IN_DIM0: InLabel = InLabel(0);
/// Input label marking all other half-edges.
pub const IN_OTHER: InLabel = InLabel(1);

/// Marks dimension-0 half-edges (ports 0 and 1 under the torus port
/// convention).
pub fn dim_inputs(grid: &OrientedGrid) -> HalfEdgeLabeling<InLabel> {
    HalfEdgeLabeling::from_fn(grid.graph(), |h| {
        if grid.graph().port_of(h) < 2 {
            IN_DIM0
        } else {
            IN_OTHER
        }
    })
}

/// "3-color the dimension-0 rows": colors on dim-0 half-edges (equal at a
/// node, differing across dim-0 edges), `⊥` elsewhere.
pub fn row_coloring_problem(d: usize) -> LclProblem {
    let delta = (2 * d) as u8;
    let mut builder = LclProblem::builder("row-3-coloring", delta)
        .inputs(["dim0", "other"])
        .outputs(["A", "B", "C", "Bot"]);
    for c in ["A", "B", "C"] {
        builder = builder.node_pattern(&[c, c, "Bot*"]);
    }
    builder
        .edge(&["A", "B"])
        .edge(&["A", "C"])
        .edge(&["B", "C"])
        .edge(&["Bot", "Bot"])
        .allow("dim0", &["A", "B", "C"])
        .allow("other", &["Bot"])
        .build()
        .expect("row coloring is well-formed")
}

/// Cole–Vishkin along every dimension-0 row cycle in parallel.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RowColoring;

/// Per-node state of [`RowColoring`].
#[derive(Clone, Debug)]
pub struct RowState {
    color: u64,
    degree: u8,
    round: u32,
    total_rounds: u32,
}

impl SyncAlgorithm for RowColoring {
    type State = RowState;
    type Msg = u64;

    fn init(&self, init: &NodeInit) -> RowState {
        let id_bits = 3 * (usize::BITS - init.n.leading_zeros()).max(1);
        RowState {
            color: init.id,
            degree: init.degree,
            round: 0,
            total_rounds: cv_iteration_count(id_bits) + 3,
        }
    }

    fn send(&self, state: &RowState, _round: u32) -> Vec<u64> {
        vec![state.color; state.degree as usize]
    }

    fn receive(&self, state: &mut RowState, inbox: &[u64], _round: u32) {
        let cv_rounds = state.total_rounds - 3;
        if state.round < cv_rounds {
            // Port 0 is the +dim0 successor.
            state.color = cv_step(state.color, inbox[0]);
        } else {
            let target = 5 - u64::from(state.round - cv_rounds);
            if state.color == target {
                // Ports 0 and 1 are the row neighbors.
                state.color = (0..3)
                    .find(|c| inbox[0] != *c && inbox[1] != *c)
                    .expect("two neighbors block at most two of three colors");
            }
        }
        state.round += 1;
    }

    fn is_done(&self, state: &RowState) -> bool {
        state.round >= state.total_rounds
    }

    fn output(&self, state: &RowState) -> Vec<OutLabel> {
        const BOT: u32 = 3;
        (0..state.degree)
            .map(|p| {
                if p < 2 {
                    OutLabel(state.color as u32)
                } else {
                    OutLabel(BOT)
                }
            })
            .collect()
    }

    fn name(&self) -> &str {
        "row-coloring"
    }
}

/// Proper `(2d+1)`-coloring of the whole oriented torus in
/// `O(log* n) + O_d(1)` rounds: run Cole–Vishkin along every dimension's
/// row cycles in parallel (the orientation provides the successor for
/// free), combine the per-dimension colors into a proper `6^d`-coloring,
/// and sweep down to `2d + 1`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TorusColoring {
    /// Number of grid dimensions.
    pub d: usize,
}

/// Per-node state of [`TorusColoring`].
#[derive(Clone, Debug)]
pub struct TorusColoringState {
    colors: Vec<u64>,
    combined: u64,
    degree: u8,
    d: usize,
    round: u32,
    cv_rounds: u32,
    total_rounds: u32,
}

impl TorusColoring {
    /// Total rounds on `n`-node grids.
    pub fn total_rounds(&self, n: usize) -> u32 {
        let id_bits = 3 * (usize::BITS - n.leading_zeros()).max(1);
        let combined = 6u32.pow(self.d as u32);
        cv_iteration_count(id_bits) + (combined - 2 * self.d as u32 - 1)
    }
}

impl SyncAlgorithm for TorusColoring {
    type State = TorusColoringState;
    type Msg = Vec<u64>;

    fn init(&self, init: &NodeInit) -> TorusColoringState {
        let id_bits = 3 * (usize::BITS - init.n.leading_zeros()).max(1);
        TorusColoringState {
            colors: vec![init.id; self.d],
            combined: 0,
            degree: init.degree,
            d: self.d,
            round: 0,
            cv_rounds: cv_iteration_count(id_bits),
            total_rounds: self.total_rounds(init.n),
        }
    }

    fn send(&self, state: &TorusColoringState, _round: u32) -> Vec<Vec<u64>> {
        let payload = if state.round < state.cv_rounds {
            state.colors.clone()
        } else {
            vec![state.combined]
        };
        vec![payload; state.degree as usize]
    }

    fn receive(&self, state: &mut TorusColoringState, inbox: &[Vec<u64>], _round: u32) {
        if state.round < state.cv_rounds {
            // Parallel CV: the successor in dimension k is port 2k.
            for k in 0..state.d {
                state.colors[k] = cv_step(state.colors[k], inbox[2 * k][k]);
            }
            if state.round + 1 == state.cv_rounds {
                state.combined = state.colors.iter().rev().fold(0u64, |acc, &c| acc * 6 + c);
            }
        } else {
            let sweep = state.round - state.cv_rounds;
            let target = u64::from(6u32.pow(state.d as u32) - 1 - sweep);
            if state.combined == target {
                let used: Vec<u64> = inbox.iter().map(|m| m[0]).collect();
                state.combined = (0..=2 * state.d as u64)
                    .find(|c| !used.contains(c))
                    .expect("degree 2d leaves a free color in 0..=2d");
            }
        }
        state.round += 1;
    }

    fn is_done(&self, state: &TorusColoringState) -> bool {
        state.round >= state.total_rounds
    }

    fn output(&self, state: &TorusColoringState) -> Vec<OutLabel> {
        assert!(state.combined <= 2 * state.d as u64);
        vec![OutLabel(state.combined as u32); state.degree as usize]
    }

    fn name(&self) -> &str {
        "torus-coloring"
    }
}

/// Runs [`TorusColoring`] and returns (rounds, valid against
/// `k_coloring(2d+1, 2d)`).
pub fn run_torus_coloring(grid: &OrientedGrid, seed: u64) -> (u32, bool) {
    let d = grid.dimension_count();
    let problem = lcl_problems::k_coloring(2 * d + 1, (2 * d) as u8);
    let input = lcl::uniform_input(grid.graph());
    let ids = lcl_local::IdAssignment::random_polynomial(grid.node_count(), 3, seed);
    let run = lcl_local::run_sync(
        &TorusColoring { d },
        grid.graph(),
        &input,
        &ids.iter().collect::<Vec<_>>(),
        None,
        1_000_000,
    );
    let valid = lcl::verify(&problem, grid.graph(), &input, &run.output).is_empty();
    (run.rounds, valid)
}

/// Runs [`RowColoring`] on a grid and returns (rounds, valid).
pub fn run_row_coloring(grid: &OrientedGrid, seed: u64) -> (u32, bool) {
    let problem = row_coloring_problem(grid.dimension_count());
    let input = dim_inputs(grid);
    let ids = lcl_local::IdAssignment::random_polynomial(grid.node_count(), 3, seed);
    let run = lcl_local::run_sync(
        &RowColoring,
        grid.graph(),
        &input,
        &ids.iter().collect::<Vec<_>>(),
        None,
        10_000,
    );
    let valid = lcl::verify(&problem, grid.graph(), &input, &run.output).is_empty();
    (run.rounds, valid)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_coloring_is_valid_and_log_star_fast() {
        for dims in [vec![9usize, 3], vec![5, 4, 3]] {
            let grid = OrientedGrid::new(&dims);
            let (rounds, valid) = run_row_coloring(&grid, 7);
            assert!(valid, "dims {dims:?}");
            assert!(rounds <= 10, "rounds = {rounds}");
        }
    }

    #[test]
    fn torus_coloring_is_proper() {
        for dims in [vec![5usize, 4], vec![3, 3], vec![4, 3, 3]] {
            let grid = OrientedGrid::new(&dims);
            let (rounds, valid) = run_torus_coloring(&grid, 11);
            assert!(valid, "dims {dims:?}");
            let alg = TorusColoring { d: dims.len() };
            assert_eq!(rounds, alg.total_rounds(grid.node_count()));
        }
    }

    #[test]
    fn torus_coloring_rounds_are_log_star_flat() {
        let alg = TorusColoring { d: 2 };
        let small = alg.total_rounds(16);
        let large = alg.total_rounds(1 << 30);
        assert!(large - small <= 3);
    }

    #[test]
    fn row_coloring_catches_bad_labelings() {
        let grid = OrientedGrid::new(&[4, 3]);
        let problem = row_coloring_problem(2);
        let input = dim_inputs(&grid);
        // All-A is monochromatic along rows: invalid.
        let bad = HalfEdgeLabeling::uniform(grid.graph(), OutLabel(0));
        assert!(!lcl::verify(&problem, grid.graph(), &input, &bad).is_empty());
    }
}
