//! Baseline diffing for the perf-regression gate.
//!
//! [`diff`] walks two parsed baseline documents (see [`crate::json`])
//! and classifies every divergence:
//!
//! * **Counters and structure are exact.** Numbers compare by raw source
//!   text, so a counter that moves by 1 is a regression; objects must
//!   have the same keys (a missing *or* extra key is a structural
//!   regression) and arrays the same length.
//! * **Wall times get a tolerance.** Keys in [`WALL_KEYS`] are timing
//!   measurements — inherently noisy — and only regress when they leave
//!   the relative tolerance band *and* an absolute noise floor.
//! * **Derived machine facts are informational.** Keys in
//!   [`INFO_KEYS`] (`threads_available`) vary with the host; changes are
//!   reported as notes, never as regressions.
//! * **Parallel speedup is gated by a floor, not by drift.**
//!   `par_speedup` is derived from two wall times, so its drift is never
//!   compared against the baseline; instead every object carrying both
//!   `par_speedup` and `seq_wall_ms` must meet
//!   [`DiffOptions::speedup_floor`] — but only when the candidate host
//!   actually has [`DiffOptions::speedup_min_threads`] threads, and only
//!   for problems big enough (`seq_wall_ms` at or above
//!   [`DiffOptions::speedup_noise_floor_ms`]) for the ratio to be signal
//!   rather than scheduler noise.
//!
//! * **Fit quality is gated by a floor, not by drift.** `r2` is a
//!   derived regression statistic; its drift is only noted, but every
//!   object carrying both `fitted_class` and `r2` (the curves panels)
//!   must keep R² at or above [`DiffOptions::r2_floor`]. The
//!   `fitted_class` string itself diffs bit-exactly through the normal
//!   walk, so a panel whose asymptotic class flips is a regression
//!   naming that panel — while a `BENCH_curves.json` document carries
//!   no wall keys at all, so wall-time variation alone can never fail
//!   the curves gate.
//!
//! [`check_schema`] validates a document against the committed baseline
//! schemas (`BENCH_obs.json` registry dumps and `BENCH_re_engine.json`
//! reports), auto-detected by shape.

use std::fmt;

use crate::json::JsonValue;

/// Keys holding wall-clock measurements (or rates derived from them):
/// compared within tolerance.
pub const WALL_KEYS: [&str; 11] = [
    "wall_us",
    "wall_ms",
    "seq_wall_ms",
    "par_wall_ms",
    "wall_ms_t2",
    "hit_wall_us",
    "miss_wall_ms",
    "total_wall_ms",
    "clean_wall_ms",
    "chaos_wall_ms",
    "throughput_rps",
];

/// Keys derived from the host machine: reported, never gating.
pub const INFO_KEYS: [&str; 1] = ["threads_available"];

/// The derived ratio gated by [`DiffOptions::speedup_floor`] instead of
/// baseline drift.
pub const SPEEDUP_KEY: &str = "par_speedup";

/// The derived regression statistic gated by [`DiffOptions::r2_floor`]
/// instead of baseline drift.
pub const R2_KEY: &str = "r2";

/// Absolute noise floor for microsecond timings (`wall_us`).
const FLOOR_US: f64 = 200.0;
/// Absolute noise floor for millisecond timings (`*_ms`).
const FLOOR_MS: f64 = 0.5;

/// Options for [`diff`].
#[derive(Clone, Copy, Debug)]
pub struct DiffOptions {
    /// Relative tolerance for wall-time keys (0.30 = ±30 %).
    pub wall_tolerance: f64,
    /// Minimum acceptable `par_speedup` wherever it is measured next to a
    /// `seq_wall_ms` (see module docs).
    pub speedup_floor: f64,
    /// The speedup floor only gates when the candidate host reports at
    /// least this many threads — a 1-core runner cannot speed anything
    /// up, and its honest sub-1.0 ratios must not fail the gate.
    pub speedup_min_threads: u64,
    /// The speedup floor only gates problems whose sequential wall is at
    /// least this many milliseconds; below it the ratio is noise.
    pub speedup_noise_floor_ms: f64,
    /// Minimum acceptable `r2` wherever a fitted asymptotic class is
    /// reported (the curves panels): a fit this poor means the measured
    /// series no longer has the committed shape.
    pub r2_floor: f64,
}

impl Default for DiffOptions {
    fn default() -> Self {
        Self {
            wall_tolerance: 0.30,
            speedup_floor: 1.5,
            speedup_min_threads: 8,
            speedup_noise_floor_ms: 5.0,
            r2_floor: 0.8,
        }
    }
}

/// One divergence between baseline and candidate.
#[derive(Clone, PartialEq, Debug)]
pub struct Finding {
    /// Path into the document, e.g.
    /// `"000/E1/trees/cole-vishkin" . trace.counters.rounds`.
    pub path: String,
    /// Human-readable description of the divergence.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.path, self.message)
    }
}

/// The outcome of a baseline diff.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct DiffReport {
    /// Gating divergences — any entry here means the gate fails.
    pub regressions: Vec<Finding>,
    /// Non-gating observations (wall drift inside tolerance is *not*
    /// noted; informational keys and such are).
    pub notes: Vec<Finding>,
}

impl DiffReport {
    /// `true` when nothing gating diverged.
    pub fn is_clean(&self) -> bool {
        self.regressions.is_empty()
    }
}

/// Diffs `new` against `base` under the gate's rules (see module docs).
pub fn diff(base: &JsonValue, new: &JsonValue, opts: DiffOptions) -> DiffReport {
    let mut report = DiffReport::default();
    walk(base, new, "", "", opts, &mut report);
    gate_speedups(new, opts, &mut report);
    gate_r2(new, "", opts, &mut report);
    report
}

/// Enforces the `r2` floor over the candidate document: every object
/// carrying both `fitted_class` and [`R2_KEY`] (a curves panel) must
/// keep its fit quality at or above [`DiffOptions::r2_floor`].
fn gate_r2(new: &JsonValue, path: &str, opts: DiffOptions, report: &mut DiffReport) {
    match new {
        JsonValue::Obj(entries) => {
            if let (Some(JsonValue::Str(class)), Some(r2)) =
                (new.get("fitted_class"), new.get(R2_KEY).and_then(parse_num))
            {
                if r2 < opts.r2_floor {
                    report.regressions.push(Finding {
                        path: display_path(&join(path, R2_KEY)),
                        message: format!(
                            "fit quality {r2} for class \"{class}\" is below the {} floor",
                            opts.r2_floor
                        ),
                    });
                }
            }
            for (k, v) in entries {
                gate_r2(v, &join(path, k), opts, report);
            }
        }
        JsonValue::Arr(items) => {
            for (i, v) in items.iter().enumerate() {
                gate_r2(v, &format!("{path}[{i}]"), opts, report);
            }
        }
        _ => {}
    }
}

/// Enforces the `par_speedup` floor over the candidate document: every
/// object holding both [`SPEEDUP_KEY`] and `seq_wall_ms` is checked
/// (see module docs for when the floor actually gates).
fn gate_speedups(new: &JsonValue, opts: DiffOptions, report: &mut DiffReport) {
    let threads = new
        .get("threads_available")
        .and_then(parse_num)
        .unwrap_or(0.0) as u64;
    if threads < opts.speedup_min_threads {
        if !find_speedup_objects(new, "").is_empty() {
            report.notes.push(Finding {
                path: "(document root)".into(),
                message: format!(
                    "par_speedup floor not gated: host reports {threads} thread(s), \
                     gate needs {}",
                    opts.speedup_min_threads
                ),
            });
        }
        return;
    }
    for (path, speedup, seq_wall_ms) in find_speedup_objects(new, "") {
        if seq_wall_ms < opts.speedup_noise_floor_ms {
            report.notes.push(Finding {
                path: display_path(&path),
                message: format!(
                    "par_speedup {speedup} not gated: seq wall {seq_wall_ms} ms is \
                     below the {} ms noise floor",
                    opts.speedup_noise_floor_ms
                ),
            });
        } else if speedup < opts.speedup_floor {
            report.regressions.push(Finding {
                path: display_path(&join(&path, SPEEDUP_KEY)),
                message: format!(
                    "parallel speedup {speedup} is below the {} floor \
                     (seq {seq_wall_ms} ms, {threads} threads available)",
                    opts.speedup_floor
                ),
            });
        }
    }
}

fn parse_num(v: &JsonValue) -> Option<f64> {
    match v {
        JsonValue::Num(raw) => raw.parse().ok(),
        _ => None,
    }
}

/// Every object in `doc` measuring a parallel speedup, as
/// `(path, par_speedup, seq_wall_ms)` triples in document order.
fn find_speedup_objects(doc: &JsonValue, path: &str) -> Vec<(String, f64, f64)> {
    let mut found = Vec::new();
    collect_speedup_objects(doc, path, &mut found);
    found
}

fn collect_speedup_objects(doc: &JsonValue, path: &str, found: &mut Vec<(String, f64, f64)>) {
    match doc {
        JsonValue::Obj(entries) => {
            if let (Some(speedup), Some(seq)) = (
                doc.get(SPEEDUP_KEY).and_then(parse_num),
                doc.get("seq_wall_ms").and_then(parse_num),
            ) {
                found.push((path.to_string(), speedup, seq));
            }
            for (k, v) in entries {
                collect_speedup_objects(v, &join(path, k), found);
            }
        }
        JsonValue::Arr(items) => {
            for (i, v) in items.iter().enumerate() {
                collect_speedup_objects(v, &format!("{path}[{i}]"), found);
            }
        }
        _ => {}
    }
}

fn join(path: &str, key: &str) -> String {
    if path.is_empty() {
        // Top-level keys are stage names; quote them so the stage is
        // unmistakable in gate output.
        format!("\"{key}\"")
    } else {
        format!("{path}.{key}")
    }
}

fn walk(
    base: &JsonValue,
    new: &JsonValue,
    path: &str,
    key: &str,
    opts: DiffOptions,
    report: &mut DiffReport,
) {
    if std::mem::discriminant(base) != std::mem::discriminant(new) {
        report.regressions.push(Finding {
            path: display_path(path),
            message: format!(
                "type changed from {} to {}",
                base.type_name(),
                new.type_name()
            ),
        });
        return;
    }
    match (base, new) {
        (JsonValue::Obj(base_entries), JsonValue::Obj(new_entries)) => {
            for (k, base_v) in base_entries {
                match new.get(k) {
                    Some(new_v) => walk(base_v, new_v, &join(path, k), k, opts, report),
                    None => report.regressions.push(Finding {
                        path: display_path(&join(path, k)),
                        message: "missing from the new report".into(),
                    }),
                }
            }
            for (k, _) in new_entries {
                if base.get(k).is_none() {
                    report.regressions.push(Finding {
                        path: display_path(&join(path, k)),
                        message: "not present in the baseline (new key)".into(),
                    });
                }
            }
        }
        (JsonValue::Arr(base_items), JsonValue::Arr(new_items)) => {
            if base_items.len() != new_items.len() {
                report.regressions.push(Finding {
                    path: display_path(path),
                    message: format!(
                        "array length changed from {} to {}",
                        base_items.len(),
                        new_items.len()
                    ),
                });
                return;
            }
            for (i, (b, n)) in base_items.iter().zip(new_items).enumerate() {
                walk(b, n, &format!("{path}[{i}]"), key, opts, report);
            }
        }
        (JsonValue::Num(base_raw), JsonValue::Num(new_raw)) => {
            compare_numbers(base_raw, new_raw, path, key, opts, report);
        }
        _ => {
            if base != new {
                report.regressions.push(Finding {
                    path: display_path(path),
                    message: format!("value changed from {base:?} to {new:?}"),
                });
            }
        }
    }
}

fn display_path(path: &str) -> String {
    if path.is_empty() {
        "(document root)".into()
    } else {
        path.to_string()
    }
}

fn compare_numbers(
    base_raw: &str,
    new_raw: &str,
    path: &str,
    key: &str,
    opts: DiffOptions,
    report: &mut DiffReport,
) {
    if base_raw == new_raw {
        return;
    }
    if key == SPEEDUP_KEY {
        report.notes.push(Finding {
            path: display_path(path),
            message: format!("{base_raw} -> {new_raw} (derived ratio; gated by floor, not drift)"),
        });
        return;
    }
    if key == R2_KEY {
        report.notes.push(Finding {
            path: display_path(path),
            message: format!("{base_raw} -> {new_raw} (fit statistic; gated by floor, not drift)"),
        });
        return;
    }
    if INFO_KEYS.contains(&key) {
        report.notes.push(Finding {
            path: display_path(path),
            message: format!("{base_raw} -> {new_raw} (informational, host-dependent)"),
        });
        return;
    }
    if WALL_KEYS.contains(&key) {
        let (base_v, new_v) = match (base_raw.parse::<f64>(), new_raw.parse::<f64>()) {
            (Ok(b), Ok(n)) => (b, n),
            _ => {
                report.regressions.push(Finding {
                    path: display_path(path),
                    message: format!("unparseable wall time ({base_raw} -> {new_raw})"),
                });
                return;
            }
        };
        let floor = if key == "wall_us" { FLOOR_US } else { FLOOR_MS };
        let drift = (new_v - base_v).abs();
        if drift > floor && drift > base_v.abs() * opts.wall_tolerance {
            report.regressions.push(Finding {
                path: display_path(path),
                message: format!(
                    "wall time drifted {base_raw} -> {new_raw} \
                     (>{:.0} % beyond the {floor} noise floor)",
                    opts.wall_tolerance * 100.0
                ),
            });
        }
        return;
    }
    report.regressions.push(Finding {
        path: display_path(path),
        message: format!("counter changed from {base_raw} to {new_raw}"),
    });
}

/// The committed baseline schemas.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Schema {
    /// `BENCH_obs.json`: a [`lcl_obs::Registry`] dump — panel label →
    /// `{order, trace}`.
    Obs,
    /// `BENCH_re_engine.json`: the round-elimination engine report.
    ReEngine,
    /// `BENCH_service.json`: the classification-service report.
    Service,
    /// `BENCH_curves.json`: fitted asymptotic classes per panel.
    Curves,
    /// `BENCH_shard.json`: the sharded-substrate report.
    Shard,
    /// `BENCH_procshard.json`: the process-per-shard substrate report.
    ProcShard,
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Obs => write!(f, "obs registry"),
            Self::ReEngine => write!(f, "re-engine report"),
            Self::Service => write!(f, "service report"),
            Self::Curves => write!(f, "curves report"),
            Self::Shard => write!(f, "shard report"),
            Self::ProcShard => write!(f, "procshard report"),
        }
    }
}

/// Guesses which baseline schema a document uses: `"bench": "service"`
/// marks the service report, `"bench": "curves"` the curves report,
/// `"bench": "shard"` the shard report, `"bench": "procshard"` the
/// process-per-shard report, any other `"bench"` the re-engine report,
/// and its absence the obs registry.
pub fn detect_schema(doc: &JsonValue) -> Schema {
    match doc.get("bench") {
        Some(JsonValue::Str(kind)) if kind.as_str() == "service" => Schema::Service,
        Some(JsonValue::Str(kind)) if kind.as_str() == "curves" => Schema::Curves,
        Some(JsonValue::Str(kind)) if kind.as_str() == "shard" => Schema::Shard,
        Some(JsonValue::Str(kind)) if kind.as_str() == "procshard" => Schema::ProcShard,
        Some(_) => Schema::ReEngine,
        None => Schema::Obs,
    }
}

/// Validates `doc` against `schema`; returns every violation.
pub fn check_schema(doc: &JsonValue, schema: Schema) -> Vec<Finding> {
    let mut errors = Vec::new();
    match schema {
        Schema::Obs => check_obs(doc, &mut errors),
        Schema::ReEngine => check_re_engine(doc, &mut errors),
        Schema::Service => check_service(doc, &mut errors),
        Schema::Curves => check_curves(doc, &mut errors),
        Schema::Shard => check_shard(doc, &mut errors),
        Schema::ProcShard => check_procshard(doc, &mut errors),
    }
    errors
}

fn fail(errors: &mut Vec<Finding>, path: &str, message: impl Into<String>) {
    errors.push(Finding {
        path: display_path(path),
        message: message.into(),
    });
}

fn require_num(obj: &JsonValue, key: &str, path: &str, errors: &mut Vec<Finding>) {
    match obj.get(key) {
        Some(JsonValue::Num(_)) => {}
        Some(other) => fail(
            errors,
            &join(path, key),
            format!("expected a number, found {}", other.type_name()),
        ),
        None => fail(errors, &join(path, key), "required key is missing"),
    }
}

fn check_obs(doc: &JsonValue, errors: &mut Vec<Finding>) {
    let Some(entries) = doc.as_obj() else {
        fail(errors, "", "top level must be an object of panels");
        return;
    };
    if entries.is_empty() {
        fail(errors, "", "registry has no panels");
    }
    for (label, panel) in entries {
        let path = join("", label);
        require_num(panel, "order", &path, errors);
        match panel.get("trace") {
            Some(trace) => check_span(trace, &format!("{path}.trace"), errors),
            None => fail(errors, &join(&path, "trace"), "required key is missing"),
        }
    }
}

fn check_span(span: &JsonValue, path: &str, errors: &mut Vec<Finding>) {
    if span.as_obj().is_none() {
        fail(errors, path, "span must be an object");
        return;
    }
    match span.get("name") {
        Some(JsonValue::Str(_)) => {}
        _ => fail(errors, &join(path, "name"), "span needs a string name"),
    }
    require_num(span, "wall_us", path, errors);
    match span.get("counters") {
        Some(JsonValue::Obj(counters)) => {
            for (counter, value) in counters {
                if !matches!(value, JsonValue::Num(_)) {
                    fail(
                        errors,
                        &join(&join(path, "counters"), counter),
                        format!("counter must be a number, found {}", value.type_name()),
                    );
                }
            }
        }
        _ => fail(
            errors,
            &join(path, "counters"),
            "span needs a counters object",
        ),
    }
    if let Some(hists) = span.get("hists") {
        match hists.as_obj() {
            Some(entries) => {
                for (name, hist) in entries {
                    let hist_path = join(&join(path, "hists"), name);
                    if hist.as_obj().is_none() {
                        fail(errors, &hist_path, "histogram must be an object");
                        continue;
                    }
                    require_num(hist, "count", &hist_path, errors);
                    require_num(hist, "sum", &hist_path, errors);
                }
            }
            None => fail(errors, &join(path, "hists"), "hists must be an object"),
        }
    }
    if let Some(children) = span.get("children") {
        match children.as_arr() {
            Some(items) => {
                for (i, child) in items.iter().enumerate() {
                    check_span(child, &format!("{}[{i}]", join(path, "children")), errors);
                }
            }
            None => fail(errors, &join(path, "children"), "children must be an array"),
        }
    }
}

fn check_re_engine(doc: &JsonValue, errors: &mut Vec<Finding>) {
    if doc.as_obj().is_none() {
        fail(errors, "", "top level must be an object");
        return;
    }
    match doc.get("bench") {
        Some(JsonValue::Str(_)) => {}
        _ => fail(errors, "\"bench\"", "required string key is missing"),
    }
    require_num(doc, "threads_available", "", errors);
    let Some(problems) = doc.get("problems").and_then(JsonValue::as_arr) else {
        fail(errors, "\"problems\"", "required array key is missing");
        return;
    };
    for (i, problem) in problems.iter().enumerate() {
        let path = format!("\"problems\"[{i}]");
        if problem.as_obj().is_none() {
            fail(errors, &path, "problem entry must be an object");
            continue;
        }
        match problem.get("name") {
            Some(JsonValue::Str(_)) => {}
            _ => fail(errors, &join(&path, "name"), "problem needs a string name"),
        }
        for key in [
            "f_steps",
            "seq_wall_ms",
            "par_wall_ms",
            "par_speedup",
            "node_cache_hits",
            "node_cache_misses",
        ] {
            require_num(problem, key, &path, errors);
        }
        let Some(levels) = problem.get("levels").and_then(JsonValue::as_arr) else {
            fail(
                errors,
                &join(&path, "levels"),
                "required array key is missing",
            );
            continue;
        };
        for (j, level) in levels.iter().enumerate() {
            let level_path = format!("{}[{j}]", join(&path, "levels"));
            if level.as_obj().is_none() {
                fail(errors, &level_path, "level entry must be an object");
                continue;
            }
            for key in [
                "level",
                "labels_full",
                "labels",
                "configurations",
                "cache_hits",
                "cache_misses",
                "wall_ms",
            ] {
                require_num(level, key, &level_path, errors);
            }
            match level.get("fixpoint_of") {
                Some(JsonValue::Num(_) | JsonValue::Null) => {}
                Some(other) => fail(
                    errors,
                    &join(&level_path, "fixpoint_of"),
                    format!("must be a number or null, found {}", other.type_name()),
                ),
                None => fail(
                    errors,
                    &join(&level_path, "fixpoint_of"),
                    "required key is missing",
                ),
            }
        }
    }
    // The 1/2/8-thread sweep feeding the speedup gate.
    match doc.get("thread_sweep") {
        Some(sweep) => {
            let path = "\"thread_sweep\"";
            if sweep.as_obj().is_none() {
                fail(errors, path, "thread sweep must be an object");
                return;
            }
            match sweep.get("name") {
                Some(JsonValue::Str(_)) => {}
                _ => fail(errors, &join(path, "name"), "sweep needs a string name"),
            }
            for key in [
                "f_steps",
                "seq_wall_ms",
                "wall_ms_t2",
                "par_wall_ms",
                "par_speedup",
            ] {
                require_num(sweep, key, path, errors);
            }
        }
        None => fail(errors, "\"thread_sweep\"", "required key is missing"),
    }
}

fn check_service(doc: &JsonValue, errors: &mut Vec<Finding>) {
    if doc.as_obj().is_none() {
        fail(errors, "", "top level must be an object");
        return;
    }
    match doc.get("bench") {
        Some(JsonValue::Str(kind)) if kind.as_str() == "service" => {}
        Some(_) => fail(errors, "\"bench\"", "must be the string \"service\""),
        None => fail(errors, "\"bench\"", "required string key is missing"),
    }
    // Counters first (seed-determined, diffed bit-exact), then the
    // host-dependent wall keys (diffed under tolerance).
    for key in [
        "threads_available",
        "workers",
        "requests",
        "unique_problems",
        "computed",
        "served_from_cache",
        "dedup_permille",
        "store_entries",
        "duplicates_in_mix",
        "resumed_jobs",
        "resume_fingerprint_match",
        "hit_wall_us",
        "miss_wall_ms",
        "total_wall_ms",
        "throughput_rps",
    ] {
        require_num(doc, key, "", errors);
    }
}

fn check_shard(doc: &JsonValue, errors: &mut Vec<Finding>) {
    if doc.as_obj().is_none() {
        fail(errors, "", "top level must be an object");
        return;
    }
    match doc.get("bench") {
        Some(JsonValue::Str(kind)) if kind.as_str() == "shard" => {}
        Some(_) => fail(errors, "\"bench\"", "must be the string \"shard\""),
        None => fail(errors, "\"bench\"", "required string key is missing"),
    }
    // Deterministic counters first (diffed bit-exact), then the one
    // host-dependent wall key (diffed under tolerance).
    for key in [
        "shards",
        "runner_threads",
        "nodes",
        "edges",
        "supersteps",
        "messages",
        "halo_messages",
        "halo_bytes",
        "shards_crashed",
        "shards_rebuilt",
        "checkpoints",
        "frontier_nodes",
        "repaired_nodes",
        "certified",
        "total_wall_ms",
    ] {
        require_num(doc, key, "", errors);
    }
}

fn check_procshard(doc: &JsonValue, errors: &mut Vec<Finding>) {
    if doc.as_obj().is_none() {
        fail(errors, "", "top level must be an object");
        return;
    }
    match doc.get("bench") {
        Some(JsonValue::Str(kind)) if kind.as_str() == "procshard" => {}
        Some(_) => fail(errors, "\"bench\"", "must be the string \"procshard\""),
        None => fail(errors, "\"bench\"", "required string key is missing"),
    }
    // Deterministic counters first (diffed bit-exact), then the
    // host-dependent wall keys (diffed under tolerance).
    for key in [
        "shards",
        "nodes",
        "edges",
        "supersteps",
        "messages",
        "halo_messages",
        "halo_bytes",
        "kills_injected",
        "respawns",
        "rehydrated_shards",
        "faults",
        "certified",
        "clean_wall_ms",
        "chaos_wall_ms",
        "total_wall_ms",
    ] {
        require_num(doc, key, "", errors);
    }
}

fn check_curves(doc: &JsonValue, errors: &mut Vec<Finding>) {
    if doc.as_obj().is_none() {
        fail(errors, "", "top level must be an object");
        return;
    }
    match doc.get("bench") {
        Some(JsonValue::Str(kind)) if kind.as_str() == "curves" => {}
        Some(_) => fail(errors, "\"bench\"", "must be the string \"curves\""),
        None => fail(errors, "\"bench\"", "required string key is missing"),
    }
    let Some(panels) = doc.get("panels").and_then(JsonValue::as_obj) else {
        fail(errors, "\"panels\"", "required object key is missing");
        return;
    };
    if panels.is_empty() {
        fail(errors, "\"panels\"", "curves report has no panels");
    }
    for (name, panel) in panels {
        let path = join("\"panels\"", name);
        if panel.as_obj().is_none() {
            fail(errors, &path, "panel must be an object");
            continue;
        }
        match panel.get("fitted_class") {
            Some(JsonValue::Str(_)) => {}
            _ => fail(
                errors,
                &join(&path, "fitted_class"),
                "panel needs a string fitted class",
            ),
        }
        require_num(panel, R2_KEY, &path, errors);
        let mut point_count = None;
        for key in ["ns", "counts"] {
            match panel.get(key).and_then(JsonValue::as_arr) {
                Some(items) if items.len() >= 2 => match point_count {
                    None => point_count = Some(items.len()),
                    Some(expected) if expected != items.len() => fail(
                        errors,
                        &join(&path, key),
                        format!("expected {expected} points, found {}", items.len()),
                    ),
                    Some(_) => {}
                },
                Some(items) => fail(
                    errors,
                    &join(&path, key),
                    format!("a fit needs at least 2 points, found {}", items.len()),
                ),
                None => fail(errors, &join(&path, key), "required array key is missing"),
            }
        }
        if let Some(avg) = panel.get("node_averaged") {
            match avg.as_arr() {
                Some(items) => {
                    if let Some(expected) = point_count {
                        if items.len() != expected {
                            fail(
                                errors,
                                &join(&path, "node_averaged"),
                                format!("expected {expected} points, found {}", items.len()),
                            );
                        }
                    }
                }
                None => fail(
                    errors,
                    &join(&path, "node_averaged"),
                    "node_averaged must be an array",
                ),
            }
        }
        // The whole point of the curves gate: no wall keys may sneak in.
        if let Some(entries) = panel.as_obj() {
            for (k, _) in entries {
                if WALL_KEYS.contains(&k.as_str()) {
                    fail(
                        errors,
                        &join(&path, k),
                        "wall-clock keys are not allowed in the curves schema",
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    fn obs_doc() -> JsonValue {
        parse(
            r#"{
              "E1/trees/cole-vishkin": {
                "order": 0,
                "trace": {
                  "name": "local/sync",
                  "wall_us": 412,
                  "counters": {"rounds": 4, "messages": 1600, "nodes": 200},
                  "hists": {"view-nodes": {"count": 4, "sum": 10, "buckets": {"2": 4}}},
                  "children": [
                    {"name": "round", "wall_us": 90, "counters": {"messages": 400}}
                  ]
                }
              }
            }"#,
        )
        .expect("valid obs doc")
    }

    fn bump_counter(doc: &mut JsonValue, counter: &str) {
        // Fabricate a +1 on a counter inside the first panel's trace.
        let JsonValue::Obj(panels) = doc else {
            panic!()
        };
        let JsonValue::Obj(panel) = &mut panels[0].1 else {
            panic!()
        };
        let trace = &mut panel
            .iter_mut()
            .find(|(k, _)| k == "trace")
            .expect("trace")
            .1;
        let JsonValue::Obj(span) = trace else {
            panic!()
        };
        let counters = &mut span
            .iter_mut()
            .find(|(k, _)| k == "counters")
            .expect("counters")
            .1;
        let JsonValue::Obj(counters) = counters else {
            panic!()
        };
        let value = &mut counters
            .iter_mut()
            .find(|(k, _)| k == counter)
            .expect("counter")
            .1;
        let JsonValue::Num(raw) = value else { panic!() };
        let bumped = raw.parse::<u64>().expect("integer counter") + 1;
        *raw = bumped.to_string();
    }

    #[test]
    fn identical_documents_are_clean() {
        let doc = obs_doc();
        let report = diff(&doc, &doc, DiffOptions::default());
        assert!(report.is_clean(), "unexpected: {:?}", report.regressions);
        assert!(report.notes.is_empty());
    }

    #[test]
    fn fabricated_counter_bump_regresses_and_names_stage_and_counter() {
        let base = obs_doc();
        let mut new = base.clone();
        bump_counter(&mut new, "rounds");
        let report = diff(&base, &new, DiffOptions::default());
        assert_eq!(report.regressions.len(), 1);
        let text = report.regressions[0].to_string();
        assert!(
            text.contains("E1/trees/cole-vishkin"),
            "stage missing: {text}"
        );
        assert!(text.contains("rounds"), "counter missing: {text}");
        assert!(text.contains("4 to 5"), "values missing: {text}");
    }

    #[test]
    fn wall_time_drift_inside_tolerance_is_ignored() {
        let base = obs_doc();
        let mut new = base.clone();
        // 412 µs -> 500 µs is +21 %, inside ±30 % (and the floor).
        let JsonValue::Obj(panels) = &mut new else {
            panic!()
        };
        let JsonValue::Obj(panel) = &mut panels[0].1 else {
            panic!()
        };
        let JsonValue::Obj(span) = &mut panel[1].1 else {
            panic!()
        };
        span[1].1 = JsonValue::Num("500".into());
        let report = diff(&base, &new, DiffOptions::default());
        assert!(report.is_clean(), "unexpected: {:?}", report.regressions);
    }

    #[test]
    fn wall_time_blowup_regresses() {
        let base = obs_doc();
        let mut new = base.clone();
        let JsonValue::Obj(panels) = &mut new else {
            panic!()
        };
        let JsonValue::Obj(panel) = &mut panels[0].1 else {
            panic!()
        };
        let JsonValue::Obj(span) = &mut panel[1].1 else {
            panic!()
        };
        // 412 µs -> 2000 µs: way past both tolerance and floor.
        span[1].1 = JsonValue::Num("2000".into());
        let report = diff(&base, &new, DiffOptions::default());
        assert_eq!(report.regressions.len(), 1);
        assert!(report.regressions[0].path.contains("wall_us"));
    }

    #[test]
    fn missing_and_extra_keys_are_structural_regressions() {
        let base = parse(r#"{"s": {"a": 1, "b": 2}}"#).expect("valid");
        let new = parse(r#"{"s": {"a": 1, "c": 3}}"#).expect("valid");
        let report = diff(&base, &new, DiffOptions::default());
        let text: Vec<String> = report.regressions.iter().map(Finding::to_string).collect();
        assert_eq!(report.regressions.len(), 2, "{text:?}");
        assert!(text[0].contains("missing"), "{text:?}");
        assert!(text[1].contains("new key"), "{text:?}");
    }

    #[test]
    fn informational_keys_only_note() {
        let base = parse(r#"{"par_speedup": 3.1, "threads_available": 16}"#).expect("valid");
        let new = parse(r#"{"par_speedup": 1.2, "threads_available": 4}"#).expect("valid");
        let report = diff(&base, &new, DiffOptions::default());
        assert!(report.is_clean());
        assert_eq!(report.notes.len(), 2);
    }

    fn speedup_doc(threads: u64, speedup: f64, seq_wall_ms: f64) -> JsonValue {
        parse(&format!(
            r#"{{"threads_available": {threads},
                 "problems": [{{"name": "e1", "seq_wall_ms": {seq_wall_ms},
                                "par_wall_ms": 1.0, "par_speedup": {speedup}}}]}}"#
        ))
        .expect("valid")
    }

    #[test]
    fn speedup_below_floor_regresses_on_a_big_host() {
        let base = speedup_doc(8, 2.1, 100.0);
        let new = speedup_doc(8, 1.1, 100.0);
        let report = diff(&base, &new, DiffOptions::default());
        assert_eq!(report.regressions.len(), 1, "{report:?}");
        let text = report.regressions[0].to_string();
        assert!(text.contains("par_speedup"), "{text}");
        assert!(text.contains("below the 1.5 floor"), "{text}");
        // Meeting the floor is clean even when the ratio drifted.
        let ok = speedup_doc(8, 1.8, 100.0);
        assert!(diff(&base, &ok, DiffOptions::default()).is_clean());
    }

    #[test]
    fn speedup_floor_is_inert_on_small_hosts_and_small_problems() {
        // A 1-thread host cannot speed anything up: note, don't gate.
        let base = speedup_doc(1, 0.9, 100.0);
        let report = diff(&base, &base, DiffOptions::default());
        assert!(report.is_clean(), "{report:?}");
        assert!(report.notes.iter().any(|n| n.message.contains("not gated")));
        // On a big host, a sub-floor ratio on a tiny problem is noise.
        let tiny = speedup_doc(8, 0.7, 0.4);
        let report = diff(&tiny, &tiny, DiffOptions::default());
        assert!(report.is_clean(), "{report:?}");
        assert!(report
            .notes
            .iter()
            .any(|n| n.message.contains("noise floor")));
    }

    #[test]
    fn raw_text_comparison_is_bit_exact() {
        // 1.50 vs 1.5 are numerically equal but textually different:
        // counters must be bit-identical.
        let base = parse(r#"{"s": {"probes": 1.50}}"#).expect("valid");
        let new = parse(r#"{"s": {"probes": 1.5}}"#).expect("valid");
        let report = diff(&base, &new, DiffOptions::default());
        assert_eq!(report.regressions.len(), 1);
    }

    #[test]
    fn array_length_change_regresses() {
        let base = parse(r#"{"levels": [1, 2, 3]}"#).expect("valid");
        let new = parse(r#"{"levels": [1, 2]}"#).expect("valid");
        let report = diff(&base, &new, DiffOptions::default());
        assert_eq!(report.regressions.len(), 1);
        assert!(report.regressions[0].message.contains("3 to 2"));
    }

    #[test]
    fn schema_detection_and_validation() {
        let obs = obs_doc();
        assert_eq!(detect_schema(&obs), Schema::Obs);
        assert!(check_schema(&obs, Schema::Obs).is_empty());

        let re = parse(
            r#"{
              "bench": "re_engine",
              "threads_available": 8,
              "problems": [{
                "name": "3-coloring",
                "f_steps": 2, "seq_wall_ms": 1.2, "par_wall_ms": 0.8,
                "par_speedup": 1.5, "node_cache_hits": 10, "node_cache_misses": 4,
                "levels": [{
                  "level": 1, "labels_full": 6, "labels": 6, "configurations": 20,
                  "cache_hits": 5, "cache_misses": 2, "fixpoint_of": null, "wall_ms": 0.6
                }]
              }],
              "thread_sweep": {
                "name": "3-coloring", "f_steps": 2, "seq_wall_ms": 12.0,
                "wall_ms_t2": 7.0, "par_wall_ms": 5.0, "par_speedup": 2.4
              }
            }"#,
        )
        .expect("valid re doc");
        assert_eq!(detect_schema(&re), Schema::ReEngine);
        assert!(check_schema(&re, Schema::ReEngine).is_empty());

        // Break the re doc: drop a required level counter.
        let mut broken = re.clone();
        let JsonValue::Obj(top) = &mut broken else {
            panic!()
        };
        let JsonValue::Arr(problems) = &mut top[2].1 else {
            panic!()
        };
        let JsonValue::Obj(problem) = &mut problems[0] else {
            panic!()
        };
        let JsonValue::Arr(levels) = &mut problem.last_mut().expect("levels").1 else {
            panic!()
        };
        let JsonValue::Obj(level) = &mut levels[0] else {
            panic!()
        };
        level.retain(|(k, _)| k != "configurations");
        let errors = check_schema(&broken, Schema::ReEngine);
        assert_eq!(errors.len(), 1);
        assert!(errors[0].path.contains("configurations"));
    }

    #[test]
    fn service_schema_detection_and_validation() {
        let service = parse(
            r#"{
              "bench": "service",
              "threads_available": 8, "workers": 4, "requests": 1000,
              "unique_problems": 700, "computed": 700,
              "served_from_cache": 300, "dedup_permille": 300,
              "store_entries": 700, "duplicates_in_mix": 300,
              "resumed_jobs": 1, "resume_fingerprint_match": 1,
              "hit_wall_us": 310.0, "miss_wall_ms": 1.2,
              "total_wall_ms": 900.0, "throughput_rps": 1100.0
            }"#,
        )
        .expect("valid service doc");
        assert_eq!(detect_schema(&service), Schema::Service);
        assert!(check_schema(&service, Schema::Service).is_empty());

        // Dropping a dedup counter is a schema violation, not a silently
        // ungated key.
        let mut broken = service.clone();
        let JsonValue::Obj(top) = &mut broken else {
            panic!()
        };
        top.retain(|(k, _)| k != "served_from_cache");
        let errors = check_schema(&broken, Schema::Service);
        assert_eq!(errors.len(), 1);
        assert!(errors[0].path.contains("served_from_cache"));

        // A different "bench" string stays on the re-engine schema.
        let re_marker = parse(r#"{"bench": "re_engine"}"#).expect("parses");
        assert_eq!(detect_schema(&re_marker), Schema::ReEngine);
    }

    #[test]
    fn shard_schema_detection_and_validation() {
        let shard = parse(
            r#"{
              "bench": "shard",
              "shards": 8, "runner_threads": 2,
              "nodes": 1000000, "edges": 999999,
              "supersteps": 16, "messages": 3999996,
              "halo_messages": 28, "halo_bytes": 224,
              "shards_crashed": 2, "shards_rebuilt": 2, "checkpoints": 2,
              "frontier_nodes": 41, "repaired_nodes": 17, "certified": 1,
              "total_wall_ms": 2200.0
            }"#,
        )
        .expect("valid shard doc");
        assert_eq!(detect_schema(&shard), Schema::Shard);
        assert!(check_schema(&shard, Schema::Shard).is_empty());

        // Dropping a recovery counter is a schema violation.
        let mut broken = shard.clone();
        let JsonValue::Obj(top) = &mut broken else {
            panic!()
        };
        top.retain(|(k, _)| k != "shards_rebuilt");
        let errors = check_schema(&broken, Schema::Shard);
        assert_eq!(errors.len(), 1);
        assert!(errors[0].path.contains("shards_rebuilt"));
    }

    fn curves_doc(class: &str, r2: f64) -> JsonValue {
        parse(&format!(
            r#"{{"bench": "curves",
                 "panels": {{
                   "trees/cole-vishkin-rounds": {{
                     "fitted_class": "{class}", "r2": {r2},
                     "ns": [16, 1024, 1048576], "counts": [3, 4, 4]
                   }},
                   "volume/const-probe": {{
                     "fitted_class": "1", "r2": 1.0,
                     "ns": [16, 64], "counts": [2, 2],
                     "node_averaged": [1.5, 1.5]
                   }}
                 }}}}"#
        ))
        .expect("valid curves doc")
    }

    #[test]
    fn curves_schema_detection_and_validation() {
        let doc = curves_doc("log* n", 0.97);
        assert_eq!(detect_schema(&doc), Schema::Curves);
        assert!(check_schema(&doc, Schema::Curves).is_empty());

        // A wall key inside a panel is a schema violation: the curves
        // gate must stay wall-free by construction.
        let polluted = parse(
            r#"{"bench": "curves", "panels": {"p": {
                 "fitted_class": "1", "r2": 1.0,
                 "ns": [1, 2], "counts": [5, 5], "wall_ms": 3.0}}}"#,
        )
        .expect("parses");
        let errors = check_schema(&polluted, Schema::Curves);
        assert_eq!(errors.len(), 1, "{errors:?}");
        assert!(errors[0].message.contains("wall-clock"), "{errors:?}");

        // Misaligned series lengths are caught.
        let ragged = parse(
            r#"{"bench": "curves", "panels": {"p": {
                 "fitted_class": "n", "r2": 0.99,
                 "ns": [1, 2, 3], "counts": [5, 6]}}}"#,
        )
        .expect("parses");
        let errors = check_schema(&ragged, Schema::Curves);
        assert_eq!(errors.len(), 1, "{errors:?}");
        assert!(errors[0].path.contains("counts"), "{errors:?}");
    }

    #[test]
    fn fitted_class_flip_regresses_and_names_the_panel() {
        // The acceptance scenario: a candidate whose Cole–Vishkin panel
        // now fits log n against a log* n baseline must fail, naming
        // the panel — even though its R² is excellent.
        let base = curves_doc("log* n", 0.97);
        let new = curves_doc("log n", 0.99);
        let report = diff(&base, &new, DiffOptions::default());
        assert_eq!(report.regressions.len(), 1, "{report:?}");
        let text = report.regressions[0].to_string();
        assert!(text.contains("trees/cole-vishkin-rounds"), "{text}");
        assert!(text.contains("log* n"), "{text}");
        assert!(text.contains("log n"), "{text}");
        // The r2 drift rides along as a note, never a regression.
        assert!(report
            .notes
            .iter()
            .any(|n| n.message.contains("gated by floor")));
    }

    #[test]
    fn r2_below_the_floor_regresses_even_unchanged() {
        let bad = curves_doc("log* n", 0.42);
        let report = diff(&bad, &bad, DiffOptions::default());
        assert_eq!(report.regressions.len(), 1, "{report:?}");
        let text = report.regressions[0].to_string();
        assert!(text.contains("below the 0.8 floor"), "{text}");
        assert!(text.contains("trees/cole-vishkin-rounds"), "{text}");

        // At or above the floor, pure r2 drift stays clean.
        let base = curves_doc("log* n", 0.97);
        let drifted = curves_doc("log* n", 0.95);
        let report = diff(&base, &drifted, DiffOptions::default());
        assert!(report.is_clean(), "{report:?}");
        assert_eq!(report.notes.len(), 1);
    }

    #[test]
    fn committed_baselines_pass_their_schemas() {
        for (path, schema) in [
            ("../../BENCH_obs.json", Schema::Obs),
            ("../../BENCH_recover.json", Schema::Obs),
            ("../../BENCH_re_engine.json", Schema::ReEngine),
            ("../../BENCH_service.json", Schema::Service),
            ("../../BENCH_curves.json", Schema::Curves),
            ("../../BENCH_shard.json", Schema::Shard),
            ("../../BENCH_procshard.json", Schema::ProcShard),
        ] {
            let full = format!("{}/{path}", env!("CARGO_MANIFEST_DIR"));
            let text = std::fs::read_to_string(&full).expect("baseline exists");
            let doc = parse(&text).expect("baseline parses");
            assert_eq!(detect_schema(&doc), schema, "{path}");
            let errors = check_schema(&doc, schema);
            assert!(errors.is_empty(), "{path}: {errors:?}");
            // Self-diff must be clean: the gate's fixed point.
            assert!(diff(&doc, &doc, DiffOptions::default()).is_clean());
        }
    }
}
