//! Per-stage execution traces for every Figure 1 panel (E1–E4), written
//! to `BENCH_obs.json` at the repository root.
//!
//! Where the `fig1` tables report the *headline* numbers (rounds, probes,
//! radii), this module re-runs one representative stage per panel through
//! the instrumented `simulate*` entrypoints and collects the full
//! [`lcl_obs`] traces — per-level round-elimination spans, view/probe
//! counters, message counts — into a [`Registry`]. The JSON is the
//! registry's own rendering (spans nest as in the live run); wall-clock
//! fields are the only nondeterministic quantities in the file.

use lcl::OutLabel;
use lcl_core::{tree_speedup_traced, SpeedupOptions};
use lcl_faults::RunOptions;
use lcl_graph::gen;
use lcl_grid::{FnProdAlgorithm, OrientedGrid};
use lcl_local::IdAssignment;
use lcl_obs::{Counter, Registry, Trace};
use lcl_problems::cv::{orientation_inputs, ColeVishkin, Orientation};
use lcl_problems::{anti_matching, shortcut_path, ShortcutColoring};
use lcl_volume::lca::VolumeAsLca;

use crate::cells;
use crate::table::Table;
use crate::volume_algos::{ConstProbe, CvProbeColoring, TwoColorProbes};

/// E1 — trees: the Theorem 3.11 synthesis pipeline (per-level tower
/// spans) and runs of the synthesized O(1) algorithm and Cole–Vishkin.
fn collect_trees(reg: &Registry) {
    let anti = anti_matching(3);
    let report = tree_speedup_traced(&anti, SpeedupOptions::default());
    let alg = report
        .outcome
        .try_algorithm()
        .expect("why: anti-matching is o(log* n), so Theorem 3.11 synthesis must succeed");

    let tree = gen::random_tree(512, 3, 5);
    let input = lcl::uniform_input(&tree);
    let ids: Vec<u64> = (0..tree.node_count() as u64).map(|i| i * 3 + 1).collect();
    let synth =
        lcl_local::simulate_sync_with(&alg, &tree, &input, &ids, None, 10, RunOptions::new());
    reg.record("E1/trees/synthesized-o1", synth.trace);
    reg.record("E1/trees/speedup-pipeline", report.trace);

    let path = gen::path(512);
    let cv_input = orientation_inputs(&path, Orientation::Path);
    let cv_ids = IdAssignment::random_polynomial(path.node_count(), 3, 9);
    let cv = lcl_local::simulate_sync_with(
        &ColeVishkin,
        &path,
        &cv_input,
        &cv_ids.iter().collect::<Vec<_>>(),
        None,
        100,
        RunOptions::new(),
    );
    reg.record("E1/trees/cole-vishkin", cv.trace);
}

/// E2 — oriented grids: the O(1) constant pattern through the PROD-LOCAL
/// simulator and the `Θ(log* n)` row coloring through the sync simulator.
fn collect_grids(reg: &Registry) {
    let grid = OrientedGrid::new(&[8, 8]);
    let d = grid.dimension_count();
    let input = lcl::uniform_input(grid.graph());
    let prod_ids = lcl_grid::ProdIds::sequential(&grid);
    let pattern = FnProdAlgorithm::new(
        "constant-pattern",
        |_n| 1,
        move |_view| vec![OutLabel(0); 2 * d],
    );
    let o1 = lcl_grid::simulate_with(&pattern, &grid, &input, &prod_ids, None, RunOptions::new());
    reg.record("E2/grids/prod-local-pattern", o1.trace);

    let row_input = crate::grid_algos::dim_inputs(&grid);
    let ids = IdAssignment::random_polynomial(grid.node_count(), 3, 9);
    let rows = lcl_local::simulate_sync_with(
        &crate::grid_algos::RowColoring,
        grid.graph(),
        &row_input,
        &ids.iter().collect::<Vec<_>>(),
        None,
        10_000,
        RunOptions::new(),
    );
    reg.record("E2/grids/row-coloring", rows.trace);
}

/// E3 — shortcut graphs: the dense-region coloring through the LOCAL
/// simulator (view counters show the compressed radius at work).
fn collect_general(reg: &Registry) {
    let (g, input) = shortcut_path(6);
    let ids = IdAssignment::random_polynomial(g.node_count(), 3, 6);
    let run = lcl_local::simulate_with(
        &ShortcutColoring { radius: None },
        &g,
        &input,
        &ids,
        None,
        RunOptions::new(),
    );
    reg.record("E3/general/shortcut-coloring", run.trace);
}

/// E4 — the VOLUME model: probe traces for the three inhabited regimes,
/// plus the LCA embedding of the constant-probe algorithm.
fn collect_volume(reg: &Registry) {
    let n = 256;
    let cycle = gen::cycle(n);
    let cinput = lcl::uniform_input(&cycle);
    let cids = IdAssignment::random_polynomial(n, 3, 4);

    let o1 =
        lcl_volume::simulate_with(&ConstProbe, &cycle, &cinput, &cids, None, RunOptions::new())
            .expect("in budget");
    reg.record("E4/volume/const-probe", o1.trace);
    let cv = lcl_volume::simulate_with(
        &CvProbeColoring,
        &cycle,
        &cinput,
        &cids,
        None,
        RunOptions::new(),
    )
    .expect("in budget");
    reg.record("E4/volume/cv-coloring", cv.trace);

    let path = gen::path(n);
    let pinput = lcl::uniform_input(&path);
    let pids = IdAssignment::random_polynomial(n, 3, 5);
    let walk = lcl_volume::simulate_with(
        &TwoColorProbes,
        &path,
        &pinput,
        &pids,
        None,
        RunOptions::new(),
    )
    .expect("in budget");
    reg.record("E4/volume/two-color-walk", walk.trace);

    let lca_ids = IdAssignment::from_vec((1..=n as u64).collect());
    let lca = lcl_volume::simulate_lca_with(
        &VolumeAsLca(ConstProbe),
        &path,
        &pinput,
        &lca_ids,
        RunOptions::new(),
    )
    .expect("in budget");
    reg.record("E4/lca/const-probe", lca.trace);
}

/// Collects one registry covering all four panels. Deterministic up to
/// wall-clock: the set of labels, the span tree shapes, and every counter
/// are fixed (asserted by `tests/observability.rs`).
pub fn collect_registry() -> Registry {
    let reg = Registry::new();
    collect_trees(&reg);
    collect_grids(&reg);
    collect_general(&reg);
    collect_volume(&reg);
    reg
}

fn headline(trace: &Trace) -> String {
    // The most informative counter a panel stage has, in priority order.
    for c in [
        Counter::Rounds,
        Counter::MaxProbes,
        Counter::Radius,
        Counter::Steps,
    ] {
        if let Some(v) = trace.root().get(c) {
            return format!("{}={v}", c.as_str());
        }
    }
    "-".to_string()
}

/// Runs every panel stage instrumented, prints the per-stage summary, and
/// writes `BENCH_obs.json` at the repository root. Returns the table.
pub fn obs_report() -> Table {
    let mut table = Table::new(
        "OBS — per-stage execution traces for Figure 1 (E1–E4)",
        &["stage", "root span", "spans", "headline counter", "wall"],
    );
    let reg = collect_registry();
    for (label, trace) in reg.snapshot() {
        table.row(cells!(
            label,
            trace.root().name(),
            trace.span_count(),
            headline(&trace),
            format!("{:.2} ms", trace.root().wall().as_secs_f64() * 1e3)
        ));
    }

    let json = reg.to_json();
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_obs.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => println!("could not write {path}: {e}"),
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_covers_all_four_panels() {
        let reg = collect_registry();
        let labels: Vec<String> = reg.snapshot().into_iter().map(|(label, _)| label).collect();
        for panel in ["E1/", "E2/", "E3/", "E4/"] {
            assert!(
                labels.iter().any(|l| l.starts_with(panel)),
                "panel {panel} missing from {labels:?}"
            );
        }
        let json = reg.to_json();
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(json.contains("\"rounds\""));
        assert!(json.contains("\"max-probes\""));
    }

    #[test]
    fn speedup_pipeline_trace_has_level_spans() {
        let reg = Registry::new();
        collect_trees(&reg);
        let snapshot = reg.snapshot();
        let (_, pipeline) = snapshot
            .iter()
            .find(|(label, _)| label.ends_with("speedup-pipeline"))
            .expect("pipeline trace recorded");
        assert!(pipeline.find("level-1/r").is_some());
    }
}
