//! Minimal aligned-table printing for the experiment reports.

/// A simple text table with a title, a header, and aligned columns.
#[derive(Clone, Debug, Default)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given title and column headers.
    pub fn new(title: &str, header: &[&str]) -> Self {
        Self {
            title: title.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (stringified cells).
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.header.len(), "row arity matches header");
        self.rows.push(cells.to_vec());
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("\n== {} ==\n", self.title));
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Convenience: stringify a slice of displayable cells.
#[macro_export]
macro_rules! cells {
    ($($x:expr),* $(,)?) => {
        &[$(format!("{}", $x)),*]
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("demo", &["n", "rounds"]);
        t.row(cells!(16, 3));
        t.row(cells!(1024, 5));
        let s = t.render();
        assert!(s.contains("demo"));
        assert!(s.contains("1024"));
        let lines: Vec<&str> = s.lines().filter(|l| !l.is_empty()).collect();
        // Header + separator + 2 rows + title.
        assert_eq!(lines.len(), 5);
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_mismatch_panics() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(cells!(1));
    }
}
