//! Greedy fault-plan shrinker: given a [`FaultPlan`] that reproduces
//! some behavior (a degradation, a verifier violation, an output
//! divergence), find a minimal sub-plan that still reproduces it.
//!
//! The algorithm is ddmin-lite: repeatedly try dropping each fault (and
//! clearing the adversarial ID permutation), keep any reduction the
//! predicate still accepts, and stop at a fixpoint — a plan where
//! removing *any* single element loses the reproduction. Because faulted
//! executions are a pure function of `(seed, plan)`, the predicate is
//! deterministic and the result is, too.

use lcl_faults::{Fault, FaultPlan};

/// Rebuilds a plan from its parts — the shrinker's one mutation point.
fn rebuild(seed: u64, permute: bool, faults: &[Fault]) -> FaultPlan {
    let mut plan = FaultPlan::new(seed);
    if permute {
        plan = plan.with_permuted_ids();
    }
    for &fault in faults {
        plan = plan.with(fault);
    }
    plan
}

/// Shrinks `plan` to a locally-minimal plan still accepted by
/// `reproduces`. The input plan itself must reproduce; otherwise it is
/// returned unchanged. The number of predicate evaluations is
/// `O(faults^2)` in the worst case.
pub fn shrink_plan(plan: &FaultPlan, reproduces: impl Fn(&FaultPlan) -> bool) -> FaultPlan {
    if !reproduces(plan) {
        return plan.clone();
    }
    let seed = plan.seed();
    let mut permute = plan.permutes_ids();
    let mut faults: Vec<Fault> = plan.faults().to_vec();
    loop {
        let mut reduced = false;
        // Try clearing the ID permutation first: it is the most
        // confusing element of a repro, touching every node at once.
        if permute {
            let candidate = rebuild(seed, false, &faults);
            if reproduces(&candidate) {
                permute = false;
                reduced = true;
            }
        }
        // Then try dropping each fault, scanning from the back so index
        // bookkeeping stays trivial after a removal.
        let mut i = faults.len();
        while i > 0 {
            i -= 1;
            let mut candidate_faults = faults.clone();
            candidate_faults.remove(i);
            let candidate = rebuild(seed, permute, &candidate_faults);
            if reproduces(&candidate) {
                faults = candidate_faults;
                reduced = true;
            }
        }
        if !reduced {
            return rebuild(seed, permute, &faults);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan_with(faults: &[Fault], permute: bool) -> FaultPlan {
        rebuild(42, permute, faults)
    }

    #[test]
    fn drops_irrelevant_faults_and_the_permutation() {
        let culprit = Fault::Crash { node: 3, round: 0 };
        let plan = plan_with(
            &[
                Fault::CorruptView { node: 1, salt: 9 },
                culprit,
                Fault::PanicNode { node: 5 },
                Fault::ProbeLie { query: 2, nth: 1 },
            ],
            true,
        );
        // "Reproduces" iff the culprit crash is present.
        let shrunk = shrink_plan(&plan, |p| p.faults().contains(&culprit));
        assert_eq!(shrunk.faults(), &[culprit]);
        assert!(!shrunk.permutes_ids());
        assert_eq!(shrunk.seed(), plan.seed());
    }

    #[test]
    fn keeps_a_jointly_necessary_pair() {
        let a = Fault::Crash { node: 1, round: 0 };
        let b = Fault::Crash { node: 2, round: 0 };
        let plan = plan_with(&[a, Fault::PanicNode { node: 7 }, b], false);
        let shrunk = shrink_plan(&plan, |p| {
            p.faults().contains(&a) && p.faults().contains(&b)
        });
        assert_eq!(shrunk.faults(), &[a, b]);
    }

    #[test]
    fn keeps_the_permutation_when_it_is_load_bearing() {
        let plan = plan_with(&[Fault::PanicNode { node: 0 }], true);
        let shrunk = shrink_plan(&plan, FaultPlan::permutes_ids);
        assert!(shrunk.permutes_ids());
        assert!(shrunk.faults().is_empty());
    }

    #[test]
    fn returns_non_reproducing_plans_unchanged() {
        let plan = plan_with(&[Fault::PanicNode { node: 0 }], true);
        let shrunk = shrink_plan(&plan, |_| false);
        assert_eq!(shrunk, plan);
    }

    #[test]
    fn shrunk_plans_round_trip_through_the_text_format() {
        let plan = plan_with(
            &[
                Fault::Crash { node: 3, round: 1 },
                Fault::CorruptView { node: 1, salt: 9 },
            ],
            true,
        );
        let shrunk = shrink_plan(&plan, |p| !p.faults().is_empty());
        let reparsed = FaultPlan::parse(&shrunk.to_text()).expect("why: to_text always parses");
        assert_eq!(reparsed, shrunk);
    }
}
