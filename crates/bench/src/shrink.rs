//! Greedy fault-plan shrinker: given a [`FaultPlan`] that reproduces
//! some behavior (a degradation, a verifier violation, an output
//! divergence), find a minimal sub-plan that still reproduces it.
//!
//! The algorithm is ddmin-lite: repeatedly try dropping each fault (and
//! clearing the adversarial ID permutation), keep any reduction the
//! predicate still accepts, and stop at a fixpoint — a plan where
//! removing *any* single element loses the reproduction. Because faulted
//! executions are a pure function of `(seed, plan)`, the predicate is
//! deterministic and the result is, too.

use lcl_faults::{Fault, FaultPlan};

/// Rebuilds a plan from its parts — the shrinker's one mutation point.
fn rebuild(seed: u64, permute: bool, faults: &[Fault]) -> FaultPlan {
    let mut plan = FaultPlan::new(seed);
    if permute {
        plan = plan.with_permuted_ids();
    }
    for &fault in faults {
        plan = plan.with(fault);
    }
    plan
}

/// Shrinks `plan` to a locally-minimal plan still accepted by
/// `reproduces`. The input plan itself must reproduce; otherwise it is
/// returned unchanged. The number of predicate evaluations is
/// `O(faults^2)` in the worst case.
pub fn shrink_plan(plan: &FaultPlan, reproduces: impl Fn(&FaultPlan) -> bool) -> FaultPlan {
    if !reproduces(plan) {
        return plan.clone();
    }
    let seed = plan.seed();
    let mut permute = plan.permutes_ids();
    let mut faults: Vec<Fault> = plan.faults().to_vec();
    loop {
        let mut reduced = false;
        // Try clearing the ID permutation first: it is the most
        // confusing element of a repro, touching every node at once.
        if permute {
            let candidate = rebuild(seed, false, &faults);
            if reproduces(&candidate) {
                permute = false;
                reduced = true;
            }
        }
        // Then try dropping each fault, scanning from the back so index
        // bookkeeping stays trivial after a removal.
        let mut i = faults.len();
        while i > 0 {
            i -= 1;
            let mut candidate_faults = faults.clone();
            candidate_faults.remove(i);
            let candidate = rebuild(seed, permute, &candidate_faults);
            if reproduces(&candidate) {
                faults = candidate_faults;
                reduced = true;
            }
        }
        if !reduced {
            return rebuild(seed, permute, &faults);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan_with(faults: &[Fault], permute: bool) -> FaultPlan {
        rebuild(42, permute, faults)
    }

    #[test]
    fn drops_irrelevant_faults_and_the_permutation() {
        let culprit = Fault::Crash { node: 3, round: 0 };
        let plan = plan_with(
            &[
                Fault::CorruptView { node: 1, salt: 9 },
                culprit,
                Fault::PanicNode { node: 5 },
                Fault::ProbeLie { query: 2, nth: 1 },
            ],
            true,
        );
        // "Reproduces" iff the culprit crash is present.
        let shrunk = shrink_plan(&plan, |p| p.faults().contains(&culprit));
        assert_eq!(shrunk.faults(), &[culprit]);
        assert!(!shrunk.permutes_ids());
        assert_eq!(shrunk.seed(), plan.seed());
    }

    #[test]
    fn keeps_a_jointly_necessary_pair() {
        let a = Fault::Crash { node: 1, round: 0 };
        let b = Fault::Crash { node: 2, round: 0 };
        let plan = plan_with(&[a, Fault::PanicNode { node: 7 }, b], false);
        let shrunk = shrink_plan(&plan, |p| {
            p.faults().contains(&a) && p.faults().contains(&b)
        });
        assert_eq!(shrunk.faults(), &[a, b]);
    }

    #[test]
    fn keeps_the_permutation_when_it_is_load_bearing() {
        let plan = plan_with(&[Fault::PanicNode { node: 0 }], true);
        let shrunk = shrink_plan(&plan, FaultPlan::permutes_ids);
        assert!(shrunk.permutes_ids());
        assert!(shrunk.faults().is_empty());
    }

    #[test]
    fn returns_non_reproducing_plans_unchanged() {
        let plan = plan_with(&[Fault::PanicNode { node: 0 }], true);
        let shrunk = shrink_plan(&plan, |_| false);
        assert_eq!(shrunk, plan);
    }

    /// A shard-loss chaos plan bisects like any other: the shrinker
    /// drops every node fault and all but the one whole-shard loss the
    /// predicate needs — here "shard 1 still crashes", evaluated
    /// against a real sharded run so the reproduction is behavioral,
    /// not syntactic.
    #[test]
    fn bisects_shard_loss_chaos_plans() {
        use lcl::uniform_input;
        use lcl_graph::gen;

        let n = 36;
        let g = gen::random_tree(n, 3, 7);
        let input = uniform_input(&g);
        let ids: Vec<u64> = (0..n as u64).map(|i| i * 13 + 5).collect();
        let mut plan = FaultPlan::random(7, n, 3).with_permuted_ids();
        for &fault in FaultPlan::random_shard_chaos(7, 4, 2, 1).faults() {
            plan = plan.with(fault);
        }
        let crashes_before = plan
            .faults()
            .iter()
            .filter(|f| matches!(f, Fault::ShardCrash { .. }))
            .count();
        assert_eq!(crashes_before, 2, "the seeded plan carries two losses");

        // Reproduces iff the sharded run records a fault blaming shard 1.
        let reproduces = |p: &FaultPlan| {
            let run = lcl_shard::simulate_sharded_with(
                &lcl_problems::DeltaPlusOne { delta: 3 },
                &g,
                &input,
                &ids,
                None,
                64,
                1,
                lcl_faults::RunOptions::new().faults(p).sharded(4),
            );
            run.outcome
                .faults
                .iter()
                .any(|f| f.payload.contains("shard 1 lost whole"))
        };
        assert!(reproduces(&plan), "the full plan must reproduce");
        let shrunk = shrink_plan(&plan, reproduces);
        assert!(
            !shrunk.permutes_ids(),
            "the permutation is not load-bearing"
        );
        let [only] = shrunk.faults() else {
            panic!(
                "expected exactly one surviving fault, got {:?}",
                shrunk.faults()
            );
        };
        assert!(
            matches!(only, Fault::ShardCrash { shard: 1, .. }),
            "the culprit shard loss survives: {only:?}"
        );
        // The minimal plan round-trips through the text wire format.
        let reparsed = FaultPlan::parse(&shrunk.to_text()).expect("why: to_text always parses");
        assert_eq!(reparsed, shrunk);
    }

    #[test]
    fn shrunk_plans_round_trip_through_the_text_format() {
        let plan = plan_with(
            &[
                Fault::Crash { node: 3, round: 1 },
                Fault::CorruptView { node: 1, salt: 9 },
            ],
            true,
        );
        let shrunk = shrink_plan(&plan, |p| !p.faults().is_empty());
        let reparsed = FaultPlan::parse(&shrunk.to_text()).expect("why: to_text always parses");
        assert_eq!(reparsed, shrunk);
    }
}
