//! E11 — theory-vs-practice curves: decade sweeps of deterministic cost
//! counts per Figure 1 panel, least-squares-fitted against candidate
//! asymptotic shapes and written to `BENCH_curves.json`.
//!
//! Where `fig1` prints the raw series for a human to eyeball against the
//! paper's landscape, this module closes the loop mechanically: for each
//! panel algorithm it sweeps `n` over decades, derives a *count* series
//! from the [`lcl_obs::CostModel`] of an event-logged run (rounds for
//! LOCAL, max probes for VOLUME — never wall clock), fits the series
//! against every candidate shape in [`CANDIDATES`] by ordinary least
//! squares, and records the winner with its R². The emitted file carries
//! no wall-time keys at all, so the `bench-diff` curves gate
//! ([`crate::diff::Schema::Curves`]) is immune to machine noise: it
//! fails only when a *fitted asymptotic class* flips or an R² falls
//! under the floor — i.e. when the measured landscape itself moved.
//!
//! Counts are bit-identical across thread counts and hosts (see
//! `DESIGN.md` § Deterministic cost model), so `ns`, `counts`, and the
//! fitted class diff bit-exactly.

use lcl_core::{tree_speedup, SpeedupOptions};
use lcl_faults::RunOptions;
use lcl_graph::gen;
use lcl_graph::math::log_star;
use lcl_local::IdAssignment;
use lcl_obs::{CostKind, EventLog};
use lcl_problems::cv::{orientation_inputs, ColeVishkin, Orientation};
use lcl_problems::{anti_matching, rake_compress_rounds};

use crate::cells;
use crate::table::Table;
use crate::volume_algos::{ConstProbe, TwoColorProbes};

fn g_const(_n: f64) -> f64 {
    1.0
}
fn g_log_star(n: f64) -> f64 {
    f64::from(log_star(n as u64))
}
fn g_log_log(n: f64) -> f64 {
    let l = n.ln();
    if l > 1.0 {
        l.ln()
    } else {
        0.0
    }
}
fn g_log(n: f64) -> f64 {
    n.ln()
}
fn g_linear(n: f64) -> f64 {
    n
}

/// A named candidate shape: the class label and its growth function.
pub type Candidate = (&'static str, fn(f64) -> f64);

/// The candidate asymptotic shapes, in tie-break order: a series that
/// two shapes explain equally well (e.g. a constant series, which every
/// affine model fits exactly) is classified as the *earliest* candidate,
/// so ties resolve toward the slower-growing class deterministically.
pub const CANDIDATES: [Candidate; 5] = [
    ("1", g_const),
    ("log* n", g_log_star),
    ("log log n", g_log_log),
    ("log n", g_log),
    ("n", g_linear),
];

/// The winning shape for one measured series.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct Fit {
    /// The best-fitting candidate class, one of the [`CANDIDATES`] names.
    pub class: &'static str,
    /// Coefficient of determination of the winning fit (1.0 is exact; a
    /// constant series scores 1.0 by convention since the model is the
    /// mean).
    pub r2: f64,
}

/// Fits `ys` against `a·g(n) + b` for every candidate `g` and returns
/// the shape with the highest R².
///
/// SS_tot ≈ 0 (a constant series) scores R² = 1.0 for every candidate,
/// and a degenerate regressor (SS_xx ≈ 0, e.g. `log* n` when every `n`
/// falls in one plateau) degrades to the mean model; in both cases the
/// strictly-greater comparison keeps the earliest candidate, making the
/// classification deterministic.
///
/// # Panics
///
/// Panics when the series is shorter than 2 points or the lengths
/// disagree — a sweep bug, not a data condition.
pub fn fit_series(ns: &[u64], ys: &[f64]) -> Fit {
    assert!(
        ns.len() == ys.len() && ns.len() >= 2,
        "fit needs >= 2 aligned points"
    );
    let m = ys.len() as f64;
    let y_mean = ys.iter().sum::<f64>() / m;
    let ss_tot: f64 = ys.iter().map(|y| (y - y_mean) * (y - y_mean)).sum();
    let mut best = Fit {
        class: CANDIDATES[0].0,
        r2: f64::NEG_INFINITY,
    };
    for (class, g) in CANDIDATES {
        let xs: Vec<f64> = ns.iter().map(|&n| g(n as f64)).collect();
        let x_mean = xs.iter().sum::<f64>() / m;
        let ss_xx: f64 = xs.iter().map(|x| (x - x_mean) * (x - x_mean)).sum();
        let ss_xy: f64 = xs
            .iter()
            .zip(ys)
            .map(|(x, y)| (x - x_mean) * (y - y_mean))
            .sum();
        let (a, b) = if ss_xx > 1e-12 {
            let a = ss_xy / ss_xx;
            (a, y_mean - a * x_mean)
        } else {
            (0.0, y_mean)
        };
        let ss_res: f64 = xs
            .iter()
            .zip(ys)
            .map(|(x, y)| {
                let e = y - (a * x + b);
                e * e
            })
            .sum();
        let r2 = if ss_tot <= 1e-12 {
            1.0
        } else {
            1.0 - ss_res / ss_tot
        };
        if r2 > best.r2 {
            best = Fit { class, r2 };
        }
    }
    best
}

/// One fitted series of `BENCH_curves.json`.
#[derive(Clone, PartialEq, Debug)]
pub struct Panel {
    /// Stable panel label (`"trees/..."` / `"volume/..."`).
    pub name: &'static str,
    /// The swept (announced) instance sizes.
    pub ns: Vec<u64>,
    /// The deterministic count at each `n` (rounds or max probes).
    pub counts: Vec<u64>,
    /// Node-averaged cost (total charged work / distinct charged nodes)
    /// at each `n`, where the panel's cost model charges per-node work.
    pub node_averaged: Option<Vec<f64>>,
    /// The winning shape for `counts`.
    pub fit: Fit,
}

impl Panel {
    fn fitted(
        name: &'static str,
        ns: Vec<u64>,
        counts: Vec<u64>,
        node_averaged: Option<Vec<f64>>,
    ) -> Self {
        let ys: Vec<f64> = counts.iter().map(|&c| c as f64).collect();
        let fit = fit_series(&ns, &ys);
        Self {
            name,
            ns,
            counts,
            node_averaged,
            fit,
        }
    }
}

/// Announced-`n` decades: graphs are capped at 2^13 real nodes, but the
/// announced `n` (which drives every schedule, per Definition 2.1)
/// sweeps to 2^60 so `log*`-shaped series actually bend.
const DECADE_EXPS: [u32; 8] = [4, 6, 8, 10, 13, 20, 40, 60];

/// The synthesized O(1) algorithm's rounds (Theorem 3.11 pipeline):
/// counts come from the run's cost model (`CostKind::Round`), and the
/// series must be flat — the fitted class is the gap theorem in data.
fn synth_o1_panel() -> Panel {
    let anti = anti_matching(3);
    let outcome = tree_speedup(&anti, SpeedupOptions::default());
    let alg = outcome
        .try_algorithm()
        .expect("why: anti-matching is o(log* n), so Theorem 3.11 synthesis must succeed");
    let mut ns = Vec::new();
    let mut counts = Vec::new();
    for exp in DECADE_EXPS {
        let n = 1u64 << exp;
        let actual = (n as usize).min(4096);
        let tree = gen::random_tree(actual, 3, u64::from(exp));
        let input = lcl::uniform_input(&tree);
        let ids: Vec<u64> = (0..tree.node_count() as u64).map(|i| i * 3 + 1).collect();
        let log = EventLog::new(0); // cost-only tally: exact counts, no buffer
        let _ = lcl_local::simulate_sync_with(
            &alg,
            &tree,
            &input,
            &ids,
            Some(n as usize),
            10,
            RunOptions::new().events(&log),
        );
        ns.push(n);
        counts.push(log.cost_model().get(CostKind::Round));
    }
    Panel::fitted("trees/synth-o1-rounds", ns, counts, None)
}

/// Cole–Vishkin 3-coloring rounds on an oriented path, swept by
/// announced `n` (identifiers spread evenly over `[1, n]`, inside the
/// `n³` ID space the schedule assumes). The measured series is *flat*:
/// `cv_iteration_count(3 log n) + 3` takes a single step across the
/// whole representable range (between announced `n = 2^41` and `2^42`),
/// so over these 36 decades `log* n` is indistinguishable from a
/// constant and the fit classifies the panel as `"1"` — the landscape
/// gap between `ω(1)` and `Θ(log* n)` made visible as data. The sweep
/// deliberately stays inside the plateau so the classification is a
/// stable fixed point for the gate; the planted-series tests (and the
/// decades where `log n` panels *do* bend) cover the `log* n` candidate
/// itself.
fn cole_vishkin_panel() -> Panel {
    let mut ns = Vec::new();
    let mut counts = Vec::new();
    for exp in [4u32, 6, 8, 10, 13, 20, 40] {
        let n = 1u64 << exp;
        let actual = (n as usize).min(1 << 12);
        let path = gen::path(actual);
        let cv_input = orientation_inputs(&path, Orientation::Path);
        let count = path.node_count() as u64;
        let stride = n / count;
        let cv_ids: Vec<u64> = (0..count).map(|i| 1 + i * stride).collect();
        let log = EventLog::new(0);
        let _ = lcl_local::simulate_sync_with(
            &ColeVishkin,
            &path,
            &cv_input,
            &cv_ids,
            Some(n as usize),
            100,
            RunOptions::new().events(&log),
        );
        ns.push(n);
        counts.push(log.cost_model().get(CostKind::Round));
    }
    Panel::fitted("trees/cole-vishkin-rounds", ns, counts, None)
}

/// Rake-and-compress peeling rounds. Unlike the announced-`n` panels,
/// the rounds are driven by the real tree structure, so the sweep uses
/// actual sizes only (announced `n` past the cap would flatten the
/// curve artificially). Paths — the degenerate trees — give the
/// cleanest `Θ(log n)` series: compression halves the interior every
/// round, where per-`n` random trees add depth noise that blurs the
/// fit between neighboring classes.
fn rake_compress_panel() -> Panel {
    let mut ns = Vec::new();
    let mut counts = Vec::new();
    for exp in [4u32, 6, 8, 10, 13] {
        let n = 1usize << exp;
        let tree = gen::path(n);
        ns.push(n as u64);
        counts.push(u64::from(rake_compress_rounds(&tree, u64::from(exp))));
    }
    Panel::fitted("trees/rake-compress-rounds", ns, counts, None)
}

/// VOLUME sweep sizes: every node is queried, so the sweep stays small
/// (the linear panel's total work is quadratic in `n`).
const VOLUME_NS: [usize; 4] = [16, 64, 256, 1024];

/// Max probes per query for the constant-probe VOLUME algorithm, with
/// the node-averaged probe series alongside.
fn volume_const_panel() -> Panel {
    let mut ns = Vec::new();
    let mut counts = Vec::new();
    let mut averaged = Vec::new();
    for (i, &n) in VOLUME_NS.iter().enumerate() {
        let cycle = gen::cycle(n);
        let cinput = lcl::uniform_input(&cycle);
        let cids = IdAssignment::random_polynomial(n, 3, i as u64 + 4);
        let log = EventLog::new(0);
        let report = lcl_volume::simulate_with(
            &ConstProbe,
            &cycle,
            &cinput,
            &cids,
            None,
            RunOptions::new().events(&log),
        )
        .expect("why: const-probe stays within its own probe budget");
        ns.push(n as u64);
        counts.push(report.outcome.outcome.max_probes as u64);
        averaged.push(log.cost_model().node_averaged().unwrap_or(0.0));
    }
    Panel::fitted("volume/const-probe", ns, counts, Some(averaged))
}

/// Max probes per query for the Θ(n) two-coloring walk, node-averaged
/// series alongside (both linear: every query walks to an endpoint).
fn volume_linear_panel() -> Panel {
    let mut ns = Vec::new();
    let mut counts = Vec::new();
    let mut averaged = Vec::new();
    for (i, &n) in VOLUME_NS.iter().enumerate() {
        let path = gen::path(n);
        let pinput = lcl::uniform_input(&path);
        let pids = IdAssignment::random_polynomial(n, 3, i as u64 + 5);
        let log = EventLog::new(0);
        let report = lcl_volume::simulate_with(
            &TwoColorProbes,
            &path,
            &pinput,
            &pids,
            None,
            RunOptions::new().events(&log),
        )
        .expect("why: the walk probes at most n-1 times, within budget");
        ns.push(n as u64);
        counts.push(report.outcome.outcome.max_probes as u64);
        averaged.push(log.cost_model().node_averaged().unwrap_or(0.0));
    }
    Panel::fitted("volume/two-color-walk", ns, counts, Some(averaged))
}

/// Runs every sweep. Deterministic: seeds are fixed and counts are
/// event-derived, so two invocations produce identical panels.
pub fn collect_panels() -> Vec<Panel> {
    vec![
        synth_o1_panel(),
        cole_vishkin_panel(),
        rake_compress_panel(),
        volume_const_panel(),
        volume_linear_panel(),
    ]
}

fn push_u64s(out: &mut String, values: &[u64]) {
    out.push('[');
    for (i, v) in values.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&v.to_string());
    }
    out.push(']');
}

/// Renders the panels as the `BENCH_curves.json` document. Floats are
/// printed with fixed precision so the file is byte-stable; there are
/// deliberately no wall-clock keys anywhere in the schema.
pub fn curves_json(panels: &[Panel]) -> String {
    let mut out = String::from("{\n  \"bench\": \"curves\",\n  \"panels\": {\n");
    for (i, p) in panels.iter().enumerate() {
        out.push_str(&format!(
            "    \"{}\": {{\n      \"fitted_class\": \"{}\",\n      \"r2\": {:.6},\n      \"ns\": ",
            p.name, p.fit.class, p.fit.r2
        ));
        push_u64s(&mut out, &p.ns);
        out.push_str(",\n      \"counts\": ");
        push_u64s(&mut out, &p.counts);
        if let Some(avg) = &p.node_averaged {
            out.push_str(",\n      \"node_averaged\": [");
            for (j, v) in avg.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!("{v:.6}"));
            }
            out.push(']');
        }
        out.push_str("\n    }");
        if i + 1 < panels.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("  }\n}\n");
    out
}

/// Runs every sweep, prints the fitted classes, and writes
/// `BENCH_curves.json` at the repository root. Returns the table.
pub fn curves_report() -> Table {
    let mut table = Table::new(
        "E11 — theory-vs-practice curves: fitted asymptotic class per panel",
        &["panel", "points", "fitted class", "r2", "counts"],
    );
    let panels = collect_panels();
    for p in &panels {
        let counts = p
            .counts
            .iter()
            .map(u64::to_string)
            .collect::<Vec<_>>()
            .join(" ");
        table.row(cells!(
            p.name,
            p.ns.len(),
            p.fit.class,
            format!("{:.4}", p.fit.r2),
            counts
        ));
    }
    let json = curves_json(&panels);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_curves.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => println!("could not write {path}: {e}"),
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    const PLANT_NS: [u64; 8] = [
        1 << 4,
        1 << 6,
        1 << 8,
        1 << 10,
        1 << 13,
        1 << 20,
        1 << 40,
        1 << 60,
    ];

    fn plant(class: &str, a: f64, b: f64) -> Vec<f64> {
        let g = CANDIDATES
            .iter()
            .find(|(name, _)| *name == class)
            .expect("known class")
            .1;
        PLANT_NS.iter().map(|&n| a * g(n as f64) + b).collect()
    }

    #[test]
    fn planted_series_recover_their_classes() {
        for class in ["log* n", "log log n", "log n", "n"] {
            let ys = plant(class, 2.5, 3.0);
            let fit = fit_series(&PLANT_NS, &ys);
            assert_eq!(fit.class, class, "planted {class} misclassified");
            assert!(fit.r2 > 0.999, "planted {class}: r2 {}", fit.r2);
        }
    }

    #[test]
    fn constant_series_ties_break_to_the_first_candidate() {
        // Every affine model fits a constant series exactly (R² = 1 by
        // the SS_tot convention); the tie must resolve to "1".
        let ys = vec![7.0; PLANT_NS.len()];
        let fit = fit_series(&PLANT_NS, &ys);
        assert_eq!(fit.class, "1");
        assert!((fit.r2 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn log_and_log_star_do_not_cross_classify() {
        // The acceptance scenario for the curves gate: a log n series
        // must never be mistaken for log* n (or vice versa) — the gate
        // relies on the classes being separable over the decades.
        let log_ys = plant("log n", 1.0, 2.0);
        assert_eq!(fit_series(&PLANT_NS, &log_ys).class, "log n");
        let star_ys = plant("log* n", 4.0, 1.0);
        assert_eq!(fit_series(&PLANT_NS, &star_ys).class, "log* n");
    }

    #[test]
    fn volume_panels_fit_their_planted_classes() {
        let constant = volume_const_panel();
        assert_eq!(constant.fit.class, "1", "{constant:?}");
        let avg = constant.node_averaged.as_ref().expect("averaged series");
        assert_eq!(avg.len(), constant.ns.len());
        assert!(avg.iter().all(|v| *v > 0.0));

        let linear = volume_linear_panel();
        assert_eq!(linear.fit.class, "n", "{linear:?}");
        assert!(linear.fit.r2 > 0.99);
    }

    #[test]
    fn panels_render_wall_free_json() {
        let panels = vec![Panel::fitted(
            "volume/const-probe",
            vec![16, 64],
            vec![2, 2],
            Some(vec![1.5, 1.5]),
        )];
        let json = curves_json(&panels);
        assert!(json.contains("\"bench\": \"curves\""));
        assert!(json.contains("\"fitted_class\": \"1\""));
        assert!(json.contains("\"node_averaged\": [1.500000, 1.500000]"));
        // The schema carries no wall keys: machine noise cannot reach
        // the curves gate.
        assert!(!json.contains("wall"));
        let parsed = crate::json::parse(&json).expect("well-formed");
        assert!(parsed.get("panels").is_some());
    }
}
