//! VOLUME-model harness algorithms for the Figure 1 bottom-right panel.
//!
//! * [`ConstProbe`] — `O(1)` probes (compare degrees with one neighbor).
//! * [`CvProbeColoring`] — 3-coloring of oriented cycles with
//!   `O(log* n)` probes: walk the successor chain far enough to evaluate
//!   Cole–Vishkin plus the reduction sweeps offline. This is exactly the
//!   "seeing wide, not far" phenomenon the VOLUME model isolates.
//! * [`TwoColorProbes`] — 2-coloring of paths with `Θ(n)` probes (walk to
//!   an endpoint).

use lcl::OutLabel;
use lcl_problems::cv::{cv_iteration_count, cv_step};
use lcl_volume::{ProbeError, ProbeSession, VolumeAlgorithm};

/// A 1-probe algorithm: is my degree at least my port-0 neighbor's?
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ConstProbe;

impl VolumeAlgorithm for ConstProbe {
    fn probe_budget(&self, _n: usize) -> usize {
        1
    }

    fn answer(&self, session: &mut ProbeSession<'_>) -> Result<Vec<OutLabel>, ProbeError> {
        let me = session.queried().clone();
        let neighbor = session.probe(0, 0)?;
        Ok(vec![
            OutLabel(u32::from(me.degree >= neighbor.degree));
            me.degree as usize
        ])
    }

    fn name(&self) -> &str {
        "const-probe"
    }
}

/// 3-coloring oriented cycles (port 0 = predecessor, port 1 = successor)
/// with `O(log* n)` probes.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CvProbeColoring;

impl CvProbeColoring {
    /// Probes needed on `n`-node cycles.
    pub fn probes(n: usize) -> usize {
        let id_bits = 3 * (usize::BITS - n.leading_zeros()).max(1);
        cv_iteration_count(id_bits) as usize + 7
    }
}

impl VolumeAlgorithm for CvProbeColoring {
    fn probe_budget(&self, n: usize) -> usize {
        Self::probes(n)
    }

    fn answer(&self, session: &mut ProbeSession<'_>) -> Result<Vec<OutLabel>, ProbeError> {
        let n = session.n();
        let k = cv_iteration_count(3 * (usize::BITS - n.leading_zeros()).max(1)) as usize;
        let degree = session.queried().degree as usize;
        // Walk right k + 4, left 3 (cycles: no endpoints to worry about).
        let mut right_ids = Vec::with_capacity(k + 4);
        let mut j = 0usize; // transcript index of the rightmost node
        for _ in 0..(k + 4).min(n - 1) {
            let info = session.probe(j, 1)?;
            j = session.discovered_count() - 1;
            right_ids.push(info.id);
        }
        if right_ids.len() == n - 1 {
            // The whole cycle is visible: compute the coloring cyclically.
            let mut colors: Vec<u64> = std::iter::once(session.queried().id)
                .chain(right_ids)
                .collect();
            for _ in 0..k {
                let next: Vec<u64> = (0..n)
                    .map(|pos| cv_step(colors[pos], colors[(pos + 1) % n]))
                    .collect();
                colors = next;
            }
            for target in [5u64, 4, 3] {
                let next: Vec<u64> = (0..n)
                    .map(|pos| {
                        if colors[pos] == target {
                            let l = colors[(pos + n - 1) % n];
                            let r = colors[(pos + 1) % n];
                            (0..3).find(|c| l != *c && r != *c).expect("free color")
                        } else {
                            colors[pos]
                        }
                    })
                    .collect();
                colors = next;
            }
            return Ok(vec![OutLabel(colors[0] as u32); degree]);
        }
        let mut left_ids = Vec::with_capacity(3);
        let mut jl = 0usize;
        for _ in 0..3.min(n.saturating_sub(1).saturating_sub(right_ids.len())) {
            let info = session.probe(jl, 0)?;
            jl = session.discovered_count() - 1;
            left_ids.push(info.id);
        }

        let offset = left_ids.len();
        let mut ids: Vec<u64> = left_ids.into_iter().rev().collect();
        ids.push(session.queried().id);
        ids.extend(right_ids);
        let len = ids.len();

        // Offline Cole–Vishkin (every position has a successor except the
        // last, whose color is never trusted that deep).
        let mut colors = ids;
        for _ in 0..k {
            let mut next = colors.clone();
            for pos in 0..len - 1 {
                next[pos] = cv_step(colors[pos], colors[pos + 1]);
            }
            colors = next;
        }
        // Reduction sweeps 5, 4, 3 (interior positions only; margins
        // keep position `offset` trustworthy).
        for target in [5u64, 4, 3] {
            let mut next = colors.clone();
            for pos in 1..len.saturating_sub(1) {
                if colors[pos] == target {
                    next[pos] = (0..3)
                        .find(|c| colors[pos - 1] != *c && colors[pos + 1] != *c)
                        .expect("two neighbors block at most two colors");
                }
            }
            // Boundary positions with one visible neighbor.
            if colors[0] == target && len > 1 {
                next[0] = (0..3).find(|c| colors[1] != *c).expect("free color");
            }
            colors = next;
        }
        Ok(vec![OutLabel(colors[offset] as u32); degree])
    }

    fn name(&self) -> &str {
        "cv-probe-coloring"
    }
}

/// 2-coloring paths by walking to the left endpoint: `Θ(n)` probes.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TwoColorProbes;

impl VolumeAlgorithm for TwoColorProbes {
    fn probe_budget(&self, n: usize) -> usize {
        n
    }

    fn answer(&self, session: &mut ProbeSession<'_>) -> Result<Vec<OutLabel>, ProbeError> {
        let degree = session.queried().degree as usize;
        // Walk to BOTH endpoints, tracking the arrival port so the walk
        // never turns around; color by the parity of the distance to the
        // endpoint with the smaller identifier — a canonical anchor every
        // node agrees on.
        let me = session.queried().clone();
        if me.degree == 1 {
            // An endpoint: walk once to learn the other endpoint's id.
            let (other_end, dist) = walk_to_end(session, 0, 0)?;
            let color = if me.id < other_end { 0 } else { dist % 2 };
            return Ok(vec![OutLabel(color); degree]);
        }
        let (end_a, dist_a) = walk_to_end(session, 0, 0)?;
        let (end_b, dist_b) = walk_to_end(session, 0, 1)?;
        let color = if end_a < end_b {
            dist_a % 2
        } else {
            dist_b % 2
        };
        Ok(vec![OutLabel(color); degree])
    }

    fn name(&self) -> &str {
        "two-color-probes"
    }
}

/// Walks from discovered node `start` through `first_port`, continuing
/// straight (never back through the arrival port) until a degree-1 node;
/// returns its id and the number of steps taken.
fn walk_to_end(
    session: &mut ProbeSession<'_>,
    start: usize,
    first_port: u8,
) -> Result<(u64, u32), ProbeError> {
    let mut j = start;
    let mut port = first_port;
    let mut steps = 0u32;
    loop {
        let (info, arrival) = session.probe_with_arrival(j, port)?;
        j = session.discovered_count() - 1;
        steps += 1;
        if info.degree == 1 {
            return Ok((info.id, steps));
        }
        // Continue through the other port (degree-2 interior node).
        port = 1 - arrival;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcl_graph::gen;
    use lcl_local::IdAssignment;
    use lcl_problems::{k_coloring, two_coloring};
    use lcl_volume::run_volume;

    #[test]
    fn const_probe_uses_one_probe() {
        let g = gen::cycle(10);
        let input = lcl::uniform_input(&g);
        let ids = IdAssignment::sequential(10);
        let run = run_volume(&ConstProbe, &g, &input, &ids, None).expect("in budget");
        assert_eq!(run.max_probes, 1);
    }

    #[test]
    fn cv_probes_color_cycles() {
        let problem = k_coloring(3, 2);
        for n in [16usize, 100, 500] {
            let g = gen::cycle(n);
            let input = lcl::uniform_input(&g);
            let ids = IdAssignment::random_polynomial(n, 3, n as u64);
            let run = run_volume(&CvProbeColoring, &g, &input, &ids, None).expect("in budget");
            let violations = lcl::verify(&problem, &g, &input, &run.output);
            assert!(violations.is_empty(), "n={n}: {violations:?}");
            assert!(run.max_probes <= CvProbeColoring::probes(n));
            assert!(run.max_probes <= 16, "n={n}: {}", run.max_probes);
        }
    }

    #[test]
    fn two_color_probes_color_paths() {
        let problem = two_coloring(2);
        for n in [2usize, 9, 40] {
            let g = gen::path(n);
            let input = lcl::uniform_input(&g);
            let ids = IdAssignment::sequential(n);
            let run = run_volume(&TwoColorProbes, &g, &input, &ids, None).expect("in budget");
            let violations = lcl::verify(&problem, &g, &input, &run.output);
            assert!(violations.is_empty(), "n={n}: {violations:?}");
            // The right end of the path walks all the way: Θ(n).
            assert!(run.max_probes >= n - 1, "n={n}: {}", run.max_probes);
        }
    }
}
