//! The chaos-soak bench stage: throughput of the faulted entrypoints
//! under randomized [`FaultPlan`]s, one row per model.
//!
//! Unlike the figure stages this writes no `BENCH_*.json` baseline —
//! fault-handling throughput is a health metric, not a paper artifact —
//! so `bench-diff` comparisons of the committed baselines are untouched.
//! The stage's invariant is the robustness trichotomy: every plan ends
//! in a valid output, a typed violation, or a typed degradation; a panic
//! would abort the whole bench run.

use std::time::Instant;

use lcl_faults::{FaultPlan, RunOptions};
use lcl_grid::{FnProdAlgorithm, OrientedGrid, ProdIds};
use lcl_local::{simulate_sync_with, IdAssignment};
use lcl_problems::DeltaPlusOne;
use lcl_rng::SmallRng;
use lcl_volume::lca::VolumeAsLca;
use lcl_volume::{simulate_lca_with, FnVolumeAlgorithm, ProbeSession};

use crate::table::Table;

#[allow(clippy::type_complexity)] // `impl Trait` closure types cannot be aliased
fn neighbor_probe_alg() -> FnVolumeAlgorithm<
    impl Fn(usize) -> usize,
    impl Fn(&mut ProbeSession<'_>) -> Result<Vec<lcl::OutLabel>, lcl_volume::ProbeError>,
> {
    FnVolumeAlgorithm::new(
        "chaos-neighbor",
        |_| 2,
        |s| {
            let d = s.queried().degree as usize;
            let n0 = s.probe(0, 0)?;
            Ok(vec![lcl::OutLabel((n0.id % 97) as u32); d])
        },
    )
}

/// Runs `plans` random fault plans against each model's faulted
/// entrypoint and reports plans/s plus the degraded-run count.
pub fn chaos_stage(plans: u64) -> Table {
    let mut table = Table::new(
        "Chaos soak — faulted entrypoints under random plans",
        &["model", "plans", "degraded", "faults", "ms", "plans/s"],
    );

    // LOCAL (sync executor): Δ+1 coloring on random trees.
    let t0 = Instant::now();
    let mut degraded = 0u64;
    let mut faults = 0u64;
    for seed in 0..plans {
        let mut rng = SmallRng::seed_from_u64(seed);
        let n = rng.gen_range(16usize..64);
        let g = lcl_graph::gen::random_tree(n, 3, seed);
        let input = lcl::uniform_input(&g);
        let ids: Vec<u64> = IdAssignment::random_polynomial(n, 3, seed ^ 1)
            .iter()
            .collect();
        let plan = FaultPlan::random(seed, n, 4);
        let report = simulate_sync_with(
            &DeltaPlusOne { delta: 3 },
            &g,
            &input,
            &ids,
            None,
            1000,
            RunOptions::new().faults(&plan),
        );
        degraded += u64::from(report.outcome.is_degraded());
        faults += report.outcome.faults.len() as u64;
    }
    push_row(&mut table, "LOCAL/sync", plans, degraded, faults, t0);

    // LCA: the wrapped probe algorithm on paths, ids exactly 1..=n.
    let t0 = Instant::now();
    let mut degraded = 0u64;
    let mut faults = 0u64;
    for seed in 0..plans {
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x77);
        let n = rng.gen_range(8usize..48);
        let g = lcl_graph::gen::path(n);
        let input = lcl::uniform_input(&g);
        let ids = IdAssignment::from_vec((1..=n as u64).collect());
        let plan = FaultPlan::random(seed, n, 4);
        let report = simulate_lca_with(
            &VolumeAsLca(neighbor_probe_alg()),
            &g,
            &input,
            &ids,
            RunOptions::new().faults(&plan),
        )
        .expect("faulted runs degrade instead of erroring");
        degraded += u64::from(report.outcome.is_degraded());
        faults += report.outcome.faults.len() as u64;
    }
    push_row(&mut table, "LCA", plans, degraded, faults, t0);

    // PROD-LOCAL: an echo algorithm on oriented grids.
    let t0 = Instant::now();
    let mut degraded = 0u64;
    let mut faults = 0u64;
    let alg = FnProdAlgorithm::new(
        "chaos-echo",
        |_| 1,
        |view: &lcl_grid::GridView| vec![lcl::OutLabel((view.id(0, -1) % 97) as u32); 2 * view.d],
    );
    for seed in 0..plans {
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xfeed);
        let a = rng.gen_range(4usize..9);
        let b = rng.gen_range(4usize..9);
        let grid = OrientedGrid::new(&[a, b]);
        let ids = ProdIds::sequential(&grid);
        let input = lcl::uniform_input(grid.graph());
        let plan = FaultPlan::random(seed, grid.node_count(), 1);
        let report = lcl_grid::simulate_with(
            &alg,
            &grid,
            &input,
            &ids,
            None,
            RunOptions::new().faults(&plan),
        );
        degraded += u64::from(report.outcome.is_degraded());
        faults += report.outcome.faults.len() as u64;
    }
    push_row(&mut table, "PROD-LOCAL", plans, degraded, faults, t0);

    table
}

fn push_row(table: &mut Table, model: &str, plans: u64, degraded: u64, faults: u64, t0: Instant) {
    let ms = t0.elapsed().as_secs_f64() * 1e3;
    table.row(&[
        model.to_string(),
        plans.to_string(),
        degraded.to_string(),
        faults.to_string(),
        format!("{ms:.1}"),
        format!("{:.0}", plans as f64 / (ms / 1e3)),
    ]);
}
