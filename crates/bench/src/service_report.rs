//! Classification-service benchmark: a seeded 1 000-request mix against
//! a [`ClassifyServer`], writing `BENCH_service.json` at the repository
//! root.
//!
//! The mix contains ~30 % *structural duplicates* — requests whose
//! problem text is a label-permuted respelling of another request — so
//! the dedup machinery (canonical fingerprints, the content-addressed
//! store, in-flight coalescing) is what the numbers measure:
//!
//! * `computed` must equal `unique_problems`: each structural class is
//!   built exactly once no matter how its duplicates are spelled or
//!   interleaved.
//! * `served_from_cache` (store hits plus in-flight coalescing) must be
//!   exactly the duplicate count; `dedup_permille` is its share of the
//!   mix in ‰.
//! * A separate warm pass times pure cache hits (`hit_wall_us`), and a
//!   planted checkpoint verifies kill-mid-job recovery: the resumed
//!   build must fingerprint-match an uninterrupted one.
//!
//! Every counter above is seed-determined; only the `*_wall_*` keys and
//! `throughput_rps` vary with the host and are diffed under tolerance.

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

use lcl::{canonical_key, canonical_text_form, relabeled, LclProblem, OutLabel};
use lcl_core::{ReOptions, ReTower};
use lcl_problems::catalog::sinkless_orientation;
use lcl_rng::SmallRng;
use lcl_service::{
    ClassifyRequest, ClassifyResult, ClassifyServer, Response, ServiceConfig, ServiceStats,
    TowerStore,
};

use crate::table::Table;

/// Requests in the seeded mix.
const REQUESTS: usize = 1_000;
/// Structurally distinct problems in the mix; the remaining requests are
/// label-permuted duplicates (300/1000 = 30 %).
const UNIQUE: usize = 700;
/// Warm cache-hit requests timed separately.
const WARM_HITS: usize = 200;
/// Seed of the whole mix.
const SEED: u64 = 0x5e71_1ce0;

fn shuffle<T>(items: &mut [T], rng: &mut SmallRng) {
    for i in (1..items.len()).rev() {
        let j = (rng.next_u64() % (i as u64 + 1)) as usize;
        items.swap(i, j);
    }
}

fn random_permutation(n: usize, rng: &mut SmallRng) -> Vec<u32> {
    let mut order: Vec<u32> = (0..n as u32).collect();
    shuffle(&mut order, rng);
    order
}

/// One seeded random ∆=2 problem over `s` output labels: nonempty
/// degree-1/degree-2 configuration sets, nonempty edge set, one input
/// admitting everything.
fn random_problem(i: usize, s: usize, rng: &mut SmallRng) -> LclProblem {
    use std::collections::BTreeSet;
    let mut pick = |universe: Vec<Vec<OutLabel>>| -> BTreeSet<Vec<OutLabel>> {
        let mut chosen: BTreeSet<Vec<OutLabel>> = universe
            .iter()
            .filter(|_| rng.next_u64().is_multiple_of(2))
            .cloned()
            .collect();
        if chosen.is_empty() {
            let fallback = (rng.next_u64() % universe.len() as u64) as usize;
            chosen.insert(universe[fallback].clone());
        }
        chosen
    };
    let singletons: Vec<Vec<OutLabel>> = (0..s).map(|a| vec![OutLabel(a as u32)]).collect();
    let mut pairs = Vec::new();
    for a in 0..s {
        for b in a..s {
            pairs.push(vec![OutLabel(a as u32), OutLabel(b as u32)]);
        }
    }
    let d1 = pick(singletons);
    let d2 = pick(pairs.clone());
    let edges: BTreeSet<(OutLabel, OutLabel)> =
        pick(pairs).into_iter().map(|p| (p[0], p[1])).collect();
    let g = vec![(0..s).map(|a| OutLabel(a as u32)).collect()];
    lcl::problem::from_parts(
        format!("rnd-{i}"),
        2,
        lcl::Alphabet::numbered("I", 1),
        lcl::Alphabet::numbered("L", s),
        vec![BTreeSet::new(), d1, d2],
        edges,
        g,
    )
}

/// Generates [`UNIQUE`] structurally distinct problems whose one-f-step
/// towers build cleanly (a trial build filters the rest, so the service
/// mix contains no give-ups and every counter is seed-determined).
fn problem_pool(rng: &mut SmallRng) -> Vec<LclProblem> {
    let mut pool = Vec::with_capacity(UNIQUE);
    let mut seen = std::collections::BTreeSet::new();
    let mut i = 0usize;
    while pool.len() < UNIQUE {
        i += 1;
        let s = 2 + (rng.next_u64() % 2) as usize;
        let p = random_problem(i, s, rng);
        let key = canonical_key(&p);
        if !seen.insert(key) {
            continue;
        }
        // Trial: the text form must round-trip and one f-step must
        // complete without giving up.
        let Ok(parsed) = LclProblem::parse(&p.to_text()) else {
            continue;
        };
        let mut trial = ReTower::new(canonical_text_form(&parsed));
        if trial.push_f(ReOptions::default()).is_err() {
            continue;
        }
        pool.push(p);
    }
    pool
}

/// Drains a response stream to its terminal line, which must be a
/// result (the benchmark mix never produces in-band errors).
fn terminal_result(rx: &std::sync::mpsc::Receiver<Response>) -> ClassifyResult {
    let mut last = None;
    for resp in rx.iter() {
        let done = !matches!(resp, Response::Progress { .. });
        last = Some(resp);
        if done {
            break;
        }
    }
    match last {
        Some(Response::Result(r)) => r,
        // The mix is pre-validated, so anything else is a benchmark
        // invariant violation, not a runtime condition to degrade through.
        other => unreachable!("expected a result line, got {other:?}"),
    }
}

struct MixOutcome {
    stats: ServiceStats,
    store_entries: usize,
    wall_ms: f64,
}

/// Phase 1: the full seeded mix, submitted back-to-back, drained to
/// completion.
fn run_mix(server: &ClassifyServer, pool: &[LclProblem], rng: &mut SmallRng) -> MixOutcome {
    let mut requests: Vec<LclProblem> = pool.to_vec();
    for _ in 0..REQUESTS - UNIQUE {
        let j = (rng.next_u64() % UNIQUE as u64) as usize;
        let n = pool[j].output_alphabet().len();
        requests.push(relabeled(&pool[j], &random_permutation(n, rng)));
    }
    shuffle(&mut requests, rng);
    let t0 = Instant::now();
    let receivers: Vec<_> = requests
        .iter()
        .enumerate()
        .map(|(id, p)| {
            let req = ClassifyRequest {
                id: id as u64,
                problem: p.to_text(),
                steps: 1,
            };
            server
                .submit(&req)
                .expect("why: the mix is pre-validated and the queue is sized for it")
        })
        .collect();
    for rx in &receivers {
        let r = terminal_result(rx);
        assert!(r.gave_up.is_none(), "pre-validated problems never give up");
    }
    MixOutcome {
        stats: server.stats(),
        store_entries: server.store().len(),
        wall_ms: t0.elapsed().as_secs_f64() * 1e3,
    }
}

/// Phase 2: warm respellings against the now-full store; every request
/// must be a pure cache hit.
fn run_warm_hits(server: &ClassifyServer, pool: &[LclProblem], rng: &mut SmallRng) -> f64 {
    let t0 = Instant::now();
    for i in 0..WARM_HITS {
        let j = (rng.next_u64() % UNIQUE as u64) as usize;
        let n = pool[j].output_alphabet().len();
        let twin = relabeled(&pool[j], &random_permutation(n, rng));
        let req = ClassifyRequest {
            id: (REQUESTS + i) as u64,
            problem: twin.to_text(),
            steps: 1,
        };
        let rx = server
            .submit(&req)
            .expect("why: warm requests hit the cache and never queue");
        let r = terminal_result(&rx);
        assert!(r.cached, "warm request {i} missed the cache");
    }
    t0.elapsed().as_secs_f64() * 1e6 / WARM_HITS as f64
}

struct ResumeOutcome {
    resumed_from_level: u64,
    fingerprint_match: bool,
}

/// Phase 3: kill-mid-job emulation. A checkpoint is planted as a dying
/// worker would have left it; the server must resume from it and land on
/// the fingerprint an uninterrupted build produces.
fn run_resume_check(server: &ClassifyServer) -> ResumeOutcome {
    let p = sinkless_orientation(3);
    let key = canonical_key(&p);
    let canonical = canonical_text_form(&p);
    let mut reference = ReTower::new(canonical.clone());
    reference
        .push_f(ReOptions::default())
        .expect("why: sinkless orientation f-steps are the recovery soak's fixture");
    let mut partial = ReTower::new(canonical);
    partial
        .push_f(ReOptions::default())
        .expect("why: same fixture as the reference build");
    reference
        .push_f(ReOptions::default())
        .expect("why: same fixture as the reference build");
    server
        .store()
        .checkpoint(&key, &partial.snapshot())
        .expect("why: the store dir was created by this benchmark");
    let req = ClassifyRequest {
        id: 9_999,
        problem: p.to_text(),
        steps: 2,
    };
    let rx = server
        .submit(&req)
        .expect("why: a fresh key on an idle server neither hits nor overflows");
    let r = terminal_result(&rx);
    ResumeOutcome {
        resumed_from_level: r.resumed_from_level,
        fingerprint_match: r.tower_fingerprint == reference.fingerprint(),
    }
}

fn emit_json(
    mix: &MixOutcome,
    hit_wall_us: f64,
    resume: &ResumeOutcome,
    workers: usize,
    threads: usize,
) -> String {
    let duplicates = (REQUESTS - UNIQUE) as u64;
    let served = mix.stats.cache_hits + mix.stats.coalesced;
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"bench\": \"service\",");
    let _ = writeln!(out, "  \"threads_available\": {threads},");
    let _ = writeln!(out, "  \"workers\": {workers},");
    let _ = writeln!(out, "  \"requests\": {REQUESTS},");
    let _ = writeln!(out, "  \"unique_problems\": {UNIQUE},");
    let _ = writeln!(out, "  \"computed\": {},", mix.stats.computed);
    let _ = writeln!(out, "  \"served_from_cache\": {served},");
    let _ = writeln!(
        out,
        "  \"dedup_permille\": {},",
        served * 1000 / REQUESTS as u64
    );
    let _ = writeln!(out, "  \"store_entries\": {},", mix.store_entries);
    let _ = writeln!(out, "  \"duplicates_in_mix\": {duplicates},");
    let _ = writeln!(
        out,
        "  \"resumed_jobs\": {},",
        u64::from(resume.resumed_from_level > 0)
    );
    let _ = writeln!(
        out,
        "  \"resume_fingerprint_match\": {},",
        u64::from(resume.fingerprint_match)
    );
    let _ = writeln!(out, "  \"hit_wall_us\": {hit_wall_us:.1},");
    let _ = writeln!(
        out,
        "  \"miss_wall_ms\": {:.3},",
        mix.wall_ms / mix.stats.computed.max(1) as f64
    );
    let _ = writeln!(out, "  \"total_wall_ms\": {:.1},", mix.wall_ms);
    let _ = writeln!(
        out,
        "  \"throughput_rps\": {:.1}",
        REQUESTS as f64 * 1e3 / mix.wall_ms
    );
    out.push_str("}\n");
    out
}

/// Runs the three service phases, prints the summary table, and writes
/// `BENCH_service.json` at the repository root. Returns the table.
pub fn service_report() -> Table {
    let mut rng = SmallRng::seed_from_u64(SEED);
    let pool = problem_pool(&mut rng);
    let dir = std::env::temp_dir().join(format!("lcl-service-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = Arc::new(TowerStore::open(&dir).expect("why: a fresh temp dir is writable"));
    let workers = 4;
    let server = ClassifyServer::start(
        store,
        ServiceConfig {
            workers,
            queue_capacity: REQUESTS,
            ..ServiceConfig::default()
        },
    );

    let mix = run_mix(&server, &pool, &mut rng);
    assert_eq!(
        mix.stats.computed, UNIQUE as u64,
        "every structural class computes exactly once"
    );
    assert_eq!(
        mix.stats.cache_hits + mix.stats.coalesced,
        (REQUESTS - UNIQUE) as u64,
        "every duplicate is served without recomputation"
    );
    assert_eq!(mix.store_entries, UNIQUE);
    let hit_wall_us = run_warm_hits(&server, &pool, &mut rng);
    let resume = run_resume_check(&server);
    assert_eq!(
        resume.resumed_from_level, 2,
        "the planted checkpoint is used"
    );
    assert!(
        resume.fingerprint_match,
        "resumed tower must match the uninterrupted build"
    );
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());

    let mut table = Table::new(
        "SERVICE — content-addressed classification over a 1k-request mix",
        &["metric", "value"],
    );
    table.row(crate::cells!("requests", REQUESTS));
    table.row(crate::cells!("unique structural classes", UNIQUE));
    table.row(crate::cells!(
        "computed (one per class)",
        mix.stats.computed
    ));
    table.row(crate::cells!(
        "served from cache / coalesced",
        format!("{} / {}", mix.stats.cache_hits, mix.stats.coalesced)
    ));
    table.row(crate::cells!(
        "dedup ratio",
        format!(
            "{}‰",
            (mix.stats.cache_hits + mix.stats.coalesced) * 1000 / REQUESTS as u64
        )
    ));
    table.row(crate::cells!(
        "warm hit latency",
        format!("{hit_wall_us:.1} µs")
    ));
    table.row(crate::cells!("mix wall", format!("{:.1} ms", mix.wall_ms)));
    table.row(crate::cells!(
        "resume (from level / match)",
        format!(
            "{} / {}",
            resume.resumed_from_level, resume.fingerprint_match
        )
    ));

    let json = emit_json(&mix, hit_wall_us, &resume, workers, threads);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_service.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => println!("could not write {path}: {e}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_pool_is_structurally_distinct_and_buildable() {
        let mut rng = SmallRng::seed_from_u64(SEED);
        // A reduced pool keeps the test fast while exercising the same
        // generator and filters.
        let mut keys = std::collections::BTreeSet::new();
        let mut found = 0usize;
        let mut i = 0usize;
        while found < 40 {
            i += 1;
            let s = 2 + (rng.next_u64() % 2) as usize;
            let p = random_problem(i, s, &mut rng);
            let key = canonical_key(&p);
            if !keys.insert(key) {
                continue;
            }
            assert!(LclProblem::parse(&p.to_text()).is_ok());
            found += 1;
        }
        assert_eq!(keys.len(), 40);
    }

    #[test]
    fn duplicate_respellings_share_the_original_fingerprint() {
        let mut rng = SmallRng::seed_from_u64(SEED);
        let p = random_problem(1, 3, &mut rng);
        let twin = relabeled(&p, &random_permutation(p.output_alphabet().len(), &mut rng));
        assert_eq!(canonical_key(&p), canonical_key(&twin));
    }
}
