//! `classify-server` — the batch classification service on a Unix
//! socket (or stdio).
//!
//! ```text
//! classify-server <store-dir> [--socket <path>] [--workers <n>]
//! ```
//!
//! With `--socket`, listens on a Unix domain socket and serves each
//! connection on its own thread; without it, speaks the line protocol on
//! stdin/stdout (useful under a pipe or for smoke tests). The store
//! directory is created if missing; towers computed by previous runs are
//! served as cache hits, and interrupted jobs resume from their last
//! checkpoint.

use std::process::ExitCode;
use std::sync::Arc;

use lcl_service::{serve_connection, ClassifyServer, ServiceConfig, TowerStore};

fn usage() -> ExitCode {
    eprintln!("usage: classify-server <store-dir> [--socket <path>] [--workers <n>]");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(store_dir) = args.first() else {
        return usage();
    };
    let mut socket = None;
    let mut config = ServiceConfig::default();
    let mut i = 1;
    while i < args.len() {
        match (args[i].as_str(), args.get(i + 1)) {
            ("--socket", Some(path)) => socket = Some(path.clone()),
            ("--workers", Some(n)) => match n.parse() {
                Ok(n) => config.workers = n,
                Err(_) => return usage(),
            },
            _ => return usage(),
        }
        i += 2;
    }
    let store = match TowerStore::open(store_dir) {
        Ok(store) => Arc::new(store),
        Err(e) => {
            eprintln!("classify-server: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "classify-server: store {} ({} cached tower(s)), {} worker(s)",
        store.dir().display(),
        store.len(),
        config.workers
    );
    let server = Arc::new(ClassifyServer::start(store, config));
    let served = match socket {
        #[cfg(unix)]
        Some(path) => {
            let _ = std::fs::remove_file(&path);
            match std::os::unix::net::UnixListener::bind(&path) {
                Ok(listener) => {
                    eprintln!("classify-server: listening on {path}");
                    lcl_service::serve_unix(listener, Arc::clone(&server))
                }
                Err(e) => {
                    eprintln!("classify-server: bind {path}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        #[cfg(not(unix))]
        Some(_) => {
            eprintln!("classify-server: --socket needs a unix platform; use stdio");
            return ExitCode::FAILURE;
        }
        None => {
            let stdin = std::io::stdin();
            let stdout = std::io::stdout();
            serve_connection(&server, stdin.lock(), stdout.lock())
        }
    };
    if let Err(e) = served {
        eprintln!("classify-server: {e}");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
