//! `bench-diff` — the perf-regression gate over committed baselines.
//!
//! ```sh
//! # Diff a fresh report against the committed baseline:
//! cargo run -p lcl-bench --bin bench-diff -- BENCH_obs.json /tmp/new_obs.json
//!
//! # Self-diff (sanity: a baseline never regresses against itself):
//! cargo run -p lcl-bench --bin bench-diff -- BENCH_obs.json
//!
//! # Schema check only:
//! cargo run -p lcl-bench --bin bench-diff -- --check-schema BENCH_obs.json
//! ```
//!
//! Counters compare bit-exact (raw JSON text); `wall_us`/`*_ms` keys get
//! a relative tolerance (default ±30 %, `--wall-tol 0.5` to widen);
//! `threads_available` is informational. `par_speedup` is gated by a
//! floor (default 1.5, `--speedup-floor 2.0` to tighten) whenever the
//! candidate report was measured with at least 8 threads and the problem
//! is big enough to rise above scheduler noise. Curves panels
//! (`BENCH_curves.json`) gate on the fitted asymptotic class bit-exactly
//! plus an `r2` floor (default 0.8, `--r2-floor 0.9` to tighten) — they
//! carry no wall keys, so wall noise cannot fail them. Exit codes: 0 = clean,
//! 1 = regression or schema violation, 2 = usage/parse error.

use std::process::ExitCode;

use lcl_bench::diff::{check_schema, detect_schema, diff, DiffOptions};
use lcl_bench::json::{parse, JsonValue};

struct Args {
    baseline: String,
    candidate: Option<String>,
    wall_tolerance: f64,
    speedup_floor: f64,
    r2_floor: f64,
    schema_only: bool,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: bench-diff [--wall-tol FRACTION] [--speedup-floor RATIO] \
         [--r2-floor R2] [--check-schema] BASELINE [CANDIDATE]\n\
         \n\
         Compares CANDIDATE against BASELINE (both BENCH_*.json reports).\n\
         With no CANDIDATE, self-diffs BASELINE (always clean) — useful\n\
         together with --check-schema to validate a committed baseline.\n\
         Exit codes: 0 clean, 1 regression/violation, 2 usage or parse error."
    );
    ExitCode::from(2)
}

fn parse_args() -> Result<Args, ExitCode> {
    let mut baseline = None;
    let mut candidate = None;
    let mut wall_tolerance = DiffOptions::default().wall_tolerance;
    let mut speedup_floor = DiffOptions::default().speedup_floor;
    let mut r2_floor = DiffOptions::default().r2_floor;
    let mut schema_only = false;
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--wall-tol" => {
                let Some(value) = argv.next() else {
                    eprintln!("bench-diff: --wall-tol needs a value");
                    return Err(usage());
                };
                match value.parse::<f64>() {
                    Ok(v) if v >= 0.0 => wall_tolerance = v,
                    _ => {
                        eprintln!("bench-diff: invalid --wall-tol '{value}'");
                        return Err(usage());
                    }
                }
            }
            "--speedup-floor" => {
                let Some(value) = argv.next() else {
                    eprintln!("bench-diff: --speedup-floor needs a value");
                    return Err(usage());
                };
                match value.parse::<f64>() {
                    Ok(v) if v >= 0.0 => speedup_floor = v,
                    _ => {
                        eprintln!("bench-diff: invalid --speedup-floor '{value}'");
                        return Err(usage());
                    }
                }
            }
            "--r2-floor" => {
                let Some(value) = argv.next() else {
                    eprintln!("bench-diff: --r2-floor needs a value");
                    return Err(usage());
                };
                match value.parse::<f64>() {
                    Ok(v) if (0.0..=1.0).contains(&v) => r2_floor = v,
                    _ => {
                        eprintln!("bench-diff: invalid --r2-floor '{value}'");
                        return Err(usage());
                    }
                }
            }
            "--check-schema" => schema_only = true,
            "--help" | "-h" => return Err(usage()),
            _ if arg.starts_with('-') => {
                eprintln!("bench-diff: unknown flag '{arg}'");
                return Err(usage());
            }
            _ if baseline.is_none() => baseline = Some(arg),
            _ if candidate.is_none() => candidate = Some(arg),
            _ => {
                eprintln!("bench-diff: too many positional arguments");
                return Err(usage());
            }
        }
    }
    let Some(baseline) = baseline else {
        return Err(usage());
    };
    Ok(Args {
        baseline,
        candidate,
        wall_tolerance,
        speedup_floor,
        r2_floor,
        schema_only,
    })
}

fn load(path: &str) -> Result<JsonValue, ExitCode> {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("bench-diff: cannot read {path}: {e}");
            return Err(ExitCode::from(2));
        }
    };
    match parse(&text) {
        Ok(doc) => Ok(doc),
        Err(e) => {
            eprintln!("bench-diff: {path}: {e}");
            Err(ExitCode::from(2))
        }
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(code) => return code,
    };
    let baseline = match load(&args.baseline) {
        Ok(doc) => doc,
        Err(code) => return code,
    };

    let schema = detect_schema(&baseline);
    let schema_errors = check_schema(&baseline, schema);
    if !schema_errors.is_empty() {
        eprintln!(
            "bench-diff: {} violates the {schema} schema:",
            args.baseline
        );
        for e in &schema_errors {
            eprintln!("  {e}");
        }
        return ExitCode::from(1);
    }
    println!("{}: valid {schema} baseline", args.baseline);
    if args.schema_only && args.candidate.is_none() {
        return ExitCode::SUCCESS;
    }

    let candidate_path = args.candidate.as_deref().unwrap_or(&args.baseline);
    let candidate = match load(candidate_path) {
        Ok(doc) => doc,
        Err(code) => return code,
    };
    let report = diff(
        &baseline,
        &candidate,
        DiffOptions {
            wall_tolerance: args.wall_tolerance,
            speedup_floor: args.speedup_floor,
            r2_floor: args.r2_floor,
            ..DiffOptions::default()
        },
    );
    for note in &report.notes {
        println!("note: {note}");
    }
    if report.is_clean() {
        println!(
            "{candidate_path}: no regressions against {} (wall tolerance ±{:.0} %)",
            args.baseline,
            args.wall_tolerance * 100.0
        );
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "bench-diff: {} regression(s) in {candidate_path} against {}:",
            report.regressions.len(),
            args.baseline
        );
        for r in &report.regressions {
            eprintln!("  {r}");
        }
        ExitCode::from(1)
    }
}
