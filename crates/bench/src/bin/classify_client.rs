//! `classify-client` — submits one problem to a running
//! `classify-server` socket and streams the response lines.
//!
//! ```text
//! classify-client <socket> <problem-file|-> [--steps <n>] [--id <n>] [--retries <n>] [--backoff-ms <n>] [--timeout-ms <n>]
//! classify-client <socket> --stats [--id <n>] [--retries <n>] [--backoff-ms <n>] [--timeout-ms <n>]
//! classify-client <socket> --watch [<events>] [--id <n>] [--retries <n>] [--backoff-ms <n>] [--timeout-ms <n>]
//! ```
//!
//! In classify mode the problem is read from the file (or stdin with
//! `-`), wrapped in a request line, and written to the socket; every
//! response line is echoed to stdout until the terminal result or error
//! arrives. `--stats` fetches one server-counter snapshot (including
//! the Prometheus text of every computed job) and exits. `--watch`
//! tails the server's live checkpoint/retry/level-complete telemetry,
//! forever with no count or until `<events>` lines have streamed. Exits
//! nonzero on transport failures or an in-band error response.
//!
//! A refused or timed-out connect (server restarting, stale socket
//! about to be rebound) is retried `--retries` times under a capped
//! deterministic backoff starting at `--backoff-ms` milliseconds; a
//! socket path that does not exist fails immediately with a distinct
//! diagnosis instead of burning retries.
//!
//! `--timeout-ms` arms read/write deadlines on the connected socket: a
//! server that accepts the connection but then stalls (wedged worker,
//! paused process) fails the client within the deadline instead of
//! hanging it forever. Off by default — `--watch` without a count is
//! expected to idle between events.

use std::io::{BufRead, BufReader, Read, Write};
use std::process::ExitCode;

use lcl_service::{
    encode_request, encode_stats_request, encode_watch_request, parse_response, ClassifyRequest,
    Response, RetryPolicy,
};

fn usage() -> ExitCode {
    eprintln!(
        "usage: classify-client <socket> <problem-file|-> [--steps <n>] [--id <n>] \
         [--retries <n>] [--backoff-ms <n>] [--timeout-ms <n>]\n\
         \x20      classify-client <socket> --stats [--id <n>] [--retries <n>] [--backoff-ms <n>] \
         [--timeout-ms <n>]\n\
         \x20      classify-client <socket> --watch [<events>] [--id <n>] [--retries <n>] \
         [--backoff-ms <n>] [--timeout-ms <n>]"
    );
    ExitCode::FAILURE
}

#[cfg(not(unix))]
fn main() -> ExitCode {
    eprintln!("classify-client: needs a unix platform (unix-socket transport)");
    ExitCode::FAILURE
}

#[cfg(unix)]
enum Mode {
    Classify { source: String, steps: u64 },
    Stats,
    Watch { limit: u64 },
}

#[cfg(unix)]
fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (Some(socket), Some(selector)) = (args.first(), args.get(1)) else {
        return usage();
    };
    let mut id = 1u64;
    let mut policy = RetryPolicy::default();
    let mut timeout_ms: Option<u64> = None;
    let mut i = 2;
    let mut mode = match selector.as_str() {
        "--stats" => Mode::Stats,
        "--watch" => {
            let limit = match args.get(2).and_then(|v| v.parse::<u64>().ok()) {
                Some(n) => {
                    i = 3;
                    n
                }
                None => 0,
            };
            Mode::Watch { limit }
        }
        source => Mode::Classify {
            source: source.to_string(),
            steps: 1,
        },
    };
    while i < args.len() {
        let value = args.get(i + 1).and_then(|v| v.parse::<u64>().ok());
        match (args[i].as_str(), value, &mut mode) {
            ("--steps", Some(n), Mode::Classify { steps, .. }) => *steps = n,
            ("--id", Some(n), _) => id = n,
            ("--retries", Some(n), _) => policy.retries = n.min(u64::from(u32::MAX)) as u32,
            ("--backoff-ms", Some(n), _) => policy.backoff_ms = n,
            ("--timeout-ms", Some(n), _) => timeout_ms = Some(n),
            _ => return usage(),
        }
        i += 2;
    }
    let line = match &mode {
        Mode::Stats => encode_stats_request(id),
        Mode::Watch { limit } => encode_watch_request(id, *limit),
        Mode::Classify { source, steps } => {
            let mut problem = String::new();
            let read = if source == "-" {
                std::io::stdin().lock().read_to_string(&mut problem)
            } else {
                std::fs::File::open(source).and_then(|mut f| f.read_to_string(&mut problem))
            };
            if let Err(e) = read {
                eprintln!("classify-client: read {source}: {e}");
                return ExitCode::FAILURE;
            }
            encode_request(&ClassifyRequest {
                id,
                problem,
                steps: *steps,
            })
        }
    };
    let streaming = matches!(mode, Mode::Watch { .. });
    let path = std::path::Path::new(socket);
    let stream = match lcl_service::connect_with_deadline(
        path,
        policy,
        timeout_ms,
        |attempt, delay_ms, e| {
            eprintln!(
                "classify-client: connect attempt {attempt} failed ({e}); \
                 retrying in {delay_ms} ms"
            );
        },
    ) {
        Ok(stream) => stream,
        Err(e) => {
            eprintln!("classify-client: {e}");
            return ExitCode::FAILURE;
        }
    };
    match talk(stream, &line, streaming) {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(e) => {
            // With an armed deadline, fold the raw timeout kind into the
            // typed diagnosis so a stalled server reads as such.
            match timeout_ms {
                Some(ms) => eprintln!(
                    "classify-client: {}",
                    lcl_service::deadline_error(path, ms, e)
                ),
                None => eprintln!("classify-client: {e}"),
            }
            ExitCode::FAILURE
        }
    }
}

/// Sends the request line and echoes responses. In `streaming` (watch)
/// mode every line is progress and the connection closing cleanly is
/// success; otherwise `Ok(true)` iff the terminal line is a non-error
/// result or stats reply.
#[cfg(unix)]
fn talk(
    mut stream: std::os::unix::net::UnixStream,
    request_line: &str,
    streaming: bool,
) -> std::io::Result<bool> {
    stream.write_all(request_line.as_bytes())?;
    stream.write_all(b"\n")?;
    // Half-close the write side: the server finishes this request's
    // response stream, sees EOF instead of waiting for another line,
    // and closes — without it a limit-spent watch would deadlock, each
    // side waiting on the other.
    stream.shutdown(std::net::Shutdown::Write)?;
    let reader = BufReader::new(stream.try_clone()?);
    for line in reader.lines() {
        let line = line?;
        println!("{line}");
        match parse_response(&line) {
            Ok(Response::Progress { .. }) => {}
            Ok(Response::Result(_) | Response::Stats(_)) => return Ok(true),
            Ok(Response::Error { .. }) | Err(_) => return Ok(false),
        }
    }
    if streaming {
        return Ok(true);
    }
    eprintln!("classify-client: connection closed before a terminal response");
    Ok(false)
}
