//! `classify-client` — submits one problem to a running
//! `classify-server` socket and streams the response lines.
//!
//! ```text
//! classify-client <socket> <problem-file|-> [--steps <n>] [--id <n>]
//! ```
//!
//! The problem is read from the file (or stdin with `-`), wrapped in a
//! request line, and written to the socket; every response line is
//! echoed to stdout until the terminal result or error arrives. Exits
//! nonzero on transport failures or an in-band error response.

use std::io::{BufRead, BufReader, Read, Write};
use std::process::ExitCode;

use lcl_service::{encode_request, parse_response, ClassifyRequest, Response};

fn usage() -> ExitCode {
    eprintln!("usage: classify-client <socket> <problem-file|-> [--steps <n>] [--id <n>]");
    ExitCode::FAILURE
}

#[cfg(not(unix))]
fn main() -> ExitCode {
    eprintln!("classify-client: needs a unix platform (unix-socket transport)");
    ExitCode::FAILURE
}

#[cfg(unix)]
fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (Some(socket), Some(source)) = (args.first(), args.get(1)) else {
        return usage();
    };
    let mut req = ClassifyRequest {
        id: 1,
        problem: String::new(),
        steps: 1,
    };
    let mut i = 2;
    while i < args.len() {
        let value = args.get(i + 1).and_then(|v| v.parse::<u64>().ok());
        match (args[i].as_str(), value) {
            ("--steps", Some(n)) => req.steps = n,
            ("--id", Some(n)) => req.id = n,
            _ => return usage(),
        }
        i += 2;
    }
    let read = if source == "-" {
        std::io::stdin().lock().read_to_string(&mut req.problem)
    } else {
        std::fs::File::open(source).and_then(|mut f| f.read_to_string(&mut req.problem))
    };
    if let Err(e) = read {
        eprintln!("classify-client: read {source}: {e}");
        return ExitCode::FAILURE;
    }
    match talk(socket, &req) {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(e) => {
            eprintln!("classify-client: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Sends the request and echoes responses; `Ok(true)` iff the terminal
/// line is a non-error result.
#[cfg(unix)]
fn talk(socket: &str, req: &ClassifyRequest) -> std::io::Result<bool> {
    let mut stream = std::os::unix::net::UnixStream::connect(socket)?;
    stream.write_all(encode_request(req).as_bytes())?;
    stream.write_all(b"\n")?;
    let reader = BufReader::new(stream.try_clone()?);
    for line in reader.lines() {
        let line = line?;
        println!("{line}");
        match parse_response(&line) {
            Ok(Response::Progress { .. }) => {}
            Ok(Response::Result(_)) => return Ok(true),
            Ok(Response::Error { .. }) | Err(_) => return Ok(false),
        }
    }
    eprintln!("classify-client: connection closed before a terminal response");
    Ok(false)
}
