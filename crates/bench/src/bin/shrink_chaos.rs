//! `shrink-chaos <local|volume|lca|prod|shard|proc> <seed>` — bisect a
//! failing chaos seed to a minimal reproducing [`FaultPlan`].
//!
//! The tool regenerates the chaos instance for `(model, seed)` exactly
//! as the soak does (same graph, ids, and random plan), defines
//! "reproduces" as *the faulted run degrades or its labeling diverges
//! from the fault-free run*, and greedily shrinks the plan
//! ([`lcl_bench::shrink::shrink_plan`]) until no single fault (nor the
//! adversarial ID permutation) can be dropped. It prints both plans in
//! the `FaultPlan::to_text` wire format, ready to paste into a
//! regression test. `scripts/shrink_chaos.sh` wraps it.
//!
//! The `shard` model runs on the sharded substrate and seeds the plan
//! with node faults *plus* whole-shard losses, so the shrinker bisects
//! across both kinds — typically discovering that one `crash-shard`
//! directive alone reproduces the degradation.
//!
//! The `proc` model runs on the process-per-shard substrate
//! ([`lcl_procshard`]) and seeds the plan with node faults *plus*
//! `kill-shard` directives — real `SIGKILL`s to worker processes.
//! Because kills are output-transparent (the supervisor respawns and
//! replays the victim), they reproduce through the fault record, and
//! the shrinker typically lands on a single `kill-shard` directive.
//! Needs `target/<profile>/shard-worker` next to the binary: run
//! `cargo build --release` first.

use std::env;
use std::process::ExitCode;

use lcl::{uniform_input, HalfEdgeLabeling, OutLabel};
use lcl_bench::shrink::shrink_plan;
use lcl_faults::{FaultPlan, RunOptions};
use lcl_graph::{gen, Graph, HalfEdgeId};
use lcl_grid::{FnProdAlgorithm, OrientedGrid, ProdIds};
use lcl_local::{simulate_sync_with, IdAssignment};
use lcl_problems::DeltaPlusOne;
use lcl_procshard::{run_proc_sharded, AlgSpec, GraphSpec, InputSpec, ProcJob, ProcOptions};
use lcl_rng::SmallRng;
use lcl_volume::lca::VolumeAsLca;
use lcl_volume::{
    simulate_lca_with, simulate_with as simulate_volume_with, FnVolumeAlgorithm, ProbeSession,
};

fn labeling_fp(g: &Graph, out: &HalfEdgeLabeling<OutLabel>) -> String {
    (0..g.half_edge_count() as u32)
        .map(|h| out.get(HalfEdgeId(h)).0.to_string())
        .collect::<Vec<_>>()
        .join(",")
}

#[allow(clippy::type_complexity)] // `impl Trait` closure types cannot be aliased
fn neighbor_probe_alg() -> FnVolumeAlgorithm<
    impl Fn(usize) -> usize,
    impl Fn(&mut ProbeSession<'_>) -> Result<Vec<OutLabel>, lcl_volume::ProbeError>,
> {
    FnVolumeAlgorithm::new(
        "chaos-neighbor",
        |_| 2,
        |s| {
            let d = s.queried().degree as usize;
            let n0 = s.probe(0, 0)?;
            Ok(vec![OutLabel((n0.id % 97) as u32); d])
        },
    )
}

/// The node count of the chaos instance for `(model, seed)` — the same
/// seeded derivation the run functions use, needed up front to draw the
/// initial random plan.
fn instance_size(model: &str, seed: u64) -> Option<usize> {
    match model {
        "local" => {
            let mut rng = SmallRng::seed_from_u64(seed);
            Some(rng.gen_range(16usize..64))
        }
        "volume" => {
            let mut rng = SmallRng::seed_from_u64(seed ^ 0xabcd);
            Some(rng.gen_range(4usize..24))
        }
        "lca" => {
            let mut rng = SmallRng::seed_from_u64(seed ^ 0x77);
            Some(rng.gen_range(8usize..48))
        }
        "prod" => {
            let mut rng = SmallRng::seed_from_u64(seed ^ 0xfeed);
            let a = rng.gen_range(4usize..9);
            let b = rng.gen_range(4usize..9);
            Some(a * b)
        }
        "shard" => {
            let mut rng = SmallRng::seed_from_u64(seed ^ 0x5a4d);
            Some(rng.gen_range(24usize..96))
        }
        "proc" => {
            let mut rng = SmallRng::seed_from_u64(seed ^ 0x9c0c);
            Some(rng.gen_range(24usize..96))
        }
        _ => None,
    }
}

/// How many shards the `shard` model partitions its instance into.
const SHRINK_SHARDS: usize = 4;

/// Runs the chaos instance for `(model, seed)` under `plan`; returns
/// whether the run degraded and the output fingerprint.
fn run(model: &str, seed: u64, plan: &FaultPlan) -> (bool, String) {
    match model {
        "local" => {
            let mut rng = SmallRng::seed_from_u64(seed);
            let n = rng.gen_range(16usize..64);
            let g = gen::random_tree(n, 3, seed);
            let input = uniform_input(&g);
            let ids: Vec<u64> = IdAssignment::random_polynomial(n, 3, seed ^ 1)
                .iter()
                .collect();
            let report = simulate_sync_with(
                &DeltaPlusOne { delta: 3 },
                &g,
                &input,
                &ids,
                None,
                1000,
                RunOptions::new().faults(plan),
            );
            (
                report.outcome.is_degraded(),
                labeling_fp(&g, &report.outcome.outcome.output),
            )
        }
        "volume" => {
            let mut rng = SmallRng::seed_from_u64(seed ^ 0xabcd);
            let n = rng.gen_range(4usize..24);
            let g = gen::cycle(n);
            let input = uniform_input(&g);
            let ids = IdAssignment::random_polynomial(n, 3, seed ^ 2);
            let report = simulate_volume_with(
                &neighbor_probe_alg(),
                &g,
                &input,
                &ids,
                None,
                RunOptions::new().faults(plan),
            )
            .expect("faulted runs degrade instead of erroring");
            (
                report.outcome.is_degraded(),
                labeling_fp(&g, &report.outcome.outcome.output),
            )
        }
        "lca" => {
            let mut rng = SmallRng::seed_from_u64(seed ^ 0x77);
            let n = rng.gen_range(8usize..48);
            let g = gen::path(n);
            let input = uniform_input(&g);
            let ids = IdAssignment::from_vec((1..=n as u64).collect());
            let report = simulate_lca_with(
                &VolumeAsLca(neighbor_probe_alg()),
                &g,
                &input,
                &ids,
                RunOptions::new().faults(plan),
            )
            .expect("faulted runs degrade instead of erroring");
            (
                report.outcome.is_degraded(),
                labeling_fp(&g, &report.outcome.outcome.output),
            )
        }
        "prod" => {
            let mut rng = SmallRng::seed_from_u64(seed ^ 0xfeed);
            let a = rng.gen_range(4usize..9);
            let b = rng.gen_range(4usize..9);
            let grid = OrientedGrid::new(&[a, b]);
            let ids = ProdIds::sequential(&grid);
            let input = uniform_input(grid.graph());
            let alg = FnProdAlgorithm::new(
                "chaos-echo",
                |_| 1,
                |view: &lcl_grid::GridView| {
                    vec![OutLabel((view.id(0, -1) % 97) as u32); 2 * view.d]
                },
            );
            let report = lcl_grid::simulate_with(
                &alg,
                &grid,
                &input,
                &ids,
                None,
                RunOptions::new().faults(plan),
            );
            (
                report.outcome.is_degraded(),
                labeling_fp(grid.graph(), &report.outcome.outcome.output),
            )
        }
        "shard" => {
            let mut rng = SmallRng::seed_from_u64(seed ^ 0x5a4d);
            let n = rng.gen_range(24usize..96);
            let g = gen::random_tree(n, 3, seed);
            let input = uniform_input(&g);
            let ids: Vec<u64> = IdAssignment::random_polynomial(n, 3, seed ^ 3)
                .iter()
                .collect();
            let report = lcl_shard::simulate_sharded_with(
                &DeltaPlusOne { delta: 3 },
                &g,
                &input,
                &ids,
                None,
                1000,
                2,
                RunOptions::new().faults(plan).sharded(SHRINK_SHARDS),
            );
            (
                report.outcome.is_degraded(),
                labeling_fp(&g, &report.outcome.outcome.output),
            )
        }
        "proc" => {
            let mut rng = SmallRng::seed_from_u64(seed ^ 0x9c0c);
            let n = rng.gen_range(24usize..96);
            let g = gen::random_tree(n, 3, seed);
            let ids: Vec<u64> = IdAssignment::random_polynomial(n, 3, seed ^ 3)
                .iter()
                .collect();
            let job = ProcJob {
                graph: GraphSpec::RandomTree {
                    n,
                    max_degree: 3,
                    seed,
                },
                alg: AlgSpec::GuardedFlood { k: 3 },
                input: InputSpec::Uniform,
                ids,
                n_announced: None,
                max_rounds: 10,
            };
            match run_proc_sharded(
                &job,
                RunOptions::new().faults(plan).sharded(SHRINK_SHARDS),
                &ProcOptions::default(),
            ) {
                Ok(report) => (
                    report.outcome.is_degraded(),
                    labeling_fp(&g, &report.outcome.outcome.output),
                ),
                // A run the supervisor could not finish (respawn budget
                // exhausted, protocol breakage) certainly reproduces.
                Err(e) => (true, format!("error: {e}")),
            }
        }
        other => {
            // `main` validated the model name before calling.
            unreachable_model(other)
        }
    }
}

fn unreachable_model(model: &str) -> ! {
    eprintln!("internal error: unvalidated model {model}");
    std::process::exit(2);
}

/// "Reproduces" = the run degrades, or its labeling diverges from the
/// fault-free run under the same ID permutation.
fn reproduces(model: &str, seed: u64, plan: &FaultPlan) -> bool {
    let (degraded, fp) = run(model, seed, plan);
    if degraded {
        return true;
    }
    let mut clean = FaultPlan::new(plan.seed());
    if plan.permutes_ids() {
        clean = clean.with_permuted_ids();
    }
    let (_, clean_fp) = run(model, seed, &clean);
    fp != clean_fp
}

fn main() -> ExitCode {
    let args: Vec<String> = env::args().collect();
    if args.len() != 3 {
        eprintln!("usage: shrink-chaos <local|volume|lca|prod|shard|proc> <seed>");
        return ExitCode::FAILURE;
    }
    let model = args[1].as_str();
    let seed: u64 = match args[2].parse() {
        Ok(s) => s,
        Err(_) => {
            eprintln!("seed must be a non-negative integer, got {:?}", args[2]);
            return ExitCode::FAILURE;
        }
    };
    let Some(n) = instance_size(model, seed) else {
        eprintln!("unknown model {model:?}; expected local, volume, lca, prod, shard, or proc");
        return ExitCode::FAILURE;
    };

    let mut plan = FaultPlan::random(seed, n, 4);
    if model == "shard" {
        // Seed whole-shard losses alongside the node faults so the
        // shrinker bisects across both kinds.
        for &fault in FaultPlan::random_shard_chaos(seed, SHRINK_SHARDS, 2, 2).faults() {
            plan = plan.with(fault);
        }
    }
    if model == "proc" {
        // Seed real SIGKILLs alongside the node faults so the shrinker
        // bisects across both kinds.
        for &fault in FaultPlan::random_kill_chaos(seed, SHRINK_SHARDS, 2, 2).faults() {
            plan = plan.with(fault);
        }
    }
    println!("model {model}, seed {seed}, {n} nodes");
    println!("-- original plan ({} faults) --", plan.faults().len());
    print!("{}", plan.to_text());

    if !reproduces(model, seed, &plan) {
        println!("-- plan does not reproduce (run is clean); nothing to shrink --");
        return ExitCode::SUCCESS;
    }

    let shrunk = shrink_plan(&plan, |p| reproduces(model, seed, p));
    println!(
        "-- shrunk plan ({} faults, permute-ids {}) --",
        shrunk.faults().len(),
        shrunk.permutes_ids()
    );
    print!("{}", shrunk.to_text());
    ExitCode::SUCCESS
}
