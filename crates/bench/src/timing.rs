//! A minimal self-contained micro-benchmark harness (the build
//! environment is offline, so Criterion is not available).
//!
//! Each benchmark runs a short calibration phase to pick an iteration
//! count that fills roughly `SAMPLE_TARGET` per sample, then takes
//! `SAMPLES` timed samples and reports the median, minimum, and maximum
//! per-iteration time.

use std::time::{Duration, Instant};

const SAMPLES: usize = 10;
const SAMPLE_TARGET: Duration = Duration::from_millis(50);

/// The timing summary of one benchmark.
#[derive(Clone, Debug)]
pub struct BenchResult {
    /// Benchmark name.
    pub name: String,
    /// Median per-iteration time.
    pub median: Duration,
    /// Fastest per-iteration time observed.
    pub min: Duration,
    /// Slowest per-iteration time observed.
    pub max: Duration,
    /// Iterations per sample.
    pub iters_per_sample: u64,
}

impl BenchResult {
    /// Renders as an aligned report line.
    pub fn render(&self) -> String {
        format!(
            "{:<44} median {:>12}  min {:>12}  max {:>12}  ({} iters/sample)",
            self.name,
            fmt_duration(self.median),
            fmt_duration(self.min),
            fmt_duration(self.max),
            self.iters_per_sample,
        )
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Times `f`, printing a report line; the closure's return value is
/// black-boxed so the computation is not optimized away.
pub fn bench_function<T>(name: &str, mut f: impl FnMut() -> T) -> BenchResult {
    // Calibrate: how many iterations fit in SAMPLE_TARGET?
    let mut iters = 1u64;
    loop {
        let start = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(f());
        }
        let elapsed = start.elapsed();
        if elapsed >= SAMPLE_TARGET || iters >= 1 << 20 {
            break;
        }
        // Grow toward the target without overshooting wildly.
        let factor =
            (SAMPLE_TARGET.as_secs_f64() / elapsed.as_secs_f64().max(1e-9)).clamp(1.5, 16.0);
        iters = ((iters as f64 * factor) as u64).max(iters + 1);
    }

    let mut per_iter: Vec<Duration> = (0..SAMPLES)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(f());
            }
            start.elapsed() / iters as u32
        })
        .collect();
    per_iter.sort_unstable();
    let result = BenchResult {
        name: name.to_string(),
        median: per_iter[per_iter.len() / 2],
        min: per_iter[0],
        max: per_iter[per_iter.len() - 1],
        iters_per_sample: iters,
    };
    println!("{}", result.render());
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_reports_plausible_times() {
        let r = bench_function("noop_accumulate", || (0..100u64).sum::<u64>());
        assert!(r.min <= r.median && r.median <= r.max);
        assert!(r.iters_per_sample >= 1);
    }

    #[test]
    fn durations_format_by_magnitude() {
        assert_eq!(fmt_duration(Duration::from_nanos(12)), "12 ns");
        assert_eq!(fmt_duration(Duration::from_micros(3)), "3.00 µs");
        assert_eq!(fmt_duration(Duration::from_millis(7)), "7.00 ms");
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.00 s");
    }
}
