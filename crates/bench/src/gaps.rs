//! The theorem experiments E5–E10: the paper's gap results, executed.

use lcl::LclProblem;
use lcl_classify::{classify_oriented_cycle, classify_oriented_path};
use lcl_core::derived::{Derivation, DerivedOptions, LocalInfo, NeighborInfo, OneRoundAlgorithm};
use lcl_core::speedup_grids::OrientationCanonical;
use lcl_core::speedup_volume::{run_fooled_volume, ProbeDecision, TranscriptAlgorithm};
use lcl_core::{
    blowup_factor, step_bound, tree_speedup, ReOptions, ReTower, SpeedupOptions, SpeedupOutcome,
};
use lcl_graph::gen;
use lcl_grid::{run_prod_local, OrientedGrid, ProdIds, RankGridView};
use lcl_local::{run_sync, IdAssignment};
use lcl_problems::{
    anti_matching, free_problem, k_coloring, maximal_matching_problem, mis_problem,
    sinkless_orientation, two_coloring,
};
use lcl_volume::NodeInfo;

use crate::cells;
use crate::table::Table;

/// E5 — Theorem 3.11 as a synthesizer: run the round-elimination pipeline
/// on a battery of problems; `o(log* n)` ones synthesize to constant
/// rounds (verified on random forests), `Θ(log* n)`-and-up ones exhaust.
pub fn speedup_trees() -> Table {
    let mut table = Table::new(
        "E5 / Theorem 3.11 — the speedup pipeline",
        &["problem", "outcome", "rounds", "verified on forests"],
    );
    let battery: Vec<LclProblem> = vec![
        free_problem(2, 3),
        anti_matching(3),
        forced_inputs_problem(),
        k_coloring(3, 3),
        sinkless_orientation(3),
    ];
    for problem in &battery {
        let outcome = tree_speedup(problem, SpeedupOptions::default());
        match &outcome {
            SpeedupOutcome::ConstantRound { steps, .. } => {
                let alg = outcome.algorithm();
                let mut ok = true;
                for seed in 0..3u64 {
                    let g = gen::random_forest(40, 4, 3, seed);
                    let input = lcl::uniform_input(&g);
                    let ids: Vec<u64> = (0..g.node_count() as u64).map(|i| i * 13 + seed).collect();
                    let run = run_sync(&alg, &g, &input, &ids, None, 10);
                    ok &= lcl::verify(problem, &g, &input, &run.output).is_empty();
                }
                table.row(cells!(
                    problem.problem_name(),
                    "O(1) — synthesized",
                    steps,
                    if ok { "yes" } else { "NO" }
                ));
            }
            SpeedupOutcome::Exhausted {
                steps_tried,
                alphabet_sizes,
                ..
            } => {
                table.row(cells!(
                    problem.problem_name(),
                    format!("not constant within {steps_tried} f-steps"),
                    format!("alphabets {alphabet_sizes:?}"),
                    "n/a"
                ));
            }
        }
    }
    table
}

/// A problem with *inputs* that is 0-round solvable — exercising the
/// paper's extension of round elimination to LCLs with inputs.
fn forced_inputs_problem() -> LclProblem {
    LclProblem::builder("forced-inputs", 3)
        .inputs(["x", "y"])
        .outputs(["X", "Y"])
        .node_pattern(&["X*", "Y*"])
        .edge(&["X", "X"])
        .edge(&["X", "Y"])
        .edge(&["Y", "Y"])
        .allow("x", &["X"])
        .allow("y", &["Y"])
        .build()
        .expect("well-formed")
}

/// The randomized one-round anti-matching orienter used by E6: endpoint
/// with the larger `k`-bit coin outputs X; ties fail with probability
/// `2^{-k}` per edge.
struct CoinOrient {
    k: u32,
}

impl OneRoundAlgorithm for CoinOrient {
    fn label(
        &self,
        me: &LocalInfo,
        my_bits: u64,
        neighbors: &[(NeighborInfo, u64)],
    ) -> Vec<lcl::OutLabel> {
        let mask = (1u64 << self.k) - 1;
        (0..me.degree as usize)
            .map(|p| lcl::OutLabel(u32::from(my_bits & mask < neighbors[p].1 & mask)))
            .collect()
    }
}

/// E6 — Theorem 3.4: the measured local failure probabilities of `A`,
/// `A_½` and `A'` versus the theoretical recurrence `S·p^{1/(3Δ+3)}`.
pub fn failure_probabilities() -> Table {
    let mut table = Table::new(
        "E6 / Theorem 3.4 — local failure probability through one RE step",
        &[
            "coin bits",
            "p (theory)",
            "A fails",
            "A_1/2 fails",
            "A' fails",
            "A' predicted (L²/edge)",
            "bound S·p^(1/(3Δ+3))",
        ],
    );
    let problem = anti_matching(2);
    let mut tower = ReTower::new(problem.clone());
    tower
        .push_f(ReOptions {
            restrict: false,
            ..ReOptions::default()
        })
        .expect("anti-matching tower fits");

    for k in [2u32, 4, 6, 8] {
        let p_theory = 0.5f64.powi(k as i32); // tie probability per edge
        let alg = CoinOrient { k };
        let opts = DerivedOptions {
            k_threshold: p_theory.cbrt().min(0.4),
            l_threshold: 0.15,
            samples: 96,
            threads: 0,
        };
        let derivation = Derivation::new(&alg, 2, 1, 2, opts);
        let g = gen::path(12);
        let input = lcl::uniform_input(&g);

        let trials = 60;
        let mut fail_base = 0usize;
        let mut fail_half = 0usize;
        let mut fail_prime = 0usize;
        for seed in 0..trials {
            let base = derivation.run_base(&g, &input, seed);
            if !lcl::verify(&problem, &g, &input, &base).is_empty() {
                fail_base += 1;
            }
            let half = derivation
                .run_a_half(&tower, &g, &input, seed)
                .expect("unrestricted tower holds every derivable label");
            if !lcl::verify(&tower.level(1), &g, &input, &half).is_empty() {
                fail_half += 1;
            }
            let prime = derivation
                .run_a_prime(&tower, &g, &input, seed)
                .expect("unrestricted tower holds every derivable label");
            if !lcl::verify(&tower.level(2), &g, &input, &prime).is_empty() {
                fail_prime += 1;
            }
        }
        let s = blowup_factor(1, 3, 2, 1);
        let bound = step_bound(p_theory, s, 2);
        // A' discards the neighbor's randomness: an edge fails when both
        // endpoints' coins sit in the L-confident band, so a run fails
        // with probability ≈ 1 - (1 - L²)^m on top of A's own failures —
        // the q^{1/(Δ+1)}-type degradation Lemma 3.8 bounds.
        let l = opts.l_threshold;
        let edges = g.edge_count() as f64;
        let predicted_prime = 1.0 - (1.0 - l * l).powf(edges) * (1.0 - p_theory).powf(edges);
        table.row(cells!(
            k,
            format!("{p_theory:.4}"),
            format!("{}/{trials}", fail_base),
            format!("{}/{trials}", fail_half),
            format!("{}/{trials}", fail_prime),
            format!("{:.0}/{trials}", predicted_prime * trials as f64),
            format!("{bound:.3}")
        ));
    }
    table
}

/// The order-invariant local-min transcript algorithm used by E7.
#[derive(Clone)]
struct LocalMinProbe;

impl TranscriptAlgorithm for LocalMinProbe {
    fn probe_budget(&self, _n: usize) -> usize {
        2
    }

    fn decide(&self, _n: usize, t: &[NodeInfo]) -> ProbeDecision {
        match t.len() {
            1 => ProbeDecision::Probe { j: 0, port: 0 },
            2 => ProbeDecision::Probe { j: 0, port: 1 },
            _ => ProbeDecision::Output(vec![
                lcl::OutLabel(u32::from(
                    t[0].id < t[1].id && t[0].id < t[2].id
                ));
                t[0].degree as usize
            ]),
        }
    }
}

/// E7 — Theorems 4.1/4.3: the VOLUME pipeline. Canonicalize + fool at
/// `n₀`; probes stay constant while outputs remain correct on every `n`.
pub fn volume_gap() -> Table {
    let mut table = Table::new(
        "E7 / Theorem 4.1 — VOLUME: canonicalized + fooled at n₀ = 16",
        &["n", "probes (fooled)", "matches unfooled output"],
    );
    for n in [16usize, 64, 256, 1024] {
        let g = gen::cycle(n);
        let input = lcl::uniform_input(&g);
        let ids = IdAssignment::random_polynomial(n, 3, n as u64);
        let fooled = run_fooled_volume(&LocalMinProbe, 16, &g, &input, &ids).expect("in budget");
        let plain = lcl_volume::run_volume(
            &lcl_core::speedup_volume::TranscriptAsVolume(LocalMinProbe),
            &g,
            &input,
            &ids,
            None,
        )
        .expect("in budget");
        table.row(cells!(
            n,
            fooled.max_probes,
            if fooled.output == plain.output {
                "yes"
            } else {
                "NO"
            }
        ));
    }
    table
}

/// The order-invariant PROD-LOCAL pattern used by E8.
#[derive(Clone, Debug)]
struct UpstreamEnd;

impl lcl_grid::OrderInvariantProdAlgorithm for UpstreamEnd {
    fn radius(&self, _n: usize) -> u32 {
        1
    }
    fn label(&self, view: &RankGridView) -> Vec<lcl::OutLabel> {
        let is_min = (-1..=1).all(|o| view.rank(0, 0) <= view.rank(0, o));
        vec![lcl::OutLabel(u32::from(is_min)); 2 * view.d]
    }
}

/// E8 — Theorem 5.1: the grid pipeline. The orientation-canonical,
/// fooled algorithm is identifier-free and constant-radius on every grid
/// size.
pub fn grid_gap() -> Table {
    let mut table = Table::new(
        "E8 / Theorem 5.1 — oriented grids: orientation-canonical at n₀ = 16",
        &["side", "n", "radius", "identifier-free"],
    );
    let alg = OrientationCanonical::new(UpstreamEnd, 16);
    for side in [4usize, 8, 16, 32] {
        let grid = OrientedGrid::new(&[side, side]);
        let input = lcl::uniform_input(grid.graph());
        let a = ProdIds::random_polynomial(&grid, 3, 1);
        let b = ProdIds::random_polynomial(&grid, 3, 2);
        let run_a = run_prod_local(&alg, &grid, &input, &a, None);
        let run_b = run_prod_local(&alg, &grid, &input, &b, None);
        table.row(cells!(
            side,
            grid.node_count(),
            run_a.radius,
            if run_a.output == run_b.output {
                "yes"
            } else {
                "NO"
            }
        ));
    }
    table
}

/// E9 — the decidable slice (Section 1.4): classification of the catalog
/// problems on oriented paths/cycles, and for the classes that admit one,
/// the *synthesized* algorithm run and verified on a 64-cycle.
pub fn landscape_paths() -> Table {
    use lcl_classify::synthesize_cycle;
    use lcl_local::{run_deterministic, IdAssignment};

    let mut table = Table::new(
        "E9 / Section 1.4 — decidable classification on oriented paths/cycles",
        &[
            "problem",
            "cycles",
            "paths",
            "all large n",
            "synthesized algorithm (verified on C64)",
        ],
    );
    let battery: Vec<LclProblem> = vec![
        free_problem(2, 2),
        k_coloring(3, 2),
        two_coloring(2),
        mis_problem(2),
        maximal_matching_problem(2),
        sinkless_orientation(2),
    ];
    for p in &battery {
        let cycle = classify_oriented_cycle(p);
        let path = classify_oriented_path(p);
        let synthesized = match synthesize_cycle(p) {
            Ok(Some(alg)) => {
                let g = gen::cycle(64);
                let input = lcl::uniform_input(&g);
                let ids = IdAssignment::random_polynomial(64, 3, 13);
                let run = run_deterministic(&alg, &g, &input, &ids, None);
                let valid = lcl::verify(p, &g, &input, &run.output).is_empty();
                format!(
                    "{} — {}",
                    alg.describe(),
                    if valid { "valid" } else { "INVALID" }
                )
            }
            Ok(None) => "none (global)".to_string(),
            Err(e) => e.to_string(),
        };
        table.row(cells!(
            p.problem_name(),
            cycle
                .as_ref()
                .map(|c| c.class.to_string())
                .unwrap_or_else(|e| e.to_string()),
            path.as_ref()
                .map(|c| c.class.to_string())
                .unwrap_or_else(|e| e.to_string()),
            cycle
                .map(|c| if c.solvable_all_large { "yes" } else { "no" })
                .unwrap_or("?"),
            synthesized
        ));
    }
    table
}

/// E10 — the label-growth ablation: alphabet sizes along the
/// round-elimination sequence, with and without the usefulness
/// restriction (the paper's remark on doubly-exponential growth).
pub fn label_growth() -> Table {
    let mut table = Table::new(
        "E10 / ablation — label growth along Π, R(Π), R̄(R(Π))",
        &["problem", "mode", "|Σ| per level", "note"],
    );
    let battery: Vec<LclProblem> =
        vec![anti_matching(3), k_coloring(3, 3), sinkless_orientation(3)];
    for p in &battery {
        for restrict in [true, false] {
            let mut tower = ReTower::new(p.clone());
            let opts = ReOptions {
                restrict,
                ..ReOptions::default()
            };
            let note = match tower.push_f(opts) {
                Ok(()) => String::new(),
                Err(e) => format!("stopped: {e}"),
            };
            let sizes: Vec<usize> = (0..tower.level_count())
                .map(|l| tower.alphabet_size(l))
                .collect();
            table.row(cells!(
                p.problem_name(),
                if restrict { "restricted" } else { "full" },
                format!("{sizes:?}"),
                note
            ));
        }
    }
    table
}

/// E11 — the high-girth remark of Section 1.1: for any LCL, the
/// complexity on trees equals the complexity on graphs of sufficiently
/// large girth. The algorithm synthesized for trees runs unchanged on
/// random cubic graphs, and is correct whenever the girth exceeds twice
/// its horizon.
pub fn high_girth_transfer() -> Table {
    let mut table = Table::new(
        "E11 / §1.1 — tree-synthesized algorithm on high-girth cubic graphs",
        &["n", "girth", "rounds", "valid"],
    );
    let problem = anti_matching(3);
    let outcome = tree_speedup(&problem, SpeedupOptions::default());
    let alg = outcome.algorithm();
    // The synthesized algorithm has horizon 1 round + verification radius
    // 1: girth ≥ 5 makes every relevant neighborhood tree-like.
    for n in [24usize, 48, 96, 192] {
        let Some((g, girth)) = (0..100).find_map(|seed| {
            let g = gen::random_regular(n, 3, seed + n as u64).ok()?;
            let girth = g.girth()?;
            (girth >= 5).then_some((g, girth))
        }) else {
            table.row(cells!(n, "-", "-", "no high-girth sample found"));
            continue;
        };
        let input = lcl::uniform_input(&g);
        let ids: Vec<u64> = (0..n as u64).map(|i| i * 17 + 3).collect();
        let run = run_sync(&alg, &g, &input, &ids, None, 10);
        let valid = lcl::verify(&problem, &g, &input, &run.output).is_empty();
        table.row(cells!(
            n,
            girth,
            run.rounds,
            if valid { "yes" } else { "NO" }
        ));
    }
    table
}

/// E13 — Lemma 3.3 in action: the forest construction's two cases
/// (canonical small-component solve vs delegation to the tree algorithm
/// with announced `n²`) across forests of varying component sizes.
pub fn lemma33_cases() -> Table {
    use lcl_core::lemma33::{run_lemma33, Lemma33Case};
    use lcl_graph::PortView;
    use lcl_local::{FnAlgorithm, IdAssignment};

    let mut table = Table::new(
        "E13 / Lemma 3.3 — forest construction: case split and validity",
        &[
            "forest",
            "components",
            "small-case nodes",
            "delegated nodes",
            "valid",
        ],
    );
    let problem = anti_matching(3);
    // The "tree algorithm": 1-round orientation by identifier.
    let orienter = FnAlgorithm::new(
        "orient",
        |_| 1,
        |view| {
            let me = view.ids[0];
            view.ball
                .center()
                .ports
                .iter()
                .map(|p| match *p {
                    PortView::Inside { node, .. } => {
                        lcl::OutLabel(u32::from(me < view.ids[node as usize]))
                    }
                    PortView::Outside => lcl::OutLabel(0),
                })
                .collect()
        },
    );
    for (name, g) in [
        ("tiny components", gen::random_forest(36, 12, 3, 1)),
        ("mixed", gen::random_forest(48, 6, 3, 2)),
        ("one big tree", gen::random_tree(48, 3, 3)),
    ] {
        let input = lcl::uniform_input(&g);
        let ids = IdAssignment::random_polynomial(g.node_count(), 3, 5);
        let run = run_lemma33(&problem, &orienter, &g, &input, &ids, 1 << 22);
        let small = run
            .cases
            .iter()
            .filter(|&&c| c == Lemma33Case::SmallComponent)
            .count();
        let delegated = run.cases.len() - small;
        let (_, components) = g.components();
        let valid = lcl::verify(&problem, &g, &input, &run.output).is_empty();
        table.row(cells!(
            name,
            components,
            small,
            delegated,
            if valid { "yes" } else { "NO" }
        ));
    }
    table
}

/// E12 — Conjecture 1.6 exploration: on *unoriented* grids (toroidal and
/// open) the paper conjectures the same `ω(1)`–`o(log* n)` gap. The
/// orientation-free algorithms of the suite populate the three conjectured
/// regimes; no intermediate behavior appears (evidence, not proof).
pub fn unoriented_grids() -> Table {
    use lcl_local::{minimal_solving_radius, run_sync, IdAssignment};
    use lcl_problems::{DeltaPlusOne, TwoColorByAnchor};

    let mut table = Table::new(
        "E12 / Conjecture 1.6 — unoriented grids: rounds by class",
        &[
            "grid",
            "n",
            "log*n",
            "O(1) max-deg-2hop",
            "Θ(log* n) 5-coloring",
            "Θ(√n) 2-col radius",
        ],
    );
    for (name, g) in [
        ("torus 6²", gen::torus(&[6, 6])),
        ("torus 12²", gen::torus(&[12, 12])),
        ("open 7²", gen::grid_open(&[7, 7])),
        ("open 13²", gen::grid_open(&[13, 13])),
    ] {
        let n = g.node_count();
        let input = lcl::uniform_input(&g);
        let ids = IdAssignment::random_polynomial(n, 3, n as u64);
        // O(1): radius-2 algorithm, by definition.
        let o1 = 2u32;
        // Θ(log* n): (Δ+1)-coloring needs no orientation.
        let run = run_sync(
            &DeltaPlusOne { delta: 4 },
            &g,
            &input,
            &ids.iter().collect::<Vec<_>>(),
            None,
            1_000_000,
        );
        let problem = k_coloring(5, 4);
        assert!(lcl::verify(&problem, &g, &input, &run.output).is_empty());
        // Θ(√n): 2-coloring by gathering (both families are bipartite:
        // even tori and all open grids).
        let radius = if n <= 170 {
            let p2 = two_coloring(4);
            minimal_solving_radius(&p2, &g, &input, &ids, 2 * n as u32, |r| TwoColorByAnchor {
                radius: r,
            })
            .map(|r| r.to_string())
            .unwrap_or_else(|| "-".into())
        } else {
            "(skipped)".into()
        };
        table.row(cells!(
            name,
            n,
            lcl_graph::math::log_star(n as u64),
            o1,
            run.rounds,
            radius
        ));
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e13_lemma33_cases_are_valid() {
        let rendered = lemma33_cases().render();
        assert!(!rendered.contains("NO"), "{rendered}");
        assert!(rendered.contains("delegated"));
    }

    #[test]
    fn e12_unoriented_grids_produce_valid_rows() {
        let rendered = unoriented_grids().render();
        assert!(rendered.contains("torus"));
        assert!(rendered.contains("open"));
    }

    #[test]
    fn e11_high_girth_transfer_holds() {
        let rendered = high_girth_transfer().render();
        assert!(!rendered.contains("NO"), "{rendered}");
        assert!(rendered.contains("yes"));
    }

    #[test]
    fn e5_battery_behaves() {
        let t = speedup_trees();
        let rendered = t.render();
        assert!(rendered.contains("anti-matching"));
        assert!(rendered.contains("synthesized"));
        assert!(rendered.contains("3-coloring"));
        assert!(!rendered.contains("NO"), "{rendered}");
    }

    #[test]
    fn e9_classifications_match_theory() {
        let rendered = landscape_paths().render();
        assert!(rendered.contains("Θ(log* n)"));
        assert!(rendered.contains("Θ(n)"));
        assert!(rendered.contains("O(1)"));
    }

    #[test]
    fn e7_volume_pipeline_is_correct() {
        let rendered = volume_gap().render();
        assert!(!rendered.contains("NO"), "{rendered}");
    }

    #[test]
    fn e8_grid_pipeline_is_correct() {
        let rendered = grid_gap().render();
        assert!(!rendered.contains("NO"), "{rendered}");
    }

    #[test]
    fn e10_restriction_shrinks_universes() {
        let rendered = label_growth().render();
        assert!(rendered.contains("restricted"));
        assert!(rendered.contains("full"));
    }
}
