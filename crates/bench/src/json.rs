//! A minimal, zero-dependency JSON reader for the benchmark baselines.
//!
//! Two properties matter for the regression gate and are why this exists
//! instead of a serde dependency:
//!
//! * **Order preservation** — objects are kept as key/value *vectors* in
//!   document order, so a diff can report stages in the order the
//!   baseline lists them.
//! * **Raw number text** — numbers keep their source spelling. Counters
//!   are compared as *text* (bit-identical), which makes the exact
//!   comparison immune to float round-tripping; timing fields are parsed
//!   to `f64` only where a tolerance applies.

use std::fmt;

/// A parsed JSON value. Objects preserve document order; numbers keep
/// their raw source text (see [module docs](self)).
#[derive(Clone, PartialEq, Debug)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, as its raw source text (e.g. `"0.4419"`, `"127"`).
    Num(String),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, in document order.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Looks up a key in an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            Self::Obj(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number's raw text, if this is a number.
    pub fn as_num(&self) -> Option<&str> {
        match self {
            Self::Num(raw) => Some(raw),
            _ => None,
        }
    }

    /// The number parsed as `f64`, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        self.as_num().and_then(|raw| raw.parse().ok())
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Self::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The object entries, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            Self::Obj(entries) => Some(entries),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            Self::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// A short name for the variant, for diff messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Self::Null => "null",
            Self::Bool(_) => "bool",
            Self::Num(_) => "number",
            Self::Str(_) => "string",
            Self::Arr(_) => "array",
            Self::Obj(_) => "object",
        }
    }
}

/// A parse failure, with the byte offset where it happened.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct JsonParseError {
    /// Byte offset into the input.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for JsonParseError {}

/// Parses a complete JSON document (trailing whitespace allowed).
///
/// # Errors
///
/// Returns a [`JsonParseError`] with the offending byte offset on
/// malformed input or trailing garbage.
pub fn parse(input: &str) -> Result<JsonValue, JsonParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.error("trailing characters after the document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: impl Into<String>) -> JsonParseError {
        JsonParseError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, text: &str, value: JsonValue) -> Result<JsonValue, JsonParseError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.error(format!("expected '{text}'")))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(self.error(format!("unexpected character '{}'", other as char))),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonParseError> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(entries));
                }
                _ => return Err(self.error("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(self.error("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let start = self.pos + 1;
                            let hex = self
                                .bytes
                                .get(start..start + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.error("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.error("invalid \\u escape"))?;
                            // Surrogates are not paired: the suite never
                            // writes them.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.error("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a &str, so
                    // boundaries are valid).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.error("invalid UTF-8"))?;
                    let ch = rest.chars().next().expect("peeked a byte");
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, JsonParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let raw = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("number bytes are ASCII")
            .to_string();
        if raw.is_empty() || raw == "-" {
            return Err(self.error("malformed number"));
        }
        Ok(JsonValue::Num(raw))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_structure() {
        let v = parse(r#"{"a": 1, "b": [true, null, "x\ny"], "c": -0.25}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_num(), Some("1"));
        let arr = v.get("b").unwrap().as_arr().unwrap();
        assert_eq!(arr[0], JsonValue::Bool(true));
        assert_eq!(arr[1], JsonValue::Null);
        assert_eq!(arr[2].as_str(), Some("x\ny"));
        assert_eq!(v.get("c").unwrap().as_f64(), Some(-0.25));
    }

    #[test]
    fn preserves_object_order_and_raw_number_text() {
        let v = parse(r#"{"z": 1.50, "a": 2}"#).unwrap();
        let keys: Vec<&str> = v
            .as_obj()
            .unwrap()
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        assert_eq!(keys, ["z", "a"]);
        // "1.50" is NOT normalized to "1.5".
        assert_eq!(v.get("z").unwrap().as_num(), Some("1.50"));
    }

    #[test]
    fn rejects_trailing_garbage_and_bad_input() {
        assert!(parse("{} x").is_err());
        assert!(parse(r#"{"a": }"#).is_err());
        assert!(parse("[1, 2").is_err());
        let err = parse("nope").unwrap_err();
        assert!(err.to_string().contains("byte 0"));
    }

    #[test]
    fn round_trips_the_committed_baselines() {
        for path in ["../../BENCH_obs.json", "../../BENCH_re_engine.json"] {
            let full = format!("{}/{path}", env!("CARGO_MANIFEST_DIR"));
            let text = std::fs::read_to_string(&full).expect("baseline exists");
            let v = parse(&text).expect("baseline parses");
            assert!(!v.as_obj().expect("top-level object").is_empty());
        }
    }
}
