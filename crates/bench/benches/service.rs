//! `cargo bench -p lcl-bench --bench service` — the classification
//! service under the seeded 1k-request mix, writing `BENCH_service.json`.

fn main() {
    lcl_bench::service_report::service_report().print();
}
