//! `cargo bench -p lcl-bench --bench curves` — sweeps every Figure 1
//! panel algorithm over decades of `n`, fits the event-derived cost
//! counts against the candidate asymptotic shapes, and writes
//! `BENCH_curves.json` for the `bench-diff` curves gate.

fn main() {
    lcl_bench::curves::curves_report().print();
}
