//! `cargo bench -p lcl-bench --bench procshard` — the process-per-shard
//! substrate: a 10⁵-node clean cross-process run plus a seeded
//! SIGKILL-respawn-rehydrate chaos scenario, writing
//! `BENCH_procshard.json`. Needs `target/release/shard-worker`: run
//! `cargo build --release` first.

fn main() {
    lcl_bench::procshard_report::procshard_report().print();
}
