//! `cargo bench -p lcl-bench --bench recover` — regenerates only the
//! recovery counters (`BENCH_recover.json`): certified repair across the
//! four faulted models plus the supervised tower build.

fn main() {
    let t0 = std::time::Instant::now();
    println!("LCL landscape — certified repair and supervised-resume counters");
    lcl_bench::recover_report::recover_report().print();
    println!("\nrecovery stages collected in {:.1?}", t0.elapsed());
}
