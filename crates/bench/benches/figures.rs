//! `cargo bench -p lcl-bench --bench figures` — regenerates every figure
//! of the paper (Figure 1's four panels) and the theorem experiments
//! E5–E10, printing one aligned table per artifact. See `EXPERIMENTS.md`
//! for the paper-vs-measured discussion.

fn main() {
    let t0 = std::time::Instant::now();
    println!("LCL landscape — reproducing Figure 1 and the gap theorems");
    println!("(paper: The Landscape of Distributed Complexities on Trees and Beyond, PODC 2022)");

    lcl_bench::fig1::trees().print();
    lcl_bench::fig1::grids().print();
    lcl_bench::fig1::general().print();
    lcl_bench::fig1::volume().print();

    lcl_bench::gaps::speedup_trees().print();
    lcl_bench::gaps::failure_probabilities().print();
    lcl_bench::gaps::volume_gap().print();
    lcl_bench::gaps::grid_gap().print();
    lcl_bench::gaps::landscape_paths().print();
    lcl_bench::gaps::label_growth().print();
    lcl_bench::gaps::high_girth_transfer().print();
    lcl_bench::gaps::unoriented_grids().print();
    lcl_bench::gaps::lemma33_cases().print();

    lcl_bench::re_engine::re_engine().print();
    lcl_bench::obs_report::obs_report().print();
    lcl_bench::curves::curves_report().print();

    println!("\nall experiments completed in {:.1?}", t0.elapsed());
}
