//! `cargo bench -p lcl-bench --bench obs` — regenerates only the
//! per-stage execution traces (`BENCH_obs.json`) without rerunning the
//! full figure suite.

fn main() {
    let t0 = std::time::Instant::now();
    println!("LCL landscape — per-stage execution traces for Figure 1");
    lcl_bench::obs_report::obs_report().print();
    println!("\ntraces collected in {:.1?}", t0.elapsed());
}
