//! `cargo bench -p lcl-bench --bench chaos` — the chaos-soak stage:
//! faulted-entrypoint throughput under random fault plans. Writes no
//! baseline JSON; the committed `BENCH_*.json` files are untouched.

fn main() {
    let t0 = std::time::Instant::now();
    println!("LCL landscape — chaos soak over the faulted entrypoints");
    lcl_bench::chaos::chaos_stage(300).print();
    println!(
        "\nchaos soak finished in {:.1?} (zero panics)",
        t0.elapsed()
    );
}
