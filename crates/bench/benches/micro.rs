//! `cargo bench -p lcl-bench --bench micro` — microbenchmarks of the
//! suite's hot paths: ball extraction, verification, LOCAL/VOLUME
//! execution, a round-elimination step, and the 0-round decision.
//!
//! Uses the self-contained harness in [`lcl_bench::timing`] (the build
//! environment is offline, so Criterion is not available).

use lcl_bench::timing::bench_function;
use lcl_core::zero_round::ZeroRoundOptions;
use lcl_core::{decide_zero_round, ReOptions, ReTower};
use lcl_graph::{gen, NodeId};
use lcl_local::{run_sync, IdAssignment};
use lcl_problems::cv::{orientation_inputs, ColeVishkin, Orientation};
use lcl_problems::{anti_matching, k_coloring};
use lcl_volume::run_volume;

fn bench_ball_extraction() {
    let g = gen::random_tree(4096, 3, 1);
    bench_function("ball_radius_4_tree_4096", || {
        g.ball(NodeId(2048), 4).node_count()
    });
}

fn bench_verifier() {
    let g = gen::cycle(4096);
    let p = k_coloring(3, 2);
    let input = lcl::uniform_input(&g);
    let output: lcl::HalfEdgeLabeling<lcl::OutLabel> = g
        .half_edges()
        .map(|h| lcl::OutLabel(g.node_of(h).0 % 3))
        .collect();
    bench_function("verify_3coloring_cycle_4096", || {
        lcl::verify(&p, &g, &input, &output).len()
    });
}

fn bench_cole_vishkin() {
    let g = gen::cycle(1024);
    let input = orientation_inputs(&g, Orientation::Cycle);
    let ids = IdAssignment::random_polynomial(1024, 3, 7);
    let id_vec: Vec<u64> = ids.iter().collect();
    bench_function("cole_vishkin_cycle_1024", || {
        run_sync(&ColeVishkin, &g, &input, &id_vec, None, 100).rounds
    });
}

fn bench_re_step() {
    let p = k_coloring(3, 3);
    bench_function("re_step_f_3coloring", || {
        let mut tower = ReTower::new(p.clone());
        tower.push_f(ReOptions::default()).expect("fits");
        tower.alphabet_size(2)
    });
}

fn bench_zero_round() {
    let p = anti_matching(3);
    let mut tower = ReTower::new(p);
    tower.push_f(ReOptions::default()).expect("fits");
    bench_function("zero_round_decision_f_anti_matching", || {
        decide_zero_round(&tower.level(2), ZeroRoundOptions::default()).is_solvable()
    });
}

fn bench_synthesize_cycle() {
    let p = k_coloring(3, 2);
    bench_function("synthesize_cycle_3coloring", || {
        lcl_classify::synthesize_cycle(&p).unwrap().is_some()
    });
    let alg = lcl_classify::synthesize_cycle(&p).unwrap().unwrap();
    let g = gen::cycle(512);
    let input = lcl::uniform_input(&g);
    let ids = IdAssignment::random_polynomial(512, 3, 5);
    bench_function("run_synthesized_3coloring_cycle_512", || {
        lcl_local::run_deterministic(&alg, &g, &input, &ids, None).radius
    });
}

fn bench_volume_probes() {
    let g = gen::cycle(2048);
    let input = lcl::uniform_input(&g);
    let ids = IdAssignment::random_polynomial(2048, 3, 3);
    bench_function("volume_cv_probes_cycle_2048", || {
        run_volume(
            &lcl_bench::volume_algos::CvProbeColoring,
            &g,
            &input,
            &ids,
            None,
        )
        .expect("in budget")
        .max_probes
    });
}

fn main() {
    bench_ball_extraction();
    bench_verifier();
    bench_cole_vishkin();
    bench_re_step();
    bench_zero_round();
    bench_synthesize_cycle();
    bench_volume_probes();
}
