//! `cargo bench -p lcl-bench --bench micro` — Criterion microbenchmarks
//! of the suite's hot paths: ball extraction, verification, LOCAL/VOLUME
//! execution, a round-elimination step, and the 0-round decision.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use lcl_core::zero_round::ZeroRoundOptions;
use lcl_core::{decide_zero_round, ReOptions, ReTower};
use lcl_graph::{gen, NodeId};
use lcl_local::{run_sync, IdAssignment};
use lcl_problems::cv::{orientation_inputs, ColeVishkin, Orientation};
use lcl_problems::{anti_matching, k_coloring};
use lcl_volume::run_volume;

fn bench_ball_extraction(c: &mut Criterion) {
    let g = gen::random_tree(4096, 3, 1);
    c.bench_function("ball_radius_4_tree_4096", |b| {
        b.iter(|| {
            let ball = g.ball(NodeId(2048), 4);
            std::hint::black_box(ball.node_count())
        })
    });
}

fn bench_verifier(c: &mut Criterion) {
    let g = gen::cycle(4096);
    let p = k_coloring(3, 2);
    let input = lcl::uniform_input(&g);
    let output: lcl::HalfEdgeLabeling<lcl::OutLabel> = g
        .half_edges()
        .map(|h| lcl::OutLabel(g.node_of(h).0 % 3))
        .collect();
    c.bench_function("verify_3coloring_cycle_4096", |b| {
        b.iter(|| std::hint::black_box(lcl::verify(&p, &g, &input, &output).len()))
    });
}

fn bench_cole_vishkin(c: &mut Criterion) {
    let g = gen::cycle(1024);
    let input = orientation_inputs(&g, Orientation::Cycle);
    let ids = IdAssignment::random_polynomial(1024, 3, 7);
    let id_vec: Vec<u64> = ids.iter().collect();
    c.bench_function("cole_vishkin_cycle_1024", |b| {
        b.iter(|| {
            let run = run_sync(&ColeVishkin, &g, &input, &id_vec, None, 100);
            std::hint::black_box(run.rounds)
        })
    });
}

fn bench_re_step(c: &mut Criterion) {
    let p = k_coloring(3, 3);
    c.bench_function("re_step_f_3coloring", |b| {
        b.iter_batched(
            || ReTower::new(p.clone()),
            |mut tower| {
                tower.push_f(ReOptions::default()).expect("fits");
                std::hint::black_box(tower.alphabet_size(2))
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_zero_round(c: &mut Criterion) {
    let p = anti_matching(3);
    let mut tower = ReTower::new(p);
    tower.push_f(ReOptions::default()).expect("fits");
    c.bench_function("zero_round_decision_f_anti_matching", |b| {
        b.iter(|| {
            let r = decide_zero_round(&tower.level(2), ZeroRoundOptions::default());
            std::hint::black_box(r.is_solvable())
        })
    });
}

fn bench_synthesize_cycle(c: &mut Criterion) {
    let p = k_coloring(3, 2);
    c.bench_function("synthesize_cycle_3coloring", |b| {
        b.iter(|| {
            let alg = lcl_classify::synthesize_cycle(&p).unwrap();
            std::hint::black_box(alg.is_some())
        })
    });
    let alg = lcl_classify::synthesize_cycle(&p).unwrap().unwrap();
    let g = gen::cycle(512);
    let input = lcl::uniform_input(&g);
    let ids = IdAssignment::random_polynomial(512, 3, 5);
    c.bench_function("run_synthesized_3coloring_cycle_512", |b| {
        b.iter(|| {
            let run = lcl_local::run_deterministic(&alg, &g, &input, &ids, None);
            std::hint::black_box(run.radius)
        })
    });
}

fn bench_volume_probes(c: &mut Criterion) {
    let g = gen::cycle(2048);
    let input = lcl::uniform_input(&g);
    let ids = IdAssignment::random_polynomial(2048, 3, 3);
    c.bench_function("volume_cv_probes_cycle_2048", |b| {
        b.iter(|| {
            let run = run_volume(
                &lcl_bench::volume_algos::CvProbeColoring,
                &g,
                &input,
                &ids,
                None,
            );
            std::hint::black_box(run.max_probes)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(300));
    targets = bench_ball_extraction, bench_verifier, bench_cole_vishkin, bench_re_step, bench_zero_round, bench_synthesize_cycle, bench_volume_probes
}
criterion_main!(benches);
