//! `cargo bench -p lcl-bench --bench shard` — the sharded LOCAL
//! substrate: a 10⁶-node clean scale run plus a seeded whole-shard-loss
//! chaos-and-repair scenario, writing `BENCH_shard.json`.

fn main() {
    lcl_bench::shard_report::shard_report().print();
}
