//! Flat arena-backed bitset storage for the tower hot path.
//!
//! A derived tower level owns three *families* of bitsets — member sets,
//! edge-compatibility rows, and `g` rows — every set in a family sharing
//! one universe. Storing them as `Vec<BitSet>` (the pre-issue-6 layout)
//! costs one heap allocation per set and scatters the rows across the
//! heap, which is exactly wrong for the hot loops: the edge-row
//! construction reads *every* member set against *every* majorant, and
//! the restriction fixpoint re-reads whole families per iteration.
//!
//! [`BitArena`] packs a family into one contiguous `Vec<u64>` of
//! fixed-width rows. Rows are addressed by index, exposed as borrowed
//! [`BitRow`] views, and operated on with the word
//! [`kernels`] shared with [`BitSet`] — same
//! semantics, contiguous traffic, one allocation per family. The parallel
//! fan-out fills disjoint rows of the slab in place
//! ([`crate::par::par_fill_rows`]) instead of allocating per-row vectors
//! and reassembling them.
//!
//! The arena is a *storage* change only: snapshots keep serializing rows
//! as sorted member-index lists, so the wire format and fingerprints are
//! unchanged (see `DESIGN.md`, "Tower memory layout").

use crate::bits::{kernels, BitSet, Ones};

/// A family of equal-universe bitsets in one contiguous word slab.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct BitArena {
    words: Vec<u64>,
    universe: usize,
    /// Words per row; `universe.div_ceil(64)`, cached.
    width: usize,
    rows: usize,
}

impl BitArena {
    /// An empty arena whose rows will live over `0..universe`.
    pub fn new(universe: usize) -> Self {
        Self {
            words: Vec::new(),
            universe,
            width: universe.div_ceil(64),
            rows: 0,
        }
    }

    /// An arena of `rows` all-zero rows over `0..universe`.
    pub fn zeroed(universe: usize, rows: usize) -> Self {
        Self {
            words: vec![0u64; universe.div_ceil(64) * rows],
            universe,
            width: universe.div_ceil(64),
            rows,
        }
    }

    /// The shared universe of every row.
    pub fn universe(&self) -> usize {
        self.universe
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Whether the arena holds no rows.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Words per row.
    pub fn width(&self) -> usize {
        self.width
    }

    /// The whole slab, mutably — for parallel in-place fills
    /// ([`crate::par::par_fill_rows`]), which write disjoint
    /// `width`-sized chunks.
    pub fn words_mut(&mut self) -> &mut [u64] {
        &mut self.words
    }

    /// The words of row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[inline]
    pub fn row_words(&self, i: usize) -> &[u64] {
        &self.words[i * self.width..(i + 1) * self.width]
    }

    /// The words of row `i`, mutably.
    #[inline]
    pub fn row_words_mut(&mut self, i: usize) -> &mut [u64] {
        &mut self.words[i * self.width..(i + 1) * self.width]
    }

    /// Row `i` as a borrowed set view.
    #[inline]
    pub fn row(&self, i: usize) -> BitRow<'_> {
        BitRow {
            words: self.row_words(i),
            universe: self.universe,
        }
    }

    /// Appends an all-zero row, returning its index.
    pub fn push_empty(&mut self) -> usize {
        self.words.extend(std::iter::repeat_n(0u64, self.width));
        self.rows += 1;
        self.rows - 1
    }

    /// Appends a row holding `members`.
    ///
    /// # Panics
    ///
    /// Panics if a member is outside the universe.
    pub fn push_members(&mut self, members: impl IntoIterator<Item = usize>) -> usize {
        let i = self.push_empty();
        let universe = self.universe;
        let row = self.row_words_mut(i);
        for m in members {
            assert!(m < universe, "element {m} outside universe {universe}");
            kernels::set(row, m);
        }
        i
    }

    /// Iterates the rows in index order.
    pub fn iter(&self) -> impl Iterator<Item = BitRow<'_>> {
        (0..self.rows).map(|i| self.row(i))
    }
}

/// A borrowed view of one arena row: `BitSet` semantics without owning
/// storage.
#[derive(Clone, Copy, Debug)]
pub struct BitRow<'a> {
    words: &'a [u64],
    universe: usize,
}

impl<'a> BitRow<'a> {
    /// A view over raw words (no bits may be set past the universe).
    pub fn from_words(words: &'a [u64], universe: usize) -> Self {
        debug_assert_eq!(words.len(), universe.div_ceil(64), "aligned row");
        Self { words, universe }
    }

    /// The row's universe.
    pub fn universe(self) -> usize {
        self.universe
    }

    /// The backing words.
    pub fn words(self) -> &'a [u64] {
        self.words
    }

    /// Membership test.
    #[inline]
    pub fn contains(self, i: usize) -> bool {
        i < self.universe && kernels::test(self.words, i)
    }

    /// Number of members.
    pub fn count(self) -> usize {
        kernels::count(self.words)
    }

    /// Whether the row is empty.
    pub fn is_empty(self) -> bool {
        kernels::is_empty(self.words)
    }

    /// Panics unless `other` shares this row's universe — the same
    /// contract as [`BitSet`]'s set algebra.
    #[inline]
    fn assert_same_universe(self, other: usize) {
        assert_eq!(
            self.universe, other,
            "set operation across universes ({} vs {})",
            self.universe, other
        );
    }

    /// Whether `self ⊆ other`.
    pub fn is_subset_of(self, other: BitRow<'_>) -> bool {
        self.assert_same_universe(other.universe);
        kernels::subset(self.words, other.words)
    }

    /// Whether the rows intersect.
    pub fn intersects(self, other: BitRow<'_>) -> bool {
        self.assert_same_universe(other.universe);
        kernels::intersects(self.words, other.words)
    }

    /// Whether the row intersects an owned set over the same universe.
    pub fn intersects_set(self, other: &BitSet) -> bool {
        self.assert_same_universe(other.universe());
        kernels::intersects(self.words, other.words())
    }

    /// Whether the row is a subset of an owned set over the same
    /// universe.
    pub fn is_subset_of_set(self, other: &BitSet) -> bool {
        self.assert_same_universe(other.universe());
        kernels::subset(self.words, other.words())
    }

    /// Members, ascending (word walk).
    pub fn iter(self) -> Ones<'a> {
        Ones::new(self.words)
    }

    /// Members as a vector.
    pub fn to_vec(self) -> Vec<usize> {
        self.iter().collect()
    }

    /// An owned copy of the row.
    pub fn to_bitset(self) -> BitSet {
        BitSet::from_members(self.universe, self.iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arena_rows_round_trip_members() {
        let mut arena = BitArena::new(70);
        arena.push_members([0, 63, 64, 69]);
        arena.push_members([]);
        arena.push_members([69]);
        assert_eq!(arena.rows(), 3);
        assert_eq!(arena.width(), 2);
        assert_eq!(arena.row(0).to_vec(), vec![0, 63, 64, 69]);
        assert!(arena.row(1).is_empty());
        assert_eq!(arena.row(2).count(), 1);
        assert!(arena.row(2).is_subset_of(arena.row(0)));
        assert!(!arena.row(0).is_subset_of(arena.row(2)));
        assert!(arena.row(0).intersects(arena.row(2)));
        assert!(!arena.row(1).intersects(arena.row(0)));
    }

    #[test]
    fn arena_rows_are_contiguous() {
        let mut arena = BitArena::new(128);
        arena.push_members([0]);
        arena.push_members([127]);
        assert_eq!(arena.words_mut().len(), 4, "two rows of two words each");
        assert_eq!(arena.row_words(0), &[1, 0]);
        assert_eq!(arena.row_words(1), &[0, 1u64 << 63]);
    }

    #[test]
    fn zeroed_arena_fills_in_place() {
        let mut arena = BitArena::zeroed(65, 3);
        kernels::set(arena.row_words_mut(1), 64);
        assert!(arena.row(1).contains(64));
        assert!(!arena.row(0).contains(64));
        assert!(!arena.row(2).contains(64));
        assert_eq!(arena.iter().map(|r| r.count()).sum::<usize>(), 1);
    }

    #[test]
    fn row_interops_with_bitset() {
        let mut arena = BitArena::new(100);
        arena.push_members([3, 70]);
        let set = BitSet::from_members(100, [3, 70, 99]);
        assert!(arena.row(0).is_subset_of_set(&set));
        assert!(arena.row(0).intersects_set(&set));
        assert_eq!(arena.row(0).to_bitset().to_vec(), vec![3, 70]);
    }

    #[test]
    #[should_panic(expected = "set operation across universes")]
    fn row_universe_mismatch_panics() {
        let mut a = BitArena::new(64);
        a.push_members([1]);
        let mut b = BitArena::new(70);
        b.push_members([1, 69]);
        let _ = b.row(0).is_subset_of(a.row(0));
    }

    #[test]
    #[should_panic(expected = "outside universe")]
    fn push_members_checks_the_universe() {
        let mut arena = BitArena::new(10);
        arena.push_members([10]);
    }
}
